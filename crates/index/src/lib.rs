//! # avq-index — access methods for AVQ-coded relations
//!
//! The access-method substrate of §4.1 of the paper:
//!
//! * [`BPlusTree`] — a disk-resident, order-configurable B⁺-tree whose nodes
//!   live one-per-block on the simulated device (so index traversals cost
//!   simulated I/O, the paper's `I` term). The primary index of an AVQ
//!   relation keys on *entire serialized tuples*; secondary indexes key on
//!   attribute values.
//! * [`BucketStore`] — the indirection buckets of Fig. 4.5 that map a
//!   secondary-index value to the set of data blocks containing it.
//!
//! Note on search keys: the paper routes primary-index lookups by *closest
//! difference* to the representative keys. This crate instead keys blocks by
//! their φ-smallest tuple and uses floor search, which is exact for every
//! query (closest-representative routing can misroute a tuple lying near a
//! block boundary); the keys are still whole tuples, as §4.1 requires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
mod error;
mod hash;
mod node;
mod tree;

pub use bucket::{BucketStore, Posting};
pub use error::IndexError;
pub use hash::HashIndex;
pub use tree::{BPlusTree, TreeStats};
