//! Integration tests spanning avq-file, avq-codec, and avq-db: compress →
//! save → load → serve queries from a fresh database, plus streaming bulk
//! loads feeding the same pipeline.

use avq::codec::{compress, compress_parallel, CodecOptions, CodingMode};
use avq::db::{Aggregate, AggregateValue, DbConfig, RangePredicate, Selection, StoredRelation};
use avq::prelude::*;
use avq::workload::SyntheticSpec;
use std::sync::Arc;

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("avq-it-{tag}-{}.avq", std::process::id()))
}

#[test]
fn save_load_serve_roundtrip() {
    let relation = SyntheticSpec::test1(5_000).generate();
    let coded = compress(
        &relation,
        CodecOptions {
            block_capacity: 2048,
            ..Default::default()
        },
    )
    .unwrap();

    let path = temp_path("serve");
    avq::file::save(&path, &coded).unwrap();
    let loaded = avq::file::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Serve queries from a fresh database built on the loaded blocks.
    let mut db = Database::new(DbConfig {
        codec: CodecOptions {
            block_capacity: 2048,
            ..Default::default()
        },
        ..Default::default()
    });
    db.create_relation_from_coded("r", &loaded).unwrap();
    let stored = db.relation("r").unwrap();
    assert_eq!(stored.tuple_count(), 5_000);
    stored.primary_index().validate().unwrap();

    // Results agree with a database loaded from the raw relation.
    let mut reference = Database::new(*db.config());
    reference.create_relation("r", &relation).unwrap();
    for attr in [0usize, 3, 7] {
        let (a, _) = db.select_range_ordinal("r", attr, 0, 1).unwrap();
        let (b, _) = reference.select_range_ordinal("r", attr, 0, 1).unwrap();
        let mut a = a;
        let mut b = b;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "attr {attr}");
    }

    // And updates work on the loaded copy.
    let t = stored.scan_all().unwrap()[42].clone();
    db.relation_mut("r").unwrap().delete(&t).unwrap();
    assert_eq!(db.relation("r").unwrap().tuple_count(), 4_999);
}

#[test]
fn parallel_compress_saves_identically() {
    let relation = SyntheticSpec::test3(20_000).generate();
    let opts = CodecOptions {
        block_capacity: 4096,
        ..Default::default()
    };
    let seq = compress(&relation, opts).unwrap();
    let par = compress_parallel(&relation, opts, 4).unwrap();

    let mut buf_seq = Vec::new();
    let mut buf_par = Vec::new();
    avq::file::write_coded_relation(&mut buf_seq, &seq).unwrap();
    avq::file::write_coded_relation(&mut buf_par, &par).unwrap();
    assert_eq!(buf_seq, buf_par, "parallel compression is byte-identical");
}

#[test]
fn streaming_load_then_save() {
    // Stream tuples into a database with a tiny sort budget, then persist
    // by re-compressing the scan.
    let spec = SyntheticSpec::test1(3_000);
    let relation = spec.generate();
    let schema = relation.schema().clone();
    let config = DbConfig {
        codec: CodecOptions {
            block_capacity: 1024,
            ..Default::default()
        },
        ..Default::default()
    };
    let device = avq::storage::BlockDevice::new(1024, config.disk);
    let pool = avq::storage::BufferPool::new(device.clone(), 128);
    let stored = StoredRelation::bulk_load_streaming(
        device,
        pool,
        schema.clone(),
        relation.tuples().to_vec(),
        config,
        100, // 30 spill runs
    )
    .unwrap();
    assert_eq!(stored.tuple_count(), 3_000);

    let tuples = stored.scan_all().unwrap();
    let coded = avq::codec::compress_sorted(schema, &tuples, config.codec).unwrap();
    let path = temp_path("stream");
    avq::file::save(&path, &coded).unwrap();
    let loaded = avq::file::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.decompress().unwrap().tuples(), &tuples[..]);
}

#[test]
fn bits_mode_through_the_full_stack() {
    // The bit-aligned extension mode: compress → file → database → query.
    let relation = SyntheticSpec::test2(4_000).generate();
    let opts = CodecOptions {
        mode: CodingMode::AvqChainedBits,
        block_capacity: 2048,
        ..Default::default()
    };
    let coded = compress(&relation, opts).unwrap();
    // Bits mode beats the byte-aligned default on these small domains.
    let byte_coded = compress(
        &relation,
        CodecOptions {
            mode: CodingMode::AvqChained,
            ..opts
        },
    )
    .unwrap();
    assert!(coded.stats().coded_payload_bytes < byte_coded.stats().coded_payload_bytes);

    let path = temp_path("bits");
    avq::file::save(&path, &coded).unwrap();
    let loaded = avq::file::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.options().mode, CodingMode::AvqChainedBits);

    let mut db = Database::new(DbConfig {
        codec: opts,
        ..Default::default()
    });
    db.create_relation_from_coded("r", &loaded).unwrap();
    let stored = db.relation("r").unwrap();
    let (count, _) = stored
        .aggregate(Aggregate::Count, &Selection::all())
        .unwrap();
    assert_eq!(count, AggregateValue::Count(4_000));
    let sel = Selection::all().and(RangePredicate {
        attr: 2,
        lo: 0,
        hi: 1,
    });
    let (rows, _, _) = stored.select(&sel).unwrap();
    let expect = stored
        .scan_all()
        .unwrap()
        .iter()
        .filter(|t| t.digits()[2] <= 1)
        .count();
    assert_eq!(rows.len(), expect);
}

#[test]
fn group_by_through_database() {
    let schema = Schema::from_pairs(vec![
        ("region", Domain::uint(4).unwrap()),
        ("qty", Domain::uint(100).unwrap()),
    ])
    .unwrap();
    let tuples: Vec<Tuple> = (0..800u64).map(|i| Tuple::from([i % 4, i % 100])).collect();
    let relation = Relation::from_tuples(Arc::clone(&schema), tuples).unwrap();
    let mut db = Database::new(DbConfig {
        codec: CodecOptions {
            block_capacity: 256,
            ..Default::default()
        },
        ..Default::default()
    });
    db.create_relation("sales", &relation).unwrap();
    let (groups, _) = db
        .relation("sales")
        .unwrap()
        .aggregate_group_by(0, Aggregate::Avg { attr: 1 }, &Selection::all())
        .unwrap();
    assert_eq!(groups.len(), 4);
    for (_, v) in groups {
        let AggregateValue::Avg(Some(avg)) = v else {
            panic!("non-empty groups");
        };
        assert!((avg - 49.5).abs() < 2.5);
    }
}
