//! # avq-num — numeric substrate for AVQ
//!
//! Numeric foundations for the AVQ (Augmented Vector Quantization) database
//! compression library:
//!
//! * [`BigUnsigned`] — arbitrary-precision unsigned integers, because the
//!   ordinal tuple space `‖𝓡‖ = Π|Aᵢ|` of a realistic relation scheme does
//!   not fit any machine word.
//! * [`MixedRadix`] — the φ / φ⁻¹ mapping of the paper (Eq. 2.2–2.5) plus
//!   carry/borrow arithmetic performed *directly on digit vectors*, which is
//!   what lets the per-tuple coding path avoid bignums entirely.
//!
//! Everything else in the workspace builds on these two types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod biguint;
mod radix;

pub use biguint::BigUnsigned;
pub use radix::{MixedRadix, RadixError};
