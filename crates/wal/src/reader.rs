//! The log reader: scan, torn-tail detection, and truncation.

use crate::error::WalError;
use crate::record::WalRecord;
use crate::writer::{Lsn, FRAME_HEADER_BYTES};
use avq_file::crc32;
use std::path::Path;

/// The outcome of scanning a log file.
#[derive(Debug)]
pub struct WalScan {
    /// Every complete, checksum-valid record in LSN order.
    pub records: Vec<(Lsn, WalRecord)>,
    /// Byte length of the valid prefix (where the torn tail, if any,
    /// begins).
    pub valid_bytes: u64,
    /// Bytes past the valid prefix (0 for a cleanly closed log).
    pub torn_bytes: u64,
    /// Why scanning stopped before end-of-file, when it did.
    pub torn_reason: Option<String>,
}

impl WalScan {
    /// The highest LSN in the valid prefix (0 for an empty log).
    pub fn last_lsn(&self) -> Lsn {
        self.records.last().map(|(lsn, _)| *lsn).unwrap_or(0)
    }
}

/// Scans log `bytes`, stopping at the first incomplete or checksum-invalid
/// frame. Only damage *behind* a valid checksum (undecodable record body,
/// non-monotonic LSN) is an error; everything a crash can produce is a torn
/// tail, reported rather than raised.
pub fn scan_bytes(bytes: &[u8]) -> Result<WalScan, WalError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut torn_reason = None;
    let mut prev_lsn: Lsn = 0;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + FRAME_HEADER_BYTES) else {
            torn_reason = Some(format!(
                "incomplete frame header ({} of {FRAME_HEADER_BYTES} bytes)",
                bytes.len() - pos
            ));
            break;
        };
        // `header` is exactly FRAME_HEADER_BYTES (8) long, so the chunk
        // always exists; the else arm mirrors the truncated-header case.
        let Some((&[l0, l1, l2, l3, c0, c1, c2, c3], _)) =
            header.split_first_chunk::<FRAME_HEADER_BYTES>()
        else {
            torn_reason = Some(format!(
                "incomplete frame header ({} of {FRAME_HEADER_BYTES} bytes)",
                bytes.len() - pos
            ));
            break;
        };
        let body_len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
        let stored_crc = u32::from_le_bytes([c0, c1, c2, c3]);
        let body_start = pos + FRAME_HEADER_BYTES;
        let Some(body) = bytes.get(body_start..body_start + body_len) else {
            torn_reason = Some(format!(
                "incomplete record body ({} of {body_len} bytes)",
                bytes.len() - body_start
            ));
            break;
        };
        if crc32(body) != stored_crc {
            torn_reason = Some(format!("checksum mismatch in record body at byte {pos}"));
            break;
        }
        let Some((lsn_bytes, payload)) = body.split_first_chunk::<8>() else {
            torn_reason = Some(format!("record body at byte {pos} shorter than an LSN"));
            break;
        };
        let lsn = u64::from_le_bytes(*lsn_bytes);
        // A checksum-valid record with a non-increasing LSN means the log
        // was overwritten mid-stream; nothing after it can be trusted.
        if lsn <= prev_lsn {
            torn_reason = Some(format!(
                "LSN went backwards at byte {pos} ({prev_lsn} -> {lsn})"
            ));
            break;
        }
        let record = WalRecord::decode(payload, pos as u64)?;
        prev_lsn = lsn;
        records.push((lsn, record));
        pos = body_start + body_len;
    }
    Ok(WalScan {
        records,
        valid_bytes: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
        torn_reason,
    })
}

/// Scans the log at `path`. A missing file scans as empty.
pub fn scan<P: AsRef<Path>>(path: P) -> Result<WalScan, WalError> {
    let bytes = match std::fs::read(path.as_ref()) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    scan_bytes(&bytes)
}

/// Scans the log at `path` and truncates any torn tail in place, so a
/// subsequently opened [`crate::WalWriter`] appends after the last valid
/// record. Returns the scan of the surviving prefix.
pub fn recover<P: AsRef<Path>>(path: P) -> Result<WalScan, WalError> {
    let scan = scan(path.as_ref())?;
    if scan.torn_bytes > 0 {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(path.as_ref())?;
        f.set_len(scan.valid_bytes)?;
        f.sync_data()?;
    }
    Ok(scan)
}
