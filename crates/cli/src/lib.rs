//! # avq-cli — the `avqtool` command-line interface
//!
//! Create, inspect, query, and verify `.avq` compressed relations from the
//! shell. The command implementations live in [`commands`] as plain
//! functions (unit-testable without process spawning); `main.rs` only
//! parses arguments. Includes a dependency-free CSV reader/writer
//! ([`csv`]) and a one-line-per-attribute schema-spec format ([`spec`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod csv;
pub mod spec;
