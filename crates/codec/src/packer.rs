//! Block partitioning (§3.3): cut a φ-sorted relation into runs whose coded
//! form fits a disk block.
//!
//! The paper: "The number of tuples allocated to a block before coding must
//! be suitably fixed so as to minimize this [unused] space." The packer is
//! exact, not heuristic: each emitted run is the *longest prefix* of the
//! remaining tuples whose coded size fits the capacity.
//!
//! For [`CodingMode::FieldWise`] and [`CodingMode::AvqChained`] the coded
//! size is incremental in the appended tuple (field-wise adds `m` bytes; the
//! chained stream adds one adjacent-gap entry whose cost does not depend on
//! the representative), so packing is a single linear scan. For
//! [`CodingMode::Avq`] the representative moves as the run grows and every
//! difference is taken against it, so the packer gallops + binary-searches on
//! the exact [`BlockCodec::measure`] with a final linear fix-up.

use crate::block::{BlockCodec, BLOCK_HEADER_BYTES};
use crate::error::CodecError;
use crate::mode::CodingMode;
use avq_schema::Tuple;
use core::ops::Range;

/// Partitions φ-sorted tuples into block-sized runs for one codec.
#[derive(Debug, Clone)]
pub struct BlockPacker {
    codec: BlockCodec,
    capacity: usize,
}

impl BlockPacker {
    /// Creates a packer that fits coded runs into `capacity` bytes.
    pub fn new(codec: BlockCodec, capacity: usize) -> Self {
        BlockPacker { codec, capacity }
    }

    /// The block capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The underlying codec.
    #[inline]
    pub fn codec(&self) -> &BlockCodec {
        &self.codec
    }

    /// Smallest possible coded block: header plus one raw tuple. Any single
    /// tuple must fit or packing fails.
    fn min_block(&self) -> usize {
        BLOCK_HEADER_BYTES + self.codec.schema().tuple_bytes()
    }

    /// Splits `tuples` (which must be in φ order) into consecutive ranges,
    /// each of whose coded size is ≤ the capacity, each maximal.
    pub fn partition(&self, tuples: &[Tuple]) -> Result<Vec<Range<usize>>, CodecError> {
        if tuples.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(pos) = tuples.windows(2).position(|w| matches!(w, [a, b] if a > b)) {
            return Err(CodecError::UnsortedInput { position: pos + 1 });
        }
        if self.min_block() > self.capacity {
            return Err(CodecError::BlockOverflow {
                needed: self.min_block(),
                capacity: self.capacity,
            });
        }
        let max_tuples = u16::MAX as usize;
        let mut ranges = Vec::new();
        let mut start = 0usize;
        while start < tuples.len() {
            // `start < tuples.len()`, so the rest is never empty.
            let rest = tuples.get(start..).unwrap_or(&[]);
            let len = match self.codec.mode() {
                CodingMode::Avq => self.longest_fit_searched(rest, max_tuples),
                CodingMode::AvqChainedBits => self.longest_fit_bits(rest, max_tuples),
                _ => self.longest_fit_linear(rest, max_tuples),
            };
            if len == 0 {
                // Unreachable (min_block fits), but never loop forever.
                break;
            }
            ranges.push(start..start + len);
            start += len;
        }
        Ok(ranges)
    }

    /// Longest fitting prefix by incremental accumulation (exact for
    /// field-wise and chained modes).
    fn longest_fit_linear(&self, tuples: &[Tuple], max_tuples: usize) -> usize {
        let mut size = self.min_block();
        debug_assert!(size <= self.capacity);
        let mut len = 1usize;
        for w in tuples.windows(2) {
            if len >= max_tuples {
                break;
            }
            let [prev, next] = w else { break };
            let add = self.codec.append_cost(prev, next);
            if size + add > self.capacity {
                break;
            }
            size += add;
            len += 1;
        }
        debug_assert_eq!(size, self.codec.measure(&tuples[..len]));
        len
    }

    /// Longest fitting prefix for the bit-aligned chained mode: entries are
    /// adjacent-gap bit strings, so the accumulated bit count is incremental
    /// and exact.
    fn longest_fit_bits(&self, tuples: &[Tuple], max_tuples: usize) -> usize {
        let base = self.min_block();
        debug_assert!(base <= self.capacity);
        let mut bits = 0usize;
        let mut len = 1usize;
        for w in tuples.windows(2) {
            if len >= max_tuples {
                break;
            }
            let [prev, next] = w else { break };
            let add = self.codec.append_bits(prev, next);
            if base + (bits + add).div_ceil(8) > self.capacity {
                break;
            }
            bits += add;
            len += 1;
        }
        debug_assert_eq!(base + bits.div_ceil(8), self.codec.measure(&tuples[..len]));
        len
    }

    /// Longest fitting prefix by gallop + binary search on the exact coded
    /// size (for representative-relative mode, where appending a tuple moves
    /// the median and re-prices every entry).
    fn longest_fit_searched(&self, tuples: &[Tuple], max_tuples: usize) -> usize {
        let n = tuples.len().min(max_tuples);
        // Every probe length is ≤ n ≤ tuples.len(), so the prefix exists.
        let prefix = |k: usize| tuples.get(..k).unwrap_or(tuples);
        // Gallop to bracket the boundary.
        let mut lo = 1usize; // known to fit (min_block checked by caller)
        let mut hi = n;
        let mut probe = 2usize;
        while probe < n {
            if self.codec.measure(prefix(probe)) <= self.capacity {
                lo = probe;
                probe *= 2;
            } else {
                hi = probe;
                break;
            }
        }
        // Binary search in (lo, hi].
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if self.codec.measure(prefix(mid)) <= self.capacity {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        // The coded size is not strictly monotone in run length when the
        // median shifts, so nudge down until the chosen prefix really fits.
        while lo > 1 && self.codec.measure(prefix(lo)) > self.capacity {
            lo -= 1;
        }
        lo
    }

    /// Partitions and encodes in one pass, returning the coded block streams.
    pub fn pack(&self, tuples: &[Tuple]) -> Result<Vec<Vec<u8>>, CodecError> {
        let ranges = self.partition(tuples)?;
        // lint: bounded(one entry per packed block range)
        let mut blocks = Vec::with_capacity(ranges.len());
        for r in ranges {
            // Partition ranges tile `tuples`, so each is in bounds.
            let coded = self.codec.encode(tuples.get(r).unwrap_or(&[]))?;
            debug_assert!(coded.len() <= self.capacity);
            blocks.push(coded);
        }
        Ok(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::RepChoice;
    use avq_schema::{Domain, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(vec![
            ("a", Domain::uint(64).unwrap()),
            ("b", Domain::uint(64).unwrap()),
            ("c", Domain::uint(64).unwrap()),
        ])
        .unwrap()
    }

    fn dense_tuples(n: u64) -> Vec<Tuple> {
        // Consecutive tuples: tiny gaps, maximal compressibility.
        let s = schema();
        (0..n)
            .map(|i| {
                Tuple::new(
                    s.radix()
                        .unrank(&avq_num::BigUnsigned::from_u64(i))
                        .unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn partition_covers_input_exactly() {
        let tuples = dense_tuples(500);
        for mode in CodingMode::ALL {
            let codec = BlockCodec::with_options(schema(), mode, RepChoice::Median);
            let packer = BlockPacker::new(codec, 64);
            let ranges = packer.partition(&tuples).unwrap();
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, tuples.len());
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
            }
        }
    }

    #[test]
    fn every_block_fits_and_is_maximal() {
        let tuples = dense_tuples(300);
        for mode in CodingMode::ALL {
            let codec = BlockCodec::with_options(schema(), mode, RepChoice::Median);
            let packer = BlockPacker::new(codec.clone(), 48);
            let ranges = packer.partition(&tuples).unwrap();
            for (i, r) in ranges.iter().enumerate() {
                let size = codec.measure(&tuples[r.clone()]);
                assert!(size <= 48, "block {i} overflows: {size}");
                // Maximality: adding the next tuple must overflow.
                if r.end < tuples.len() {
                    let bigger = codec.measure(&tuples[r.start..r.end + 1]);
                    assert!(bigger > 48, "block {i} not maximal (mode {mode})");
                }
            }
        }
    }

    #[test]
    fn pack_encodes_fitting_blocks() {
        let tuples = dense_tuples(200);
        let codec = BlockCodec::new(schema());
        let packer = BlockPacker::new(codec.clone(), 56);
        let blocks = packer.pack(&tuples).unwrap();
        let mut decoded = Vec::new();
        for b in &blocks {
            assert!(b.len() <= 56);
            codec.decode_into(b, &mut decoded).unwrap();
        }
        assert_eq!(decoded, tuples);
    }

    #[test]
    fn capacity_too_small_for_one_tuple() {
        let codec = BlockCodec::new(schema());
        // min block = 4 header + 3 tuple bytes = 7
        let packer = BlockPacker::new(codec, 6);
        let err = packer.partition(&dense_tuples(3)).unwrap_err();
        assert_eq!(
            err,
            CodecError::BlockOverflow {
                needed: 7,
                capacity: 6
            }
        );
    }

    #[test]
    fn exact_minimum_capacity_gives_one_tuple_blocks() {
        let codec = BlockCodec::new(schema());
        let packer = BlockPacker::new(codec, 7);
        let ranges = packer.partition(&dense_tuples(4)).unwrap();
        assert_eq!(ranges.len(), 4);
        assert!(ranges.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn empty_input_gives_no_blocks() {
        let codec = BlockCodec::new(schema());
        let packer = BlockPacker::new(codec, 100);
        assert!(packer.partition(&[]).unwrap().is_empty());
    }

    #[test]
    fn unsorted_input_rejected() {
        let codec = BlockCodec::new(schema());
        let packer = BlockPacker::new(codec, 100);
        let tuples = vec![Tuple::from([1u64, 0, 0]), Tuple::from([0u64, 0, 0])];
        assert!(matches!(
            packer.partition(&tuples).unwrap_err(),
            CodecError::UnsortedInput { .. }
        ));
    }

    #[test]
    fn chained_packs_more_than_fieldwise_on_dense_data() {
        let tuples = dense_tuples(400);
        let cap = 128;
        let fw = BlockPacker::new(
            BlockCodec::with_options(schema(), CodingMode::FieldWise, RepChoice::Median),
            cap,
        );
        let ch = BlockPacker::new(
            BlockCodec::with_options(schema(), CodingMode::AvqChained, RepChoice::Median),
            cap,
        );
        let fw_blocks = fw.partition(&tuples).unwrap().len();
        let ch_blocks = ch.partition(&tuples).unwrap().len();
        assert!(
            ch_blocks < fw_blocks,
            "chained {ch_blocks} should beat field-wise {fw_blocks}"
        );
    }

    #[test]
    fn sparse_data_still_packs() {
        // Far-apart tuples: diffs as wide as tuples; AVQ degrades gracefully.
        let s = schema();
        let tuples: Vec<Tuple> = (0..50u64)
            .map(|i| {
                Tuple::new(
                    s.radix()
                        .unrank(&avq_num::BigUnsigned::from_u64(i * 5000))
                        .unwrap(),
                )
            })
            .collect();
        for mode in CodingMode::ALL {
            let codec = BlockCodec::with_options(s.clone(), mode, RepChoice::Median);
            let packer = BlockPacker::new(codec.clone(), 64);
            let blocks = packer.pack(&tuples).unwrap();
            let mut decoded = Vec::new();
            for b in &blocks {
                codec.decode_into(b, &mut decoded).unwrap();
            }
            assert_eq!(decoded, tuples, "mode {mode}");
        }
    }
}
