//! The paper's running example: the 50-tuple employee relation of
//! Example 3.1 / Fig. 2.2.
//!
//! Five attributes — department, job title, years in company, hours worked
//! per week, employee number — with domain sizes 8, 16, 64, 64, 64. The
//! string domains are arranged so that the encodings match Fig. 2.2 (b)
//! exactly (e.g. `management` ↦ 2, `production` ↦ 3, `marketing` ↦ 4,
//! `personnel` ↦ 5; `executive` ↦ 4 … `director` ↦ 12).

use avq_schema::{Domain, Relation, Schema, Tuple, Value};
use std::sync::Arc;

/// Department names, positioned so the paper's four departments land on
/// ordinals 2–5.
const DEPARTMENTS: [&str; 8] = [
    "accounting",  // 0
    "engineering", // 1
    "management",  // 2
    "production",  // 3
    "marketing",   // 4
    "personnel",   // 5
    "research",    // 6
    "sales",       // 7
];

/// Job titles, positioned so the paper's eight titles land on their
/// Fig. 2.2 (b) ordinals (executive 4, secretary 5, worker1 6, worker2 7,
/// manager 8, part-time 9, supervisor 10, director 12).
const JOB_TITLES: [&str; 16] = [
    "intern",     // 0
    "contractor", // 1
    "trainee",    // 2
    "analyst",    // 3
    "executive",  // 4
    "secretary",  // 5
    "worker1",    // 6
    "worker2",    // 7
    "manager",    // 8
    "part-time",  // 9
    "supervisor", // 10
    "consultant", // 11
    "director",   // 12
    "architect",  // 13
    "auditor",    // 14
    "clerk",      // 15
];

/// The 50 rows of Fig. 2.2 (a) as `(department, title, years, hours, empno)`.
const ROWS: [(&str, &str, u64, u64, u64); 50] = [
    ("production", "part-time", 24, 32, 0),
    ("marketing", "director", 12, 31, 1),
    ("management", "worker1", 29, 21, 2),
    ("marketing", "worker2", 30, 42, 3),
    ("management", "supervisor", 27, 27, 4),
    ("production", "secretary", 23, 25, 5),
    ("production", "secretary", 34, 28, 6),
    ("production", "worker1", 32, 37, 7),
    ("marketing", "worker2", 39, 37, 8),
    ("production", "executive", 31, 25, 9),
    ("marketing", "part-time", 19, 21, 10),
    ("production", "secretary", 28, 22, 11),
    ("production", "manager", 32, 34, 12),
    ("marketing", "manager", 38, 34, 13),
    ("marketing", "worker2", 26, 32, 14),
    ("personnel", "supervisor", 33, 22, 15),
    ("production", "part-time", 34, 28, 16),
    ("marketing", "part-time", 25, 27, 17),
    ("marketing", "manager", 41, 28, 18),
    ("production", "manager", 32, 25, 19),
    ("marketing", "secretary", 39, 29, 20),
    ("marketing", "manager", 50, 26, 21),
    ("production", "manager", 31, 33, 22),
    ("personnel", "manager", 26, 32, 23),
    ("production", "worker1", 34, 26, 24),
    ("personnel", "worker2", 45, 16, 25),
    ("production", "worker2", 39, 37, 26),
    ("marketing", "worker1", 40, 27, 27),
    ("marketing", "supervisor", 30, 44, 28),
    ("production", "manager", 24, 30, 29),
    ("marketing", "worker2", 33, 32, 30),
    ("marketing", "part-time", 32, 42, 31),
    ("personnel", "supervisor", 19, 31, 32),
    ("production", "part-time", 27, 26, 33),
    ("production", "supervisor", 32, 30, 34),
    ("production", "manager", 36, 39, 35),
    ("management", "worker1", 26, 20, 36),
    ("production", "part-time", 26, 27, 37),
    ("production", "supervisor", 35, 25, 38),
    ("marketing", "supervisor", 39, 33, 39),
    ("production", "worker2", 35, 28, 40),
    ("marketing", "manager", 32, 24, 41),
    ("marketing", "manager", 31, 24, 42),
    ("marketing", "supervisor", 35, 19, 43),
    ("marketing", "executive", 55, 23, 44),
    ("marketing", "manager", 32, 27, 45),
    ("production", "worker2", 37, 31, 46),
    ("personnel", "secretary", 24, 26, 47),
    ("production", "worker2", 30, 32, 48),
    ("marketing", "worker2", 39, 31, 49),
];

/// The employee relation scheme of Example 3.1: domain sizes 8, 16, 64, 64,
/// 64 (so `‖𝓡‖ = 2²⁵` and tuples serialize to 5 bytes).
pub fn employee_schema() -> Arc<Schema> {
    Schema::from_pairs(vec![
        (
            "department",
            Domain::enumerated(DEPARTMENTS).expect("static"),
        ),
        ("job_title", Domain::enumerated(JOB_TITLES).expect("static")),
        ("years", Domain::uint(64).expect("static")),
        ("hours", Domain::uint(64).expect("static")),
        ("empno", Domain::uint(64).expect("static")),
    ])
    .expect("static schema is valid")
}

/// The 50-tuple employee relation of Fig. 2.2 (a), in the paper's original
/// (unsorted) order.
pub fn employee_relation() -> Relation {
    let schema = employee_schema();
    let rows = ROWS.iter().map(|&(d, j, y, h, e)| {
        vec![
            Value::from(d),
            Value::from(j),
            Value::Uint(y),
            Value::Uint(h),
            Value::Uint(e),
        ]
    });
    Relation::from_rows(schema, rows).expect("static rows are valid")
}

/// The encoded tuples of Fig. 2.2 (b), in the same order as the rows.
pub fn employee_tuples() -> Vec<Tuple> {
    employee_relation().into_tuples()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_tuples() {
        let r = employee_relation();
        assert_eq!(r.len(), 50);
        assert_eq!(r.schema().tuple_bytes(), 5);
        assert_eq!(
            r.schema().space_size().to_u64(),
            Some(8 * 16 * 64 * 64 * 64)
        );
    }

    /// Spot-check encodings against Fig. 2.2 (b).
    #[test]
    fn encodings_match_fig_2_2b() {
        let t = employee_tuples();
        assert_eq!(t[0], Tuple::from([3u64, 9, 24, 32, 0]));
        assert_eq!(t[1], Tuple::from([4u64, 12, 12, 31, 1]));
        assert_eq!(t[2], Tuple::from([2u64, 6, 29, 21, 2]));
        assert_eq!(t[15], Tuple::from([5u64, 10, 33, 22, 15]));
        assert_eq!(t[35], Tuple::from([3u64, 8, 36, 39, 35]));
        assert_eq!(t[44], Tuple::from([4u64, 4, 55, 23, 44]));
        assert_eq!(t[49], Tuple::from([4u64, 7, 39, 31, 49]));
    }

    /// After φ re-ordering, the first and last tuples and their φ values
    /// match Fig. 2.2 (c).
    #[test]
    fn reordering_matches_fig_2_2c() {
        let mut r = employee_relation();
        r.sort();
        let first = &r.tuples()[0];
        let last = &r.tuples()[49];
        assert_eq!(*first, Tuple::from([2u64, 6, 26, 20, 36]));
        assert_eq!(r.schema().phi(first).to_u64(), Some(10_069_284));
        assert_eq!(*last, Tuple::from([5u64, 10, 33, 22, 15]));
        assert_eq!(r.schema().phi(last).to_u64(), Some(23_729_551));
        // A mid-table entry: (3,08,36,39,35) at φ = 14 830 051... the figure
        // prints 14830051 for this tuple in table (c).
        let rep = Tuple::from([3u64, 8, 36, 39, 35]);
        assert_eq!(r.schema().phi(&rep).to_u64(), Some(14_830_051));
    }

    /// Decoding ordinals reproduces the original strings (losslessness of
    /// the §3.1 attribute mapping).
    #[test]
    fn decode_roundtrip() {
        let r = employee_relation();
        let rows: Vec<_> = r.rows().collect();
        assert_eq!(rows[0][0], Value::from("production"));
        assert_eq!(rows[0][1], Value::from("part-time"));
        assert_eq!(rows[1][1], Value::from("director"));
        assert_eq!(rows[44][1], Value::from("executive"));
    }
}
