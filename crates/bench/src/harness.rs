//! Shared setup for the §5.2/§5.3 experiments: the timing relation loaded
//! twice (uncoded and AVQ-coded) with secondary indexes on every attribute,
//! and the per-attribute query suite of Fig. 5.8.

use avq_codec::{CodecOptions, CodingMode};
use avq_db::{Database, DbConfig};
use avq_schema::Relation;
use avq_workload::{ActiveSpec, SyntheticSpec};

/// Name under which the timing relation is stored.
pub const REL: &str = "r";

/// Builds the §5.2 relation.
pub fn timing_relation(tuples: usize) -> (SyntheticSpec, Relation) {
    let spec = SyntheticSpec::section_5_2(tuples);
    let relation = spec.generate();
    (spec, relation)
}

/// Loads `relation` into a fresh database under the given coding mode, with
/// a secondary index on every attribute (the paper assumes the needed
/// secondary indices exist).
pub fn load_database(relation: &Relation, mode: CodingMode, cpu_ms_per_block: f64) -> Database {
    let config = DbConfig {
        codec: CodecOptions {
            mode,
            ..Default::default()
        },
        buffer_frames: 64, // small on purpose: queries should run cold
        cpu_ms_per_block,
        ..Default::default()
    };
    let mut db = Database::new(config);
    db.create_relation(REL, relation).unwrap();
    for attr in 0..relation.schema().arity() {
        db.create_secondary_index(REL, attr).unwrap();
    }
    db
}

/// The Fig. 5.8 query bounds for attribute `k`: `σ_{a ≤ A_k ≤ b}` with
/// `a = 0.5·|A_k|` over the *active* value range, `b` its top — except on
/// the primary-key attribute, where the query is an equality (`b = a`), as
/// only one tuple can match.
pub fn query_bounds(spec: &SyntheticSpec, attr: usize) -> (u64, u64) {
    let sizes = spec.domain_sizes();
    let is_key = spec.unique_last && attr == sizes.len() - 1;
    let active = if is_key {
        spec.tuples as u64
    } else {
        active_for(spec, attr, sizes[attr])
    };
    let a = active / 2;
    if is_key {
        (a, a)
    } else {
        (a, active.saturating_sub(1))
    }
}

fn active_for(spec: &SyntheticSpec, attr: usize, size: u64) -> u64 {
    match &spec.active {
        ActiveSpec::Full => size,
        ActiveSpec::Uniform(n) => (*n).min(size),
        ActiveSpec::PerAttribute(v) => v
            .get(attr)
            .or_else(|| v.last())
            .copied()
            .unwrap_or(size)
            .min(size),
    }
}

/// Runs the Fig. 5.8 suite: for each attribute, executes the range query
/// cold and returns `(N, I)` — data blocks accessed and index blocks read.
pub fn blocks_accessed(db: &Database, spec: &SyntheticSpec) -> Vec<(u64, u64)> {
    let arity = spec.domain_sizes().len();
    let mut out = Vec::with_capacity(arity);
    for attr in 0..arity {
        let (lo, hi) = query_bounds(spec, attr);
        db.drop_caches();
        db.reset_measurements();
        let (_, cost) = db.select_range_ordinal(REL, attr, lo, hi).unwrap();
        out.push((cost.data_blocks, cost.index_reads));
    }
    out
}
