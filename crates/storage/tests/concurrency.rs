//! Concurrency tests: the device and buffer pool are shared mutable state
//! behind latches; hammer them from many threads and verify nothing tears.

use avq_storage::{BlockDevice, BufferPool, DiskProfile};
use std::thread;

#[test]
fn concurrent_reads_see_consistent_blocks() {
    let device = BlockDevice::new(256, DiskProfile::instant());
    let pool = BufferPool::new(device.clone(), 8);
    // Each block holds a self-describing pattern.
    let ids: Vec<_> = (0..32u8)
        .map(|i| {
            let id = device.allocate().unwrap();
            device.write(id, &[i; 100]).unwrap();
            id
        })
        .collect();

    thread::scope(|s| {
        for t in 0..8 {
            let pool = pool.clone();
            let ids = ids.clone();
            s.spawn(move || {
                for round in 0..500 {
                    let pick = (t * 31 + round * 7) % ids.len();
                    let data = pool.read(ids[pick]).unwrap();
                    assert_eq!(data.len(), 100);
                    // A block is never a mix of two writes.
                    assert!(
                        data.iter().all(|&b| b == data[0]),
                        "torn read on block {pick}"
                    );
                }
            });
        }
    });
    let st = pool.stats();
    assert_eq!(st.hits + st.misses, 8 * 500);
}

#[test]
fn concurrent_writers_and_readers() {
    let device = BlockDevice::new(64, DiskProfile::instant());
    let pool = BufferPool::new(device.clone(), 4);
    let ids: Vec<_> = (0..8).map(|_| device.allocate().unwrap()).collect();
    for &id in &ids {
        pool.write(id, &[0u8; 32]).unwrap();
    }

    thread::scope(|s| {
        // Writers stamp whole blocks with a single byte value.
        for w in 0..4u8 {
            let pool = pool.clone();
            let ids = ids.clone();
            s.spawn(move || {
                for round in 0..300u32 {
                    let id = ids[(w as usize + round as usize) % ids.len()];
                    let stamp = (w as u32 * 300 + round) as u8;
                    pool.write(id, &[stamp; 32]).unwrap();
                }
            });
        }
        // Readers verify blocks are never torn.
        for r in 0..4usize {
            let pool = pool.clone();
            let ids = ids.clone();
            s.spawn(move || {
                for round in 0..300 {
                    let id = ids[(r + round * 3) % ids.len()];
                    let data = pool.read(id).unwrap();
                    assert!(data.iter().all(|&b| b == data[0]), "torn block");
                }
            });
        }
    });
    // Counters are consistent (no lost updates).
    assert_eq!(device.io_stats().writes, 8 + 4 * 300);
}

#[test]
fn concurrent_allocations_are_unique_while_live() {
    // Phase 1: allocate concurrently with no frees — every handed-out id
    // must be distinct (they are all live simultaneously).
    let device = BlockDevice::new(64, DiskProfile::instant());
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let device = device.clone();
            thread::spawn(move || {
                (0..200)
                    .map(|_| device.allocate().unwrap())
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut all: Vec<u32> = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    all.sort_unstable();
    let before = all.len();
    all.dedup();
    assert_eq!(all.len(), before, "allocate handed out a duplicate live id");
    assert_eq!(device.live_blocks(), 1600);

    // Phase 2: free half concurrently; live count and double-free behaviour
    // stay consistent.
    let to_free: Vec<u32> = all.iter().copied().step_by(2).collect();
    thread::scope(|s| {
        for chunk in to_free.chunks(to_free.len() / 4) {
            let device = device.clone();
            s.spawn(move || {
                for &id in chunk {
                    device.free(id).unwrap();
                }
            });
        }
    });
    assert_eq!(device.live_blocks(), 800);
    assert!(device.free(to_free[0]).is_err(), "double free rejected");
}

#[test]
fn clock_accumulates_across_threads() {
    let device = BlockDevice::new(64, DiskProfile::paper_fixed());
    let id = device.allocate().unwrap();
    device.write(id, b"x").unwrap();
    device.clock().reset();
    thread::scope(|s| {
        for _ in 0..4 {
            let device = device.clone();
            s.spawn(move || {
                for _ in 0..100 {
                    device.read(id).unwrap();
                }
            });
        }
    });
    // 400 reads at exactly 30 ms each.
    assert!((device.clock().now_ms() - 400.0 * 30.0).abs() < 1e-6);
}
