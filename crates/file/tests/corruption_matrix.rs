//! Corruption matrix over `.avq` files, mirroring the WAL's
//! `crash_injection` discipline: flip **every** byte of a small file one at
//! a time (under several bit patterns), and truncate it at every length.
//! Every mutation must yield `Err` or a value that re-verifies against the
//! original — never a panic, never a bogus success.

use avq_codec::{compress, CodecOptions, CodingMode, RepChoice};
use avq_file::{read_coded_relation, write_coded_relation};
use avq_schema::{Domain, Relation, Schema, Value};
use std::sync::Arc;

fn small_relation() -> Relation {
    let schema: Arc<Schema> = Schema::from_pairs(vec![
        ("dept", Domain::enumerated(vec!["eng", "hr"]).unwrap()),
        ("delta", Domain::int_range(-4, 3).unwrap()),
        ("id", Domain::uint(512).unwrap()),
    ])
    .unwrap();
    Relation::from_rows(
        schema,
        (0..60i64).map(|i| {
            vec![
                Value::from(["eng", "hr"][(i % 2) as usize]),
                Value::Int(i % 8 - 4),
                Value::Uint((i * 7) as u64 % 512),
            ]
        }),
    )
    .unwrap()
}

fn encoded(mode: CodingMode) -> (Vec<u8>, Vec<avq_schema::Tuple>) {
    let rel = compress(
        &small_relation(),
        CodecOptions {
            mode,
            rep: RepChoice::Median,
            block_capacity: 128,
            ..Default::default()
        },
    )
    .unwrap();
    let reference = rel.decompress().unwrap().tuples().to_vec();
    let mut buf = Vec::new();
    write_coded_relation(&mut buf, &rel).unwrap();
    (buf, reference)
}

/// One flipped byte anywhere in the file — under several bit patterns —
/// must be rejected or decode back to exactly the original tuples.
#[test]
fn every_single_byte_flip_is_survivable() {
    for mode in CodingMode::ALL {
        let (buf, reference) = encoded(mode);
        for pattern in [0x01u8, 0x80, 0xFF] {
            for i in 0..buf.len() {
                let mut bad = buf.clone();
                bad[i] ^= pattern;
                match read_coded_relation(&mut &bad[..]) {
                    Err(_) => {}
                    Ok(rel) => {
                        // Accept only mutations that still describe the
                        // same relation (none should, given the CRC, but
                        // the contract is "Err or re-verifies").
                        let tuples = rel
                            .decompress()
                            .map(|r| r.tuples().to_vec())
                            .unwrap_or_default();
                        assert_eq!(
                            tuples, reference,
                            "mode {mode}: flip {pattern:#04x} at byte {i} \
                             yielded a silently different relation"
                        );
                    }
                }
            }
        }
    }
}

/// Every possible truncation of the file must be rejected, not panic.
#[test]
fn every_truncation_is_rejected() {
    for mode in CodingMode::ALL {
        let (buf, _) = encoded(mode);
        for cut in 0..buf.len() {
            assert!(
                read_coded_relation(&mut &buf[..cut]).is_err(),
                "mode {mode}: truncation at {cut} went undetected"
            );
        }
    }
}

/// Flipping a byte *and* recomputing the trailing CRC defeats the checksum,
/// so the structural checks are the last line of defense: the parse must
/// still never panic, and anything it accepts must decode without panicking.
#[test]
fn crc_fixed_flips_never_panic() {
    let (buf, _) = encoded(CodingMode::default());
    let body_len = buf.len() - 4;
    for i in 0..body_len {
        let mut bad = buf[..body_len].to_vec();
        bad[i] ^= 0xFF;
        let crc = avq_file::crc32(&bad);
        bad.extend_from_slice(&crc.to_le_bytes());
        if let Ok(rel) = read_coded_relation(&mut &bad[..]) {
            // Whatever parsed must also decode (or fail) cleanly.
            let _ = rel.decompress();
        }
    }
}
