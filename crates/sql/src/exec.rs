//! Execution of a [`PhysicalPlan`] over the stored AVQ operators.
//!
//! Rows flow between operators as ordinal vectors (the φ digit encoding of
//! §3.1) laid out as the concatenation of the plan's `table_order`
//! schemas; only the final projection/aggregation decodes ordinals back to
//! domain values. Join keys are canonicalized through the internal
//! `KeyVal` so an
//! equijoin between attributes with *different* domains (say
//! `IntRange{-10,89}` and `Uint{100}`) compares semantic values, not raw
//! ordinals.
//!
//! Every operator is timed with [`Stopwatch`] and reports a
//! [`StageReport`] using the same stage vocabulary as
//! `avq_db::ExplainReport`, plus per-plan-node actual row counts keyed by
//! the pre-order node numbering shared with the renderer — that pairing is
//! what lets `EXPLAIN ANALYZE` print estimated vs. actual rows per node.

use crate::binder::{BoundItem, BoundQuery};
use crate::error::SqlError;
use crate::plan::{domain_of, PhysicalPlan, PlanNode};
use avq_db::{AccessPath, CacheMark, Database, RangePredicate, Selection, StageReport};
use avq_obs::{names, AttrValue, GovCtx, Stopwatch, TraceCtx};
use avq_schema::{Domain, Tuple, Value};
use std::collections::BTreeMap;

/// A join key canonicalized to its semantic value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum KeyVal {
    /// Any numeric domain (`Uint`, `IntRange`).
    Int(i128),
    /// An enumerated member.
    Str(String),
}

/// Decodes `ord` in `domain` to its canonical key value.
fn key_of(domain: &Domain, ord: u64) -> KeyVal {
    match domain {
        Domain::Uint { .. } => KeyVal::Int(i128::from(ord)),
        Domain::IntRange { min, .. } => KeyVal::Int(i128::from(*min) + i128::from(ord)),
        Domain::Enumerated { .. } => match domain.decode(ord) {
            Ok(v) => KeyVal::Str(v.as_str().unwrap_or_default().to_owned()),
            Err(_) => KeyVal::Str(String::new()),
        },
    }
}

/// Maps a canonical key value back to an ordinal of `domain`, or `None`
/// when the value lies outside the domain (the join emits nothing).
fn ord_of(domain: &Domain, key: &KeyVal) -> Option<u64> {
    match (domain, key) {
        (Domain::Uint { size }, KeyVal::Int(v)) => {
            (*v >= 0 && *v < i128::from(*size)).then_some(*v as u64)
        }
        (Domain::IntRange { min, max }, KeyVal::Int(v)) => (*v >= i128::from(*min)
            && *v <= i128::from(*max))
        .then(|| (*v - i128::from(*min)) as u64),
        (Domain::Enumerated { .. }, KeyVal::Str(s)) => domain.encode(&Value::from(s.as_str())).ok(),
        _ => None,
    }
}

/// One result cell, decoded to a displayable value.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// An integer (base column or `COUNT`/`SUM`/integer `MIN`/`MAX`).
    Int(i128),
    /// A float (`AVG`).
    Float(f64),
    /// An enumerated member.
    Str(String),
    /// An aggregate over zero rows.
    Null,
}

impl core::fmt::Display for Cell {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Cell::Int(n) => write!(f, "{n}"),
            Cell::Float(x) => write!(f, "{x:.2}"),
            Cell::Str(s) => write!(f, "{s}"),
            Cell::Null => Ok(()),
        }
    }
}

impl Cell {
    fn is_numeric(&self) -> bool {
        matches!(self, Cell::Int(_) | Cell::Float(_) | Cell::Null)
    }
}

/// The final result table of a statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Column headers in output order.
    pub headers: Vec<String>,
    /// Decoded result rows.
    pub rows: Vec<Vec<Cell>>,
}

impl QueryResult {
    /// Renders the result as a fixed-width text table with a `(N rows)`
    /// footer, `psql`-style: string cells left-aligned, numbers
    /// right-aligned.
    pub fn render(&self) -> String {
        use core::fmt::Write as _;
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        let mut numeric = vec![true; cols];
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(cols) {
                widths[c] = widths[c].max(cell.to_string().len());
                numeric[c] = numeric[c] && cell.is_numeric();
            }
        }
        let mut out = String::new();
        for (c, h) in self.headers.iter().enumerate() {
            if c > 0 {
                out.push_str(" | ");
            }
            let _ = write!(out, "{h:<width$}", width = widths[c]);
        }
        out.push('\n');
        for (c, w) in widths.iter().enumerate() {
            if c > 0 {
                out.push('+');
            }
            // One extra dash each side aligns with the ` | ` separators.
            out.push_str(&"-".repeat(w + if c == 0 || c == cols - 1 { 1 } else { 2 }));
        }
        out.push('\n');
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(cols) {
                if c > 0 {
                    out.push_str(" | ");
                }
                let s = cell.to_string();
                if numeric[c] {
                    let _ = write!(out, "{s:>width$}", width = widths[c]);
                } else {
                    let _ = write!(out, "{s:<width$}", width = widths[c]);
                }
            }
            out.push('\n');
        }
        let n = self.rows.len();
        let _ = write!(out, "({n} row{})", if n == 1 { "" } else { "s" });
        out
    }
}

/// Everything execution produces: the result plus per-stage timings and
/// per-node actual row counts for `EXPLAIN ANALYZE`.
#[derive(Debug)]
pub struct ExecOutput {
    /// The decoded result table.
    pub result: QueryResult,
    /// Timed stages in execution order (ExplainReport vocabulary).
    pub stages: Vec<StageReport>,
    /// Actual output rows per plan node, keyed by pre-order node id.
    pub actual_rows: Vec<u64>,
}

/// Intermediate batch between operators.
enum Batch {
    /// Ordinal rows in `table_order` layout.
    Ordinals(Vec<Vec<u64>>),
    /// Final decoded rows (after aggregation).
    Cells(Vec<Vec<Cell>>),
}

impl Batch {
    fn len(&self) -> usize {
        match self {
            Batch::Ordinals(r) => r.len(),
            Batch::Cells(r) => r.len(),
        }
    }
}

struct Exec<'a> {
    db: &'a Database,
    q: &'a BoundQuery,
    order: &'a [usize],
    ctx: &'a TraceCtx,
    gov: &'a GovCtx,
    stages: Vec<StageReport>,
    actual_rows: Vec<u64>,
}

/// Memory charged to the governance budget for a materialized batch of
/// `rows` ordinal rows of `width` columns — mirrors
/// [`avq_db::tuple_mem_bytes`]'s `arity*8 + 32` model so SQL-level
/// intermediates and storage-level decodes price a tuple identically.
fn batch_mem_bytes(rows: usize, width: usize) -> u64 {
    rows as u64 * (width as u64 * 8 + 32)
}

/// Maps an output-row column index back to its `(table, attr)` source.
fn source_of(q: &BoundQuery, order: &[usize], col: usize) -> (usize, usize) {
    let mut off = 0usize;
    for &t in order {
        let arity = q.tables.get(t).map_or(0, |b| b.schema.arity());
        if col < off + arity {
            return (t, col - off);
        }
        off += arity;
    }
    (0, 0)
}

impl<'a> Exec<'a> {
    /// Records the stage report and, when tracing, retroactively attaches
    /// a matching `avq.sql.stage` span covering the stage's elapsed time.
    fn stage(&mut self, stage: &'static str, rows: u64, blocks: u64, hits: u64, sw: Stopwatch) {
        let elapsed = sw.elapsed();
        if self.ctx.is_enabled() {
            let mut attrs: Vec<(&'static str, AttrValue)> = vec![
                (names::ATTR_STAGE, AttrValue::from(stage)),
                (names::ATTR_ROWS, AttrValue::from(rows)),
            ];
            if blocks > 0 {
                attrs.push((names::ATTR_BLOCKS_READ, AttrValue::from(blocks)));
            }
            if hits > 0 {
                attrs.push((names::ATTR_CACHE_HITS, AttrValue::from(hits)));
            }
            self.ctx
                .complete_span(names::SPAN_SQL_STAGE, elapsed, attrs);
        }
        self.report(stage, rows, blocks, hits, elapsed);
    }

    /// Pushes a [`StageReport`] without trace emission — for stages that
    /// already ran under an *open* trace span (the scan decode loop).
    fn report(
        &mut self,
        stage: &'static str,
        rows: u64,
        blocks: u64,
        hits: u64,
        elapsed: core::time::Duration,
    ) {
        self.stages.push(StageReport {
            stage,
            rows,
            blocks,
            cache_hits: hits,
            elapsed,
        });
    }

    /// The [`Selection`] carrying every bound conjunct on `table`.
    fn selection_for(&self, table: usize) -> Selection {
        let mut sel = Selection::all();
        for p in self.q.predicates.iter().filter(|p| p.table == table) {
            sel = sel.and(RangePredicate {
                attr: p.attr,
                lo: p.lo,
                hi: p.hi,
            });
        }
        sel
    }

    /// Scans `table` through `path`, returning matching ordinal rows.
    fn scan(&mut self, table: usize, path: AccessPath) -> Result<Vec<Vec<u64>>, SqlError> {
        let bt = self.q.tables.get(table).ok_or_else(|| SqlError::Bind {
            msg: "plan references an unbound table".to_owned(),
        })?;
        let rel = self.db.relation(&bt.relation)?;
        let sel = self.selection_for(table);

        let sw = Stopwatch::start();
        let candidates = rel.candidate_blocks(&sel, path)?;
        if !matches!(path, AccessPath::FullScan) {
            self.stage("index-probe", candidates.len() as u64, 0, 0, sw);
        }

        let sw = Stopwatch::start();
        let mark = CacheMark::take(rel);
        let mut tuples: Vec<Tuple> = Vec::new();
        {
            // An *open* stage span (unlike the retroactive ones from
            // `stage`) so per-block decode spans nest beneath it.
            let guard = self.ctx.span(names::SPAN_SQL_STAGE);
            for id in &candidates {
                rel.decode_block_into_governed(*id, &mut tuples, self.ctx, self.gov)?;
            }
            if guard.is_recording() {
                guard.attr(names::ATTR_STAGE, "scan");
                guard.attr(names::ATTR_ROWS, tuples.len());
                guard.attr(names::ATTR_BLOCKS_READ, candidates.len());
                guard.attr(names::ATTR_CACHE_HITS, mark.hits_since(rel));
            }
        }
        self.report(
            "scan",
            tuples.len() as u64,
            candidates.len() as u64,
            mark.hits_since(rel),
            sw.elapsed(),
        );

        let sw = Stopwatch::start();
        let rows: Vec<Vec<u64>> = tuples
            .iter()
            .filter(|t| sel.matches(t))
            .map(|t| t.digits().to_vec())
            .collect();
        self.gov
            .charge_mem(batch_mem_bytes(rows.len(), bt.schema.arity()));
        self.gov.poll().map_err(avq_db::DbError::from)?;
        self.stage("filter", rows.len() as u64, 0, 0, sw);
        Ok(rows)
    }

    /// Nested-loop equijoin of `outer_rows` with stored table `inner`.
    /// `index_probe` selects index-nested-loop (decode only blocks holding
    /// probed keys) over block-nested-loop (decode the inner's full
    /// candidate set once).
    #[allow(clippy::too_many_arguments)]
    fn nl_join(
        &mut self,
        outer_rows: Vec<Vec<u64>>,
        inner: usize,
        index_probe: bool,
        outer_key: (usize, usize),
        outer_col: usize,
        inner_attr: usize,
    ) -> Result<Vec<Vec<u64>>, SqlError> {
        let bt = self.q.tables.get(inner).ok_or_else(|| SqlError::Bind {
            msg: "plan references an unbound table".to_owned(),
        })?;
        let rel = self.db.relation(&bt.relation)?;
        let sel = self.selection_for(inner);
        let out_dom = domain_of(self.q, outer_key);
        let in_dom = domain_of(self.q, (inner, inner_attr));

        // Distinct outer key ordinals → matching inner ordinal (if any).
        let mut key_map: BTreeMap<u64, Option<u64>> = BTreeMap::new();
        for row in &outer_rows {
            let Some(&o) = row.get(outer_col) else {
                continue;
            };
            key_map
                .entry(o)
                .or_insert_with(|| ord_of(in_dom, &key_of(out_dom, o)));
        }

        // Inner side: matching tuples grouped by the join attribute.
        let mut by_key: BTreeMap<u64, Vec<Vec<u64>>> = BTreeMap::new();
        if index_probe {
            let sw = Stopwatch::start();
            let mark = CacheMark::take(rel);
            let mut probed_blocks = 0u64;
            let mut matched = 0u64;
            for inner_ord in key_map.values().flatten() {
                let probe_sel = sel
                    .clone()
                    .and(RangePredicate::equals(inner_attr, *inner_ord));
                let candidates = rel.candidate_blocks(
                    &probe_sel,
                    AccessPath::SecondaryIndex { attr: inner_attr },
                )?;
                probed_blocks += candidates.len() as u64;
                let mut tuples: Vec<Tuple> = Vec::new();
                for id in &candidates {
                    rel.decode_block_into_governed(*id, &mut tuples, self.ctx, self.gov)?;
                }
                for t in tuples.iter().filter(|t| probe_sel.matches(t)) {
                    matched += 1;
                    by_key
                        .entry(*inner_ord)
                        .or_default()
                        .push(t.digits().to_vec());
                }
            }
            self.stage(
                "index-probe",
                matched,
                probed_blocks,
                mark.hits_since(rel),
                sw,
            );
        } else {
            let sw = Stopwatch::start();
            let mark = CacheMark::take(rel);
            let candidates = rel.candidate_blocks(&sel, AccessPath::FullScan)?;
            let mut tuples: Vec<Tuple> = Vec::new();
            for id in &candidates {
                rel.decode_block_into_governed(*id, &mut tuples, self.ctx, self.gov)?;
            }
            let mut matched = 0u64;
            for t in tuples.iter().filter(|t| sel.matches(t)) {
                matched += 1;
                if let Some(&o) = t.digits().get(inner_attr) {
                    by_key.entry(o).or_default().push(t.digits().to_vec());
                }
            }
            self.stage(
                "scan-inner",
                matched,
                candidates.len() as u64,
                mark.hits_since(rel),
                sw,
            );
        }

        let sw = Stopwatch::start();
        let mut out = Vec::new();
        for row in &outer_rows {
            let Some(&o) = row.get(outer_col) else {
                continue;
            };
            let Some(Some(inner_ord)) = key_map.get(&o) else {
                continue;
            };
            if let Some(matches) = by_key.get(inner_ord) {
                for m in matches {
                    let mut joined = row.clone();
                    joined.extend_from_slice(m);
                    out.push(joined);
                }
            }
        }
        self.gov
            .charge_mem(batch_mem_bytes(out.len(), out.first().map_or(0, Vec::len)));
        self.gov.poll().map_err(avq_db::DbError::from)?;
        self.stage("join", out.len() as u64, 0, 0, sw);
        Ok(out)
    }

    /// Streaming hash join: build on `left_rows`, probe with a scan of
    /// `table` through `path`.
    #[allow(clippy::too_many_arguments)]
    fn hash_join(
        &mut self,
        left_rows: Vec<Vec<u64>>,
        table: usize,
        path: AccessPath,
        left_key: (usize, usize),
        left_col: usize,
        table_attr: usize,
    ) -> Result<Vec<Vec<u64>>, SqlError> {
        let left_dom = domain_of(self.q, left_key);
        let probe_dom = domain_of(self.q, (table, table_attr));

        let mut build: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, row) in left_rows.iter().enumerate() {
            if let Some(&o) = row.get(left_col) {
                build.entry(o).or_default().push(i);
            }
        }
        // Left ordinal → probe-side ordinal under the canonical key.
        let probe_ord: BTreeMap<u64, Option<u64>> = build
            .keys()
            .map(|&o| (o, ord_of(probe_dom, &key_of(left_dom, o))))
            .collect();
        let by_probe_ord: BTreeMap<u64, &Vec<usize>> = build
            .iter()
            .filter_map(|(o, idxs)| probe_ord.get(o).copied().flatten().map(|p| (p, idxs)))
            .collect();

        let probe_rows = self.scan(table, path)?;
        let sw = Stopwatch::start();
        let mut out = Vec::new();
        for trow in &probe_rows {
            let Some(&o) = trow.get(table_attr) else {
                continue;
            };
            if let Some(idxs) = by_probe_ord.get(&o) {
                for &i in *idxs {
                    let Some(lrow) = left_rows.get(i) else {
                        continue;
                    };
                    let mut joined = lrow.clone();
                    joined.extend_from_slice(trow);
                    out.push(joined);
                }
            }
        }
        self.gov
            .charge_mem(batch_mem_bytes(out.len(), out.first().map_or(0, Vec::len)));
        self.gov.poll().map_err(avq_db::DbError::from)?;
        self.stage("join", out.len() as u64, 0, 0, sw);
        Ok(out)
    }

    /// Folds `rows` into one output row per group.
    fn aggregate(
        &mut self,
        rows: Vec<Vec<u64>>,
        group_col: Option<usize>,
        desc: bool,
    ) -> Vec<Vec<Cell>> {
        let sw = Stopwatch::start();
        let mut groups: BTreeMap<u64, Vec<Acc>> = BTreeMap::new();
        let fresh = |q: &BoundQuery| -> Vec<Acc> { q.items.iter().map(Acc::for_item).collect() };
        if group_col.is_none() {
            groups.insert(0, fresh(self.q));
        }
        for row in &rows {
            let key = match group_col {
                Some(c) => row.get(c).copied().unwrap_or(0),
                None => 0,
            };
            let accs = groups.entry(key).or_insert_with(|| fresh(self.q));
            for (acc, item) in accs.iter_mut().zip(self.q.items.iter()) {
                acc.feed(self.q, self.order, item, row);
            }
        }
        let mut out: Vec<Vec<Cell>> = Vec::new();
        let finish = |accs: &[Acc]| -> Vec<Cell> {
            accs.iter()
                .zip(self.q.items.iter())
                .map(|(a, item)| a.finish(self.q, item))
                .collect()
        };
        if desc {
            for accs in groups.values().rev() {
                out.push(finish(accs));
            }
        } else {
            for accs in groups.values() {
                out.push(finish(accs));
            }
        }
        self.stage("aggregate", out.len() as u64, 0, 0, sw);
        out
    }

    fn exec_node(&mut self, node: &PlanNode, counter: &mut usize) -> Result<Batch, SqlError> {
        let my_id = *counter;
        *counter += 1;
        // Keep the slot — children allocate ids before we know our rows.
        if self.actual_rows.len() <= my_id {
            self.actual_rows.resize(my_id + 1, 0);
        }
        let batch = match node {
            PlanNode::Scan { table, path, .. } => Batch::Ordinals(self.scan(*table, *path)?),
            PlanNode::NlJoin {
                outer,
                inner,
                strategy,
                outer_key,
                outer_col,
                inner_attr,
                ..
            } => {
                let Batch::Ordinals(outer_rows) = self.exec_node(outer, counter)? else {
                    return Err(SqlError::Bind {
                        msg: "join input is not an ordinal stream".to_owned(),
                    });
                };
                let index_probe = matches!(strategy, avq_db::JoinStrategy::IndexNestedLoop);
                Batch::Ordinals(self.nl_join(
                    outer_rows,
                    *inner,
                    index_probe,
                    *outer_key,
                    *outer_col,
                    *inner_attr,
                )?)
            }
            PlanNode::HashJoin {
                left,
                table,
                path,
                left_key,
                left_col,
                table_attr,
                ..
            } => {
                let Batch::Ordinals(left_rows) = self.exec_node(left, counter)? else {
                    return Err(SqlError::Bind {
                        msg: "join input is not an ordinal stream".to_owned(),
                    });
                };
                Batch::Ordinals(self.hash_join(
                    left_rows,
                    *table,
                    *path,
                    *left_key,
                    *left_col,
                    *table_attr,
                )?)
            }
            PlanNode::Aggregate {
                input,
                group_col,
                desc,
                ..
            } => {
                let Batch::Ordinals(rows) = self.exec_node(input, counter)? else {
                    return Err(SqlError::Bind {
                        msg: "aggregate input is not an ordinal stream".to_owned(),
                    });
                };
                Batch::Cells(self.aggregate(rows, *group_col, *desc))
            }
            PlanNode::Sort {
                input, col, desc, ..
            } => {
                let Batch::Ordinals(mut rows) = self.exec_node(input, counter)? else {
                    return Err(SqlError::Bind {
                        msg: "sort input is not an ordinal stream".to_owned(),
                    });
                };
                let sw = Stopwatch::start();
                // Ordinal order is domain order for every domain kind, so
                // sorting ordinals sorts semantic values.
                rows.sort_by_key(|r| r.get(*col).copied().unwrap_or(0));
                if *desc {
                    rows.reverse();
                }
                self.stage("sort", rows.len() as u64, 0, 0, sw);
                Batch::Ordinals(rows)
            }
            PlanNode::Limit { input, n, .. } => {
                let mut batch = self.exec_node(input, counter)?;
                let sw = Stopwatch::start();
                match &mut batch {
                    Batch::Ordinals(rows) => rows.truncate(*n),
                    Batch::Cells(rows) => rows.truncate(*n),
                }
                self.stage("limit", batch.len() as u64, 0, 0, sw);
                batch
            }
            PlanNode::Project { input, cols, .. } => {
                let Batch::Ordinals(rows) = self.exec_node(input, counter)? else {
                    return Err(SqlError::Bind {
                        msg: "projection input is not an ordinal stream".to_owned(),
                    });
                };
                let sw = Stopwatch::start();
                let sources: Vec<(usize, usize)> = cols
                    .iter()
                    .map(|&c| source_of(self.q, self.order, c))
                    .collect();
                let out: Vec<Vec<Cell>> = rows
                    .iter()
                    .map(|row| {
                        cols.iter()
                            .zip(sources.iter())
                            .map(|(&c, &src)| {
                                let ord = row.get(c).copied().unwrap_or(0);
                                decode_cell(domain_of(self.q, src), ord)
                            })
                            .collect()
                    })
                    .collect();
                self.stage("project", out.len() as u64, 0, 0, sw);
                Batch::Cells(out)
            }
        };
        if let Some(slot) = self.actual_rows.get_mut(my_id) {
            *slot = batch.len() as u64;
        }
        Ok(batch)
    }
}

/// Decodes one ordinal to a display cell through its domain.
fn decode_cell(domain: &Domain, ord: u64) -> Cell {
    match key_of(domain, ord) {
        KeyVal::Int(n) => Cell::Int(n),
        KeyVal::Str(s) => Cell::Str(s),
    }
}

/// One aggregate accumulator.
enum Acc {
    Count(u64),
    Sum(i128),
    Avg {
        sum: i128,
        n: u64,
    },
    Min(Option<u64>),
    Max(Option<u64>),
    /// A plain group-key column: remember the first ordinal seen.
    Key(Option<u64>),
}

impl Acc {
    fn for_item(item: &BoundItem) -> Acc {
        use crate::ast::AggFunc;
        match item {
            BoundItem::Column { .. } => Acc::Key(None),
            BoundItem::Aggregate { func, .. } => match func {
                AggFunc::Count => Acc::Count(0),
                AggFunc::Sum => Acc::Sum(0),
                AggFunc::Avg => Acc::Avg { sum: 0, n: 0 },
                AggFunc::Min => Acc::Min(None),
                AggFunc::Max => Acc::Max(None),
            },
        }
    }

    /// The semantic integer value of `col`'s ordinal in `row`.
    fn semantic(q: &BoundQuery, order: &[usize], col: (usize, usize), row: &[u64]) -> i128 {
        let c = crate::plan::col_in_order(q, order, col);
        let ord = row.get(c).copied().unwrap_or(0);
        match key_of(domain_of(q, col), ord) {
            KeyVal::Int(n) => n,
            KeyVal::Str(_) => 0,
        }
    }

    fn feed(&mut self, q: &BoundQuery, order: &[usize], item: &BoundItem, row: &[u64]) {
        let arg = match item {
            BoundItem::Column { col } => Some(*col),
            BoundItem::Aggregate { arg, .. } => *arg,
        };
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Sum(s) => {
                if let Some(col) = arg {
                    *s += Acc::semantic(q, order, col, row);
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(col) = arg {
                    *sum += Acc::semantic(q, order, col, row);
                    *n += 1;
                }
            }
            Acc::Min(cur) => {
                if let Some(col) = arg {
                    let c = crate::plan::col_in_order(q, order, col);
                    let ord = row.get(c).copied().unwrap_or(0);
                    *cur = Some(cur.map_or(ord, |m| m.min(ord)));
                }
            }
            Acc::Max(cur) => {
                if let Some(col) = arg {
                    let c = crate::plan::col_in_order(q, order, col);
                    let ord = row.get(c).copied().unwrap_or(0);
                    *cur = Some(cur.map_or(ord, |m| m.max(ord)));
                }
            }
            Acc::Key(cur) => {
                if let (Some(col), None) = (arg, &cur) {
                    let c = crate::plan::col_in_order(q, order, col);
                    *cur = row.get(c).copied();
                }
            }
        }
    }

    fn finish(&self, q: &BoundQuery, item: &BoundItem) -> Cell {
        let arg = match item {
            BoundItem::Column { col } => Some(*col),
            BoundItem::Aggregate { arg, .. } => *arg,
        };
        match self {
            Acc::Count(n) => Cell::Int(i128::from(*n)),
            Acc::Sum(s) => Cell::Int(*s),
            Acc::Avg { n: 0, .. } => Cell::Null,
            Acc::Avg { sum, n } => Cell::Float(*sum as f64 / *n as f64),
            Acc::Min(ord) | Acc::Max(ord) | Acc::Key(ord) => match (ord, arg) {
                (Some(o), Some(col)) => decode_cell(domain_of(q, col), *o),
                _ => Cell::Null,
            },
        }
    }
}

/// Executes `plan` for `q` against `db`.
pub fn execute(db: &Database, q: &BoundQuery, plan: &PhysicalPlan) -> Result<ExecOutput, SqlError> {
    execute_traced(db, q, plan, &TraceCtx::disabled())
}

/// [`execute`] with trace attribution: per-stage `avq.sql.stage` spans and
/// storage-level block-read spans are recorded into `ctx` when it is
/// enabled; a disabled `ctx` takes the exact untraced path.
pub fn execute_traced(
    db: &Database,
    q: &BoundQuery,
    plan: &PhysicalPlan,
    ctx: &TraceCtx,
) -> Result<ExecOutput, SqlError> {
    execute_governed(db, q, plan, ctx, &GovCtx::unlimited())
}

/// [`execute_traced`] under a resource-governance budget.
///
/// Every block decoded on behalf of the query is a poll point (deadline,
/// cancellation, decoded-bytes/rows quotas), each materialized batch —
/// scan output, join output — charges the memory budget, and a trip
/// unwinds as [`SqlError::Exec`] wrapping
/// [`avq_db::DbError::Governance`]. An unlimited `gov` adds one branch
/// per poll point over the traced path.
pub fn execute_governed(
    db: &Database,
    q: &BoundQuery,
    plan: &PhysicalPlan,
    ctx: &TraceCtx,
    gov: &GovCtx,
) -> Result<ExecOutput, SqlError> {
    let mut exec = Exec {
        db,
        q,
        order: &plan.table_order,
        ctx,
        gov,
        stages: Vec::new(),
        actual_rows: Vec::new(),
    };
    let mut counter = 0usize;
    let batch = exec.exec_node(&plan.root, &mut counter)?;
    let rows = match batch {
        Batch::Cells(rows) => rows,
        // An ordinal root only happens for plans without a projection tail,
        // which the planner never emits; decode defensively anyway.
        Batch::Ordinals(rows) => rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(c, &o)| decode_cell(domain_of(q, source_of(q, &plan.table_order, c)), o))
                    .collect()
            })
            .collect(),
    };
    Ok(ExecOutput {
        result: QueryResult {
            headers: q.headers.clone(),
            rows,
        },
        stages: exec.stages,
        actual_rows: exec.actual_rows,
    })
}
