//! CRC-32 (IEEE 802.3 polynomial), implemented from scratch so the file
//! format has end-to-end corruption detection without external
//! dependencies.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// A 256-entry lookup table computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                crc >> 1 ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // lint: allow(AVQ-L001, i < 256 by the loop bound; const eval rejects any OOB)
        table[i] = crc;
        i += 1;
    }
    table
};

/// An incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            // lint: allow(AVQ-L001, index is masked to 8 bits and TABLE has 256 entries)
            self.state = self.state >> 8 ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finishes and returns the checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(crc32(&[0xFFu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"hello, augmented vector quantization";
        let mut h = Crc32::new();
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = vec![7u8; 100];
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[i] ^= 1 << bit;
                assert_ne!(crc32(&bad), base, "flip at {i}.{bit} undetected");
            }
        }
    }
}
