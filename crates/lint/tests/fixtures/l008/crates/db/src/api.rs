//! AVQ-L008 fixture: a forked family body, a signature drift, an
//! orphan wrapper, and a governed path calling a plain variant.

/// Ctx stand-ins mirroring the real workspace types.
pub struct TraceCtx;
/// Governance context stand-in.
pub struct GovCtx;

// Forked body: `save_traced` reimplements `save` instead of delegating.
fn save(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn save_traced(buf: &mut Vec<u8>, v: u8, ctx: &TraceCtx) {
    let _ = ctx;
    buf.push(v.wrapping_add(1));
}

// Signature drift: the shared parameter changes type across the family.
fn load(a: u32) -> u32 {
    a + 1
}

fn load_traced(a: u64, ctx: &TraceCtx) -> u32 {
    let _ = ctx;
    load(a as u32)
}

// Orphan: a suffixed wrapper with no plain `emit` in this file.
fn emit_governed(ctx: &GovCtx) {
    let _ = ctx;
}

// Governed discipline: `run_governed` is a governed root, so its call
// to plain `step` must use `step_governed` instead.
fn run(total: usize) -> usize {
    run_governed(total, &GovCtx)
}

fn run_governed(total: usize, ctx: &GovCtx) -> usize {
    let _ = ctx;
    step(total)
}

fn step(n: usize) -> usize {
    n * 2
}

fn step_governed(n: usize, ctx: &GovCtx) -> usize {
    let _ = ctx;
    step(n)
}
