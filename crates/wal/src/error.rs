//! Error type for the write-ahead log.

use core::fmt;

/// Errors raised while writing or scanning a write-ahead log.
///
/// Note that a *torn tail* — an incomplete or checksum-invalid suffix left
/// by a crash mid-append — is **not** an error: the reader truncates it and
/// reports it in [`crate::WalScan`]. `Corrupt` is reserved for damage that
/// cannot be explained by a torn append, such as a record that decodes to
/// an unknown tag after its checksum verified.
#[derive(Debug)]
pub enum WalError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A record body whose checksum verified but whose contents do not
    /// decode (writer bug or forged log).
    Corrupt {
        /// Byte offset of the record frame in the log.
        offset: u64,
        /// Human-readable cause.
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::Corrupt { offset, detail } => {
                write!(f, "corrupt WAL record at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}
