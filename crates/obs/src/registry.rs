//! The metric registry: namespaced get-or-register handles, point-in-time
//! snapshots, deltas, and the two export formats (Prometheus text, JSON).
//!
//! Metric names are dot-namespaced (`avq.codec.decode.blocks`); the
//! Prometheus renderer maps them to the legal charset
//! (`avq_codec_decode_blocks`). Handles are `Arc`s — call sites cache them
//! (see the [`crate::counter!`]/[`crate::histogram!`] macros) so the hot
//! path never touches the registry lock.

use crate::metric::{bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

/// A namespace-keyed collection of metrics.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// The process-wide registry every `avq.*` instrument reports to.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    /// Creates an empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().expect("registry poisoned").get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .expect("registry poisoned")
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Returns the gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().expect("registry poisoned").get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .expect("registry poisoned")
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Returns the histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().expect("registry poisoned").get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .expect("registry poisoned")
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every registered metric (benchmark iterations; registration
    /// is kept so cached handles stay valid).
    pub fn reset(&self) {
        for c in self.counters.read().expect("registry poisoned").values() {
            c.reset();
        }
        for g in self.gauges.read().expect("registry poisoned").values() {
            g.reset();
        }
        for h in self.histograms.read().expect("registry poisoned").values() {
            h.reset();
        }
    }
}

/// An owned, renderable copy of the registry at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Maps a dot-namespaced metric name onto the Prometheus charset.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Snapshot {
    /// The metrics accrued since `earlier` (saturating per-entry
    /// difference; gauges keep their current value — a gauge delta is
    /// meaningless). Names present only in `self` pass through unchanged.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| {
                    (
                        k.clone(),
                        v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| match earlier.histograms.get(k) {
                    Some(e) => (k.clone(), v.since(e)),
                    None => (k.clone(), v.clone()),
                })
                .collect(),
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Histograms emit cumulative `_bucket{le="…"}` series (only buckets
    /// with observations, plus `+Inf`), `_sum`, and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum += c;
                out.push_str(&format!("{n}_bucket{{le=\"{}\"}} {cum}\n", bucket_upper(i)));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n", h.sum));
            out.push_str(&format!("{n}_count {}\n", h.count));
        }
        out
    }

    /// Renders the snapshot as a JSON object with `counters`, `gauges`, and
    /// `histograms` sections; histograms report count/sum/mean/max and the
    /// p50/p95/p99 estimates rather than raw buckets.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{name}\": {value}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, value) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{name}\": {value}"));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{name}\": {}", histogram_json(h)));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// One histogram's JSON summary (shared with the bench reports).
pub fn histogram_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
        h.count,
        h.sum,
        h.mean(),
        h.p50(),
        h.p95(),
        h.p99(),
        h.max
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_instance() {
        let r = Registry::new();
        let a = r.counter("avq.test.a");
        let b = r.counter("avq.test.a");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_and_delta() {
        let r = Registry::new();
        r.counter("avq.x").add(5);
        r.gauge("avq.g").set(-2);
        r.histogram("avq.h").record(100);
        let s1 = r.snapshot();
        r.counter("avq.x").add(3);
        r.histogram("avq.h").record(200);
        let d = r.snapshot().since(&s1);
        assert_eq!(d.counters["avq.x"], 3);
        assert_eq!(d.gauges["avq.g"], -2);
        assert_eq!(d.histograms["avq.h"].count, 1);
        assert_eq!(d.histograms["avq.h"].sum, 200);
    }

    #[test]
    fn prometheus_rendering() {
        let r = Registry::new();
        r.counter("avq.codec.decode.blocks").add(7);
        r.gauge("avq.pool.frames").set(64);
        let h = r.histogram("avq.wal.fsync_ns");
        h.record(1000);
        h.record(3000);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE avq_codec_decode_blocks counter"));
        assert!(text.contains("avq_codec_decode_blocks 7"));
        assert!(text.contains("# TYPE avq_pool_frames gauge"));
        assert!(text.contains("avq_pool_frames 64"));
        assert!(text.contains("# TYPE avq_wal_fsync_ns histogram"));
        assert!(text.contains("avq_wal_fsync_ns_count 2"));
        assert!(text.contains("avq_wal_fsync_ns_sum 4000"));
        assert!(text.contains("avq_wal_fsync_ns_bucket{le=\"+Inf\"} 2"));
        // Buckets are cumulative.
        assert!(text.contains("avq_wal_fsync_ns_bucket{le=\"1023\"} 1"));
        assert!(text.contains("avq_wal_fsync_ns_bucket{le=\"4095\"} 2"));
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let r = Registry::new();
        r.counter("avq.a").inc();
        r.histogram("avq.h").record(10);
        let json = r.snapshot().render_json();
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"avq.a\": 1"));
        assert!(json.contains("\"p99\""));
        assert!(json.trim_end().ends_with('}'));
        // Braces balance.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let r = Registry::new();
        let c = r.counter("avq.r");
        c.add(9);
        r.reset();
        assert_eq!(c.get(), 0, "cached handle still valid");
        assert!(r.snapshot().counters.contains_key("avq.r"));
    }

    #[test]
    fn global_is_a_singleton() {
        let a = global().counter("avq.obs.test.global");
        global().counter("avq.obs.test.global").add(2);
        assert!(a.get() >= 2);
    }
}
