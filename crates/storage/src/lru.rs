//! An O(1) intrusive LRU list over slab indices, used by the buffer pool.

/// Doubly-linked LRU order over `usize` slots. All operations are O(1).
///
/// The list tracks *recency order only*; the caller owns the slot payloads.
#[derive(Debug)]
pub(crate) struct LruList {
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    len: usize,
}

const NIL: usize = usize::MAX;

impl LruList {
    /// A list with capacity for `cap` slots, all initially detached.
    pub fn new(cap: usize) -> Self {
        LruList {
            prev: vec![NIL; cap],
            next: vec![NIL; cap],
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of attached slots.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Attaches a slot at the most-recently-used end.
    ///
    /// # Panics
    /// Panics (in debug builds) if the slot is already attached.
    pub fn push_front(&mut self, slot: usize) {
        debug_assert!(self.prev[slot] == NIL && self.next[slot] == NIL && self.head != slot);
        self.next[slot] = self.head;
        self.prev[slot] = NIL;
        if self.head != NIL {
            self.prev[self.head] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
        self.len += 1;
    }

    /// Detaches a slot from wherever it is.
    pub fn unlink(&mut self, slot: usize) {
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p != NIL {
            self.next[p] = n;
        } else if self.head == slot {
            self.head = n;
        } else {
            return; // not attached
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
        self.len -= 1;
    }

    /// Moves an attached slot to the most-recently-used end.
    pub fn touch(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    /// The least-recently-used slot, if any.
    pub fn lru(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(l: &LruList) -> Vec<usize> {
        let mut v = Vec::new();
        let mut cur = l.head;
        while cur != NIL {
            v.push(cur);
            cur = l.next[cur];
        }
        v
    }

    #[test]
    fn push_and_order() {
        let mut l = LruList::new(4);
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        assert_eq!(order(&l), vec![2, 1, 0]);
        assert_eq!(l.lru(), Some(0));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut l = LruList::new(4);
        for i in 0..4 {
            l.push_front(i);
        }
        l.touch(1);
        assert_eq!(order(&l), vec![1, 3, 2, 0]);
        l.touch(1); // touching the head is a no-op
        assert_eq!(order(&l), vec![1, 3, 2, 0]);
        assert_eq!(l.lru(), Some(0));
    }

    #[test]
    fn unlink_middle_head_tail() {
        let mut l = LruList::new(4);
        for i in 0..4 {
            l.push_front(i);
        }
        l.unlink(2); // middle
        assert_eq!(order(&l), vec![3, 1, 0]);
        l.unlink(3); // head
        assert_eq!(order(&l), vec![1, 0]);
        l.unlink(0); // tail
        assert_eq!(order(&l), vec![1]);
        assert_eq!(l.lru(), Some(1));
        l.unlink(1);
        assert_eq!(l.len(), 0);
        assert_eq!(l.lru(), None);
    }

    #[test]
    fn unlink_detached_is_noop() {
        let mut l = LruList::new(3);
        l.push_front(0);
        l.unlink(2);
        assert_eq!(order(&l), vec![0]);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn reattach_after_unlink() {
        let mut l = LruList::new(3);
        l.push_front(0);
        l.push_front(1);
        l.unlink(0);
        l.push_front(0);
        assert_eq!(order(&l), vec![0, 1]);
    }
}
