//! Parallel bulk compression and decompression.
//!
//! Block coding is embarrassingly parallel once the partition is fixed:
//! every block depends only on its own run of tuples. [`compress_parallel`]
//! sorts the input on a scoped thread pool (chunk-sort + k-way merge),
//! computes the partition sequentially (it is a cheap scan), and encodes the
//! runs on worker threads, producing output byte-identical to
//! [`crate::compress`]. Decoding parallelises the same way — blocks are
//! self-contained streams — but block decode times are skewed (a p99 block
//! costs ~30× the median), so [`decompress_parallel`] feeds workers from a
//! shared atomic work-stealing queue rather than fixed stripes: each worker
//! claims the next undecoded block, reusing one [`DecodeScratch`], and the
//! per-block runs are reassembled in φ order afterwards. The old striped
//! schedule survives as [`decode_blocks_chunked`] for benchmarking.

use crate::block::{BlockCodec, DecodeScratch};
use crate::compress::{compress_sorted, CodecOptions, CodedRelation};
use crate::error::CodecError;
use crate::packer::BlockPacker;
use avq_schema::{Relation, Schema, Tuple};
use std::sync::Arc;

/// Compresses a relation using up to `threads` worker threads. The result is
/// byte-identical to [`crate::compress`] with the same options.
///
/// Already-sorted input is detected and compressed in place without the
/// copy; unsorted input is copied, chunk-sorted across the workers, and
/// k-way merged.
pub fn compress_parallel(
    relation: &Relation,
    options: CodecOptions,
    threads: usize,
) -> Result<CodedRelation, CodecError> {
    let threads = threads.max(1);
    let src = relation.tuples();
    if src.is_sorted() {
        return compress_sorted_parallel(relation.schema().clone(), src, options, threads);
    }
    let mut tuples = src.to_vec();
    if threads == 1 || tuples.len() < 4096 {
        tuples.sort_unstable();
    } else {
        tuples = sort_parallel(tuples, threads);
    }
    compress_sorted_parallel(relation.schema().clone(), &tuples, options, threads)
}

/// Sorts tuples into φ order with up to `threads` workers: each worker
/// sorts one contiguous chunk, then the sorted runs are k-way merged
/// through a min-heap. Equal tuples are fully identical digit vectors, so
/// the merge order among ties cannot affect the result.
fn sort_parallel(mut tuples: Vec<Tuple>, threads: usize) -> Vec<Tuple> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = tuples.len();
    let chunk = n.div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for c in tuples.chunks_mut(chunk) {
            scope.spawn(|| c.sort_unstable());
        }
    });
    let runs = n.div_ceil(chunk);
    if runs <= 1 {
        return tuples;
    }

    /// Moves run `r`'s head tuple (if any) onto the heap and advances the
    /// run's cursor.
    fn push_head(
        tuples: &mut [Tuple],
        cursors: &mut [(usize, usize)],
        r: usize,
        heap: &mut BinaryHeap<Reverse<(Tuple, usize)>>,
    ) {
        let Some(&mut (ref mut head, end)) = cursors.get_mut(r) else {
            return;
        };
        if *head >= end {
            return;
        }
        let Some(slot) = tuples.get_mut(*head) else {
            return;
        };
        *head += 1;
        heap.push(Reverse((
            std::mem::replace(slot, Tuple::new(Vec::new())),
            r,
        )));
    }

    // Per-run cursors: (next index, one past the run's end).
    let mut cursors: Vec<(usize, usize)> = (0..runs)
        .map(|r| (r * chunk, ((r + 1) * chunk).min(n)))
        .collect();
    // lint: bounded(one heap slot per sorted run; runs ≤ thread count)
    let mut heap: BinaryHeap<Reverse<(Tuple, usize)>> = BinaryHeap::with_capacity(runs);
    for r in 0..runs {
        push_head(&mut tuples, &mut cursors, r, &mut heap);
    }
    // lint: bounded(n is the input tuple count)
    let mut out = Vec::with_capacity(n);
    while let Some(Reverse((t, r))) = heap.pop() {
        out.push(t);
        push_head(&mut tuples, &mut cursors, r, &mut heap);
    }
    out
}

/// Parallel variant of [`crate::compress_sorted`].
pub fn compress_sorted_parallel(
    schema: Arc<Schema>,
    tuples: &[Tuple],
    options: CodecOptions,
    threads: usize,
) -> Result<CodedRelation, CodecError> {
    let threads = threads.max(1);
    if threads == 1 || tuples.len() < 4096 {
        return compress_sorted(schema, tuples, options);
    }
    let codec = BlockCodec::with_options(schema.clone(), options.mode, options.rep);
    let packer = BlockPacker::new(codec.clone(), options.block_capacity);
    let ranges = packer.partition(tuples)?;

    // lint: bounded(one slot per partitioned block range)
    let mut blocks: Vec<Result<Vec<u8>, CodecError>> = Vec::with_capacity(ranges.len());
    blocks.resize_with(ranges.len(), || Ok(Vec::new()));

    // Static chunking: contiguous stripes of blocks per worker keep each
    // worker's reads local.
    let per_worker = ranges.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (ranges_chunk, out_chunk) in
            ranges.chunks(per_worker).zip(blocks.chunks_mut(per_worker))
        {
            let codec = codec.clone();
            scope.spawn(move || {
                for (r, out) in ranges_chunk.iter().zip(out_chunk.iter_mut()) {
                    // Partition ranges tile `tuples`, so each is in bounds.
                    *out = codec.encode(tuples.get(r.clone()).unwrap_or(&[]));
                }
            });
        }
    });

    let blocks: Vec<Vec<u8>> = blocks.into_iter().collect::<Result<_, _>>()?;
    CodedRelation::from_blocks(schema, options, blocks)
}

/// Decodes a φ-ordered sequence of coded block streams into their tuples
/// using up to `threads` worker threads, one [`DecodeScratch`] per worker,
/// scheduled through a shared work-stealing block queue.
///
/// Workers claim blocks one at a time from an atomic global index
/// (`fetch_add`), so a straggler block — a 4 ms p99 outlier — occupies one
/// worker while the rest keep draining the queue; fixed chunk assignment
/// (see [`decode_blocks_chunked`]) would instead serialize the whole pass
/// behind the unluckiest stripe. Each worker accumulates `(block index,
/// tuple run)` pairs; after the scope joins, the runs are reassembled in
/// block order, so the output is identical to decoding every block
/// sequentially with [`BlockCodec::decode_into`].
///
/// On failure, decoding aborts early and the error of the φ-smallest
/// failing block among those the workers reached is returned.
pub fn decode_blocks_parallel(
    codec: &BlockCodec,
    blocks: &[Vec<u8>],
    threads: usize,
) -> Result<Vec<Tuple>, CodecError> {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    let threads = threads.max(1);
    if threads == 1 || blocks.len() < 2 {
        let mut out = Vec::new();
        let mut scratch = DecodeScratch::new();
        for b in blocks {
            codec.decode_into_scratch(b, &mut out, &mut scratch)?;
        }
        return Ok(out);
    }

    type WorkerRuns = Vec<(usize, Vec<Tuple>)>;
    let workers = threads.min(blocks.len());
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    // lint: bounded(one slot per worker; workers ≤ thread count)
    let mut parts: Vec<(WorkerRuns, Option<(usize, CodecError)>)> = Vec::with_capacity(workers);
    parts.resize_with(workers, || (Vec::new(), None));

    std::thread::scope(|scope| {
        for slot in parts.iter_mut() {
            let codec = codec.clone();
            let next = &next;
            let failed = &failed;
            scope.spawn(move || {
                let mut scratch = DecodeScratch::new();
                let mut runs: WorkerRuns = Vec::new();
                let mut err = None;
                while !failed.load(Ordering::Relaxed) {
                    // Claiming is the only synchronization: fetch_add hands
                    // every block to exactly one worker, and idle workers
                    // keep claiming until the queue is dry.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(b) = blocks.get(i) else {
                        break;
                    };
                    let mut out = Vec::new();
                    match codec.decode_into_scratch(b, &mut out, &mut scratch) {
                        Ok(()) => runs.push((i, out)),
                        Err(e) => {
                            err = Some((i, e));
                            failed.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                *slot = (runs, err);
            });
        }
    });

    // Smallest failing block index wins, for a deterministic error.
    let mut first_err: Option<(usize, CodecError)> = None;
    for (_, e) in parts.iter_mut() {
        if let Some((i, err)) = e.take() {
            if first_err.as_ref().is_none_or(|(fi, _)| i < *fi) {
                first_err = Some((i, err));
            }
        }
    }
    if let Some((_, err)) = first_err {
        return Err(err);
    }

    // Reassemble the out-of-order runs into φ order.
    let mut runs: WorkerRuns = parts.into_iter().flat_map(|(r, _)| r).collect();
    runs.sort_unstable_by_key(|&(i, _)| i);
    // lint: bounded(sum of the decoded runs' lengths)
    let mut out = Vec::with_capacity(runs.iter().map(|(_, r)| r.len()).sum());
    for (_, run) in runs {
        out.extend(run);
    }
    Ok(out)
}

/// The fixed-chunk predecessor of [`decode_blocks_parallel`]: blocks are
/// striped contiguously across the workers (mirroring
/// [`compress_sorted_parallel`]) and the per-stripe runs concatenated.
///
/// Kept as the baseline the `kernel_benches` scheduling comparison measures
/// against; the output contract is the same as the work-stealing path's,
/// and the first error encountered (in stripe order) is returned.
pub fn decode_blocks_chunked(
    codec: &BlockCodec,
    blocks: &[Vec<u8>],
    threads: usize,
) -> Result<Vec<Tuple>, CodecError> {
    let threads = threads.max(1);
    if threads == 1 || blocks.len() < 2 {
        return decode_blocks_parallel(codec, blocks, 1);
    }

    let per_worker = blocks.len().div_ceil(threads);
    let stripes = blocks.len().div_ceil(per_worker);
    // lint: bounded(one slot per decode stripe; stripes ≤ thread count)
    let mut parts: Vec<Result<Vec<Tuple>, CodecError>> = Vec::with_capacity(stripes);
    parts.resize_with(stripes, || Ok(Vec::new()));

    std::thread::scope(|scope| {
        for (chunk, slot) in blocks.chunks(per_worker).zip(parts.iter_mut()) {
            let codec = codec.clone();
            scope.spawn(move || {
                let mut scratch = DecodeScratch::new();
                let mut out = Vec::new();
                for b in chunk {
                    if let Err(e) = codec.decode_into_scratch(b, &mut out, &mut scratch) {
                        *slot = Err(e);
                        return;
                    }
                }
                *slot = Ok(out);
            });
        }
    });

    let mut out = Vec::new();
    for p in parts {
        let run = p?;
        if out.is_empty() {
            out = run;
        } else {
            out.extend(run);
        }
    }
    Ok(out)
}

/// Parallel mirror of [`CodedRelation::decompress`]: decodes every block of
/// a coded relation across up to `threads` workers and returns the tuples
/// as a relation in φ order. The result equals the sequential decompression
/// exactly.
pub fn decompress_parallel(coded: &CodedRelation, threads: usize) -> Result<Relation, CodecError> {
    let codec = coded.codec();
    let tuples = decode_blocks_parallel(&codec, coded.blocks(), threads)?;
    Relation::from_tuples(coded.schema().clone(), tuples).map_err(|e| CodecError::Corrupt {
        section: "entries",
        offset: 0,
        detail: format!("decoded tuples violate the schema: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compress;
    use crate::mode::CodingMode;
    use avq_schema::Domain;

    fn relation(n: u64) -> Relation {
        let schema = Schema::from_pairs(vec![
            ("a", Domain::uint(64).unwrap()),
            ("b", Domain::uint(256).unwrap()),
            ("c", Domain::uint(4096).unwrap()),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = (0..n)
            .map(|i| Tuple::from([(i * 13) % 64, (i * 7) % 256, (i * 31) % 4096]))
            .collect();
        Relation::from_tuples(schema, tuples).unwrap()
    }

    #[test]
    fn parallel_matches_sequential_bytes() {
        let rel = relation(20_000);
        for mode in CodingMode::ALL {
            let opts = CodecOptions {
                mode,
                block_capacity: 512,
                ..Default::default()
            };
            let seq = compress(&rel, opts).unwrap();
            for threads in [1, 2, 4, 7] {
                let par = compress_parallel(&rel, opts, threads).unwrap();
                assert_eq!(par.block_count(), seq.block_count());
                for i in 0..seq.block_count() {
                    assert_eq!(
                        par.block(i),
                        seq.block(i),
                        "mode {mode}, {threads} threads, block {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn sorted_input_skips_copy_and_matches() {
        let rel = relation(20_000);
        let mut tuples = rel.tuples().to_vec();
        tuples.sort_unstable();
        let sorted_rel = Relation::from_tuples(rel.schema().clone(), tuples).unwrap();
        assert!(sorted_rel.tuples().is_sorted());
        let opts = CodecOptions {
            block_capacity: 512,
            ..Default::default()
        };
        let seq = compress(&rel, opts).unwrap();
        let par = compress_parallel(&sorted_rel, opts, 4).unwrap();
        assert_eq!(par.blocks(), seq.blocks());
    }

    #[test]
    fn parallel_sort_matches_sequential_sort() {
        let rel = relation(10_000);
        let mut expect = rel.tuples().to_vec();
        expect.sort_unstable();
        for threads in [2, 3, 8, 13] {
            let got = sort_parallel(rel.tuples().to_vec(), threads);
            assert_eq!(got, expect, "{threads} threads");
        }
        // More workers than tuples.
        let small: Vec<Tuple> = rel.tuples()[..5].to_vec();
        let mut small_expect = small.clone();
        small_expect.sort_unstable();
        assert_eq!(sort_parallel(small, 16), small_expect);
    }

    #[test]
    fn small_input_falls_back_to_sequential() {
        let rel = relation(100);
        let opts = CodecOptions {
            block_capacity: 512,
            ..Default::default()
        };
        let par = compress_parallel(&rel, opts, 8).unwrap();
        let seq = compress(&rel, opts).unwrap();
        assert_eq!(par.blocks(), seq.blocks());
    }

    #[test]
    fn zero_threads_clamped() {
        let rel = relation(500);
        let par = compress_parallel(&rel, CodecOptions::default(), 0).unwrap();
        assert_eq!(par.tuple_count(), 500);
        assert_eq!(
            decompress_parallel(&par, 0).unwrap().len(),
            500,
            "decode side clamps too"
        );
    }

    #[test]
    fn parallel_roundtrip() {
        let rel = relation(30_000);
        let par = compress_parallel(
            &rel,
            CodecOptions {
                block_capacity: 1024,
                ..Default::default()
            },
            4,
        )
        .unwrap();
        let back = par.decompress().unwrap();
        let mut expect = rel.tuples().to_vec();
        expect.sort_unstable();
        assert_eq!(back.tuples(), &expect[..]);
    }

    #[test]
    fn parallel_decompress_matches_sequential() {
        let rel = relation(20_000);
        for mode in CodingMode::ALL {
            let opts = CodecOptions {
                mode,
                block_capacity: 512,
                ..Default::default()
            };
            let coded = compress(&rel, opts).unwrap();
            let seq = coded.decompress().unwrap();
            for threads in [1, 2, 4, 7] {
                let par = decompress_parallel(&coded, threads).unwrap();
                assert_eq!(par.tuples(), seq.tuples(), "mode {mode}, {threads} threads");
            }
        }
    }

    #[test]
    fn parallel_decode_propagates_errors() {
        let rel = relation(20_000);
        let coded = compress(
            &rel,
            CodecOptions {
                block_capacity: 512,
                ..Default::default()
            },
        )
        .unwrap();
        let mut blocks = coded.blocks().to_vec();
        let victim = blocks.len() / 2;
        blocks[victim].truncate(3); // shorter than the header
        let codec = coded.codec();
        for threads in [1, 4] {
            assert!(
                decode_blocks_parallel(&codec, &blocks, threads).is_err(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn empty_block_list_decodes_to_nothing() {
        let rel = relation(10);
        let coded = compress(&rel, CodecOptions::default()).unwrap();
        let codec = coded.codec();
        assert_eq!(decode_blocks_parallel(&codec, &[], 4).unwrap(), Vec::new());
    }
}
