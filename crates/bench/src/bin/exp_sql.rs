//! Experiment E13 — SQL front-end performance: per-stage latency of the
//! lex → parse → bind → plan pipeline (from the `avq.sql.*` spans), and
//! the planner win — wall-clock for a selective point query when the
//! cost-based planner can pick a secondary-index probe versus the same
//! query forced through a full scan (no index available).
//!
//! Results are printed as tables and recorded as JSON in
//! `results/BENCH_sql.json` (override the path with the second argument).
//!
//! With `AVQ_PERF_SMOKE=1` the run additionally acts as a CI guard: it
//! exits nonzero if the index-probe plan is not faster than the full scan
//! (with 5% slack for timer noise).
//!
//! Usage: `cargo run --release -p avq-bench --bin exp_sql [n] [json_path]`

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avq_bench::measure::avg_ms;
use avq_bench::report::Table;
use avq_db::{Database, DbConfig};
use avq_schema::{Domain, Relation, Schema, Tuple};
use avq_sql::SqlOutcome;

/// `events(day < 365, user < 1000)` over small blocks so the access-path
/// choice moves real numbers of blocks.
fn events_db(n: usize, indexed: bool) -> Database {
    let mut config = DbConfig::default();
    config.codec.block_capacity = 256;
    let mut db = Database::new(config);
    let schema = Schema::from_pairs(vec![
        ("day", Domain::uint(365).unwrap()),
        ("user", Domain::uint(1000).unwrap()),
    ])
    .unwrap();
    let tuples: Vec<Tuple> = (0..n as u64)
        .map(|i| Tuple::from([i % 365, (i * 13) % 1000]))
        .collect();
    db.create_relation("events", &Relation::from_tuples(schema, tuples).unwrap())
        .unwrap();
    if indexed {
        db.relation_mut("events")
            .unwrap()
            .create_secondary_index(1)
            .unwrap();
    }
    // Benchmark cold plans, as after startup: the index build (and load)
    // must not leave the decoded cache warm.
    db.drop_caches();
    db
}

/// The `plan: <summary>` line of `EXPLAIN` for `stmt`.
fn plan_summary(db: &Database, stmt: &str) -> String {
    match avq_sql::run(db, &format!("explain {stmt}")).unwrap() {
        SqlOutcome::Plan(p) => p
            .lines()
            .find(|l| l.starts_with("plan: "))
            .unwrap_or("plan: ?")
            .to_owned(),
        SqlOutcome::Table(_) => unreachable!("EXPLAIN returns a plan"),
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let json_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "results/BENCH_sql.json".to_owned());
    let reps = if n >= 50_000 { 30 } else { 100 };
    let obs_before = avq_obs::global().snapshot();

    let indexed = events_db(n, true);
    let unindexed = events_db(n, false);
    let blocks = indexed.relation("events").unwrap().block_count();
    println!("relation: {n} tuples -> {blocks} blocks, {reps} reps\n");

    // A workload mixing every dialect feature, run repeatedly so the
    // `avq.sql.parse/plan/exec` spans accumulate a distribution.
    let workload = [
        "select * from events where user = 5",
        "select day, count(*) from events where day < 30 group by day order by day",
        "select count(*), min(user), max(user), avg(user) from events",
        "select * from events where day < 10 and user >= 900 order by user desc limit 20",
        "select a.day, count(*) from events a join events b on a.day = b.day \
         where a.user = 5 and b.user = 5 group by a.day",
    ];
    let mut t = Table::new(["statement", "avg ms"]);
    let mut statement_ms = Vec::new();
    for stmt in workload {
        let ms = avg_ms(1, reps, || {
            std::hint::black_box(avq_sql::run(&indexed, stmt).unwrap());
        });
        statement_ms.push(ms);
        t.row([stmt.to_owned(), format!("{ms:.3}")]);
    }
    t.print();
    println!();

    // The planner win: a selective point predicate on the indexed column.
    // The cost model prices the probe below the scan exactly when the
    // matching-block estimate clears the block count; the wall-clock gap
    // is the decoded blocks it avoids. Caches are dropped before every
    // repetition so each run pays the cold decode its plan implies.
    let stmt = "select * from events where user = 5";
    let probe_plan = plan_summary(&indexed, stmt);
    let scan_plan = plan_summary(&unindexed, stmt);
    assert!(
        probe_plan.contains("secondary-index"),
        "expected an index probe, planned {probe_plan}"
    );
    assert!(
        scan_plan.contains("full-scan"),
        "expected a full scan, planned {scan_plan}"
    );
    let probe_ms = avg_ms(1, reps, || {
        indexed.drop_caches();
        std::hint::black_box(avq_sql::run(&indexed, stmt).unwrap());
    });
    let scan_ms = avg_ms(1, reps, || {
        unindexed.drop_caches();
        std::hint::black_box(avq_sql::run(&unindexed, stmt).unwrap());
    });
    let speedup = scan_ms / probe_ms;
    let mut t = Table::new(["access path", "plan", "cold ms", "speedup"]);
    t.row([
        "index probe".to_owned(),
        probe_plan.trim_start_matches("plan: ").to_owned(),
        format!("{probe_ms:.3}"),
        format!("{speedup:.2}"),
    ]);
    t.row([
        "full scan".to_owned(),
        scan_plan.trim_start_matches("plan: ").to_owned(),
        format!("{scan_ms:.3}"),
        "1.00".to_owned(),
    ]);
    t.print();

    let obs_delta = avq_obs::global().snapshot().since(&obs_before);
    let statements = obs_delta
        .counters
        .get(avq_obs::names::SQL_STATEMENTS)
        .copied()
        .unwrap_or(0);
    let plans_considered = obs_delta
        .counters
        .get(avq_obs::names::SQL_PLANS_CONSIDERED)
        .copied()
        .unwrap_or(0);
    let families = [
        format!("{}.ns", avq_obs::names::SPAN_SQL_PARSE),
        format!("{}.ns", avq_obs::names::SPAN_SQL_PLAN),
        format!("{}.ns", avq_obs::names::SPAN_SQL_EXEC),
    ];
    let family_refs: Vec<&str> = families.iter().map(String::as_str).collect();
    let latency = avq_bench::report::latency_json(&obs_delta, &family_refs);
    let workload_json = workload
        .iter()
        .zip(&statement_ms)
        .map(|(stmt, ms)| format!("{{\"statement\": {stmt:?}, \"ms\": {ms:.3}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"experiment\": \"sql\",\n  \"tuples\": {n},\n  \"blocks\": {blocks},\n  \
         \"statements_run\": {statements},\n  \"plans_considered\": {plans_considered},\n  \
         \"workload\": [{workload_json}],\n  \
         \"probe_cold_ms\": {probe_ms:.3},\n  \"scan_cold_ms\": {scan_ms:.3},\n  \
         \"planner_speedup\": {speedup:.3},\n  \
         \"latency_ns\": {latency}\n}}\n"
    );
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap();
        }
    }
    std::fs::write(&json_path, json).unwrap();
    println!("\nwrote {json_path}");

    if std::env::var("AVQ_PERF_SMOKE").is_ok_and(|v| v == "1") {
        let slack = 1.05;
        if probe_ms * slack > scan_ms {
            eprintln!(
                "perf smoke FAILED: probe {probe_ms:.3} ms not faster than scan {scan_ms:.3} ms"
            );
            std::process::exit(1);
        }
        println!("perf smoke ok: probe {probe_ms:.3} ms vs scan {scan_ms:.3} ms ({speedup:.2}×)");
    }
}
