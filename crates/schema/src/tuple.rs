//! Encoded tuples: vectors of domain ordinals.

use core::fmt;
use core::ops::Index;

/// A tuple after §3.1 attribute encoding: one ordinal (digit) per attribute.
///
/// `Tuple` derives its ordering from the digit vector; because digit vectors
/// are mixed-radix representations with attribute `A₁` most significant,
/// this lexicographic order *is* the φ order of §2.2 (`tᵢ ≺ tⱼ ⇔
/// φ(tᵢ) < φ(tⱼ)`) — no bignum is consulted for sorting.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    digits: Vec<u64>,
}

impl Tuple {
    /// Wraps a digit vector. Digits are *not* validated here; use
    /// [`crate::Schema::validate_tuple`] for untrusted input.
    #[inline]
    pub fn new(digits: Vec<u64>) -> Self {
        Tuple { digits }
    }

    /// The digit (ordinal) vector.
    #[inline]
    pub fn digits(&self) -> &[u64] {
        &self.digits
    }

    /// Mutable access to the digits (used by in-place decode paths).
    #[inline]
    pub fn digits_mut(&mut self) -> &mut [u64] {
        &mut self.digits
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.digits.len()
    }

    /// Consumes the tuple, returning its digit vector.
    #[inline]
    pub fn into_digits(self) -> Vec<u64> {
        self.digits
    }
}

impl From<Vec<u64>> for Tuple {
    #[inline]
    fn from(digits: Vec<u64>) -> Self {
        Tuple::new(digits)
    }
}

impl<const N: usize> From<[u64; N]> for Tuple {
    #[inline]
    fn from(digits: [u64; N]) -> Self {
        Tuple::new(digits.to_vec())
    }
}

impl Index<usize> for Tuple {
    type Output = u64;
    #[inline]
    fn index(&self, i: usize) -> &u64 {
        &self.digits[i]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, d) in self.digits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "⟩")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let a = Tuple::from([3u64, 8, 32, 34, 12]);
        let b = Tuple::from([3u64, 8, 36, 39, 35]);
        let c = Tuple::from([3u64, 9, 0, 0, 0]);
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
        assert_eq!(a, a.clone());
    }

    #[test]
    fn accessors() {
        let t = Tuple::from([1u64, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t[1], 2);
        assert_eq!(t.digits(), &[1, 2, 3]);
        assert_eq!(t.into_digits(), vec![1, 2, 3]);
    }

    #[test]
    fn debug_format() {
        let t = Tuple::from([3u64, 8, 36]);
        assert_eq!(format!("{t:?}"), "⟨3,8,36⟩");
        assert_eq!(t.to_string(), "⟨3,8,36⟩");
    }
}
