//! Criterion benchmarks for the end-to-end compression pipeline (§3: sort →
//! partition → code) and for the §4.2 block updates, at several relation
//! sizes. These back the E6 (Fig. 5.9 rows 1–2) numbers with
//! statistically-sound measurements.

use avq_codec::{
    compress, compress_parallel, delete_from_block, insert_into_block, BlockCodec, CodecOptions,
    CodingMode, InsertOutcome, RepChoice,
};
use avq_db::{DbConfig, StoredRelation};
use avq_schema::Relation;
use avq_storage::{BlockDevice, BufferPool, DiskProfile};
use avq_workload::SyntheticSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn relation(n: usize) -> Relation {
    SyntheticSpec::section_5_2(n).generate()
}

fn bench_compress_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("compress_pipeline");
    g.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        let rel = relation(n);
        g.throughput(Throughput::Elements(n as u64));
        for mode in CodingMode::ALL {
            g.bench_with_input(BenchmarkId::new(mode.to_string(), n), &rel, |b, rel| {
                let opts = CodecOptions {
                    mode,
                    ..Default::default()
                };
                b.iter(|| black_box(compress(black_box(rel), opts).unwrap()))
            });
        }
    }
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut g = c.benchmark_group("decompress");
    g.sample_size(20);
    let n = 10_000usize;
    let rel = relation(n);
    g.throughput(Throughput::Elements(n as u64));
    for mode in CodingMode::ALL {
        let coded = compress(
            &rel,
            CodecOptions {
                mode,
                ..Default::default()
            },
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new(mode.to_string(), n), &coded, |b, coded| {
            b.iter(|| black_box(coded.decompress().unwrap()))
        });
    }
    g.finish();
}

fn bench_block_updates(c: &mut Criterion) {
    // Fig. 4.6 at micro scale: insert/delete one tuple into an 8 KiB block.
    let spec = SyntheticSpec::section_5_2(4_096);
    let schema = spec.schema();
    let mut tuples = spec.generate().into_tuples();
    tuples.sort_unstable();
    tuples.dedup();
    let codec = BlockCodec::with_options(schema, CodingMode::AvqChained, RepChoice::Median);
    // Build one near-full block.
    let mut len = tuples.len().min(64);
    while codec.measure(&tuples[..len]) < 7000 && len < tuples.len() {
        len += 1;
    }
    let run = &tuples[..len];
    let block = codec.encode(run).unwrap();
    let victim = run[len / 3].clone();

    let mut g = c.benchmark_group("block_update");
    g.bench_function("insert_one_tuple", |b| {
        b.iter(|| {
            let out = insert_into_block(&codec, black_box(&block), &victim, 16384).unwrap();
            let InsertOutcome::InPlace(bytes) = out else {
                panic!("capacity is ample")
            };
            black_box(bytes)
        })
    });
    g.bench_function("delete_one_tuple", |b| {
        b.iter(|| black_box(delete_from_block(&codec, black_box(&block), &victim).unwrap()))
    });
    g.finish();
}

fn bench_parallel_compress(c: &mut Criterion) {
    let rel = relation(50_000);
    let opts = CodecOptions::default();
    let mut g = c.benchmark_group("parallel_compress");
    g.sample_size(10);
    g.throughput(Throughput::Elements(50_000));
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(compress_parallel(black_box(&rel), opts, threads).unwrap()))
            },
        );
    }
    g.finish();
}

fn bench_external_sort(c: &mut Criterion) {
    let rel = relation(20_000);
    let schema = rel.schema().clone();
    let tuples = rel.into_tuples();
    let mut g = c.benchmark_group("external_sort");
    g.sample_size(10);
    g.throughput(Throughput::Elements(20_000));
    for budget in [512usize, 4096] {
        g.bench_with_input(
            BenchmarkId::from_parameter(budget),
            &budget,
            |b, &budget| {
                b.iter_batched(
                    || tuples.clone(),
                    |input| {
                        let device = BlockDevice::new(8192, DiskProfile::instant());
                        let pool = BufferPool::new(device.clone(), 256);
                        let stored = StoredRelation::bulk_load_streaming(
                            device,
                            pool,
                            schema.clone(),
                            input,
                            DbConfig {
                                disk: DiskProfile::instant(),
                                ..Default::default()
                            },
                            budget,
                        )
                        .unwrap();
                        black_box(stored.block_count())
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_compress_pipeline,
    bench_decompress,
    bench_block_updates,
    bench_parallel_compress,
    bench_external_sort
);
criterion_main!(benches);
