//! AVQ-L005 fixture: real-clock reads outside avq-obs/bench.

use std::time::{Instant, SystemTime};

fn timed() -> u128 {
    let start = Instant::now();
    let _wall = SystemTime::now();
    start.elapsed().as_nanos()
}
