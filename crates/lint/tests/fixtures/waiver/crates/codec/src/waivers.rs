//! Waiver-hygiene fixture: one waiver in effect, one unused, one with
//! an empty reason, and one that is not valid directive syntax.

fn decode(bytes: &[u8]) -> u8 {
    // lint: allow(AVQ-L001, the slice is length-checked by the caller)
    let used = bytes[0];
    // lint: allow(AVQ-L001, nothing on the next line violates anything)
    let unused = 1u8;
    // lint: allow(AVQ-L001,)
    let empty_reason = bytes[1];
    // lint: gesundheit(AVQ-L001, not a real directive)
    let malformed = bytes[2];
    used + unused + empty_reason + malformed
}
