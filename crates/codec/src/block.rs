//! Block coding and decoding (§3.4 of the paper).
//!
//! A *block* is a φ-sorted run of tuples coded as a single byte stream that
//! fits one disk block. The stream layout is the paper's (§3.4) plus a
//! four-byte header that records what the paper leaves implicit (the tuple
//! count and the representative's position, which stops being exactly the
//! middle after in-place insertions, Fig. 4.6):
//!
//! ```text
//! ┌────────────┬───────────────┬───────────────┬────────────────────────┐
//! │ count: u16 │ rep_idx: u16  │ rep: m bytes  │ entries (RLE, §3.4) …  │
//! └────────────┴───────────────┴───────────────┴────────────────────────┘
//! ```
//!
//! Entries appear in φ order with the representative elided; entry `k`
//! describes tuple `k` when `k < rep_idx` and tuple `k + 1` otherwise. For
//! [`CodingMode::FieldWise`] the representative and entries are replaced by
//! `count` fixed-width tuples.

use crate::bitio::{gamma_len, BitReader, BitWriter, WordReader};
use crate::error::CodecError;
use crate::kernel::DecodeKernel;
use crate::mode::{CodingMode, RepChoice};
use crate::rle;
use avq_num::BigUnsigned;
use avq_obs::names;
use avq_schema::{Schema, Tuple};
use std::sync::Arc;

/// Size in bytes of the block header (`count: u16 LE`, `rep_idx: u16 LE`).
pub const BLOCK_HEADER_BYTES: usize = 4;

/// Reusable scratch buffers for the streaming decode path.
///
/// A `DecodeScratch` owns the parsed-entry arena and the working digit
/// buffers, so decoding a block through
/// [`BlockCodec::decode_into_scratch`] performs no per-entry heap
/// allocation beyond the one digit vector each returned [`Tuple`] must own.
/// Reuse one scratch across blocks (as [`crate::CodedRelation::decompress`]
/// and the parallel decode workers do) to amortize even the arena growth:
/// after the first few blocks the buffers reach a steady-state capacity and
/// decoding stops touching the allocator entirely except for the tuples
/// themselves.
#[derive(Debug, Default, Clone)]
pub struct DecodeScratch {
    /// Flat arena of difference digit vectors; entry `k` occupies
    /// `[k·n, (k+1)·n)` where `n` is the schema arity. The chained decode
    /// overwrites consumed entries in place with reconstructed tuples.
    diffs: Vec<u64>,
    /// Running digit vector mutated in place while unwinding a chain.
    running: Vec<u64>,
    /// Per-entry work buffer for the un-chained mode.
    tmp: Vec<u64>,
    /// Machine-word φ-distances staged for batched unranking (SWAR bit
    /// mode): a run of consecutive small entries is collected here, then
    /// unranked in one [`avq_num::MixedRadix::unrank_u64_batch_into`] call.
    values: Vec<u64>,
    /// Work bignum for oversized (≥ 2⁶⁴) bit-mode entries; divided down to
    /// zero by each unrank, so only its limb capacity persists.
    big: BigUnsigned,
    /// Big-endian staging bytes backing `big` between read and parse.
    big_bytes: Vec<u8>,
}

impl DecodeScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Codes and decodes blocks of φ-sorted tuples for one schema.
///
/// The codec is cheap to clone (it shares the schema) and holds no
/// per-block state; scratch buffers are created per call so a codec can be
/// used from multiple threads.
#[derive(Debug, Clone)]
pub struct BlockCodec {
    schema: Arc<Schema>,
    mode: CodingMode,
    rep: RepChoice,
    kernel: DecodeKernel,
}

impl BlockCodec {
    /// Creates a codec with the paper's defaults (chained AVQ, median
    /// representative) and the default decode kernel.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self::with_options(schema, CodingMode::default(), RepChoice::default())
    }

    /// Creates a codec with explicit mode and representative policy (and
    /// the default decode kernel; see [`Self::with_kernel`]).
    pub fn with_options(schema: Arc<Schema>, mode: CodingMode, rep: RepChoice) -> Self {
        BlockCodec {
            schema,
            mode,
            rep,
            kernel: DecodeKernel::default(),
        }
    }

    /// Selects the decode kernel (builder style). Encoding is unaffected.
    #[must_use]
    pub fn with_kernel(mut self, kernel: DecodeKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The schema this codec codes for.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The coding mode.
    #[inline]
    pub fn mode(&self) -> CodingMode {
        self.mode
    }

    /// The representative policy.
    #[inline]
    pub fn rep_choice(&self) -> RepChoice {
        self.rep
    }

    /// The decode kernel this codec routes through.
    #[inline]
    pub fn kernel(&self) -> DecodeKernel {
        self.kernel
    }

    fn check_input(&self, tuples: &[Tuple]) -> Result<(), CodecError> {
        if tuples.is_empty() {
            return Err(CodecError::EmptyBlock);
        }
        if tuples.len() > u16::MAX as usize {
            return Err(CodecError::TooManyTuples { got: tuples.len() });
        }
        for (i, t) in tuples.iter().enumerate() {
            self.schema
                .validate_tuple(t)
                .map_err(|e| CodecError::InvalidTuple {
                    position: i,
                    detail: e.to_string(),
                })?;
        }
        if let Some(pos) = tuples.windows(2).position(|w| matches!(w, [a, b] if a > b)) {
            return Err(CodecError::UnsortedInput { position: pos + 1 });
        }
        Ok(())
    }

    /// Encodes a φ-sorted run of tuples into a fresh byte stream.
    pub fn encode(&self, tuples: &[Tuple]) -> Result<Vec<u8>, CodecError> {
        self.check_input(tuples)?;
        // lint: bounded(measure() is the exact coded size of this run)
        let mut out = Vec::with_capacity(self.measure(tuples));
        self.encode_unchecked(tuples, &mut out);
        Ok(out)
    }

    /// Encodes a φ-sorted run of tuples, appending to `out`.
    pub fn encode_into(&self, tuples: &[Tuple], out: &mut Vec<u8>) -> Result<(), CodecError> {
        self.check_input(tuples)?;
        self.encode_unchecked(tuples, out);
        Ok(())
    }

    fn encode_unchecked(&self, tuples: &[Tuple], out: &mut Vec<u8>) {
        let _span = avq_obs::span!(names::SPAN_CODEC_ENCODE_BLOCK);
        let start_len = out.len();
        let u = tuples.len();
        let rep_idx = match self.mode {
            CodingMode::FieldWise => 0,
            _ => self.rep.index(u),
        };
        out.extend_from_slice(&(u as u16).to_le_bytes());
        out.extend_from_slice(&(rep_idx as u16).to_le_bytes());

        match self.mode {
            CodingMode::FieldWise => {
                for t in tuples {
                    self.schema.write_tuple(t, out);
                }
            }
            CodingMode::Avq => {
                // lint: allow(AVQ-L001, rep.index(u) < u and check_input rejected empty runs)
                let rep = &tuples[rep_idx];
                self.schema.write_tuple(rep, out);
                let radix = self.schema.radix();
                // lint: bounded(one serialized tuple, schema tuple_bytes)
                let mut scratch = Vec::with_capacity(self.schema.tuple_bytes());
                for (i, t) in tuples.iter().enumerate() {
                    if i == rep_idx {
                        continue;
                    }
                    let diff = radix.abs_diff(t.digits(), rep.digits());
                    rle::write_entry(&self.schema, &diff, out, &mut scratch);
                }
            }
            CodingMode::AvqChained => {
                // lint: allow(AVQ-L001, rep.index(u) < u and check_input rejected empty runs)
                let rep = &tuples[rep_idx];
                self.schema.write_tuple(rep, out);
                let radix = self.schema.radix();
                // lint: bounded(one serialized tuple, schema tuple_bytes)
                let mut scratch = Vec::with_capacity(self.schema.tuple_bytes());
                // The chained entries are exactly the adjacent gaps in φ
                // order: before the representative entry k is the gap to the
                // successor, after it the gap to the predecessor
                // (Example 3.3) — both enumerate every window once.
                for w in tuples.windows(2) {
                    if let [prev, next] = w {
                        let diff = radix.abs_diff(next.digits(), prev.digits());
                        rle::write_entry(&self.schema, &diff, out, &mut scratch);
                    }
                }
            }
            CodingMode::AvqChainedBits => {
                // lint: allow(AVQ-L001, rep.index(u) < u and check_input rejected empty runs)
                let rep = &tuples[rep_idx];
                self.schema.write_tuple(rep, out);
                let radix = self.schema.radix();
                let mut bw = BitWriter::new();
                for w in tuples.windows(2) {
                    if let [prev, next] = w {
                        let diff = radix.abs_diff(next.digits(), prev.digits());
                        let value = radix.rank(&diff);
                        let bl = value.bit_len();
                        bw.push_gamma(bl as u64 + 1);
                        bw.push_bits_big(&value, bl);
                    }
                }
                out.extend_from_slice(&bw.into_bytes());
            }
        }
        avq_obs::counter!(names::CODEC_ENCODE_BLOCKS).inc();
        avq_obs::counter!(names::CODEC_ENCODE_TUPLES).add(u as u64);
        avq_obs::counter!(names::CODEC_ENCODE_BYTES_OUT).add((out.len() - start_len) as u64);
        match self.mode {
            CodingMode::FieldWise => avq_obs::counter!(names::CODEC_ENCODE_MODE_FIELDWISE).inc(),
            CodingMode::Avq => avq_obs::counter!(names::CODEC_ENCODE_MODE_AVQ).inc(),
            CodingMode::AvqChained => avq_obs::counter!(names::CODEC_ENCODE_MODE_AVQ_CHAINED).inc(),
            CodingMode::AvqChainedBits => {
                avq_obs::counter!(names::CODEC_ENCODE_MODE_AVQ_CHAINED_BITS).inc()
            }
        }
    }

    /// Exact coded size in bytes of a φ-sorted run, without encoding.
    ///
    /// The input is assumed sorted and schema-valid (checked in debug
    /// builds); this is the hot path of the block packer.
    pub fn measure(&self, tuples: &[Tuple]) -> usize {
        debug_assert!(self.check_input(tuples).is_ok() || tuples.is_empty());
        let u = tuples.len();
        if u == 0 {
            return BLOCK_HEADER_BYTES;
        }
        let m = self.schema.tuple_bytes();
        match self.mode {
            CodingMode::FieldWise => BLOCK_HEADER_BYTES + u * m,
            CodingMode::Avq => {
                let rep_idx = self.rep.index(u);
                // lint: allow(AVQ-L001, rep.index(u) < u and u > 0 was checked above)
                let rep = &tuples[rep_idx];
                let radix = self.schema.radix();
                let mut size = BLOCK_HEADER_BYTES + m;
                for (i, t) in tuples.iter().enumerate() {
                    if i == rep_idx {
                        continue;
                    }
                    let diff = radix.abs_diff(t.digits(), rep.digits());
                    size += rle::entry_cost(&self.schema, &diff);
                }
                size
            }
            CodingMode::AvqChained => {
                // Chained coded size is rep + the adjacent gaps, so it does
                // not depend on which tuple is the representative.
                let radix = self.schema.radix();
                let mut size = BLOCK_HEADER_BYTES + m;
                for w in tuples.windows(2) {
                    if let [prev, next] = w {
                        let diff = radix.abs_diff(next.digits(), prev.digits());
                        size += rle::entry_cost(&self.schema, &diff);
                    }
                }
                size
            }
            CodingMode::AvqChainedBits => {
                let mut bits = 0usize;
                for w in tuples.windows(2) {
                    if let [prev, next] = w {
                        bits += self.append_bits(prev, next);
                    }
                }
                BLOCK_HEADER_BYTES + m + bits.div_ceil(8)
            }
        }
    }

    /// Incremental bit cost of appending `next` after `last` in
    /// [`CodingMode::AvqChainedBits`] (used by the packer).
    pub(crate) fn append_bits(&self, last: &Tuple, next: &Tuple) -> usize {
        let radix = self.schema.radix();
        let diff = radix.abs_diff(next.digits(), last.digits());
        let bl = radix.rank(&diff).bit_len();
        gamma_len(bl as u64 + 1) + bl
    }

    /// Incremental packing cost of appending `next` to a run currently
    /// ending at `last` (chained and field-wise modes only; see
    /// [`crate::BlockPacker`]).
    pub(crate) fn append_cost(&self, last: &Tuple, next: &Tuple) -> usize {
        match self.mode {
            CodingMode::FieldWise => self.schema.tuple_bytes(),
            _ => {
                let diff = self.schema.radix().abs_diff(next.digits(), last.digits());
                rle::entry_cost(&self.schema, &diff)
            }
        }
    }

    /// Decodes a block stream into its tuples, in φ order.
    pub fn decode(&self, bytes: &[u8]) -> Result<Vec<Tuple>, CodecError> {
        let mut out = Vec::new();
        self.decode_into(bytes, &mut out)?;
        Ok(out)
    }

    /// Decodes a block stream, appending tuples to `out` in φ order.
    ///
    /// On error `out` is left exactly as it was. Allocates fresh scratch
    /// buffers; decode loops should use [`Self::decode_into_scratch`] to
    /// reuse them across blocks.
    pub fn decode_into(&self, bytes: &[u8], out: &mut Vec<Tuple>) -> Result<(), CodecError> {
        // lint: allow(AVQ-L008, one-shot convenience decode with fresh scratch; governed loops call decode_into_scratch_governed directly)
        self.decode_into_scratch(bytes, out, &mut DecodeScratch::new())
    }

    /// Decodes a block stream, appending tuples to `out` in φ order and
    /// reusing `scratch` for all intermediate state.
    ///
    /// This is the streaming decode path: per block it performs exactly one
    /// digit-vector allocation per decoded tuple (the buffer each [`Tuple`]
    /// owns) — differences are parsed into the scratch arena and the chain
    /// is unwound by mutating one running digit buffer in place. On error
    /// `out` is truncated back to its entry length.
    pub fn decode_into_scratch(
        &self,
        bytes: &[u8],
        out: &mut Vec<Tuple>,
        scratch: &mut DecodeScratch,
    ) -> Result<(), CodecError> {
        let base = out.len();
        let _span = avq_obs::span!(names::SPAN_CODEC_DECODE_BLOCK);
        let result = self.decode_inner(bytes, out, scratch);
        if result.is_err() {
            out.truncate(base);
        } else {
            avq_obs::counter!(names::CODEC_DECODE_BLOCKS).inc();
            avq_obs::counter!(names::CODEC_DECODE_TUPLES).add((out.len() - base) as u64);
            avq_obs::counter!(names::CODEC_DECODE_BYTES_IN).add(bytes.len() as u64);
            match self.kernel {
                DecodeKernel::Scalar => avq_obs::counter!(names::CODEC_DECODE_KERNEL_SCALAR).inc(),
                DecodeKernel::Swar => avq_obs::counter!(names::CODEC_DECODE_KERNEL_SWAR).inc(),
            }
        }
        result
    }

    /// [`Self::decode_into_scratch`] with trace attribution: when `ctx` is
    /// recording, the decode runs under an `avq.codec.decode_block` trace
    /// span carrying the kernel name plus tuple and byte counts. With a
    /// disabled context this is one branch on top of the untraced path.
    pub fn decode_into_scratch_traced(
        &self,
        bytes: &[u8],
        out: &mut Vec<Tuple>,
        scratch: &mut DecodeScratch,
        ctx: &avq_obs::TraceCtx,
    ) -> Result<(), CodecError> {
        if !ctx.is_enabled() {
            return self.decode_into_scratch(bytes, out, scratch);
        }
        let base = out.len();
        let guard = ctx.span(names::SPAN_CODEC_DECODE_BLOCK);
        let result = self.decode_into_scratch(bytes, out, scratch);
        guard.attr(names::ATTR_KERNEL, self.kernel.to_string());
        guard.attr(names::ATTR_BYTES, bytes.len());
        guard.attr(names::ATTR_TUPLES, out.len().saturating_sub(base));
        result
    }

    /// [`Self::decode_into_scratch_traced`] under a governance budget: the
    /// block boundary is the poll point — a tripped budget or a cancelled
    /// query refuses the decode before any work — and on success the coded
    /// bytes in and tuples out are charged to `gov`, so quotas overshoot by
    /// at most one block. With disabled contexts this costs two branches on
    /// top of the bare scratch path.
    pub fn decode_into_scratch_governed(
        &self,
        bytes: &[u8],
        out: &mut Vec<Tuple>,
        scratch: &mut DecodeScratch,
        ctx: &avq_obs::TraceCtx,
        gov: &avq_obs::GovCtx,
    ) -> Result<(), crate::GovernedDecodeError> {
        gov.poll()?;
        let base = out.len();
        self.decode_into_scratch_traced(bytes, out, scratch, ctx)?;
        gov.charge_decoded(bytes.len() as u64, (out.len() - base) as u64);
        Ok(())
    }

    fn decode_inner(
        &self,
        bytes: &[u8],
        out: &mut Vec<Tuple>,
        scratch: &mut DecodeScratch,
    ) -> Result<(), CodecError> {
        let (u, rep_idx) = read_header(bytes)?;
        if u == 0 {
            return Err(CodecError::Corrupt {
                section: "header",
                offset: 0,
                detail: "block with zero tuples".into(),
            });
        }
        let m = self.schema.tuple_bytes();
        let mut pos = BLOCK_HEADER_BYTES;

        if self.mode == CodingMode::FieldWise {
            let need = u * m;
            let Some(body) = bytes.get(pos..pos + need) else {
                return Err(CodecError::Corrupt {
                    section: "body",
                    offset: pos,
                    detail: format!("field-wise body truncated: need {need} bytes"),
                });
            };
            // lint: sanitized(u is a wire u16, and the body length check above bounds u*m)
            out.reserve(u);
            if m == 0 {
                // Zero-width tuples: the body is empty and every record
                // reads as the all-zero digit vector.
                for _ in 0..u {
                    out.push(self.schema.read_tuple(&[]));
                }
            } else if self.kernel == DecodeKernel::Swar {
                // One whole-word load per attribute cell instead of the
                // per-byte shift loop inside read_tuple.
                let n = self.schema.arity();
                for rec in body.chunks_exact(m) {
                    // lint: bounded(one digit per schema attribute)
                    let mut digits = Vec::with_capacity(n);
                    for i in 0..n {
                        digits.push(rle::load_be(
                            rec,
                            self.schema.byte_offset(i),
                            self.schema.byte_width(i),
                        ));
                    }
                    out.push(Tuple::new(digits));
                }
            } else {
                for rec in body.chunks_exact(m) {
                    out.push(self.schema.read_tuple(rec));
                }
            }
            return Ok(());
        }

        if rep_idx >= u {
            return Err(CodecError::Corrupt {
                section: "header",
                offset: 2,
                detail: format!("rep_idx {rep_idx} out of range for {u} tuples"),
            });
        }
        let Some(rep_bytes) = bytes.get(pos..pos + m) else {
            return Err(CodecError::Corrupt {
                section: "representative",
                offset: pos,
                detail: "representative tuple truncated".into(),
            });
        };
        let rep = self.schema.read_tuple(rep_bytes);
        self.schema
            .validate_tuple(&rep)
            .map_err(|e| CodecError::Corrupt {
                section: "representative",
                offset: pos,
                detail: format!("representative invalid: {e}"),
            })?;
        pos += m;

        let n = self.schema.arity();
        if n == 0 {
            // Zero-arity schema: every difference is empty, so every tuple
            // is the representative. Nothing to parse and nothing can fail.
            // lint: sanitized(u is a wire u16, at most 64Ki clones of the representative)
            out.reserve(u);
            for _ in 0..u {
                out.push(rep.clone());
            }
            return Ok(());
        }
        let radix = self.schema.radix();
        let DecodeScratch {
            diffs,
            running,
            tmp,
            values,
            big,
            big_bytes,
        } = scratch;
        diffs.clear();
        // lint: sanitized(u is a wire u16, so the arena holds at most 64Ki * arity words)
        diffs.reserve((u - 1) * n);
        match (self.mode, self.kernel) {
            (CodingMode::AvqChainedBits, DecodeKernel::Scalar) => {
                let mut br = BitReader::new(bytes.get(pos..).unwrap_or(&[]));
                for k in 0..u - 1 {
                    let bl = br
                        .read_gamma()
                        .ok_or_else(|| CodecError::Corrupt {
                            section: "entries",
                            offset: pos,
                            detail: format!("bit entry {k}: truncated gamma length"),
                        })?
                        // Gamma codes are structurally >= 1.
                        .saturating_sub(1) as usize;
                    diffs.resize((k + 1) * n, 0);
                    // Nearly every difference fits a machine word; unrank
                    // those without building a bignum. The destination is
                    // the entry's arena slot, sized by the resize above.
                    let dst = diffs.get_mut(k * n..).unwrap_or_default();
                    let ok = if bl < 64 {
                        let value =
                            br.read_bits_u64(bl as u32)
                                .ok_or_else(|| CodecError::Corrupt {
                                    section: "entries",
                                    offset: pos,
                                    detail: format!("bit entry {k}: truncated payload"),
                                })?;
                        radix.unrank_u64_into(value, dst)
                    } else {
                        let value = br.read_bits_big(bl).ok_or_else(|| CodecError::Corrupt {
                            section: "entries",
                            offset: pos,
                            detail: format!("bit entry {k}: truncated payload"),
                        })?;
                        radix.unrank_into(value, dst)
                    };
                    if !ok {
                        return Err(CodecError::DifferenceOutOfSpace { entry: k });
                    }
                }
            }
            (CodingMode::AvqChainedBits, DecodeKernel::Swar) => {
                // Word-at-a-time gamma decoding plus batched unranking:
                // machine-word φ-distances are collected per run of
                // consecutive small entries and unranked together, sharing
                // the high-order division work across the run. Validity is
                // pre-checked per value (O(1) against ‖𝓡‖), so errors
                // surface at the same entry index as the scalar kernel.
                let mut wr = WordReader::new(bytes.get(pos..).unwrap_or(&[]));
                // lint: sanitized(u is a wire u16, so the arena holds at most 64Ki * arity words)
                diffs.resize((u - 1) * n, 0);
                values.clear();
                let mut run_start = 0usize;
                for k in 0..u - 1 {
                    let bl = wr
                        .read_gamma()
                        .ok_or_else(|| CodecError::Corrupt {
                            section: "entries",
                            offset: pos,
                            detail: format!("bit entry {k}: truncated gamma length"),
                        })?
                        // Gamma codes are structurally >= 1.
                        .saturating_sub(1) as usize;
                    if bl < 64 {
                        let value =
                            wr.read_bits_u64(bl as u32)
                                .ok_or_else(|| CodecError::Corrupt {
                                    section: "entries",
                                    offset: pos,
                                    detail: format!("bit entry {k}: truncated payload"),
                                })?;
                        if !radix.value_in_space(value) {
                            return Err(CodecError::DifferenceOutOfSpace { entry: k });
                        }
                        values.push(value);
                    } else {
                        // A bignum-sized entry ends the current small run:
                        // flush the batch, then unrank this one directly
                        // into its arena slot.
                        let dst = diffs
                            .get_mut(run_start * n..(run_start + values.len()) * n)
                            .unwrap_or_default();
                        if !radix.unrank_u64_batch_into(values, dst) {
                            return Err(CodecError::DifferenceOutOfSpace { entry: run_start });
                        }
                        values.clear();
                        run_start = k + 1;
                        // lint: sanitized(read_bits_big_into rejects bl beyond remaining_bits before staging)
                        wr.read_bits_big_into(bl, big_bytes, big).ok_or_else(|| {
                            CodecError::Corrupt {
                                section: "entries",
                                offset: pos,
                                detail: format!("bit entry {k}: truncated payload"),
                            }
                        })?;
                        let dst = diffs.get_mut(k * n..(k + 1) * n).unwrap_or_default();
                        if !radix.unrank_assign_into(big, dst) {
                            return Err(CodecError::DifferenceOutOfSpace { entry: k });
                        }
                    }
                }
                let dst = diffs
                    .get_mut(run_start * n..(run_start + values.len()) * n)
                    .unwrap_or_default();
                if !radix.unrank_u64_batch_into(values, dst) {
                    return Err(CodecError::DifferenceOutOfSpace { entry: run_start });
                }
            }
            (_, DecodeKernel::Scalar) => {
                for _ in 0..u - 1 {
                    pos = rle::read_entry_append(&self.schema, bytes, pos, diffs)?;
                }
            }
            (_, DecodeKernel::Swar) => {
                for _ in 0..u - 1 {
                    pos = rle::read_entry_append_swar(&self.schema, bytes, pos, diffs)?;
                }
            }
        }

        // lint: sanitized(u is a wire u16, at most 64Ki reconstructed tuples)
        out.reserve(u);
        running.clear();
        running.extend_from_slice(rep.digits());
        // The SWAR kernel skips the leading zero digits of each difference:
        // a difference compresses precisely because its prefix is zero, and
        // adding/subtracting zero with no carry is the identity. The scan
        // for the first nonzero digit costs n compares; the skipped digit
        // steps cost a compare-and-branch each, so the trade is free at
        // worst and large for the long zero runs AVQ entries carry.
        let prefix_skip = self.kernel == DecodeKernel::Swar;
        let first_nz = |d: &[u64]| d.iter().position(|&x| x != 0).unwrap_or(n);

        match self.mode {
            CodingMode::Avq => {
                // Every entry is an independent offset from the
                // representative (held pristine in `running`); entries are
                // stored in φ order, so reconstruction pushes in φ order too.
                // Entry k describes tuple k before the representative and
                // tuple k + 1 after it, so the representative is emitted
                // just before entry rep_idx's tuple (or last).
                let mut rep_slot = Some(rep);
                for (k, d) in diffs.chunks_exact(n).enumerate() {
                    if k == rep_idx {
                        if let Some(r) = rep_slot.take() {
                            out.push(r);
                        }
                    }
                    tmp.clear();
                    tmp.extend_from_slice(running);
                    let ok = match (k < rep_idx, prefix_skip) {
                        (true, false) => radix.sub_assign(tmp, d),
                        (true, true) => radix.sub_assign_prefix(tmp, d, first_nz(d)),
                        (false, false) => radix.add_assign(tmp, d),
                        (false, true) => radix.add_assign_prefix(tmp, d, first_nz(d)),
                    };
                    if !ok {
                        return Err(CodecError::DifferenceOutOfSpace { entry: k });
                    }
                    out.push(Tuple::new(tmp.clone()));
                }
                if let Some(r) = rep_slot.take() {
                    out.push(r);
                }
            }
            CodingMode::AvqChained | CodingMode::AvqChainedBits => {
                // Unwind outward from the representative: walk backwards over
                // the first half, overwriting each consumed arena entry with
                // the reconstructed tuple so the first half can then be
                // pushed in ascending φ order, and stream forwards over the
                // second half on the running buffer alone.
                for (i, d) in diffs.chunks_exact_mut(n).take(rep_idx).enumerate().rev() {
                    let ok = if prefix_skip {
                        radix.sub_assign_prefix(running, d, first_nz(d))
                    } else {
                        radix.sub_assign(running, d)
                    };
                    if !ok {
                        return Err(CodecError::DifferenceOutOfSpace { entry: i });
                    }
                    d.copy_from_slice(running);
                }
                for d in diffs.chunks_exact(n).take(rep_idx) {
                    out.push(Tuple::new(d.to_vec()));
                }
                running.clear();
                running.extend_from_slice(rep.digits());
                out.push(rep);
                for (k, d) in diffs.chunks_exact(n).enumerate().skip(rep_idx) {
                    let ok = if prefix_skip {
                        radix.add_assign_prefix(running, d, first_nz(d))
                    } else {
                        radix.add_assign(running, d)
                    };
                    if !ok {
                        return Err(CodecError::DifferenceOutOfSpace { entry: k });
                    }
                    out.push(Tuple::new(running.clone()));
                }
            }
            CodingMode::FieldWise => {
                // Handled (and returned from) above; nothing to reconstruct.
            }
        }
        Ok(())
    }

    /// Point lookup inside a coded block without decoding it fully.
    ///
    /// Field-wise blocks are binary-searched over their fixed-width records
    /// (`O(log u)` comparisons, zero reconstruction); AVQ blocks exploit the
    /// φ order of entries to stop as soon as the scan passes the target —
    /// and skip reconstructing the half of the block on the wrong side of
    /// the representative entirely.
    pub fn contains_tuple(&self, bytes: &[u8], tuple: &Tuple) -> Result<bool, CodecError> {
        let (u, rep_idx) = read_header(bytes)?;
        if u == 0 {
            return Err(CodecError::Corrupt {
                section: "header",
                offset: 0,
                detail: "block with zero tuples".into(),
            });
        }
        let m = self.schema.tuple_bytes();
        let body = BLOCK_HEADER_BYTES;

        if self.mode == CodingMode::FieldWise {
            let Some(records) = bytes.get(body..body + u * m) else {
                return Err(CodecError::Corrupt {
                    section: "body",
                    offset: body,
                    detail: "field-wise body truncated".into(),
                });
            };
            // lint: bounded(one serialized tuple, schema tuple_bytes)
            let mut key = Vec::with_capacity(m);
            self.schema.write_tuple(tuple, &mut key);
            // Fixed-width records in φ order: serialized comparison is
            // φ comparison, so binary search applies directly.
            let mut lo = 0usize;
            let mut hi = u;
            while lo < hi {
                let mid = (lo + hi) / 2;
                // `mid < u` keeps the range inside `records`; an empty
                // fallback can only order Less/Greater and end the search.
                let rec = records.get(mid * m..(mid + 1) * m).unwrap_or(&[]);
                match rec.cmp(key.as_slice()) {
                    core::cmp::Ordering::Equal => return Ok(true),
                    core::cmp::Ordering::Less => lo = mid + 1,
                    core::cmp::Ordering::Greater => hi = mid,
                }
            }
            return Ok(false);
        }

        if rep_idx >= u {
            return Err(CodecError::Corrupt {
                section: "header",
                offset: 2,
                detail: "bad representative".into(),
            });
        }
        let Some(rep_bytes) = bytes.get(body..body + m) else {
            return Err(CodecError::Corrupt {
                section: "header",
                offset: 2,
                detail: "bad representative".into(),
            });
        };
        let rep = self.schema.read_tuple(rep_bytes);
        // Untrusted bytes can spell digits outside their radices; arithmetic
        // below assumes validity, so reject here (as full decode does).
        self.schema
            .validate_tuple(&rep)
            .map_err(|e| CodecError::Corrupt {
                section: "representative",
                offset: body,
                detail: format!("representative invalid: {e}"),
            })?;
        match tuple.cmp(&rep) {
            core::cmp::Ordering::Equal => Ok(true),
            core::cmp::Ordering::Less => {
                // Target precedes the representative: only the first
                // rep_idx entries matter.
                // lint: sanitized(u is a wire u16; parse_entries sizes its arena by count, at most 64Ki)
                let diffs = self.parse_entries(bytes, body + m, u - 1)?;
                let radix = self.schema.radix();
                match self.mode {
                    CodingMode::Avq => {
                        // Entries before the representative are t = rep − d,
                        // ascending in φ as k grows.
                        for (k, d) in diffs.iter().take(rep_idx).enumerate() {
                            let t = radix
                                .checked_sub(rep.digits(), d)
                                .ok_or(CodecError::DifferenceOutOfSpace { entry: k })?;
                            match t.as_slice().cmp(tuple.digits()) {
                                core::cmp::Ordering::Equal => return Ok(true),
                                core::cmp::Ordering::Greater => return Ok(false),
                                core::cmp::Ordering::Less => {}
                            }
                        }
                        Ok(false)
                    }
                    _ => {
                        // Chained: walk backward from the representative,
                        // stopping once below the target.
                        let mut cur = rep.into_digits();
                        for (i, d) in diffs.iter().take(rep_idx).enumerate().rev() {
                            cur = radix
                                .checked_sub(&cur, d)
                                .ok_or(CodecError::DifferenceOutOfSpace { entry: i })?;
                            match cur.as_slice().cmp(tuple.digits()) {
                                core::cmp::Ordering::Equal => return Ok(true),
                                core::cmp::Ordering::Less => return Ok(false),
                                core::cmp::Ordering::Greater => {}
                            }
                        }
                        Ok(false)
                    }
                }
            }
            core::cmp::Ordering::Greater => {
                // Target follows the representative: reconstruct forward
                // from it with early exit (the first-half entries are parsed
                // but never reconstructed).
                // lint: sanitized(u is a wire u16; parse_entries sizes its arena by count, at most 64Ki)
                let diffs = self.parse_entries(bytes, body + m, u - 1)?;
                let radix = self.schema.radix();
                let rep_digits = rep.into_digits();
                let mut cur = rep_digits.clone();
                for (k, d) in diffs.iter().enumerate().skip(rep_idx) {
                    cur = match self.mode {
                        CodingMode::Avq => radix.checked_add(&rep_digits, d),
                        _ => radix.checked_add(&cur, d),
                    }
                    .ok_or(CodecError::DifferenceOutOfSpace { entry: k })?;
                    match cur.as_slice().cmp(tuple.digits()) {
                        core::cmp::Ordering::Equal => return Ok(true),
                        core::cmp::Ordering::Greater => return Ok(false),
                        core::cmp::Ordering::Less => {}
                    }
                }
                Ok(false)
            }
        }
    }

    /// Parses all difference entries of a non-field-wise block into digit
    /// vectors (shared by [`Self::decode_into`] and
    /// [`Self::contains_tuple`]).
    fn parse_entries(
        &self,
        bytes: &[u8],
        mut pos: usize,
        count: usize,
    ) -> Result<Vec<Vec<u64>>, CodecError> {
        let radix = self.schema.radix();
        // lint: bounded(count is the header tuple count, at most u16::MAX)
        let mut diffs = Vec::with_capacity(count);
        if self.mode == CodingMode::AvqChainedBits {
            let mut br = crate::bitio::BitReader::new(bytes.get(pos..).unwrap_or(&[]));
            for k in 0..count {
                let bl = br
                    .read_gamma()
                    .ok_or_else(|| CodecError::Corrupt {
                        section: "entries",
                        offset: pos,
                        detail: format!("bit entry {k}: truncated gamma length"),
                    })?
                    // Gamma codes are structurally >= 1.
                    .saturating_sub(1) as usize;
                let value = br.read_bits_big(bl).ok_or_else(|| CodecError::Corrupt {
                    section: "entries",
                    offset: pos,
                    detail: format!("bit entry {k}: truncated payload"),
                })?;
                let digits = radix
                    .unrank(&value)
                    .ok_or(CodecError::DifferenceOutOfSpace { entry: k })?;
                diffs.push(digits);
            }
        } else {
            for _ in 0..count {
                let (digits, next) = rle::read_entry(&self.schema, bytes, pos)?;
                diffs.push(digits);
                pos = next;
            }
        }
        Ok(diffs)
    }

    /// Reads only the representative tuple of a coded block — the index key
    /// of §4.1 — without decoding the block. For field-wise blocks this is
    /// the first tuple.
    pub fn read_representative(&self, bytes: &[u8]) -> Result<Tuple, CodecError> {
        let (u, rep_idx) = read_header(bytes)?;
        if u == 0 {
            return Err(CodecError::Corrupt {
                section: "header",
                offset: 0,
                detail: "block with zero tuples".into(),
            });
        }
        let m = self.schema.tuple_bytes();
        let pos = BLOCK_HEADER_BYTES;
        if self.mode != CodingMode::FieldWise && rep_idx >= u {
            return Err(CodecError::Corrupt {
                section: "header",
                offset: 2,
                detail: "rep_idx out of range".into(),
            });
        }
        let Some(rep_bytes) = bytes.get(pos..pos + m) else {
            return Err(CodecError::Corrupt {
                section: "representative",
                offset: pos,
                detail: "representative tuple truncated".into(),
            });
        };
        Ok(self.schema.read_tuple(rep_bytes))
    }

    /// Number of tuples recorded in a coded block's header.
    pub fn tuple_count(&self, bytes: &[u8]) -> Result<usize, CodecError> {
        read_header(bytes).map(|(u, _)| u)
    }
}

fn read_header(bytes: &[u8]) -> Result<(usize, usize), CodecError> {
    let Some((&[c0, c1, r0, r1], _)) = bytes.split_first_chunk::<BLOCK_HEADER_BYTES>() else {
        return Err(CodecError::Corrupt {
            section: "header",
            offset: 0,
            detail: "block shorter than header".into(),
        });
    };
    let u = u16::from_le_bytes([c0, c1]) as usize;
    let rep_idx = u16::from_le_bytes([r0, r1]) as usize;
    Ok((u, rep_idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use avq_schema::Domain;

    fn employee_schema() -> Arc<Schema> {
        Schema::from_pairs(vec![
            ("a1", Domain::uint(8).unwrap()),
            ("a2", Domain::uint(16).unwrap()),
            ("a3", Domain::uint(64).unwrap()),
            ("a4", Domain::uint(64).unwrap()),
            ("a5", Domain::uint(64).unwrap()),
        ])
        .unwrap()
    }

    /// The 4th block of Fig. 2.2 (c) / Fig. 3.3 (a).
    fn paper_block() -> Vec<Tuple> {
        vec![
            Tuple::from([3u64, 8, 32, 25, 19]),
            Tuple::from([3u64, 8, 32, 34, 12]),
            Tuple::from([3u64, 8, 36, 39, 35]), // representative (median)
            Tuple::from([3u64, 9, 24, 32, 0]),
            Tuple::from([3u64, 9, 26, 27, 37]),
        ]
    }

    #[test]
    fn fig3_3_stream_matches_paper() {
        // §3.4 prints the coded block as the digit stream
        //   3 08 36 39 35 | 3 08 57 | 2 04 05 23 | 2 51 56 29 | 2 01 59 37
        let codec = BlockCodec::new(employee_schema());
        let coded = codec.encode(&paper_block()).unwrap();
        let body = &coded[BLOCK_HEADER_BYTES..];
        assert_eq!(
            body,
            &[
                3, 8, 36, 39, 35, // representative
                3, 8, 57, // (0,00,00,08,57): 3 leading zeros elided
                2, 4, 5, 23, // (0,00,04,05,23)
                2, 51, 56, 29, // (0,00,51,56,29)
                2, 1, 59, 37, // (0,00,01,59,37)
            ]
        );
        // Header: 5 tuples, representative at index 2 (the median).
        assert_eq!(&coded[..4], &[5, 0, 2, 0]);
    }

    #[test]
    fn fig3_3_basic_avq_differences() {
        // Fig. 3.3 (b): differences from the representative (un-chained).
        let codec = BlockCodec::with_options(employee_schema(), CodingMode::Avq, RepChoice::Median);
        let coded = codec.encode(&paper_block()).unwrap();
        let body = &coded[BLOCK_HEADER_BYTES..];
        // diffs from rep: 17296 = (0,00,04,14,16), 16727 = (0,00,04,05,23),
        //                 212509 = (0,00,51,56,29), 220418 = (0,00,53,52,02)
        assert_eq!(
            body,
            &[
                3, 8, 36, 39, 35, // representative
                2, 4, 14, 16, // φ-diff 17296
                2, 4, 5, 23, // φ-diff 16727
                2, 51, 56, 29, // φ-diff 212509
                2, 53, 52, 2, // φ-diff 220418
            ]
        );
    }

    #[test]
    fn roundtrip_all_modes() {
        let schema = employee_schema();
        let tuples = paper_block();
        for mode in CodingMode::ALL {
            for rep in RepChoice::ALL {
                let codec = BlockCodec::with_options(schema.clone(), mode, rep);
                let coded = codec.encode(&tuples).unwrap();
                assert_eq!(
                    codec.decode(&coded).unwrap(),
                    tuples,
                    "mode {mode} rep {rep}"
                );
            }
        }
    }

    #[test]
    fn measure_matches_encode() {
        let schema = employee_schema();
        let tuples = paper_block();
        for mode in CodingMode::ALL {
            for rep in RepChoice::ALL {
                let codec = BlockCodec::with_options(schema.clone(), mode, rep);
                let coded = codec.encode(&tuples).unwrap();
                assert_eq!(codec.measure(&tuples), coded.len(), "mode {mode} rep {rep}");
            }
        }
    }

    #[test]
    fn chained_measure_independent_of_rep() {
        let schema = employee_schema();
        let tuples = paper_block();
        let sizes: Vec<usize> = RepChoice::ALL
            .iter()
            .map(|&rep| {
                BlockCodec::with_options(schema.clone(), CodingMode::AvqChained, rep)
                    .measure(&tuples)
            })
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");
    }

    #[test]
    fn single_tuple_block() {
        let schema = employee_schema();
        let tuples = vec![Tuple::from([1u64, 2, 3, 4, 5])];
        for mode in CodingMode::ALL {
            let codec = BlockCodec::with_options(schema.clone(), mode, RepChoice::Median);
            let coded = codec.encode(&tuples).unwrap();
            assert_eq!(codec.decode(&coded).unwrap(), tuples);
            assert_eq!(codec.read_representative(&coded).unwrap(), tuples[0]);
        }
    }

    #[test]
    fn duplicate_tuples_roundtrip() {
        let schema = employee_schema();
        let t = Tuple::from([2u64, 5, 10, 10, 10]);
        let tuples = vec![t.clone(), t.clone(), t.clone()];
        for mode in CodingMode::ALL {
            let codec = BlockCodec::with_options(schema.clone(), mode, RepChoice::Median);
            let coded = codec.encode(&tuples).unwrap();
            assert_eq!(codec.decode(&coded).unwrap(), tuples, "mode {mode}");
        }
    }

    #[test]
    fn extreme_tuples_roundtrip() {
        let schema = employee_schema();
        let tuples = vec![
            Tuple::from([0u64, 0, 0, 0, 0]),
            Tuple::from([7u64, 15, 63, 63, 63]),
        ];
        for mode in CodingMode::ALL {
            let codec = BlockCodec::with_options(schema.clone(), mode, RepChoice::Median);
            let coded = codec.encode(&tuples).unwrap();
            assert_eq!(codec.decode(&coded).unwrap(), tuples, "mode {mode}");
        }
    }

    #[test]
    fn empty_input_rejected() {
        let codec = BlockCodec::new(employee_schema());
        assert_eq!(codec.encode(&[]).unwrap_err(), CodecError::EmptyBlock);
    }

    #[test]
    fn unsorted_input_rejected() {
        let codec = BlockCodec::new(employee_schema());
        let tuples = vec![
            Tuple::from([3u64, 9, 0, 0, 0]),
            Tuple::from([3u64, 8, 0, 0, 0]),
        ];
        assert_eq!(
            codec.encode(&tuples).unwrap_err(),
            CodecError::UnsortedInput { position: 1 }
        );
    }

    #[test]
    fn invalid_tuple_rejected() {
        let codec = BlockCodec::new(employee_schema());
        let tuples = vec![Tuple::from([8u64, 0, 0, 0, 0])];
        assert!(matches!(
            codec.encode(&tuples).unwrap_err(),
            CodecError::InvalidTuple { position: 0, .. }
        ));
    }

    #[test]
    fn decode_rejects_truncation() {
        let codec = BlockCodec::new(employee_schema());
        let coded = codec.encode(&paper_block()).unwrap();
        for cut in [0, 2, 5, coded.len() - 1] {
            assert!(
                codec.decode(&coded[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn failed_decode_leaves_out_unchanged() {
        // The error contract of decode_into / decode_into_scratch: any
        // failure — truncation, corrupt entries, out-of-space differences —
        // must leave `out` exactly as it was, even when the failure is
        // detected after some tuples were already reconstructed.
        let schema = employee_schema();
        let sentinel = vec![Tuple::from([7u64, 7, 7, 7, 7])];
        for mode in CodingMode::ALL {
            let codec = BlockCodec::with_options(schema.clone(), mode, RepChoice::Median);
            let coded = codec.encode(&paper_block()).unwrap();
            let mut scratch = DecodeScratch::new();
            for cut in 0..coded.len() {
                let mut out = sentinel.clone();
                assert!(
                    codec
                        .decode_into_scratch(&coded[..cut], &mut out, &mut scratch)
                        .is_err(),
                    "mode {mode}: truncation at {cut} must fail"
                );
                assert_eq!(
                    out, sentinel,
                    "mode {mode} cut {cut}: out must be untouched"
                );
            }
        }
        // A forward-chain overflow fails after the first half was pushed.
        let codec = BlockCodec::with_options(schema, CodingMode::Avq, RepChoice::First);
        let mut bytes = vec![2, 0, 0, 0];
        bytes.extend_from_slice(&[7, 15, 63, 63, 63]);
        bytes.extend_from_slice(&[4, 1]);
        let mut out = sentinel.clone();
        assert!(codec.decode_into(&bytes, &mut out).is_err());
        assert_eq!(out, sentinel);
    }

    #[test]
    fn scratch_reuse_across_blocks_and_modes() {
        let schema = employee_schema();
        let tuples = paper_block();
        let mut scratch = DecodeScratch::new();
        for mode in CodingMode::ALL {
            let codec = BlockCodec::with_options(schema.clone(), mode, RepChoice::Median);
            let coded = codec.encode(&tuples).unwrap();
            for _ in 0..3 {
                let mut out = Vec::new();
                codec
                    .decode_into_scratch(&coded, &mut out, &mut scratch)
                    .unwrap();
                assert_eq!(out, tuples, "mode {mode}");
            }
        }
    }

    #[test]
    fn decode_rejects_bad_rep_idx() {
        let codec = BlockCodec::new(employee_schema());
        let mut coded = codec.encode(&paper_block()).unwrap();
        coded[2] = 9; // rep_idx 9 >= count 5
        assert!(matches!(
            codec.decode(&coded).unwrap_err(),
            CodecError::Corrupt { .. }
        ));
    }

    #[test]
    fn decode_rejects_out_of_space_difference() {
        // rep = max tuple, entry claims rep + diff -> escapes the space.
        let schema = employee_schema();
        let codec = BlockCodec::with_options(schema, CodingMode::Avq, RepChoice::First);
        // count=2, rep_idx=0, rep = (7,15,63,63,63), one entry after rep with
        // diff 1.
        let mut bytes = vec![2, 0, 0, 0];
        bytes.extend_from_slice(&[7, 15, 63, 63, 63]);
        bytes.extend_from_slice(&[4, 1]); // 4 leading zeros + final byte 1
        assert_eq!(
            codec.decode(&bytes).unwrap_err(),
            CodecError::DifferenceOutOfSpace { entry: 0 }
        );
    }

    #[test]
    fn read_representative_without_decode() {
        let codec = BlockCodec::new(employee_schema());
        let coded = codec.encode(&paper_block()).unwrap();
        assert_eq!(
            codec.read_representative(&coded).unwrap(),
            Tuple::from([3u64, 8, 36, 39, 35])
        );
        assert_eq!(codec.tuple_count(&coded).unwrap(), 5);
    }

    #[test]
    fn fieldwise_block_is_plain_tuples() {
        let schema = employee_schema();
        let codec =
            BlockCodec::with_options(schema.clone(), CodingMode::FieldWise, RepChoice::Median);
        let tuples = paper_block();
        let coded = codec.encode(&tuples).unwrap();
        assert_eq!(coded.len(), BLOCK_HEADER_BYTES + 5 * schema.tuple_bytes());
        assert_eq!(codec.decode(&coded).unwrap(), tuples);
    }
}
