//! Property tests for the SQL front end.
//!
//! Two invariants: (1) the canonical pretty-printer and the parser are
//! inverse on generated statements (`parse(print(ast)) == ast`), and
//! (2) the parser never panics — arbitrary garbage and truncated valid
//! statements produce a typed [`SqlError`] carrying a byte position.

use avq_sql::ast::{
    AggFunc, CmpOp, ColRef, JoinClause, Literal, OrderBy, Predicate, Projection, SelectItem,
    SelectStmt, Statement, TableRef,
};
use avq_sql::{parse, SqlError};
use proptest::prelude::*;

const TABLES: &[&str] = &["people", "teams", "events"];
const COLUMNS: &[&str] = &["dept", "age", "id", "k"];
const ALIASES: &[&str] = &["p", "q", "r"];
const STRINGS: &[&str] = &["eng", "hr", "ops"];

fn arb_colref() -> BoxedStrategy<ColRef> {
    (
        any::<prop::sample::Index>(),
        any::<prop::sample::Index>(),
        0u8..2,
    )
        .prop_map(|(t, c, qualify)| ColRef {
            table: (qualify == 1).then(|| TABLES[t.index(TABLES.len())].to_owned()),
            column: COLUMNS[c.index(COLUMNS.len())].to_owned(),
        })
        .boxed()
}

fn arb_literal() -> BoxedStrategy<Literal> {
    prop_oneof![
        (0u8..2, 0u64..5000)
            .prop_map(|(neg, n)| {
                // `-0` canonicalizes to `0`, keeping print∘parse idempotent.
                let v = i128::from(n);
                Literal::Number(if neg == 1 { -v } else { v })
            })
            .boxed(),
        any::<prop::sample::Index>()
            .prop_map(|i| Literal::Str(STRINGS[i.index(STRINGS.len())].to_owned()))
            .boxed(),
    ]
    .boxed()
}

fn arb_item() -> BoxedStrategy<SelectItem> {
    let aggs = [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Min,
        AggFunc::Max,
        AggFunc::Avg,
    ];
    prop_oneof![
        arb_colref().prop_map(SelectItem::Column).boxed(),
        (any::<prop::sample::Index>(), arb_colref(), 0u8..2)
            .prop_map(move |(f, c, star)| {
                let func = aggs[f.index(aggs.len())];
                // `f(*)` is only grammatical for COUNT.
                let arg = if star == 1 && matches!(func, AggFunc::Count) {
                    None
                } else {
                    Some(c)
                };
                SelectItem::Aggregate { func, arg }
            })
            .boxed(),
    ]
    .boxed()
}

fn arb_predicate() -> BoxedStrategy<Predicate> {
    let ops = [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
    prop_oneof![
        (arb_colref(), any::<prop::sample::Index>(), arb_literal())
            .prop_map(move |(col, o, lit)| Predicate::Cmp {
                col,
                op: ops[o.index(ops.len())],
                lit,
            })
            .boxed(),
        (arb_colref(), arb_literal(), arb_literal())
            .prop_map(|(col, lo, hi)| Predicate::Between { col, lo, hi })
            .boxed(),
    ]
    .boxed()
}

fn arb_table_ref() -> BoxedStrategy<TableRef> {
    (
        any::<prop::sample::Index>(),
        any::<prop::sample::Index>(),
        0u8..2,
    )
        .prop_map(|(t, a, aliased)| TableRef {
            name: TABLES[t.index(TABLES.len())].to_owned(),
            alias: (aliased == 1).then(|| ALIASES[a.index(ALIASES.len())].to_owned()),
        })
        .boxed()
}

fn arb_select() -> BoxedStrategy<SelectStmt> {
    let projection = prop_oneof![
        Just(Projection::Star).boxed(),
        prop::collection::vec(arb_item(), 1..4)
            .prop_map(Projection::Items)
            .boxed(),
    ];
    (
        (
            projection,
            arb_table_ref(),
            prop::collection::vec(
                (arb_table_ref(), arb_colref(), arb_colref())
                    .prop_map(|(table, left, right)| JoinClause { table, left, right }),
                0..3,
            ),
        ),
        (
            prop::collection::vec(arb_predicate(), 0..4),
            (0u8..2, arb_colref()),
            (0u8..3, arb_colref()),
            (0u8..2, 0u64..10_000),
        ),
    )
        .prop_map(
            |((projection, from, joins), (predicates, (g, gcol), (o, ocol), (l, n)))| SelectStmt {
                projection,
                from,
                joins,
                predicates,
                group_by: (g == 1).then_some(gcol),
                order_by: (o > 0).then_some(OrderBy {
                    col: ocol,
                    desc: o == 2,
                }),
                limit: (l == 1).then_some(n),
            },
        )
        .boxed()
}

fn arb_statement() -> BoxedStrategy<Statement> {
    (0u8..3, arb_select())
        .prop_map(|(kind, stmt)| match kind {
            0 => Statement::Select(stmt),
            1 => Statement::Explain {
                analyze: false,
                stmt,
            },
            _ => Statement::Explain {
                analyze: true,
                stmt,
            },
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The canonical printer and the parser are inverse.
    #[test]
    fn print_parse_roundtrip(stmt in arb_statement()) {
        let text = stmt.to_string();
        let reparsed = parse(&text);
        prop_assert!(reparsed.is_ok(), "canonical text failed to parse: {text}");
        prop_assert_eq!(reparsed.unwrap(), stmt, "round-trip changed the AST for: {}", text);
    }

    /// Truncating a valid statement at any byte never panics, and any error
    /// carries a position within the remaining input.
    #[test]
    fn truncation_yields_positioned_errors(stmt in arb_statement(), cut in 0usize..200) {
        let text = stmt.to_string();
        let cut = cut.min(text.len());
        // Statements are pure ASCII, so every byte index is a char boundary.
        let truncated = &text[..cut];
        match parse(truncated) {
            Ok(_) => {}
            Err(e) => {
                let pos = e.position();
                prop_assert!(
                    matches!(e, SqlError::Lex { .. } | SqlError::Parse { .. }),
                    "unexpected error kind: {e}"
                );
                prop_assert!(
                    pos.is_some() && pos.unwrap_or(0) <= truncated.len(),
                    "position {:?} out of range for `{}`",
                    pos,
                    truncated
                );
            }
        }
    }

    /// Arbitrary printable garbage never panics the lexer or parser.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(32u8..127, 0..120)) {
        let text = String::from_utf8(bytes).unwrap_or_default();
        let _ = parse(&text);
    }
}

/// Non-property pin: a handful of adversarial inputs stay typed errors.
#[test]
fn adversarial_inputs_are_typed_errors() {
    for bad in [
        "",
        ";",
        "select",
        "select *",
        "select * from",
        "select * from people where",
        "select * from people where age",
        "select * from people where age >",
        "select * from people limit",
        "select * from people order by",
        "select * from people group",
        "select sum( from people",
        "select * from people where age between 1",
        "select * from people where age between 1 and",
        "select * from people 'unterminated",
        "select * from people where id = 99999999999999999999999999999",
        "explain",
        "explain analyze",
        "select * from people; extra",
        "sel\u{0}ect 1",
    ] {
        match parse(bad) {
            Ok(stmt) => panic!("`{bad}` unexpectedly parsed to {stmt:?}"),
            Err(SqlError::Lex { .. } | SqlError::Parse { .. }) => {}
            Err(other) => panic!("`{bad}` produced a non-parse error: {other}"),
        }
    }
}
