//! AVQ-L006 fixture: Corrupt-section vocabulary violations.

enum CodecError {
    Corrupt { section: &'static str, offset: usize },
}

fn errors() -> (CodecError, CodecError, CodecError) {
    let documented = CodecError::Corrupt {
        section: "header",
        offset: 0,
    };
    let unknown = CodecError::Corrupt {
        section: "mystery",
        offset: 1,
    };
    let wrong_crate = CodecError::Corrupt {
        section: "file.header",
        offset: 2,
    };
    (documented, unknown, wrong_crate)
}
