//! Conjunctive selections with access-path planning.
//!
//! §4 of the paper argues that "standard database operations remain the
//! same even when the database is AVQ coded". This module demonstrates it
//! beyond single-attribute ranges: a [`Selection`] is a conjunction of
//! per-attribute range predicates; the planner picks the cheapest access
//! path (clustered prefix range, a secondary index, or a full scan) and
//! filters the remaining conjuncts after block decode.

use crate::cost::{CostTracker, QueryCost};
use crate::error::DbError;
use crate::relation_store::StoredRelation;
use avq_obs::names;
use avq_schema::Tuple;
use avq_storage::BlockId;

/// One conjunct: `lo ≤ A_attr ≤ hi` in ordinal space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangePredicate {
    /// Attribute position.
    pub attr: usize,
    /// Inclusive lower bound (ordinal).
    pub lo: u64,
    /// Inclusive upper bound (ordinal).
    pub hi: u64,
}

impl RangePredicate {
    /// An equality predicate `A_attr = v`.
    pub fn equals(attr: usize, v: u64) -> Self {
        RangePredicate { attr, lo: v, hi: v }
    }

    /// True iff `tuple` satisfies this conjunct.
    #[inline]
    pub fn matches(&self, tuple: &Tuple) -> bool {
        let v = tuple.digits()[self.attr];
        v >= self.lo && v <= self.hi
    }

    /// Width of the accepted range (for selectivity ordering).
    fn width(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }
}

/// A conjunction of range predicates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Selection {
    predicates: Vec<RangePredicate>,
}

/// Which access path the planner chose (reported for tests/experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Contiguous block range via the primary index (clustering prefix).
    ClusteredRange,
    /// A secondary index on the named attribute.
    SecondaryIndex {
        /// The indexed attribute used.
        attr: usize,
    },
    /// Every data block.
    FullScan,
}

impl Selection {
    /// An unrestricted selection (matches everything).
    pub fn all() -> Self {
        Selection::default()
    }

    /// Adds a conjunct. Multiple conjuncts on the same attribute intersect.
    pub fn and(mut self, pred: RangePredicate) -> Self {
        self.predicates.push(pred);
        self
    }

    /// The conjuncts.
    pub fn predicates(&self) -> &[RangePredicate] {
        &self.predicates
    }

    /// True iff `tuple` satisfies every conjunct.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.predicates.iter().all(|p| p.matches(tuple))
    }

    /// Chooses the access path for `rel`: a clustering-prefix conjunct wins
    /// (contiguous I/O); otherwise the *narrowest* conjunct with a secondary
    /// index; otherwise a full scan.
    pub fn plan(&self, rel: &StoredRelation) -> AccessPath {
        if self.predicates.iter().any(|p| p.attr == 0) {
            return AccessPath::ClusteredRange;
        }
        let mut best: Option<&RangePredicate> = None;
        for p in &self.predicates {
            if rel.has_secondary_index(p.attr) && best.is_none_or(|b| p.width() < b.width()) {
                best = Some(p);
            }
        }
        match best {
            Some(p) => AccessPath::SecondaryIndex { attr: p.attr },
            None => AccessPath::FullScan,
        }
    }
}

impl core::fmt::Display for AccessPath {
    /// The access-path names shared by `EXPLAIN` output and plan renderers
    /// (`clustered-range`, `secondary-index(attr=N)`, `full-scan`).
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AccessPath::ClusteredRange => write!(f, "clustered-range"),
            AccessPath::SecondaryIndex { attr } => write!(f, "secondary-index(attr={attr})"),
            AccessPath::FullScan => write!(f, "full-scan"),
        }
    }
}

impl StoredRelation {
    /// Candidate data blocks for `selection` through the access path it
    /// planned (or any explicitly supplied `path`): the contiguous primary
    /// run for a clustering-prefix range, the union of secondary-index
    /// postings for an indexed conjunct, or every block. Shared by
    /// [`Self::fold_matching`], `EXPLAIN ANALYZE`, and the SQL executor so
    /// all three walk identical block sets.
    pub fn candidate_blocks(
        &self,
        selection: &Selection,
        path: AccessPath,
    ) -> Result<Vec<BlockId>, DbError> {
        match path {
            AccessPath::ClusteredRange => {
                // Intersect every attr-0 conjunct.
                let mut lo = 0u64;
                let mut hi = u64::MAX;
                for p in selection.predicates() {
                    if p.attr == 0 {
                        lo = lo.max(p.lo);
                        hi = hi.min(p.hi);
                    }
                }
                if lo > hi {
                    Ok(Vec::new())
                } else {
                    self.clustered_candidate_blocks(lo, hi)
                }
            }
            AccessPath::SecondaryIndex { attr } => {
                // Intersect every conjunct on the planned attribute.
                let mut lo = 0u64;
                let mut hi = u64::MAX;
                let mut found = false;
                for p in selection.predicates() {
                    if p.attr == attr {
                        lo = lo.max(p.lo);
                        hi = hi.min(p.hi);
                        found = true;
                    }
                }
                if !found || lo > hi {
                    return Ok(Vec::new());
                }
                self.secondary_candidate_blocks(attr, lo, hi)
            }
            AccessPath::FullScan => Ok(self.all_block_ids()),
        }
    }

    /// Streams every tuple matching `selection` through `f` without
    /// materializing the result set; the backbone of [`Self::select`],
    /// [`Self::aggregate`], and [`Self::aggregate_group_by`].
    pub fn fold_matching<T>(
        &self,
        selection: &Selection,
        init: T,
        mut f: impl FnMut(&mut T, &Tuple),
    ) -> Result<(T, QueryCost, AccessPath), DbError> {
        let _span = avq_obs::span!(names::SPAN_DB_SELECT);
        avq_obs::counter!(names::DB_QUERIES).inc();
        let path = selection.plan(self);
        let mut tracker = CostTracker::new(self.device());
        let candidates: Vec<BlockId> = self.candidate_blocks(selection, path)?;
        tracker.end_index_phase();

        let mut acc = init;
        let mut scratch = Vec::new();
        tracker.cost.data_blocks = candidates.len() as u64;
        for id in candidates {
            scratch.clear();
            self.decode_block_into(id, &mut scratch)?;
            tracker.cost.tuples_scanned += scratch.len();
            for t in &scratch {
                if selection.matches(t) {
                    tracker.cost.tuples_matched += 1;
                    f(&mut acc, t);
                }
            }
        }
        tracker.end_data_phase();
        Ok((acc, tracker.cost, path))
    }

    /// Executes a conjunctive selection, returning matching tuples, the
    /// cost, and the access path used.
    pub fn select(
        &self,
        selection: &Selection,
    ) -> Result<(Vec<Tuple>, QueryCost, AccessPath), DbError> {
        self.fold_matching(selection, Vec::new(), |out, t| out.push(t.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DbConfig;
    use avq_codec::CodecOptions;
    use avq_schema::{Domain, Relation, Schema};
    use avq_storage::{BlockDevice, BufferPool};

    fn stored(with_index_on: &[usize]) -> StoredRelation {
        let schema = Schema::from_pairs(vec![
            ("a", Domain::uint(16).unwrap()),
            ("b", Domain::uint(32).unwrap()),
            ("c", Domain::uint(512).unwrap()),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = (0..2000u64)
            .map(|i| Tuple::from([(i * 3) % 16, (i * 7) % 32, (i * 11) % 512]))
            .collect();
        let relation = Relation::from_tuples(schema, tuples).unwrap();
        let config = DbConfig {
            codec: CodecOptions {
                block_capacity: 256,
                ..Default::default()
            },
            ..Default::default()
        };
        let device = BlockDevice::new(256, config.disk);
        let pool = BufferPool::new(device.clone(), config.buffer_frames);
        let mut s = StoredRelation::bulk_load(device, pool, &relation, config).unwrap();
        for &attr in with_index_on {
            s.create_secondary_index(attr).unwrap();
        }
        s
    }

    fn brute_force(rel: &StoredRelation, sel: &Selection) -> Vec<Tuple> {
        rel.scan_all()
            .unwrap()
            .into_iter()
            .filter(|t| sel.matches(t))
            .collect()
    }

    #[test]
    fn conjunction_matches_brute_force() {
        let rel = stored(&[1]);
        let sel = Selection::all()
            .and(RangePredicate {
                attr: 1,
                lo: 4,
                hi: 20,
            })
            .and(RangePredicate {
                attr: 2,
                lo: 100,
                hi: 400,
            });
        let (mut rows, cost, path) = rel.select(&sel).unwrap();
        rows.sort_unstable();
        assert_eq!(rows, brute_force(&rel, &sel));
        assert_eq!(path, AccessPath::SecondaryIndex { attr: 1 });
        assert_eq!(cost.tuples_matched, rows.len());
    }

    #[test]
    fn clustering_prefix_wins_planning() {
        let rel = stored(&[1, 2]);
        let sel = Selection::all()
            .and(RangePredicate {
                attr: 0,
                lo: 2,
                hi: 5,
            })
            .and(RangePredicate {
                attr: 1,
                lo: 0,
                hi: 31,
            });
        let (rows, cost, path) = rel.select(&sel).unwrap();
        assert_eq!(path, AccessPath::ClusteredRange);
        let mut rows = rows;
        rows.sort_unstable();
        assert_eq!(rows, brute_force(&rel, &sel));
        assert!(
            (cost.data_blocks as usize) < rel.block_count(),
            "prefix selection reads a contiguous subset"
        );
    }

    #[test]
    fn narrowest_indexed_predicate_chosen() {
        let rel = stored(&[1, 2]);
        let sel = Selection::all()
            .and(RangePredicate {
                attr: 1,
                lo: 0,
                hi: 31, // wide
            })
            .and(RangePredicate::equals(2, 77)); // narrow
        let (_, _, path) = rel.select(&sel).unwrap();
        assert_eq!(path, AccessPath::SecondaryIndex { attr: 2 });
    }

    #[test]
    fn unindexed_conjunction_scans() {
        let rel = stored(&[]);
        let sel = Selection::all().and(RangePredicate {
            attr: 2,
            lo: 0,
            hi: 10,
        });
        let (rows, cost, path) = rel.select(&sel).unwrap();
        assert_eq!(path, AccessPath::FullScan);
        assert_eq!(cost.data_blocks as usize, rel.block_count());
        let mut rows = rows;
        rows.sort_unstable();
        assert_eq!(rows, brute_force(&rel, &sel));
    }

    #[test]
    fn empty_selection_matches_everything() {
        let rel = stored(&[]);
        let (rows, _, path) = rel.select(&Selection::all()).unwrap();
        assert_eq!(path, AccessPath::FullScan);
        assert_eq!(rows.len(), 2000);
    }

    #[test]
    fn contradictory_prefix_ranges_return_nothing() {
        let rel = stored(&[]);
        let sel = Selection::all()
            .and(RangePredicate {
                attr: 0,
                lo: 5,
                hi: 10,
            })
            .and(RangePredicate {
                attr: 0,
                lo: 12,
                hi: 15,
            });
        let (rows, cost, _) = rel.select(&sel).unwrap();
        assert!(rows.is_empty());
        assert_eq!(cost.data_blocks, 0, "no blocks touched");
    }

    #[test]
    fn same_attr_conjuncts_intersect() {
        let rel = stored(&[1]);
        let sel = Selection::all()
            .and(RangePredicate {
                attr: 1,
                lo: 5,
                hi: 25,
            })
            .and(RangePredicate {
                attr: 1,
                lo: 10,
                hi: 30,
            });
        let (mut rows, _, _) = rel.select(&sel).unwrap();
        rows.sort_unstable();
        assert_eq!(rows, brute_force(&rel, &sel));
        assert!(rows.iter().all(|t| (10..=25).contains(&t.digits()[1])));
    }
}
