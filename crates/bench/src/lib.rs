//! # avq-bench — experiment harness for the ICDE 1995 AVQ paper
//!
//! One binary per paper table/figure (see `DESIGN.md` §5 for the index):
//!
//! * `exp_compression` — Fig. 5.7: compression efficiency across the four
//!   workload characteristics and relation sizes.
//! * `exp_codec_time` — Fig. 5.9 rows 1–2: block coding/decoding time on
//!   the §5.2 relation, measured on the host and scaled to the paper's
//!   machines.
//! * `exp_blocks_accessed` — Fig. 5.8: `N` per queried attribute.
//! * `exp_response_time` — Fig. 5.9: the full response-time table.
//! * `exp_ablations` — the DESIGN.md ablations (mode, representative,
//!   block size, attribute order, buffer pool).
//!
//! Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod measure;
pub mod report;
