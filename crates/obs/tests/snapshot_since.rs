//! `Snapshot::since` delta semantics: property tests that histogram
//! bucket deltas are exact, quantiles stay monotone, and snapshots taken
//! while writers are recording never observe regressions.

use avq_obs::{bucket_index, Registry, HISTOGRAM_BUCKETS};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The exact per-bucket counts of one batch of values.
fn exact_buckets(values: &[u64]) -> [u64; HISTOGRAM_BUCKETS] {
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    for &v in values {
        buckets[bucket_index(v)] += 1;
    }
    buckets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The histogram delta between two snapshots has *exactly* the bucket
    /// counts, count, and sum of the values recorded in between — nothing
    /// from the earlier epoch leaks through.
    #[test]
    fn histogram_delta_buckets_are_exact(
        // Bounded so the u64 sums cannot overflow (the histogram's sum
        // atomic wraps silently; this test pins exact delta arithmetic).
        before in prop::collection::vec(0u64..1 << 40, 0..200),
        between in prop::collection::vec(0u64..1 << 40, 0..200),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("t.h");
        let c = reg.counter("t.c");
        for &v in &before {
            h.record(v);
            c.inc();
        }
        let s1 = reg.snapshot();
        for &v in &between {
            h.record(v);
        }
        c.add(3);
        let delta = reg.snapshot().since(&s1);

        let dh = &delta.histograms["t.h"];
        prop_assert_eq!(dh.count, between.len() as u64);
        prop_assert_eq!(dh.sum, between.iter().sum::<u64>());
        prop_assert_eq!(dh.buckets, exact_buckets(&between));
        prop_assert_eq!(delta.counters["t.c"], 3);
    }

    /// Quantile estimates are monotone in `q`, on the raw snapshot and on
    /// any `since` delta of it (merging more observations can never make a
    /// higher percentile smaller).
    #[test]
    fn quantiles_monotone_on_snapshots_and_deltas(
        first in prop::collection::vec(any::<u64>(), 1..150),
        second in prop::collection::vec(any::<u64>(), 1..150),
        qs_permille in prop::collection::vec(0u64..=1000, 2..8),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("t.h");
        for &v in &first {
            h.record(v);
        }
        let s1 = reg.snapshot();
        for &v in &second {
            h.record(v);
        }
        let s2 = reg.snapshot();
        let delta = s2.since(&s1);

        let mut qs = qs_permille;
        qs.sort_unstable();
        for snap in [&s2.histograms["t.h"], &delta.histograms["t.h"]] {
            for pair in qs.windows(2) {
                let (lo, hi) = (pair[0] as f64 / 1000.0, pair[1] as f64 / 1000.0);
                prop_assert!(
                    snap.quantile(lo) <= snap.quantile(hi),
                    "quantile({lo}) > quantile({hi})"
                );
            }
        }
        // The merged histogram dominates the delta at every quantile rank's
        // bucket count total.
        prop_assert!(s2.histograms["t.h"].count >= delta.histograms["t.h"].count);
    }
}

/// Snapshots taken while writer threads are live never regress: counters
/// and per-bucket histogram counts are non-decreasing across successive
/// snapshots, and the final quiescent snapshot accounts for every record.
#[test]
fn concurrent_record_while_snapshotting_is_monotone() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 5_000;

    let reg = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                let h = reg.histogram("t.h");
                let c = reg.counter("t.c");
                for i in 0..PER_WRITER {
                    h.record((w as u64) << 32 | i);
                    c.inc();
                }
            })
        })
        .collect();

    let reader = {
        let reg = Arc::clone(&reg);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut prev = reg.snapshot();
            let mut iterations = 0u64;
            while !stop.load(Ordering::Acquire) {
                let cur = reg.snapshot();
                let prev_c = prev.counters.get("t.c").copied().unwrap_or(0);
                let cur_c = cur.counters.get("t.c").copied().unwrap_or(0);
                assert!(cur_c >= prev_c, "counter regressed: {cur_c} < {prev_c}");
                if let (Some(p), Some(c)) = (prev.histograms.get("t.h"), cur.histograms.get("t.h"))
                {
                    assert!(c.count >= p.count, "count regressed");
                    assert!(c.sum >= p.sum, "sum regressed");
                    for i in 0..HISTOGRAM_BUCKETS {
                        assert!(c.buckets[i] >= p.buckets[i], "bucket {i} regressed");
                    }
                    // since() of a monotone pair never saturates: every
                    // delta field is an honest difference.
                    let d = c.since(p);
                    assert_eq!(d.count, c.count - p.count);
                    assert_eq!(
                        d.buckets.iter().sum::<u64>(),
                        c.buckets.iter().sum::<u64>() - p.buckets.iter().sum::<u64>()
                    );
                }
                prev = cur;
                iterations += 1;
            }
            iterations
        })
    };

    for h in handles {
        h.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Release);
    let iterations = reader.join().expect("reader panicked");
    assert!(iterations > 0);

    let total = u64::try_from(WRITERS).unwrap() * PER_WRITER;
    let snap = reg.snapshot();
    assert_eq!(snap.counters["t.c"], total);
    let h = &snap.histograms["t.h"];
    assert_eq!(h.count, total);
    assert_eq!(h.buckets.iter().sum::<u64>(), total);
}
