//! Relation schemes: named attributes, their domains, and derived geometry.

use crate::domain::Domain;
use crate::error::SchemaError;
use crate::tuple::Tuple;
use crate::value::Value;
use avq_num::{BigUnsigned, MixedRadix};
use std::collections::HashMap;
use std::sync::Arc;

/// A named attribute with its domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    domain: Domain,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        Attribute {
            name: name.into(),
            domain,
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }
}

/// A relation scheme `𝓡 = ⟨⟨A₁, …, Aₙ⟩⟩` (§2.2 of the paper) with all the
/// geometry AVQ needs precomputed:
///
/// * the [`MixedRadix`] system whose rank function is φ,
/// * per-attribute fixed byte widths (for §3.4 serialization),
/// * the total fixed tuple width `m` in bytes.
#[derive(Debug, Clone)]
pub struct Schema {
    attrs: Vec<Attribute>,
    by_name: HashMap<String, usize>,
    radix: MixedRadix,
    widths: Vec<usize>,
    /// Byte offset of each attribute within a fixed-width serialized tuple.
    offsets: Vec<usize>,
    tuple_bytes: usize,
}

impl Schema {
    /// Builds a schema from attributes. Names must be unique and at least one
    /// attribute is required.
    pub fn new(attrs: Vec<Attribute>) -> Result<Arc<Self>, SchemaError> {
        if attrs.is_empty() {
            return Err(SchemaError::EmptySchema);
        }
        let mut by_name = HashMap::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            if by_name.insert(a.name.clone(), i).is_some() {
                return Err(SchemaError::DuplicateAttribute {
                    name: a.name.clone(),
                });
            }
        }
        let radices: Vec<u64> = attrs.iter().map(|a| a.domain.size()).collect();
        let radix = MixedRadix::new(radices).expect("domain sizes are non-zero");
        let widths: Vec<usize> = attrs.iter().map(|a| a.domain.byte_width()).collect();
        let mut offsets = Vec::with_capacity(widths.len());
        let mut off = 0usize;
        for &w in &widths {
            offsets.push(off);
            off += w;
        }
        Ok(Arc::new(Schema {
            attrs,
            by_name,
            radix,
            widths,
            offsets,
            tuple_bytes: off,
        }))
    }

    /// Convenience constructor from `(name, domain)` pairs.
    pub fn from_pairs<S: Into<String>, I: IntoIterator<Item = (S, Domain)>>(
        pairs: I,
    ) -> Result<Arc<Self>, SchemaError> {
        Self::new(
            pairs
                .into_iter()
                .map(|(n, d)| Attribute::new(n, d))
                .collect(),
        )
    }

    /// Number of attributes `n`.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The attributes in order.
    #[inline]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The `i`-th attribute.
    #[inline]
    pub fn attribute(&self, i: usize) -> &Attribute {
        &self.attrs[i]
    }

    /// Resolves an attribute name to its index.
    pub fn index_of(&self, name: &str) -> Result<usize, SchemaError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| SchemaError::NoSuchAttribute {
                attribute: name.to_owned(),
            })
    }

    /// The mixed-radix system over the domain sizes; its rank is φ.
    #[inline]
    pub fn radix(&self) -> &MixedRadix {
        &self.radix
    }

    /// `‖𝓡‖ = Π|Aᵢ|`, the size of the tuple space.
    #[inline]
    pub fn space_size(&self) -> &BigUnsigned {
        self.radix.space_size()
    }

    /// Fixed byte width of attribute `i` in serialized form.
    #[inline]
    pub fn byte_width(&self, i: usize) -> usize {
        self.widths[i]
    }

    /// Byte offset of attribute `i` within a serialized tuple.
    #[inline]
    pub fn byte_offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// `m`: the fixed byte width of a whole serialized tuple.
    #[inline]
    pub fn tuple_bytes(&self) -> usize {
        self.tuple_bytes
    }

    /// Validates a tuple's arity and digit ranges against the schema.
    pub fn validate_tuple(&self, tuple: &Tuple) -> Result<(), SchemaError> {
        if tuple.arity() != self.arity() {
            return Err(SchemaError::ArityMismatch {
                expected: self.arity(),
                got: tuple.arity(),
            });
        }
        for (i, (&d, a)) in tuple.digits().iter().zip(&self.attrs).enumerate() {
            let size = a.domain.size();
            if d >= size {
                return Err(SchemaError::OrdinalOutOfRange {
                    attribute: self.attrs[i].name.clone(),
                    ordinal: d,
                    size,
                });
            }
        }
        Ok(())
    }

    /// Encodes a row of logical values into a tuple of ordinals (§3.1).
    pub fn encode_row(&self, row: &[Value]) -> Result<Tuple, SchemaError> {
        if row.len() != self.arity() {
            return Err(SchemaError::ArityMismatch {
                expected: self.arity(),
                got: row.len(),
            });
        }
        let mut digits = Vec::with_capacity(row.len());
        for (a, v) in self.attrs.iter().zip(row) {
            let ord = a.domain.encode(v).map_err(|e| match e {
                SchemaError::ValueNotInDomain { value, .. } => SchemaError::ValueNotInDomain {
                    attribute: a.name.clone(),
                    value,
                },
                SchemaError::TypeMismatch { expected, got, .. } => SchemaError::TypeMismatch {
                    attribute: a.name.clone(),
                    expected,
                    got,
                },
                other => other,
            })?;
            digits.push(ord);
        }
        Ok(Tuple::new(digits))
    }

    /// Decodes a tuple of ordinals back to logical values.
    pub fn decode_row(&self, tuple: &Tuple) -> Result<Vec<Value>, SchemaError> {
        self.validate_tuple(tuple)?;
        self.attrs
            .iter()
            .zip(tuple.digits())
            .map(|(a, &d)| a.domain.decode(d))
            .collect()
    }

    /// φ(t): the tuple's ordinal position in 𝓡 space (Eq. 2.2).
    pub fn phi(&self, tuple: &Tuple) -> BigUnsigned {
        self.radix.rank(tuple.digits())
    }

    /// φ⁻¹(e): the tuple at ordinal `e`, or `None` if `e ≥ ‖𝓡‖`
    /// (Eq. 2.3–2.5).
    pub fn phi_inv(&self, e: &BigUnsigned) -> Option<Tuple> {
        self.radix.unrank(e).map(Tuple::new)
    }

    /// Serializes a tuple at fixed per-attribute widths, appending to `out`.
    /// Exactly [`Self::tuple_bytes`] bytes are appended.
    pub fn write_tuple(&self, tuple: &Tuple, out: &mut Vec<u8>) {
        debug_assert_eq!(tuple.arity(), self.arity());
        for (i, &d) in tuple.digits().iter().enumerate() {
            let w = self.widths[i];
            // Big-endian, fixed width.
            let bytes = d.to_be_bytes();
            out.extend_from_slice(&bytes[8 - w..]);
        }
    }

    /// Deserializes a tuple from a fixed-width buffer of exactly
    /// [`Self::tuple_bytes`] bytes.
    ///
    /// # Panics
    /// Panics if `buf` is shorter than `tuple_bytes`.
    pub fn read_tuple(&self, buf: &[u8]) -> Tuple {
        assert!(
            buf.len() >= self.tuple_bytes,
            "buffer too small: {} < {}",
            buf.len(),
            self.tuple_bytes
        );
        let mut digits = Vec::with_capacity(self.arity());
        for i in 0..self.arity() {
            let w = self.widths[i];
            let off = self.offsets[i];
            let mut v = 0u64;
            for &b in &buf[off..off + w] {
                v = v << 8 | b as u64;
            }
            digits.push(v);
        }
        Tuple::new(digits)
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.attrs == other.attrs
    }
}

impl Eq for Schema {}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 3.1 scheme: five attributes with domain sizes
    /// 8, 16, 64, 64, 64.
    fn employee_schema() -> Arc<Schema> {
        Schema::from_pairs(vec![
            ("department", Domain::uint(8).unwrap()),
            ("job_title", Domain::uint(16).unwrap()),
            ("years", Domain::uint(64).unwrap()),
            ("hours", Domain::uint(64).unwrap()),
            ("empno", Domain::uint(64).unwrap()),
        ])
        .unwrap()
    }

    #[test]
    fn geometry() {
        let s = employee_schema();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.space_size().to_u64(), Some(8 * 16 * 64 * 64 * 64));
        // Every domain here fits one byte, so m = 5 as in §3.4's example.
        assert_eq!(s.tuple_bytes(), 5);
        for i in 0..5 {
            assert_eq!(s.byte_width(i), 1);
            assert_eq!(s.byte_offset(i), i);
        }
    }

    #[test]
    fn empty_schema_rejected() {
        assert_eq!(Schema::new(vec![]).unwrap_err(), SchemaError::EmptySchema);
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::from_pairs(vec![
            ("a", Domain::uint(2).unwrap()),
            ("a", Domain::uint(2).unwrap()),
        ]);
        assert!(matches!(r, Err(SchemaError::DuplicateAttribute { .. })));
    }

    #[test]
    fn index_of() {
        let s = employee_schema();
        assert_eq!(s.index_of("years").unwrap(), 2);
        assert!(s.index_of("salary").is_err());
    }

    #[test]
    fn phi_matches_paper_example() {
        let s = employee_schema();
        let t = Tuple::from([3u64, 8, 36, 39, 35]);
        assert_eq!(s.phi(&t).to_u64(), Some(14_830_051));
        assert_eq!(s.phi_inv(&BigUnsigned::from_u64(14_830_051)).unwrap(), t);
    }

    #[test]
    fn encode_decode_row() {
        let s = Schema::from_pairs(vec![
            (
                "dept",
                Domain::enumerated(vec!["hq", "lab", "plant"]).unwrap(),
            ),
            ("level", Domain::int_range(-2, 2).unwrap()),
            ("id", Domain::uint(100).unwrap()),
        ])
        .unwrap();
        let row = vec![Value::from("lab"), Value::Int(-1), Value::Uint(42)];
        let t = s.encode_row(&row).unwrap();
        assert_eq!(t.digits(), &[1, 1, 42]);
        assert_eq!(s.decode_row(&t).unwrap(), row);
    }

    #[test]
    fn encode_row_errors_name_the_attribute() {
        let s = employee_schema();
        let row = vec![
            Value::Uint(9), // out of range for |A1| = 8
            Value::Uint(0),
            Value::Uint(0),
            Value::Uint(0),
            Value::Uint(0),
        ];
        match s.encode_row(&row).unwrap_err() {
            SchemaError::ValueNotInDomain { attribute, .. } => {
                assert_eq!(attribute, "department");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn arity_mismatch() {
        let s = employee_schema();
        assert!(matches!(
            s.encode_row(&[Value::Uint(0)]),
            Err(SchemaError::ArityMismatch {
                expected: 5,
                got: 1
            })
        ));
        assert!(matches!(
            s.validate_tuple(&Tuple::from([0u64, 0])),
            Err(SchemaError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn validate_tuple_range() {
        let s = employee_schema();
        assert!(s
            .validate_tuple(&Tuple::from([7u64, 15, 63, 63, 63]))
            .is_ok());
        assert!(matches!(
            s.validate_tuple(&Tuple::from([8u64, 0, 0, 0, 0])),
            Err(SchemaError::OrdinalOutOfRange { .. })
        ));
    }

    #[test]
    fn tuple_serialization_roundtrip() {
        let s = Schema::from_pairs(vec![
            ("a", Domain::uint(300).unwrap()),   // 2 bytes
            ("b", Domain::uint(1).unwrap()),     // 0 bytes
            ("c", Domain::uint(70000).unwrap()), // 3 bytes
            ("d", Domain::uint(2).unwrap()),     // 1 byte
        ])
        .unwrap();
        assert_eq!(s.tuple_bytes(), 6);
        let t = Tuple::from([299u64, 0, 69_999, 1]);
        let mut buf = Vec::new();
        s.write_tuple(&t, &mut buf);
        assert_eq!(buf.len(), 6);
        assert_eq!(s.read_tuple(&buf), t);
    }

    #[test]
    fn serialized_order_matches_tuple_order() {
        // Fixed-width big-endian serialization preserves the ≺ order as raw
        // memcmp — important for index keys.
        let s = employee_schema();
        let a = Tuple::from([3u64, 8, 32, 34, 12]);
        let b = Tuple::from([3u64, 8, 36, 39, 35]);
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        s.write_tuple(&a, &mut ba);
        s.write_tuple(&b, &mut bb);
        assert!(ba < bb);
    }

    #[test]
    #[should_panic(expected = "buffer too small")]
    fn read_tuple_short_buffer_panics() {
        let s = employee_schema();
        let _ = s.read_tuple(&[0u8; 3]);
    }
}
