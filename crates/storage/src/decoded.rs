//! An LRU cache of *decoded* block payloads, layered above the buffer pool.
//!
//! The buffer pool caches coded bytes; re-reading a warm block still pays
//! the full AVQ decode (the paper's `t₂`). This cache remembers the decoded
//! form — for the database, the tuple run of a data block — so a warm
//! re-scan performs zero decode calls. It is generic over the decoded value
//! so the storage crate stays schema-agnostic: callers decide what a
//! "decoded block" is and share results via `Arc`.
//!
//! A capacity of zero disables the cache: lookups miss without counting and
//! inserts are dropped, so call sites need no `if enabled` branching.

use crate::buffer::PoolStats;
use crate::error::BlockId;
use crate::lru::LruList;
use avq_obs::names;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

#[derive(Debug)]
struct Entry<V> {
    block: BlockId,
    value: Arc<V>,
}

#[derive(Debug)]
struct CacheInner<V> {
    entries: Vec<Option<Entry<V>>>,
    map: HashMap<BlockId, usize>,
    lru: LruList,
    free: Vec<usize>,
}

/// A fixed-capacity LRU map from [`BlockId`] to a decoded value.
///
/// Thread-safe; values are handed out as `Arc<V>` clones so a hit never
/// copies the decoded payload. Hit/miss/eviction counters mirror
/// [`crate::BufferPool`]'s and are reported as [`PoolStats`].
#[derive(Debug)]
pub struct DecodedCache<V> {
    inner: Mutex<CacheInner<V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V> DecodedCache<V> {
    /// Creates a cache holding at most `capacity` decoded blocks. A
    /// capacity of zero yields a disabled cache (every lookup misses
    /// silently, inserts are no-ops).
    pub fn new(capacity: usize) -> Self {
        DecodedCache {
            inner: Mutex::new(CacheInner {
                entries: (0..capacity).map(|_| None).collect(),
                map: HashMap::with_capacity(capacity),
                lru: LruList::new(capacity),
                free: (0..capacity).rev().collect(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of cached blocks.
    pub fn capacity(&self) -> usize {
        self.inner
            .lock()
            .expect("cache mutex poisoned")
            .entries
            .len()
    }

    /// True iff the cache can hold anything.
    pub fn is_enabled(&self) -> bool {
        self.capacity() > 0
    }

    /// Looks up a decoded block, refreshing its recency on a hit.
    ///
    /// Disabled caches return `None` without counting a miss; the caller
    /// never asked to cache, so there is nothing to measure.
    pub fn get(&self, id: BlockId) -> Option<Arc<V>> {
        let mut inner = self.inner.lock().expect("cache mutex poisoned");
        if inner.entries.is_empty() {
            return None;
        }
        match inner.map.get(&id).copied() {
            Some(slot) => {
                inner.lru.touch(slot);
                let value = inner.entries[slot]
                    .as_ref()
                    .expect("mapped slot is occupied")
                    .value
                    .clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                avq_obs::counter!(names::STORAGE_CACHE_HITS).inc();
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                avq_obs::counter!(names::STORAGE_CACHE_MISSES).inc();
                None
            }
        }
    }

    /// Inserts (or refreshes) the decoded value for a block, evicting the
    /// least recently used entry when full. No-op when disabled.
    pub fn insert(&self, id: BlockId, value: Arc<V>) {
        let mut inner = self.inner.lock().expect("cache mutex poisoned");
        if inner.entries.is_empty() {
            return;
        }
        if let Some(&slot) = inner.map.get(&id) {
            inner.entries[slot] = Some(Entry { block: id, value });
            inner.lru.touch(slot);
            return;
        }
        let slot = if let Some(slot) = inner.free.pop() {
            slot
        } else {
            let victim = inner.lru.lru().expect("full cache has LRU entries");
            inner.lru.unlink(victim);
            let old = inner.entries[victim].take().expect("victim occupied");
            inner.map.remove(&old.block);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            avq_obs::counter!(names::STORAGE_CACHE_EVICTIONS).inc();
            victim
        };
        inner.entries[slot] = Some(Entry { block: id, value });
        inner.map.insert(id, slot);
        inner.lru.push_front(slot);
    }

    /// Drops one block's cached value (e.g. after the block is re-coded or
    /// freed). Stale decoded tuples must never survive a write.
    pub fn invalidate(&self, id: BlockId) {
        let mut inner = self.inner.lock().expect("cache mutex poisoned");
        if let Some(slot) = inner.map.remove(&id) {
            inner.lru.unlink(slot);
            inner.entries[slot] = None;
            inner.free.push(slot);
        }
    }

    /// Empties the cache (counters are kept; see [`Self::reset_stats`]).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache mutex poisoned");
        let cap = inner.entries.len();
        inner.map.clear();
        inner.lru = LruList::new(cap);
        inner.free = (0..cap).rev().collect();
        for e in &mut inner.entries {
            *e = None;
        }
    }

    /// Number of currently cached blocks.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache mutex poisoned").map.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Resets the hit/miss/eviction counters.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// The traffic accrued since `earlier` (a snapshot previously returned
    /// by [`Self::stats`]). Lets benchmark iterations report per-run deltas
    /// without resetting the process-lifetime counters.
    pub fn stats_since(&self, earlier: &PoolStats) -> PoolStats {
        self.stats().since(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs(cache: &DecodedCache<Vec<u64>>, pairs: &[(BlockId, u64)]) {
        for &(id, v) in pairs {
            cache.insert(id, Arc::new(vec![v]));
        }
    }

    #[test]
    fn hit_returns_shared_value() {
        let cache = DecodedCache::new(4);
        let value = Arc::new(vec![1u64, 2, 3]);
        cache.insert(7, value.clone());
        let got = cache.get(7).expect("cached");
        assert!(Arc::ptr_eq(&got, &value), "hit must not copy the payload");
        let st = cache.stats();
        assert_eq!((st.hits, st.misses), (1, 0));
    }

    #[test]
    fn miss_is_counted() {
        let cache: DecodedCache<Vec<u64>> = DecodedCache::new(2);
        assert!(cache.get(9).is_none());
        assert_eq!(cache.stats().misses, 1);
        assert!((cache.stats().hit_rate() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let cache = DecodedCache::new(2);
        runs(&cache, &[(0, 10), (1, 11)]);
        cache.get(0).unwrap(); // 0 is now MRU
        runs(&cache, &[(2, 12)]); // evicts 1
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(0).is_some());
        assert!(cache.get(2).is_some());
        assert!(cache.get(1).is_none(), "LRU entry was evicted");
    }

    #[test]
    fn reinsert_refreshes_value_without_eviction() {
        let cache = DecodedCache::new(2);
        runs(&cache, &[(0, 10), (1, 11), (0, 99)]);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(*cache.get(0).unwrap(), vec![99]);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalidate_forces_miss() {
        let cache = DecodedCache::new(2);
        runs(&cache, &[(0, 10)]);
        cache.invalidate(0);
        assert!(cache.get(0).is_none());
        assert!(cache.is_empty());
        // Invalidating an absent block is a no-op.
        cache.invalidate(42);
        // The freed slot is reusable.
        runs(&cache, &[(1, 11), (2, 12)]);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = DecodedCache::new(3);
        runs(&cache, &[(0, 1), (1, 2)]);
        cache.get(0).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1, "clear keeps counters");
        assert!(cache.get(0).is_none());
        cache.reset_stats();
        assert_eq!(cache.stats(), PoolStats::default());
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let cache = DecodedCache::new(0);
        assert!(!cache.is_enabled());
        runs(&cache, &[(0, 1)]);
        assert!(cache.get(0).is_none());
        // Disabled caches measure nothing.
        assert_eq!(cache.stats(), PoolStats::default());
    }

    #[test]
    fn stats_since_reports_per_iteration_delta() {
        let cache = DecodedCache::new(4);
        runs(&cache, &[(0, 1), (1, 2)]);
        cache.get(0).unwrap();
        cache.get(9); // miss
        let iteration_start = cache.stats();
        // Second "benchmark iteration": 2 hits, 1 miss.
        cache.get(0).unwrap();
        cache.get(1).unwrap();
        cache.get(9);
        let delta = cache.stats_since(&iteration_start);
        assert_eq!((delta.hits, delta.misses, delta.evictions), (2, 1, 0));
        // The lifetime counters are untouched.
        assert_eq!(cache.stats().hits, 3);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(DecodedCache::new(8));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..100u32 {
                        let id = (t * 100 + i) % 16;
                        cache.insert(id, Arc::new(vec![id as u64]));
                        if let Some(v) = cache.get(id) {
                            assert_eq!(*v, vec![id as u64]);
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 8);
    }
}
