//! Secondary (non-clustering) indexes with bucket indirection (Fig. 4.5).
//!
//! A secondary index on attribute `A_k` is a B⁺-tree mapping each attribute
//! value (big-endian `u64` ordinal, so byte order = numeric order) to a
//! bucket; the bucket lists the data blocks containing at least one tuple
//! with that value. Executing `σ_{a ≤ A_k ≤ b}` walks the tree range, unions
//! the buckets, and hands back the distinct data blocks to read.

use crate::error::DbError;
use avq_index::{BPlusTree, BucketStore, Posting};
use avq_schema::Tuple;
use avq_storage::{BlockId, BufferPool};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A secondary index over one attribute.
#[derive(Debug)]
pub struct SecondaryIndex {
    attr: usize,
    tree: BPlusTree,
    store: BucketStore,
}

fn value_key(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

impl SecondaryIndex {
    /// Creates an empty index on attribute `attr`.
    pub fn create(pool: Arc<BufferPool>, order: usize, attr: usize) -> Result<Self, DbError> {
        let tree = if order == usize::MAX {
            BPlusTree::create(pool.clone())?
        } else {
            BPlusTree::create_with_order(pool.clone(), order)?
        };
        Ok(SecondaryIndex {
            attr,
            tree,
            store: BucketStore::new(pool),
        })
    }

    /// The indexed attribute position.
    #[inline]
    pub fn attribute(&self) -> usize {
        self.attr
    }

    /// The underlying tree (for stats in experiments).
    #[inline]
    pub fn tree(&self) -> &BPlusTree {
        &self.tree
    }

    /// Registers that data block `block` contains a tuple whose indexed
    /// attribute equals `value`. Idempotent.
    pub fn add_posting(&mut self, value: u64, block: BlockId) -> Result<(), DbError> {
        let key = value_key(value);
        let bucket = match self.tree.get(&key)? {
            Some(head) => head as BlockId,
            None => {
                let head = self.store.create()?;
                self.tree.insert(&key, head as u64)?;
                head
            }
        };
        self.store.push(bucket, Posting { value, block })?;
        Ok(())
    }

    /// Removes the posting `(value, block)` if present.
    pub fn remove_posting(&mut self, value: u64, block: BlockId) -> Result<(), DbError> {
        if let Some(head) = self.tree.get(&value_key(value))? {
            self.store
                .remove(head as BlockId, Posting { value, block })?;
        }
        Ok(())
    }

    /// Bulk-registers a coded block's tuples (one posting per distinct
    /// value).
    pub fn add_block(&mut self, tuples: &[Tuple], block: BlockId) -> Result<(), DbError> {
        let values: BTreeSet<u64> = tuples.iter().map(|t| t.digits()[self.attr]).collect();
        for v in values {
            self.add_posting(v, block)?;
        }
        Ok(())
    }

    /// Removes every posting `(v, block)` for the distinct values of
    /// `tuples`.
    pub fn remove_block(&mut self, tuples: &[Tuple], block: BlockId) -> Result<(), DbError> {
        let values: BTreeSet<u64> = tuples.iter().map(|t| t.digits()[self.attr]).collect();
        for v in values {
            self.remove_posting(v, block)?;
        }
        Ok(())
    }

    /// The distinct data blocks containing any value in `[lo, hi]`, in
    /// ascending block order.
    pub fn blocks_for_range(&self, lo: u64, hi: u64) -> Result<Vec<BlockId>, DbError> {
        let mut blocks = BTreeSet::new();
        for (_, head) in self.tree.range(&value_key(lo), &value_key(hi))? {
            for p in self.store.read(head as BlockId)? {
                // Bucket pages hold only postings for their tree key, but
                // filter defensively.
                if p.value >= lo && p.value <= hi {
                    blocks.insert(p.block);
                }
            }
        }
        Ok(blocks.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avq_storage::{BlockDevice, DiskProfile};

    fn index() -> SecondaryIndex {
        let pool = BufferPool::new(BlockDevice::new(512, DiskProfile::instant()), 64);
        SecondaryIndex::create(pool, usize::MAX, 1).unwrap()
    }

    #[test]
    fn postings_roundtrip() {
        let mut idx = index();
        idx.add_posting(5, 100).unwrap();
        idx.add_posting(5, 101).unwrap();
        idx.add_posting(7, 100).unwrap();
        assert_eq!(idx.blocks_for_range(5, 5).unwrap(), vec![100, 101]);
        assert_eq!(idx.blocks_for_range(6, 7).unwrap(), vec![100]);
        assert_eq!(idx.blocks_for_range(0, 10).unwrap(), vec![100, 101]);
        assert!(idx.blocks_for_range(8, 9).unwrap().is_empty());
    }

    #[test]
    fn add_posting_idempotent() {
        let mut idx = index();
        idx.add_posting(3, 42).unwrap();
        idx.add_posting(3, 42).unwrap();
        assert_eq!(idx.blocks_for_range(3, 3).unwrap(), vec![42]);
    }

    #[test]
    fn remove_posting() {
        let mut idx = index();
        idx.add_posting(3, 42).unwrap();
        idx.add_posting(3, 43).unwrap();
        idx.remove_posting(3, 42).unwrap();
        assert_eq!(idx.blocks_for_range(3, 3).unwrap(), vec![43]);
        // Removing a never-added posting is a no-op.
        idx.remove_posting(99, 1).unwrap();
    }

    #[test]
    fn block_bulk_registration() {
        let mut idx = index();
        let tuples = vec![
            Tuple::from([0u64, 5, 0]),
            Tuple::from([0u64, 5, 1]),
            Tuple::from([0u64, 9, 2]),
        ];
        idx.add_block(&tuples, 7).unwrap();
        assert_eq!(idx.blocks_for_range(5, 5).unwrap(), vec![7]);
        assert_eq!(idx.blocks_for_range(9, 9).unwrap(), vec![7]);
        idx.remove_block(&tuples, 7).unwrap();
        assert!(idx.blocks_for_range(0, 100).unwrap().is_empty());
    }

    #[test]
    fn range_ordering_of_values() {
        let mut idx = index();
        // Values whose little-endian order would differ from numeric order.
        idx.add_posting(256, 1).unwrap();
        idx.add_posting(1, 2).unwrap();
        idx.add_posting(511, 3).unwrap();
        assert_eq!(idx.blocks_for_range(0, 300).unwrap(), vec![1, 2]);
        assert_eq!(idx.blocks_for_range(257, 600).unwrap(), vec![3]);
    }
}
