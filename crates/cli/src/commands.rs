//! The `avqtool` commands as library functions (so they are unit-testable
//! without spawning processes). Each returns its human-readable output.

use crate::csv;
use crate::spec;
use avq_codec::{compress, CodecOptions, CodingMode, DecodeKernel, RepChoice};
use avq_db::{Database, DbConfig, DurableDatabase, RecoveryReport, SyncPolicy};
use avq_schema::{Relation, Value};
use std::path::Path;

/// A boxed error for the CLI layer.
pub type CliError = Box<dyn std::error::Error>;

fn parse_mode(s: &str) -> Result<CodingMode, CliError> {
    match s {
        "fieldwise" | "field-wise" => Ok(CodingMode::FieldWise),
        "avq" => Ok(CodingMode::Avq),
        "chained" | "avq-chained" => Ok(CodingMode::AvqChained),
        "bits" | "avq-chained-bits" => Ok(CodingMode::AvqChainedBits),
        other => Err(format!("unknown mode {other:?} (fieldwise|avq|chained|bits)").into()),
    }
}

fn parse_kernel(s: &str) -> Result<DecodeKernel, CliError> {
    DecodeKernel::parse(s).ok_or_else(|| format!("unknown kernel {s:?} (scalar|swar)").into())
}

/// Loads an `.avq` file, honouring an optional `--kernel` override.
fn load_coded(path: &Path, kernel: Option<&str>) -> Result<avq_codec::CodedRelation, CliError> {
    let coded = avq_file::load(path)?;
    Ok(match kernel {
        Some(k) => coded.with_kernel(parse_kernel(k)?),
        None => coded,
    })
}

/// `avqtool create <schema.spec> <data.csv> <out.avq> [mode] [block_bytes]`
///
/// Reads the schema spec and the CSV (no header row), compresses, writes the
/// `.avq` file, and reports the stats line.
pub fn create(
    spec_path: &Path,
    csv_path: &Path,
    out_path: &Path,
    mode: Option<&str>,
    block_capacity: Option<usize>,
) -> Result<String, CliError> {
    let schema = spec::parse_schema_spec(&std::fs::read_to_string(spec_path)?)?;
    let records = csv::parse(&std::fs::read_to_string(csv_path)?)?;

    let mut relation = Relation::new(schema.clone());
    for (i, record) in records.iter().enumerate() {
        let row =
            record_to_row(&schema, record).map_err(|e| format!("csv record {}: {e}", i + 1))?;
        relation.push_row(&row)?;
    }

    let options = CodecOptions {
        mode: mode.map(parse_mode).transpose()?.unwrap_or_default(),
        rep: RepChoice::Median,
        block_capacity: block_capacity.unwrap_or(8192),
        ..Default::default()
    };
    let coded = compress(&relation, options)?;
    avq_file::save(out_path, &coded)?;
    let st = coded.stats();
    Ok(format!("wrote {}: {st}\n", out_path.display()))
}

fn record_to_row(schema: &avq_schema::Schema, record: &[String]) -> Result<Vec<Value>, CliError> {
    if record.len() != schema.arity() {
        return Err(format!("expected {} fields, got {}", schema.arity(), record.len()).into());
    }
    let mut row = Vec::with_capacity(record.len());
    for (field, attr) in record.iter().zip(schema.attributes()) {
        let v = match attr.domain() {
            avq_schema::Domain::Uint { .. } => Value::Uint(
                field
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad uint {field:?} for {}", attr.name()))?,
            ),
            avq_schema::Domain::IntRange { .. } => Value::Int(
                field
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad int {field:?} for {}", attr.name()))?,
            ),
            avq_schema::Domain::Enumerated { .. } => Value::from(field.as_str()),
        };
        row.push(v);
    }
    Ok(row)
}

/// `avqtool info <file.avq | db-dir>` — for an `.avq` file: schema,
/// options, and compression stats; for a durable database directory:
/// recovery summary, relations, and decoded-cache counters.
pub fn info(path: &Path) -> Result<String, CliError> {
    if path.is_dir() {
        return open(path);
    }
    let coded = avq_file::load(path)?;
    let st = coded.stats();
    let opts = coded.options();
    let mut out = String::new();
    out.push_str(&format!("file:      {}\n", path.display()));
    out.push_str(&format!(
        "coding:    {} ({} representative), {}-byte blocks\n",
        opts.mode, opts.rep, opts.block_capacity
    ));
    out.push_str(&format!(
        "tuples:    {} in {} blocks ({:.1} bytes/tuple coded)\n",
        st.tuple_count,
        st.coded_blocks,
        st.bytes_per_tuple()
    ));
    out.push_str(&format!(
        "reduction: {:.1}% on blocks, {:.1}% on payload vs {}-byte fixed-width tuples\n",
        st.block_reduction_percent(),
        st.payload_reduction_percent(),
        st.tuple_bytes
    ));
    out.push_str("schema:\n");
    for line in spec::render_schema_spec(coded.schema()).lines() {
        out.push_str(&format!("  {line}\n"));
    }
    Ok(out)
}

/// Renders the post-recovery state of an opened durable database: what the
/// recovery did, what relations exist, and how the decoded-block cache
/// behaved while replaying. The format is pinned by tests — keep it stable.
fn render_database(db: &DurableDatabase, report: &RecoveryReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("directory:  {}\n", db.dir().display()));
    out.push_str(&format!(
        "checkpoint: lsn {}, {} snapshot(s) loaded\n",
        report.checkpoint_lsn, report.snapshots_loaded
    ));
    out.push_str(&format!(
        "replayed:   {} record(s) ({} skipped, {} failed), last lsn {}\n",
        report.replayed, report.skipped, report.failed, report.last_lsn
    ));
    match &report.torn_reason {
        Some(reason) => out.push_str(&format!(
            "torn tail:  {} byte(s) truncated ({reason})\n",
            report.torn_bytes
        )),
        None => out.push_str("torn tail:  none\n"),
    }
    out.push_str("relations:\n");
    for name in db.database().relation_names() {
        let rel = db.database().relation(name).expect("listed relation");
        let secondary = rel.secondary_attrs();
        out.push_str(&format!(
            "  {name}: {} tuples in {} blocks, secondary on {secondary:?}\n",
            rel.tuple_count(),
            rel.blocks().len()
        ));
    }
    out.push_str(&format!(
        "decoded cache: {}\n",
        db.database().decoded_stats()
    ));
    out
}

/// `avqtool open <dir>` — opens (recovering if needed) a durable database
/// directory and reports its state.
pub fn open(dir: &Path) -> Result<String, CliError> {
    let (db, report) = DurableDatabase::open(dir, DbConfig::default(), SyncPolicy::Manual)?;
    Ok(render_database(&db, &report))
}

/// `avqtool checkpoint <dir>` — opens a durable database, writes fresh
/// snapshots, and truncates the log.
pub fn checkpoint(dir: &Path) -> Result<String, CliError> {
    let (mut db, report) = DurableDatabase::open(dir, DbConfig::default(), SyncPolicy::Manual)?;
    let ck = db.checkpoint()?;
    let mut out = render_database(&db, &report);
    out.push_str(&format!(
        "checkpoint: lsn {} written, {} relation(s), {} snapshot byte(s)\n",
        ck.checkpoint_lsn, ck.relations, ck.snapshot_bytes
    ));
    Ok(out)
}

/// `avqtool recover-info <dir>` — read-only inspection of a durable
/// directory: manifest contents plus a WAL scan (no state is modified and
/// no torn tail is truncated).
pub fn recover_info(dir: &Path) -> Result<String, CliError> {
    let mut out = String::new();
    match avq_wal::Manifest::read_dir(dir)? {
        Some(m) => {
            out.push_str(&format!(
                "manifest:   checkpoint lsn {}, {} relation(s)\n",
                m.checkpoint_lsn,
                m.relations.len()
            ));
            for entry in &m.relations {
                out.push_str(&format!(
                    "  {} <- {} (secondary on {:?})\n",
                    entry.name, entry.snapshot, entry.secondary_attrs
                ));
            }
        }
        None => out.push_str("manifest:   none (no checkpoint yet)\n"),
    }
    let scan = avq_wal::scan(dir.join(avq_wal::WAL_FILE))?;
    let mut kinds: Vec<(&'static str, usize)> = Vec::new();
    for (_, rec) in &scan.records {
        let kind = rec.kind();
        match kinds.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => kinds.push((kind, 1)),
        }
    }
    let breakdown: Vec<String> = kinds.iter().map(|(k, n)| format!("{k}={n}")).collect();
    out.push_str(&format!(
        "wal:        {} record(s) in {} byte(s){}{}\n",
        scan.records.len(),
        scan.valid_bytes,
        if breakdown.is_empty() { "" } else { ": " },
        breakdown.join(" ")
    ));
    out.push_str(&format!("last lsn:   {}\n", scan.last_lsn()));
    match &scan.torn_reason {
        Some(reason) => out.push_str(&format!(
            "torn tail:  {} byte(s) ({reason})\n",
            scan.torn_bytes
        )),
        None => out.push_str("torn tail:  none\n"),
    }
    Ok(out)
}

/// `avqtool dump <file.avq> [--kernel scalar|swar]` — decompress to CSV
/// (φ order).
pub fn dump(path: &Path, kernel: Option<&str>) -> Result<String, CliError> {
    let coded = load_coded(path, kernel)?;
    let schema = coded.schema().clone();
    let mut out = String::new();
    for i in 0..coded.block_count() {
        for tuple in coded.decode_block(i)? {
            let row = schema.decode_row(&tuple)?;
            let fields: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&csv::write_record(&fields));
            out.push('\n');
        }
    }
    Ok(out)
}

/// `avqtool verify <file.avq> [--deep] [--kernel scalar|swar]` — checksum,
/// structure, and order check; `--deep` additionally re-verifies every
/// block against its metadata and its own re-encoding.
pub fn verify(path: &Path, deep: bool, kernel: Option<&str>) -> Result<String, CliError> {
    let coded = load_coded(path, kernel)?; // checksum + structural checks happen here
    let tuples = check_coded_relation(&coded, deep)?;
    let mut out = format!(
        "ok: {} tuples in {} blocks, checksum valid, φ order intact",
        tuples,
        coded.block_count()
    );
    if deep {
        out.push_str(&format!(
            ", deep: {} blocks match metadata and re-encode byte-identically",
            coded.block_count()
        ));
    }
    Ok(out)
}

/// Decodes every block of `coded` in order, checking global φ order and the
/// header tuple count; with `deep`, each block must also be non-empty,
/// internally φ-sorted, agree with its [`avq_codec::BlockMeta`], and
/// re-encode to exactly its stored bytes. Returns the decoded tuple count.
fn check_coded_relation(coded: &avq_codec::CodedRelation, deep: bool) -> Result<usize, CliError> {
    let codec = coded.codec();
    let mut prev: Option<avq_schema::Tuple> = None;
    let mut tuples = 0usize;
    for i in 0..coded.block_count() {
        let run = coded.decode_block(i)?;
        for t in &run {
            if let Some(p) = &prev {
                if *t < *p {
                    return Err(format!("φ order violated in block {i}").into());
                }
            }
            prev = Some(t.clone());
            tuples += 1;
        }
        if !deep {
            continue;
        }
        let meta = coded.meta(i);
        let Some(last) = run.last() else {
            return Err(format!("block {i}: decodes to zero tuples").into());
        };
        if meta.tuple_count != run.len() || meta.min != run[0] || meta.max != *last {
            return Err(format!("block {i}: metadata disagrees with decoded contents").into());
        }
        let reencoded = codec.encode(&run)?;
        if reencoded != coded.block(i) {
            return Err(format!("block {i}: re-encode differs from stored bytes").into());
        }
    }
    if tuples != coded.tuple_count() {
        return Err(format!(
            "header claims {} tuples, decoded {tuples}",
            coded.tuple_count()
        )
        .into());
    }
    Ok(tuples)
}

/// `avqtool scrub <file.avq | db-dir> [--repair]` — verifies all CRCs and
/// structure, lists damage, and (for a database directory, with `--repair`)
/// truncates the torn log tail and rewrites the snapshot generation.
/// Returns `Err` (carrying the full report) whenever damage remains, so the
/// process exit code reflects the file's health.
pub fn scrub(path: &Path, repair: bool) -> Result<String, CliError> {
    if path.is_dir() {
        scrub_dir(path, repair)
    } else {
        scrub_file(path)
    }
}

/// Scrubs a bare `.avq` file. There is no log to replay, so damage is
/// always unrepairable — report it and point at the durable path.
fn scrub_file(path: &Path) -> Result<String, CliError> {
    let mut out = format!("scrub:     {}\n", path.display());
    match avq_file::load(path).map_err(CliError::from).and_then(|c| {
        let n = check_coded_relation(&c, true)?;
        Ok((n, c.block_count()))
    }) {
        Ok((tuples, blocks)) => {
            out.push_str(&format!(
                "container: ok ({tuples} tuples in {blocks} blocks)\nresult:    clean\n"
            ));
            Ok(out)
        }
        Err(e) => {
            out.push_str(&format!(
                "container: CORRUPT ({e})\nresult:    damaged — a bare .avq file has no log to \
                 repair from; restore it from a checkpointed database directory\n"
            ));
            Err(out.into())
        }
    }
}

/// Scrubs a durable database directory: manifest, every snapshot named by
/// it (deep-verified), the write-ahead log, and leftover temp files.
fn scrub_dir(dir: &Path, repair: bool) -> Result<String, CliError> {
    let mut out = format!("scrub:     {}\n", dir.display());
    // Damage that repair cannot undo: data before the checkpoint exists
    // only in the snapshots, and a manifest names the only valid generation.
    let mut fatal: Vec<String> = Vec::new();
    // Damage the WAL discipline repairs: torn tails and stale temp files.
    let mut fixable: Vec<String> = Vec::new();

    match avq_wal::Manifest::read_dir(dir) {
        Ok(None) => out.push_str("manifest:  none (no checkpoint yet)\n"),
        Ok(Some(m)) => {
            out.push_str(&format!(
                "manifest:  checkpoint lsn {}, {} relation(s)\n",
                m.checkpoint_lsn,
                m.relations.len()
            ));
            for entry in &m.relations {
                let snap = dir.join(&entry.snapshot);
                match avq_file::load(&snap)
                    .map_err(CliError::from)
                    .and_then(|c| check_coded_relation(&c, true))
                {
                    Ok(tuples) => out.push_str(&format!(
                        "  {} ({}): ok, {tuples} tuples\n",
                        entry.snapshot, entry.name
                    )),
                    Err(e) => {
                        out.push_str(&format!(
                            "  {} ({}): CORRUPT ({e})\n",
                            entry.snapshot, entry.name
                        ));
                        fatal.push(format!("snapshot {} is damaged", entry.snapshot));
                    }
                }
            }
        }
        Err(e) => fatal.push(format!("manifest unreadable: {e}")),
    }

    match avq_wal::scan(dir.join(avq_wal::WAL_FILE)) {
        Ok(scan) => {
            out.push_str(&format!(
                "wal:       {} record(s), last lsn {}\n",
                scan.records.len(),
                scan.last_lsn()
            ));
            if scan.torn_bytes > 0 {
                let reason = scan.torn_reason.as_deref().unwrap_or("unknown");
                fixable.push(format!(
                    "torn log tail: {} byte(s) ({reason})",
                    scan.torn_bytes
                ));
            }
        }
        Err(e) => fatal.push(format!("wal unreadable: {e}")),
    }

    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(name) = entry.file_name().to_str() {
                if name.ends_with(".tmp") {
                    fixable.push(format!("leftover temp file {name}"));
                }
            }
        }
    }

    for d in &fatal {
        out.push_str(&format!(
            "damage:    {d} (unrepairable: the data it holds lives nowhere else)\n"
        ));
    }
    for d in &fixable {
        out.push_str(&format!("damage:    {d}\n"));
    }
    if !fatal.is_empty() {
        out.push_str("result:    damaged beyond repair\n");
        return Err(out.into());
    }
    if fixable.is_empty() {
        out.push_str("result:    clean\n");
        return Ok(out);
    }
    if !repair {
        out.push_str("result:    damaged (re-run with --repair)\n");
        return Err(out.into());
    }

    // Repair: the ordinary recovery path truncates the torn tail and
    // replays the surviving records; a fresh checkpoint then rewrites the
    // snapshot generation and clears stale temp files.
    let (mut db, report) = DurableDatabase::open(dir, DbConfig::default(), SyncPolicy::Manual)?;
    let ck = db.checkpoint()?;
    out.push_str(&format!(
        "repair:    truncated {} torn byte(s), replayed {} record(s), \
         new checkpoint at lsn {} ({} relation(s))\n",
        report.torn_bytes, report.replayed, ck.checkpoint_lsn, ck.relations
    ));
    drop(db);
    // Re-verify the repaired generation end to end.
    let manifest = avq_wal::Manifest::read_dir(dir)?.ok_or("repair left no manifest")?;
    for entry in &manifest.relations {
        let coded = avq_file::load(dir.join(&entry.snapshot))?;
        check_coded_relation(&coded, true)
            .map_err(|e| format!("post-repair snapshot {} fails: {e}", entry.snapshot))?;
    }
    out.push_str("result:    repaired and re-verified\n");
    Ok(out)
}

/// `avqtool inject <file> <seed> <k>` — flips `k` seeded bits of any file
/// in place (the scrub/repair drill: damage a copy, watch scrub find it).
pub fn inject(path: &Path, seed: u64, k: usize) -> Result<String, CliError> {
    let offsets = avq_storage::corrupt_file_in_place(path, seed, k)?;
    let rendered: Vec<String> = offsets.iter().map(|o| o.to_string()).collect();
    Ok(format!(
        "injected {} bit flip(s) into {} (seed {seed}) at byte offset(s): {}\n",
        offsets.len(),
        path.display(),
        rendered.join(", ")
    ))
}

/// `avqtool query <file.avq> <attr> <lo> <hi> [--kernel scalar|swar]` —
/// selection with block pruning on the clustering prefix (attribute 0).
pub fn query(
    path: &Path,
    attr: &str,
    lo: &str,
    hi: &str,
    kernel: Option<&str>,
) -> Result<String, CliError> {
    let coded = load_coded(path, kernel)?;
    let schema = coded.schema().clone();
    let attr_idx = schema.index_of(attr)?;
    let domain = schema.attribute(attr_idx).domain();
    let lo = parse_value(domain, lo)?;
    let hi = parse_value(domain, hi)?;
    let lo_ord = domain.encode(&lo)?;
    let hi_ord = domain.encode(&hi)?;

    let mut out = String::new();
    let mut blocks_read = 0usize;
    for i in 0..coded.block_count() {
        // Prune on the clustering prefix using block bounds.
        if attr_idx == 0 {
            let meta = coded.meta(i);
            if meta.min.digits()[0] > hi_ord || meta.max.digits()[0] < lo_ord {
                continue;
            }
        }
        blocks_read += 1;
        for tuple in coded.decode_block(i)? {
            let v = tuple.digits()[attr_idx];
            if v >= lo_ord && v <= hi_ord {
                let row = schema.decode_row(&tuple)?;
                let fields: Vec<String> = row.iter().map(|x| x.to_string()).collect();
                out.push_str(&csv::write_record(&fields));
                out.push('\n');
            }
        }
    }
    out.push_str(&format!(
        "# {blocks_read} of {} blocks decoded\n",
        coded.block_count()
    ));
    Ok(out)
}

fn parse_value(domain: &avq_schema::Domain, s: &str) -> Result<Value, CliError> {
    Ok(match domain {
        avq_schema::Domain::Uint { .. } => Value::Uint(s.parse()?),
        avq_schema::Domain::IntRange { .. } => Value::Int(s.parse()?),
        avq_schema::Domain::Enumerated { .. } => Value::from(s),
    })
}

/// `avqtool convert <in.avq> <out.avq> <mode> [block_bytes]` — re-encode an
/// existing file under a different coding mode and/or block size.
pub fn convert(
    in_path: &Path,
    out_path: &Path,
    mode: &str,
    block_capacity: Option<usize>,
) -> Result<String, CliError> {
    let coded = avq_file::load(in_path)?;
    let old = coded.stats();
    let relation = coded.decompress()?;
    let options = CodecOptions {
        mode: parse_mode(mode)?,
        rep: RepChoice::Median,
        block_capacity: block_capacity.unwrap_or(coded.options().block_capacity),
        ..Default::default()
    };
    let recoded = compress(&relation, options)?;
    avq_file::save(out_path, &recoded)?;
    let new = recoded.stats();
    Ok(format!(
        "converted {} ({}, {} blocks) -> {} ({}, {} blocks)
",
        in_path.display(),
        coded.options().mode,
        old.coded_blocks,
        out_path.display(),
        options.mode,
        new.coded_blocks
    ))
}

/// Loads an `.avq` file into an in-memory [`Database`] holding one relation
/// named after the file stem. Lets `explain`/`explain-join` run against
/// plain files, not only durable directories.
fn database_from_avq(path: &Path, kernel: Option<&str>) -> Result<(Database, String), CliError> {
    let coded = load_coded(path, kernel)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("relation")
        .to_owned();
    let config = DbConfig {
        codec: coded.options(),
        ..Default::default()
    };
    let mut db = Database::new(config);
    db.create_relation_from_coded(&name, &coded)?;
    Ok((db, name))
}

/// A SQL target: either a durable database directory or an `.avq` file
/// loaded into a single-relation in-memory database.
enum SqlTarget {
    Durable(Box<DurableDatabase>),
    Memory(Database),
}

impl SqlTarget {
    fn open(path: &Path, kernel: Option<&str>) -> Result<(Self, String), CliError> {
        if path.is_dir() {
            let (db, _) = DurableDatabase::open(path, DbConfig::default(), SyncPolicy::Manual)?;
            let names = db.database().relation_names().join(", ");
            Ok((SqlTarget::Durable(Box::new(db)), names))
        } else {
            let (db, name) = database_from_avq(path, kernel)?;
            Ok((SqlTarget::Memory(db), name))
        }
    }

    fn db(&self) -> &Database {
        match self {
            SqlTarget::Durable(d) => d.database(),
            SqlTarget::Memory(d) => d,
        }
    }
}

/// Resource-governance flags shared by the one-shot and interactive `sql`
/// forms: `--timeout-ms`, `--max-decoded-mb`, and `--max-rows`.
#[derive(Debug, Default, Clone, Copy)]
pub struct BudgetFlags {
    /// `--timeout-ms <n>`: deadline on the simulated disk's virtual clock.
    pub timeout_ms: Option<u64>,
    /// `--max-decoded-mb <n>`: coded-bytes decode quota, in MiB.
    pub max_decoded_mb: Option<u64>,
    /// `--max-rows <n>`: rows-examined quota.
    pub max_rows: Option<u64>,
}

impl BudgetFlags {
    fn is_empty(&self) -> bool {
        self.timeout_ms.is_none() && self.max_decoded_mb.is_none() && self.max_rows.is_none()
    }

    /// The [`avq_db::QueryBudget`] these flags describe.
    fn budget(&self) -> avq_db::QueryBudget {
        let mut b = avq_db::QueryBudget::unlimited();
        if let Some(ms) = self.timeout_ms {
            b = b.with_timeout_ms(ms as f64);
        }
        if let Some(mb) = self.max_decoded_mb {
            b = b.with_max_decoded_bytes(mb << 20);
        }
        if let Some(n) = self.max_rows {
            b = b.with_max_rows(n);
        }
        b
    }

    /// A governance context for one statement against `db` — disabled
    /// (zero-overhead) when no flag was given.
    fn gov_for(&self, db: &Database) -> avq_db::GovCtx {
        if self.is_empty() {
            avq_db::GovCtx::unlimited()
        } else {
            avq_db::GovCtx::new(self.budget(), db.clock().clone())
        }
    }
}

/// `avqtool sql <file.avq | db-dir> <statement>` — parse, plan, and run one
/// SQL statement (see `avq_sql` for the dialect) under the governance
/// budget described by `flags`.
pub fn sql(
    path: &Path,
    stmt: &str,
    kernel: Option<&str>,
    flags: &BudgetFlags,
) -> Result<String, CliError> {
    let (target, _) = SqlTarget::open(path, kernel)?;
    let gov = flags.gov_for(target.db());
    let outcome = avq_sql::run_governed(target.db(), stmt, &avq_obs::TraceCtx::disabled(), &gov)?;
    Ok(format!("{}\n", outcome.render()))
}

/// A single-query collector honouring `--sample` / `--budget-ms`.
fn trace_collector(sample: Option<u64>, budget_ms: Option<u64>) -> avq_obs::TraceCollector {
    let policy = match sample {
        None | Some(0) | Some(1) => avq_obs::SamplingPolicy::Always,
        Some(n) => avq_obs::SamplingPolicy::OneIn(n),
    };
    let collector = avq_obs::TraceCollector::new(8, policy);
    if let Some(ms) = budget_ms {
        collector.set_slow_budget(std::time::Duration::from_millis(ms));
    }
    collector
}

/// Runs `stmt` under a fresh trace, returning the statement outcome, the
/// sampled trace (if kept), and the collector (for the slow-query log).
fn run_one_with_trace(
    path: &Path,
    stmt: &str,
    kernel: Option<&str>,
    collector: avq_obs::TraceCollector,
    flags: &BudgetFlags,
) -> Result<
    (
        avq_sql::SqlOutcome,
        Option<std::sync::Arc<avq_obs::TraceData>>,
        avq_obs::TraceCollector,
    ),
    CliError,
> {
    let (target, _) = SqlTarget::open(path, kernel)?;
    let gov = flags.gov_for(target.db());
    let ctx = collector.begin();
    let result = avq_sql::run_governed(target.db(), stmt, &ctx, &gov);
    let data = collector.finish(ctx);
    Ok((result?, data, collector))
}

/// `avqtool sql <target> "<statement>" --trace [--sample n] [--budget-ms n]`
/// — run one statement and print its span tree (plus the slow-query report
/// when the statement blew the budget).
pub fn sql_with_trace(
    path: &Path,
    stmt: &str,
    kernel: Option<&str>,
    sample: Option<u64>,
    budget_ms: Option<u64>,
    flags: &BudgetFlags,
) -> Result<String, CliError> {
    let (outcome, data, collector) = run_one_with_trace(
        path,
        stmt,
        kernel,
        trace_collector(sample, budget_ms),
        flags,
    )?;
    let mut out = format!("{}\n", outcome.render());
    match data {
        Some(d) => {
            out.push('\n');
            out.push_str(&d.render_text(false));
        }
        None => out.push_str("\n(trace sampled out)\n"),
    }
    for d in collector.slow_queries() {
        out.push('\n');
        out.push_str(&d.render_slow(false));
    }
    Ok(out)
}

/// `avqtool trace export <target> "<statement>" [--format chrome|jsonl|text]`
/// — run one statement fully traced and emit the trace in the requested
/// format (default: Chrome trace-event JSON for `chrome://tracing`).
pub fn trace_export(
    path: &Path,
    stmt: &str,
    format: &str,
    kernel: Option<&str>,
) -> Result<String, CliError> {
    let collector = trace_collector(None, None);
    let (_, data, _) = run_one_with_trace(path, stmt, kernel, collector, &BudgetFlags::default())?;
    let d = data.ok_or("trace was not captured")?;
    match format {
        "chrome" => Ok(format!("{}\n", d.render_chrome())),
        "jsonl" => Ok(d.render_jsonl()),
        "text" => Ok(d.render_text(false)),
        other => Err(format!("unknown trace format {other:?} (chrome|jsonl|text)").into()),
    }
}

/// `avqtool trace slow <target> "<statement>" [--budget-ms n]` — run one
/// statement with the slow-query log armed (default budget: 0 ms, so the
/// statement always qualifies) and print the slow-query report.
pub fn trace_slow(
    path: &Path,
    stmt: &str,
    kernel: Option<&str>,
    budget_ms: Option<u64>,
) -> Result<String, CliError> {
    let collector = trace_collector(None, Some(budget_ms.unwrap_or(0)));
    let (_, _, collector) =
        run_one_with_trace(path, stmt, kernel, collector, &BudgetFlags::default())?;
    let slow = collector.slow_queries();
    if slow.is_empty() {
        return Ok("no slow queries (root span under budget)\n".to_owned());
    }
    Ok(slow
        .iter()
        .map(|d| d.render_slow(false))
        .collect::<Vec<_>>()
        .join("\n"))
}

/// The interactive loop behind `avqtool sql <target>`, split out over
/// generic reader/writer so tests can drive it without a terminal.
/// Statements run one per line under the governance budget in `flags`;
/// `\cancel` arms cooperative cancellation for the next statement (it
/// starts executing and trips at its first poll point), and `\q`, `quit`,
/// or `exit` leaves.
pub fn sql_shell<R, W>(
    path: &Path,
    input: R,
    mut output: W,
    flags: &BudgetFlags,
) -> Result<(), CliError>
where
    R: std::io::BufRead,
    W: std::io::Write,
{
    let (target, names) = SqlTarget::open(path, None)?;
    writeln!(output, "avq-sql — relations: {names} (\\q to quit)")?;
    write!(output, "avq> ")?;
    output.flush()?;
    let mut pending_cancel = false;
    for line in input.lines() {
        let line = line?;
        let stmt = line.trim();
        if matches!(stmt, "\\q" | "quit" | "exit") {
            break;
        }
        if stmt == "\\cancel" {
            pending_cancel = true;
            writeln!(output, "cancel armed: the next statement will be cancelled")?;
        } else if !stmt.is_empty() {
            // A pending cancel needs an *enabled* context even when no
            // budget flag was given — a disabled one has nothing to trip.
            let gov = if pending_cancel {
                avq_db::GovCtx::new(flags.budget(), target.db().clock().clone())
            } else {
                flags.gov_for(target.db())
            };
            if pending_cancel {
                gov.cancel();
                pending_cancel = false;
            }
            match avq_sql::run_governed(target.db(), stmt, &avq_obs::TraceCtx::disabled(), &gov) {
                Ok(outcome) => writeln!(output, "{}", outcome.render())?,
                Err(e) => writeln!(output, "error: {e}")?,
            }
        }
        write!(output, "avq> ")?;
        output.flush()?;
    }
    writeln!(output)?;
    Ok(())
}

/// `avqtool sql <target>` with no statement: a REPL on stdin/stdout.
pub fn sql_repl(path: &Path, flags: &BudgetFlags) -> Result<String, CliError> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    sql_shell(path, stdin.lock(), stdout.lock(), flags)?;
    Ok(String::new())
}

/// Quotes `raw` as a SQL literal for `domain`: enumerated members are
/// single-quoted, numbers pass through.
fn sql_literal(domain: &avq_schema::Domain, raw: &str) -> String {
    match domain {
        avq_schema::Domain::Enumerated { .. } => format!("'{raw}'"),
        _ => raw.to_owned(),
    }
}

fn explain_select_sql(
    db: &Database,
    name: &str,
    attr: &str,
    lo: &str,
    hi: &str,
) -> Result<String, CliError> {
    let rel = db.relation(name)?;
    let idx = rel.schema().index_of(attr)?;
    let domain = rel.schema().attribute(idx).domain();
    let stmt = format!(
        "explain analyze select * from {name} where {attr} between {} and {}",
        sql_literal(domain, lo),
        sql_literal(domain, hi)
    );
    Ok(format!("{}\n", avq_sql::run(db, &stmt)?.render()))
}

/// `avqtool explain <file.avq> <attribute> <lo> <hi> [--kernel scalar|swar]`
/// — alias for `avqtool sql <file> "explain analyze select * …"` over the
/// file's relation.
pub fn explain_file(
    path: &Path,
    attr: &str,
    lo: &str,
    hi: &str,
    kernel: Option<&str>,
) -> Result<String, CliError> {
    let (db, name) = database_from_avq(path, kernel)?;
    explain_select_sql(&db, &name, attr, lo, hi)
}

/// `avqtool explain <db-dir> <relation> <attribute> <lo> <hi>` — the same
/// against a relation of a durable database directory.
pub fn explain_dir(
    dir: &Path,
    relation: &str,
    attr: &str,
    lo: &str,
    hi: &str,
) -> Result<String, CliError> {
    let (db, _) = DurableDatabase::open(dir, DbConfig::default(), SyncPolicy::Manual)?;
    explain_select_sql(db.database(), relation, attr, lo, hi)
}

fn explain_join_sql(
    db: &Database,
    outer: &str,
    outer_attr: &str,
    inner: &str,
    inner_attr: &str,
) -> Result<String, CliError> {
    let stmt = if outer == inner {
        format!(
            "explain analyze select * from {outer} a join {inner} b on a.{outer_attr} = b.{inner_attr}"
        )
    } else {
        format!(
            "explain analyze select * from {outer} join {inner} \
             on {outer}.{outer_attr} = {inner}.{inner_attr}"
        )
    };
    Ok(format!("{}\n", avq_sql::run(db, &stmt)?.render()))
}

/// `avqtool explain-join <file.avq> <outer_attr> <inner_attr>` — alias for
/// an `EXPLAIN ANALYZE` self-equijoin through the SQL planner.
pub fn explain_join_file(
    path: &Path,
    outer_attr: &str,
    inner_attr: &str,
) -> Result<String, CliError> {
    let (db, name) = database_from_avq(path, None)?;
    explain_join_sql(&db, &name, outer_attr, &name, inner_attr)
}

/// `avqtool explain-join <db-dir> <outer> <outer_attr> <inner> <inner_attr>`
/// — the same for two relations of a durable database directory.
pub fn explain_join_dir(
    dir: &Path,
    outer: &str,
    outer_attr: &str,
    inner: &str,
    inner_attr: &str,
) -> Result<String, CliError> {
    let (db, _) = DurableDatabase::open(dir, DbConfig::default(), SyncPolicy::Manual)?;
    explain_join_sql(db.database(), outer, outer_attr, inner, inner_attr)
}

/// Distinguishes the temp directories of concurrent `stats` workloads
/// (test threads share a process id).
static STATS_RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Runs a small end-to-end workload — bulk load (codec encode), WAL
/// commits with fsync, a secondary index, a selection, a self-join, an
/// aggregate, and a checkpoint — in a throwaway temp directory so every
/// `avq.*` metric family has live data in this process.
fn exercise_builtin() -> Result<(), CliError> {
    use avq_schema::{Domain, Schema};
    let run = STATS_RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "avqtool-stats-workload-{}-{run}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let result = (|| -> Result<(), CliError> {
        let schema = Schema::from_pairs(vec![("k", Domain::uint(64)?), ("v", Domain::uint(256)?)])?;
        let relation = Relation::from_rows(
            schema,
            (0..512u64).map(|i| vec![Value::Uint(i % 64), Value::Uint((i * 7) % 256)]),
        )?;
        let (mut db, _) = DurableDatabase::open(&dir, DbConfig::default(), SyncPolicy::Always)?;
        db.create_relation("sample", &relation)?;
        db.create_secondary_index("sample", 1)?;
        db.insert_row("sample", &[Value::Uint(63), Value::Uint(255)])?;
        let _ = db
            .database()
            .select_range("sample", "v", &Value::Uint(10), &Value::Uint(40))?;
        let rel = db.database().relation("sample")?;
        let _ = avq_db::equijoin(rel, 1, rel, 1)?;
        let _ = rel.aggregate(avq_db::Aggregate::Count, &avq_db::Selection::all())?;
        // Drive the SQL path (parse/plan/exec span families) and one fully
        // traced statement so the `avq.sql.*` and `avq.trace.*` families
        // are live in every stats snapshot.
        let _ = avq_sql::run(
            db.database(),
            "select k, count(*) from sample where v between 10 and 40 group by k",
        )?;
        let collector = avq_obs::TraceCollector::new(1, avq_obs::SamplingPolicy::Always);
        let ctx = collector.begin();
        let _ = avq_sql::run_traced(
            db.database(),
            "select a.k from sample a join sample b on a.k = b.k limit 4",
            &ctx,
        )?;
        let _ = collector.finish(ctx);
        db.checkpoint()?;
        Ok(())
    })();
    std::fs::remove_dir_all(&dir).ok();
    result
}

/// Renders the global metrics registry in the requested format.
fn render_metrics(format: &str) -> Result<String, CliError> {
    let snap = avq_obs::global().snapshot();
    match format {
        "prom" | "prometheus" => Ok(snap.render_prometheus()),
        "json" => Ok(snap.render_json()),
        other => Err(format!("unknown format {other:?} (prom|json)").into()),
    }
}

/// `avqtool stats [--format prom|json] [file.avq | db-dir]` — runs the
/// built-in exercise workload so every metric family is populated, also
/// exercises `path` when given (an `.avq` file is fully decoded; a
/// database directory is opened and recovered), then renders the global
/// metrics registry.
pub fn stats(path: Option<&Path>, format: &str) -> Result<String, CliError> {
    exercise_builtin()?;
    if let Some(p) = path {
        if p.is_dir() {
            let _ = open(p)?;
        } else {
            let coded = avq_file::load(p)?;
            for i in 0..coded.block_count() {
                let _ = coded.decode_block(i)?;
            }
        }
    }
    render_metrics(format)
}

/// Writes a snapshot of the global metrics registry to `path` (the
/// `--metrics-out` flag): Prometheus text for a `.prom`/`.txt` extension,
/// JSON otherwise.
pub fn write_metrics(path: &Path) -> Result<String, CliError> {
    let format = match path.extension().and_then(|e| e.to_str()) {
        Some("prom") | Some("txt") => "prom",
        _ => "json",
    };
    std::fs::write(path, render_metrics(format)?)?;
    Ok(format!("metrics written to {}\n", path.display()))
}

/// Usage text for `avqtool`.
pub const USAGE: &str = "\
avqtool — compressed relational tables (AVQ, ICDE 1995)

USAGE:
  avqtool create <schema.spec> <data.csv> <out.avq> [mode] [block_bytes]
  avqtool info   <file.avq | db-dir>
  avqtool dump   <file.avq>
  avqtool query  <file.avq> <attribute> <lo> <hi>
  avqtool convert <in.avq> <out.avq> <mode> [block_bytes]
  avqtool verify <file.avq> [--deep]
  avqtool scrub  <file.avq | db-dir> [--repair]
  avqtool inject <file> <seed> <k>
  avqtool open   <db-dir>
  avqtool checkpoint <db-dir>
  avqtool recover-info <db-dir>
  avqtool stats  [--format prom|json] [file.avq | db-dir]
  avqtool explain <file.avq> <attribute> <lo> <hi>
  avqtool explain <db-dir> <relation> <attribute> <lo> <hi>
  avqtool explain-join <file.avq> <outer_attr> <inner_attr>
  avqtool explain-join <db-dir> <outer> <outer_attr> <inner> <inner_attr>
  avqtool sql <file.avq | db-dir> \"<statement>\"
  avqtool sql <file.avq | db-dir>            (interactive shell; \\cancel
                                              arms cancellation of the
                                              next statement)
  avqtool sql <target> \"<statement>\" --trace [--sample n] [--budget-ms n]
  avqtool trace export <target> \"<statement>\" [--format chrome|jsonl|text]
  avqtool trace slow <target> \"<statement>\" [--budget-ms n]

FLAGS (any command):
  --metrics-out <path>   write a metrics snapshot after the command
                         (.prom/.txt -> Prometheus text, else JSON)
  --kernel scalar|swar   decode kernel for dump/query/verify/explain
                         (default: swar; scalar is the reference path)
  --trace                print the span tree after `sql` (plus the
                         slow-query report when over --budget-ms)
  --sample <n>           keep one trace in n (default: every trace)
  --budget-ms <n>        slow-query latency budget in milliseconds
  --timeout-ms <n>       `sql` deadline on the virtual disk clock; a
                         statement over it fails with a governance error
  --max-decoded-mb <n>   `sql` quota on coded MiB decoded per statement
  --max-rows <n>         `sql` quota on rows examined per statement

MODES: fieldwise | avq | chained (default) | bits

schema.spec format, one attribute per line:
  name:uint:<size> | name:int:<min>:<max> | name:enum:<v1>,<v2>,…
";

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("avqtool-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const SPEC: &str = "dept:enum:eng,hr,ops\nyears:uint:50\nbonus:int:-5:5\n";

    fn sample_csv(rows: usize) -> String {
        let mut out = String::new();
        for i in 0..rows {
            out.push_str(&format!(
                "{},{},{}\n",
                ["eng", "hr", "ops"][i % 3],
                i % 50,
                (i % 11) as i64 - 5
            ));
        }
        out
    }

    fn setup(tag: &str, rows: usize) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = tmpdir(tag);
        let spec_path = dir.join("schema.spec");
        let csv_path = dir.join("data.csv");
        let avq_path = dir.join("data.avq");
        std::fs::write(&spec_path, SPEC).unwrap();
        std::fs::write(&csv_path, sample_csv(rows)).unwrap();
        let msg = create(&spec_path, &csv_path, &avq_path, Some("chained"), Some(512)).unwrap();
        assert!(msg.contains("wrote"));
        (dir, avq_path)
    }

    #[test]
    fn create_info_verify() {
        let (dir, avq_path) = setup("civ", 500);
        let info_out = info(&avq_path).unwrap();
        assert!(info_out.contains("500 in"));
        assert!(info_out.contains("dept:enum:eng,hr,ops"));
        let verify_out = verify(&avq_path, false, None).unwrap();
        assert!(verify_out.starts_with("ok: 500 tuples"));
        // Deep verification extends, never replaces, the pinned line.
        let deep_out = verify(&avq_path, true, None).unwrap();
        assert!(deep_out.starts_with(&verify_out), "{deep_out}");
        assert!(
            deep_out.contains("deep:") && deep_out.contains("re-encode byte-identically"),
            "{deep_out}"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn dump_roundtrips_rows() {
        let (dir, avq_path) = setup("dump", 200);
        let out = dump(&avq_path, None).unwrap();
        let records = csv::parse(&out).unwrap();
        assert_eq!(records.len(), 200);
        // Every dumped row re-encodes under the schema (losslessness at the
        // CLI boundary).
        let original = csv::parse(&sample_csv(200)).unwrap();
        let mut dumped = records.clone();
        dumped.sort();
        let mut orig_sorted = original.clone();
        orig_sorted.sort();
        assert_eq!(dumped, orig_sorted);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn query_filters_and_prunes() {
        let (dir, avq_path) = setup("query", 300);
        let out = query(&avq_path, "years", "10", "12", None).unwrap();
        let lines: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
        assert!(!lines.is_empty());
        for l in &lines {
            let year: u64 = l.split(',').nth(1).unwrap().parse().unwrap();
            assert!((10..=12).contains(&year));
        }
        // Clustering-prefix query reports pruning.
        let out = query(&avq_path, "dept", "eng", "eng", None).unwrap();
        let note = out.lines().last().unwrap();
        assert!(note.starts_with("# "));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn create_rejects_bad_rows() {
        let dir = tmpdir("bad");
        let spec_path = dir.join("schema.spec");
        let csv_path = dir.join("data.csv");
        std::fs::write(&spec_path, SPEC).unwrap();
        std::fs::write(&csv_path, "eng,999,0\n").unwrap(); // years out of range
        let err = create(&spec_path, &csv_path, &dir.join("x.avq"), None, None).unwrap_err();
        assert!(err.to_string().contains("not in domain"));
        std::fs::write(&csv_path, "eng,1\n").unwrap(); // arity
        let err = create(&spec_path, &csv_path, &dir.join("x.avq"), None, None).unwrap_err();
        assert!(err.to_string().contains("expected 3 fields"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(parse_mode("bits").unwrap(), CodingMode::AvqChainedBits);
        assert_eq!(parse_mode("fieldwise").unwrap(), CodingMode::FieldWise);
        assert!(parse_mode("zstd").is_err());
    }

    #[test]
    fn convert_changes_mode() {
        let (dir, avq_path) = setup("convert", 400);
        let out = dir.join("bits.avq");
        let msg = convert(&avq_path, &out, "bits", None).unwrap();
        assert!(msg.contains("AVQ-chained-bits"));
        // Same logical contents under the new coding.
        assert_eq!(dump(&out, None).unwrap(), dump(&avq_path, None).unwrap());
        let info_out = info(&out).unwrap();
        assert!(info_out.contains("AVQ-chained-bits"));
        std::fs::remove_dir_all(dir).ok();
    }

    fn seeded_db_dir(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = tmpdir(tag);
        let db_dir = dir.join("db");
        let schema = avq_schema::Schema::from_pairs(vec![
            (
                "dept",
                avq_schema::Domain::enumerated(vec!["eng", "hr"]).unwrap(),
            ),
            ("id", avq_schema::Domain::uint(10_000).unwrap()),
        ])
        .unwrap();
        let relation = Relation::from_rows(
            schema,
            (0..100u64).map(|i| vec![Value::from(["eng", "hr"][(i % 2) as usize]), Value::Uint(i)]),
        )
        .unwrap();
        let (mut db, _) =
            DurableDatabase::open(&db_dir, DbConfig::default(), SyncPolicy::Always).unwrap();
        db.create_relation("people", &relation).unwrap();
        db.create_secondary_index("people", 1).unwrap();
        db.insert_row("people", &[Value::from("hr"), Value::Uint(9999)])
            .unwrap();
        (dir, db_dir)
    }

    #[test]
    fn open_pins_recovery_and_cache_stat_format() {
        let (dir, db_dir) = seeded_db_dir("open");
        let out = open(&db_dir).unwrap();
        assert!(
            out.contains("checkpoint: lsn 0, 0 snapshot(s) loaded"),
            "{out}"
        );
        assert!(
            out.contains("replayed:   3 record(s) (0 skipped, 0 failed), last lsn 3"),
            "{out}"
        );
        assert!(out.contains("torn tail:  none"), "{out}");
        assert!(
            out.contains("  people: 101 tuples in") && out.contains("secondary on [1]"),
            "{out}"
        );
        // The decoded-cache line is the operator-facing format; pin it.
        let cache_line = out
            .lines()
            .find(|l| l.starts_with("decoded cache: "))
            .expect("cache line present");
        for field in ["hits=", "misses=", "evictions=", "hit_rate="] {
            assert!(cache_line.contains(field), "{cache_line}");
        }
        assert!(cache_line.ends_with('%'), "{cache_line}");
        // `info` on a directory is the same report.
        assert_eq!(info(&db_dir).unwrap(), out);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn checkpoint_and_recover_info_pin_formats() {
        let (dir, db_dir) = seeded_db_dir("ckpt");
        // Before any checkpoint: no manifest, three live records.
        let ri = recover_info(&db_dir).unwrap();
        assert!(ri.contains("manifest:   none (no checkpoint yet)"), "{ri}");
        assert!(ri.contains("wal:        3 record(s)"), "{ri}");
        assert!(
            ri.contains("create-relation=1 create-secondary-index=1 insert=1"),
            "{ri}"
        );
        assert!(ri.contains("last lsn:   3"), "{ri}");

        let out = checkpoint(&db_dir).unwrap();
        assert!(
            out.contains("checkpoint: lsn 3 written, 1 relation(s)"),
            "{out}"
        );

        let ri = recover_info(&db_dir).unwrap();
        assert!(
            ri.contains("manifest:   checkpoint lsn 3, 1 relation(s)"),
            "{ri}"
        );
        assert!(
            ri.contains("  people <- snap-3-0.avq (secondary on [1])"),
            "{ri}"
        );
        assert!(
            ri.contains("wal:        1 record(s)") && ri.contains("checkpoint=1"),
            "{ri}"
        );
        assert!(ri.contains("torn tail:  none"), "{ri}");

        // Reopening after the checkpoint loads the snapshot and replays
        // nothing.
        let out = open(&db_dir).unwrap();
        assert!(
            out.contains("checkpoint: lsn 3, 1 snapshot(s) loaded"),
            "{out}"
        );
        // Only the checkpoint marker remains in the log; it is skipped.
        assert!(
            out.contains("replayed:   0 record(s) (1 skipped, 0 failed), last lsn 4"),
            "{out}"
        );
        assert!(out.contains("  people: 101 tuples in"), "{out}");
        std::fs::remove_dir_all(dir).ok();
    }

    /// Splits one explain table row into its five trimmed columns.
    fn explain_columns(line: &str) -> Vec<String> {
        line.split('|').map(|c| c.trim().to_owned()).collect()
    }

    // Satellite: golden test pinning the `EXPLAIN ANALYZE` output format
    // now produced by the SQL planner — header text, costed plan tree,
    // stage names, and a parseable total row.
    #[test]
    fn explain_select_golden_format() {
        let (dir, avq_path) = setup("explain", 600);
        let out = explain_file(&avq_path, "years", "5", "20", None).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "EXPLAIN ANALYZE: select * from data where years between 5 and 20"
        );
        assert_eq!(lines[1], "plan: full-scan");
        // Costed tree: project over the chosen scan, estimates paired with
        // actuals via the shared pre-order node numbering.
        assert!(
            lines[2].starts_with("-> project dept, years, bonus ("),
            "{out}"
        );
        assert!(
            lines[3]
                .trim_start()
                .starts_with("-> scan data via full-scan"),
            "{out}"
        );
        for line in &lines[2..4] {
            for field in ["est_rows=", "est_blocks=", "est_cost=", "actual_rows=192"] {
                assert!(line.contains(field), "missing {field} in {line}");
            }
        }
        assert!(lines[4].starts_with("plans considered: "), "{out}");
        assert!(lines[4].contains(", estimated cost: "), "{out}");
        assert_eq!(
            lines[5],
            "stage         |       rows |   blocks | cache_hits |    elapsed"
        );
        assert!(
            lines[6].chars().all(|c| c == '-' || c == '+'),
            "{}",
            lines[6]
        );
        let stages: Vec<String> = lines[7..]
            .iter()
            .map(|l| explain_columns(l)[0].clone())
            .collect();
        assert_eq!(stages, ["scan", "filter", "project", "total"]);
        for line in &lines[7..] {
            let cols = explain_columns(line);
            assert_eq!(cols.len(), 5, "{line}");
            for col in &cols[1..4] {
                col.parse::<u64>()
                    .unwrap_or_else(|_| panic!("non-numeric {col:?} in {line}"));
            }
            assert!(cols[4].ends_with('s'), "elapsed column: {line}");
        }
        // The filter stage's row count is the result cardinality: years are
        // i % 50 over 600 rows, so 12 full cycles × 16 matching values.
        let filter = explain_columns(lines[8]);
        assert_eq!(filter[1], "192");
        let total = explain_columns(lines[10]);
        assert_eq!(total[1], "192");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn explain_join_golden_format_and_cache_hits() {
        let (dir, avq_path) = setup("xjoin", 300);
        let out = explain_join_file(&avq_path, "years", "years").unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "EXPLAIN ANALYZE: select * from data a join data b on a.years = b.years"
        );
        // No secondary index in a bare .avq load, so the planner must pick
        // the block-nested-loop strategy.
        assert_eq!(lines[1], "plan: block-nested-loop");
        assert!(
            out.contains("block-nested-loop join b on a.years = b.years"),
            "{out}"
        );
        let header = lines
            .iter()
            .position(|l| l.starts_with("stage "))
            .expect("stage table present");
        let stages: Vec<String> = lines[header + 2..]
            .iter()
            .map(|l| explain_columns(l)[0].clone())
            .collect();
        assert_eq!(
            stages,
            ["scan", "filter", "scan-inner", "join", "project", "total"]
        );
        // The self-join re-reads blocks the outer scan already decoded, so
        // the inner scan must report cache hits.
        let inner = explain_columns(lines[header + 4]);
        assert_eq!(inner[0], "scan-inner");
        assert!(inner[3].parse::<u64>().unwrap() > 0, "{out}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn explain_on_db_dir_uses_relation_name() {
        let (dir, db_dir) = seeded_db_dir("explain-dir");
        let out = explain_dir(&db_dir, "people", "id", "10", "30").unwrap();
        assert!(
            out.starts_with("EXPLAIN ANALYZE: select * from people where id between 10 and 30"),
            "{out}"
        );
        // The seeded relation is a single warm block, so the cost model
        // correctly prices the full scan below any index descent — unlike
        // the old operator, which always probed when an index existed.
        assert!(out.contains("plan: full-scan"), "{out}");
        assert!(out.contains("scan people via full-scan"), "{out}");
        let out = explain_join_dir(&db_dir, "people", "id", "people", "id").unwrap();
        assert!(out.contains("plan: block-nested-loop"), "{out}");
        assert!(out.contains("join b on a.id = b.id"), "{out}");
        std::fs::remove_dir_all(dir).ok();
    }

    // Tentpole wiring: the `sql` command against both target kinds.
    #[test]
    fn sql_one_shot_runs_the_full_dialect_on_a_db_dir() {
        let (dir, db_dir) = seeded_db_dir("sql-dir");
        // seeded people: dept = i % 2 over 100 rows plus one extra hr row.
        let out = sql(
            &db_dir,
            "select dept, count(*) from people group by dept order by dept limit 2",
            None,
            &BudgetFlags::default(),
        )
        .unwrap();
        assert!(out.contains("dept | count(*)"), "{out}");
        assert!(out.contains("(2 rows)"), "{out}");
        let out = sql(
            &db_dir,
            "select count(*) from people a join people b on a.dept = b.dept where a.id < 1",
            None,
            &BudgetFlags::default(),
        )
        .unwrap();
        // Person 0 is dept eng; 50 eng rows match on the inner side.
        assert!(out.contains("50"), "{out}");
        let out = sql(
            &db_dir,
            "explain select * from people where id = 7",
            None,
            &BudgetFlags::default(),
        )
        .unwrap();
        assert!(out.starts_with("EXPLAIN: "), "{out}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn sql_one_shot_runs_against_an_avq_file() {
        let (dir, avq_path) = setup("sql-avq", 60);
        let out = sql(
            &avq_path,
            "select years from data where years = 7",
            None,
            &BudgetFlags::default(),
        )
        .unwrap();
        assert!(out.contains("years"), "{out}");
        // years = i % 50 over 60 rows: i = 7 and i = 57 both match.
        assert!(out.contains("(2 rows)"), "{out}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn sql_errors_are_reported_not_panicked() {
        let (dir, avq_path) = setup("sql-err", 10);
        let err = sql(
            &avq_path,
            "select * from nowhere",
            None,
            &BudgetFlags::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("nowhere"), "{err}");
        let err = sql(
            &avq_path,
            "select * frum data",
            None,
            &BudgetFlags::default(),
        )
        .unwrap_err();
        assert!(!err.to_string().is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn sql_shell_executes_lines_and_quits() {
        let (dir, avq_path) = setup("sql-repl", 30);
        let input = b"select count(*) from data\n\nbad syntax here\n\\q\n" as &[u8];
        let mut output = Vec::new();
        sql_shell(&avq_path, input, &mut output, &BudgetFlags::default()).unwrap();
        let text = String::from_utf8(output).unwrap();
        assert!(text.starts_with("avq-sql — relations: data"), "{text}");
        assert!(text.contains("count(*)"), "{text}");
        assert!(text.contains("30"), "{text}");
        assert!(text.contains("error: "), "{text}");
        // One prompt per input line processed, plus the initial one.
        assert_eq!(text.matches("avq> ").count(), 4, "{text}");
        std::fs::remove_dir_all(dir).ok();
    }

    // Pinned goldens for governance-error rendering: a trip surfaces in the
    // same `error: <SqlError>` style as every other statement failure, with
    // the stable GovernanceError message embedded.
    #[test]
    fn sql_governance_error_rendering_is_pinned() {
        let (dir, avq_path) = setup("sql-gov", 200);
        let flags = BudgetFlags {
            max_rows: Some(1),
            ..BudgetFlags::default()
        };
        let err = sql(&avq_path, "select count(*) from data", None, &flags).unwrap_err();
        assert_eq!(
            err.to_string(),
            "execution error: governance error: \
             rows-examined quota exceeded: used 200 of 1"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn sql_shell_cancel_arms_cancellation_of_next_statement() {
        let (dir, avq_path) = setup("sql-cancel", 30);
        let input =
            b"\\cancel\nselect count(*) from data\nselect count(*) from data\n\\q\n" as &[u8];
        let mut output = Vec::new();
        sql_shell(&avq_path, input, &mut output, &BudgetFlags::default()).unwrap();
        let text = String::from_utf8(output).unwrap();
        assert!(
            text.contains("cancel armed: the next statement will be cancelled"),
            "{text}"
        );
        // The cancelled statement trips cooperatively at its first poll
        // point; the one after runs clean.
        assert!(
            text.contains("error: execution error: governance error: query cancelled"),
            "{text}"
        );
        assert!(text.contains("30"), "{text}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn sql_one_shot_decoded_quota_flag_counts_coded_bytes() {
        let (dir, avq_path) = setup("sql-decmb", 200);
        // A fully-cached scan re-decodes nothing, so a generous decode
        // quota passes while the rows quota (always charged) still guards.
        let flags = BudgetFlags {
            max_decoded_mb: Some(64),
            ..BudgetFlags::default()
        };
        let out = sql(&avq_path, "select count(*) from data", None, &flags).unwrap();
        assert!(out.contains("200"), "{out}");
        std::fs::remove_dir_all(dir).ok();
    }

    // Tentpole acceptance: a JOIN + GROUP BY under `--trace` produces a
    // span tree from the root SQL span down to individual block-decode
    // spans carrying cache-hit and kernel attributes.
    #[test]
    fn sql_traced_join_group_by_reaches_block_decodes() {
        use avq_obs::names;
        let (dir, db_dir) = seeded_db_dir("sql-trace");
        let out = sql_with_trace(
            &db_dir,
            "select a.dept, count(*) from people a join people b on a.id = b.id group by a.dept",
            None,
            None,
            None,
            &BudgetFlags::default(),
        )
        .unwrap();
        // The result table still comes first.
        assert!(out.contains("dept | count(*)"), "{out}");
        assert!(out.contains("(2 rows)"), "{out}");
        // Root span with statement + plan attributes.
        assert!(
            out.contains(&format!("-> {} (", names::SPAN_SQL_QUERY)),
            "{out}"
        );
        assert!(out.contains("statement=\"select a.dept"), "{out}");
        assert!(out.contains("plan_summary="), "{out}");
        assert!(out.contains("plans_considered="), "{out}");
        // Per-stage spans with the ExplainReport stage vocabulary.
        assert!(out.contains("stage=\"scan\""), "{out}");
        assert!(out.contains("stage=\"aggregate\""), "{out}");
        // Block-level decode spans with storage + kernel attribution.
        assert!(
            out.contains(&format!("-> {} (", names::SPAN_DB_BLOCK_READ)),
            "{out}"
        );
        assert!(out.contains("cache_hit="), "{out}");
        assert!(
            out.contains(&format!("-> {} (", names::SPAN_CODEC_DECODE_BLOCK)),
            "{out}"
        );
        assert!(out.contains("kernel="), "{out}");
        assert!(out.contains("tuples="), "{out}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn sql_traced_sampling_and_slow_report() {
        let (dir, db_dir) = seeded_db_dir("sql-trace-sample");
        // Budget 0 ms promotes the statement to the slow log, so `--trace
        // --budget-ms 0` appends the slow-query report after the tree.
        let out = sql_with_trace(
            &db_dir,
            "select count(*) from people",
            None,
            None,
            Some(0),
            &BudgetFlags::default(),
        )
        .unwrap();
        assert!(out.contains("slow query: trace 1"), "{out}");
        assert!(out.contains("sql: select count(*) from people"), "{out}");
        assert!(out.contains("est_rows  actual_rows"), "{out}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn trace_export_formats_round_trip() {
        let (dir, db_dir) = seeded_db_dir("trace-export");
        let stmt = "select dept, count(*) from people group by dept";
        let chrome = trace_export(&db_dir, stmt, "chrome", None).unwrap();
        // Loadable by chrome://tracing: one top-level object with a
        // traceEvents array of complete events.
        assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
        assert!(
            chrome.trim_end().ends_with("\"displayTimeUnit\":\"ns\"}"),
            "{chrome}"
        );
        assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
        assert!(chrome.contains("avq.sql.query"), "{chrome}");
        assert!(chrome.contains("avq.codec.decode_block"), "{chrome}");
        assert_eq!(
            chrome.matches('{').count(),
            chrome.matches('}').count(),
            "unbalanced braces: {chrome}"
        );
        let jsonl = trace_export(&db_dir, stmt, "jsonl", None).unwrap();
        assert!(jsonl.lines().count() >= 4, "{jsonl}");
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"trace\":"), "{line}");
            assert!(line.ends_with("}}"), "{line}");
        }
        let text = trace_export(&db_dir, stmt, "text", None).unwrap();
        assert!(text.starts_with("trace "), "{text}");
        assert!(trace_export(&db_dir, stmt, "yaml", None).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    // Satellite acceptance: the slow-query log captures SQL text, the
    // chosen plan, and per-node estimated-vs-actual rows for a query
    // forced over the latency budget.
    #[test]
    fn trace_slow_golden_capture() {
        let (dir, db_dir) = seeded_db_dir("trace-slow");
        let out = trace_slow(
            &db_dir,
            "select dept, count(*) from people where id < 50 group by dept",
            None,
            Some(0),
        )
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("slow query: trace 1 (root "), "{out}");
        assert_eq!(
            lines[1],
            "sql: select dept, count(*) from people where id < 50 group by dept"
        );
        assert!(lines[2].starts_with("plan: "), "{out}");
        assert!(lines[3].ends_with("est_rows  actual_rows"), "{out}");
        assert!(lines[3].starts_with("node"), "{out}");
        // One table row per plan node, each ending in two integer columns.
        let tree_start = lines
            .iter()
            .position(|l| l.starts_with("trace "))
            .expect("span tree follows the table");
        for row in &lines[4..tree_start] {
            let cols: Vec<&str> = row.split_whitespace().collect();
            let n = cols.len();
            assert!(cols[n - 1].parse::<u64>().is_ok(), "{row}");
            assert!(cols[n - 2].parse::<u64>().is_ok(), "{row}");
        }
        // The aggregate node produced exactly 2 groups.
        assert!(
            lines[4..tree_start]
                .iter()
                .any(|l| l.contains("aggregate group by") && l.trim_end().ends_with('2')),
            "{out}"
        );
        // Under budget: a large budget yields no slow queries.
        let quiet = trace_slow(
            &db_dir,
            "select count(*) from people",
            None,
            Some(3_600_000),
        )
        .unwrap();
        assert_eq!(quiet, "no slow queries (root span under budget)\n");
        std::fs::remove_dir_all(dir).ok();
    }

    // Satellite: every metric namespace must be live in the Prometheus
    // export after the built-in stats workload (this is what CI greps).
    #[test]
    fn stats_prom_lists_every_namespace() {
        use avq_obs::names;
        let out = stats(None, "prom").unwrap();
        // Derive the expected families from the canonical name registry so
        // this test can never drift from the constants production code uses.
        let counters = [
            names::CODEC_ENCODE_BLOCKS,
            names::CODEC_DECODE_BLOCKS,
            names::STORAGE_POOL_HITS,
            names::STORAGE_CACHE_HITS,
            names::WAL_RECORDS,
            names::DB_QUERIES,
            names::DB_JOINS,
            names::DB_CHECKPOINTS,
            names::SQL_STATEMENTS,
            names::SQL_PLANS_CONSIDERED,
            names::TRACE_STARTED,
            names::TRACE_SAMPLED,
        ];
        let spans = [
            names::SPAN_CODEC_ENCODE_BLOCK,
            names::SPAN_WAL_FSYNC,
            names::SPAN_DB_SELECT,
            names::SPAN_SQL_PARSE,
            names::SPAN_SQL_PLAN,
            names::SPAN_SQL_EXEC,
        ];
        for family in counters
            .iter()
            .map(|n| names::prom(n))
            .chain(spans.iter().map(|n| names::prom(&format!("{n}.ns"))))
        {
            assert!(out.contains(&family), "missing family {family} in:\n{out}");
        }
        assert!(out.contains("# TYPE"), "{out}");
    }

    #[test]
    fn stats_json_and_file_target() {
        use avq_obs::names;
        let (dir, avq_path) = setup("stats", 200);
        let out = stats(Some(&avq_path), "json").unwrap();
        assert!(out.trim_start().starts_with('{'), "{out}");
        for key in [
            names::CODEC_DECODE_BLOCKS,
            names::DB_QUERIES,
            names::WAL_SYNCS,
        ] {
            assert!(
                out.contains(&format!("\"{key}\"")),
                "missing {key} in:\n{out}"
            );
        }
        assert!(stats(None, "yaml").is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn write_metrics_picks_format_by_extension() {
        let dir = tmpdir("metrics-out");
        // Populate the registry first; a test-ordering-dependent empty
        // snapshot would have no `# TYPE` lines.
        stats(None, "prom").unwrap();
        let prom = dir.join("m.prom");
        let json = dir.join("m.json");
        write_metrics(&prom).unwrap();
        write_metrics(&json).unwrap();
        let prom_text = std::fs::read_to_string(&prom).unwrap();
        let json_text = std::fs::read_to_string(&json).unwrap();
        assert!(prom_text.contains("# TYPE"), "{prom_text}");
        assert!(json_text.trim_start().starts_with('{'), "{json_text}");
        std::fs::remove_dir_all(dir).ok();
    }

    // Satellite: the cold side of the `hit_rate` pin at the CLI boundary —
    // a fresh (empty) database has no cache traffic and must print `-`,
    // not a misleading `0.0%`.
    #[test]
    fn open_empty_dir_prints_dash_hit_rate() {
        let dir = tmpdir("cold-open");
        let out = open(&dir.join("db")).unwrap();
        assert!(
            out.contains("decoded cache: hits=0 misses=0 evictions=0 hit_rate=-"),
            "{out}"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn verify_detects_corruption() {
        let (dir, avq_path) = setup("corrupt", 100);
        let mut bytes = std::fs::read(&avq_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&avq_path, &bytes).unwrap();
        assert!(verify(&avq_path, false, None).is_err());
        assert!(verify(&avq_path, true, None).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    // Tentpole: `inject` + `scrub` on a bare `.avq` file — seeded damage is
    // found, reported as unrepairable, and the offsets are reproducible.
    #[test]
    fn inject_then_scrub_file() {
        let (dir, avq_path) = setup("scrub-file", 300);
        let clean = scrub(&avq_path, false).unwrap();
        assert!(clean.contains("container: ok"), "{clean}");
        assert!(clean.contains("result:    clean"), "{clean}");

        let msg = inject(&avq_path, 0xFEED, 3).unwrap();
        assert!(msg.starts_with("injected 3 bit flip(s)"), "{msg}");
        let err = scrub(&avq_path, false).unwrap_err().to_string();
        assert!(err.contains("container: CORRUPT"), "{err}");
        assert!(
            err.contains("unrepairable") || err.contains("no log to"),
            "{err}"
        );
        // `--repair` cannot help a bare file either.
        assert!(scrub(&avq_path, true).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    // Tentpole acceptance: a durable dir with a checkpoint, post-checkpoint
    // mutations, and an injected torn tail. `scrub` reports the damage;
    // `scrub --repair` truncates the tail, replays the log, rewrites the
    // snapshots, and the repaired relation is byte-identical to what
    // recovery alone would produce — and passes `verify --deep`.
    #[test]
    fn scrub_repair_restores_durable_dir() {
        let (dir, db_dir) = seeded_db_dir("scrub-repair");
        {
            let (mut db, _) =
                DurableDatabase::open(&db_dir, DbConfig::default(), SyncPolicy::Always).unwrap();
            db.checkpoint().unwrap();
            // Post-checkpoint mutations live only in the log.
            db.insert_row("people", &[Value::from("eng"), Value::Uint(8888)])
                .unwrap();
            db.delete_row("people", &[Value::from("hr"), Value::Uint(9999)])
                .unwrap();
        }
        // The logical contents recovery alone would produce.
        let reference = {
            let (db, _) =
                DurableDatabase::open(&db_dir, DbConfig::default(), SyncPolicy::Manual).unwrap();
            db.database()
                .relation("people")
                .unwrap()
                .scan_all()
                .unwrap()
        };

        // Tear the log tail: append garbage that scan will reject.
        let wal_path = db_dir.join(avq_wal::WAL_FILE);
        let mut wal = std::fs::read(&wal_path).unwrap();
        wal.extend_from_slice(&[0xAB; 17]);
        std::fs::write(&wal_path, &wal).unwrap();

        let err = scrub(&db_dir, false).unwrap_err().to_string();
        assert!(err.contains("torn log tail: 17 byte(s)"), "{err}");
        assert!(
            err.contains("result:    damaged (re-run with --repair)"),
            "{err}"
        );

        let out = scrub(&db_dir, true).unwrap();
        assert!(out.contains("truncated 17 torn byte(s)"), "{out}");
        assert!(out.contains("result:    repaired and re-verified"), "{out}");

        // Clean after repair; snapshots pass deep verification.
        let clean = scrub(&db_dir, false).unwrap();
        assert!(clean.contains("result:    clean"), "{clean}");
        let manifest = avq_wal::Manifest::read_dir(&db_dir).unwrap().unwrap();
        for entry in &manifest.relations {
            let v = verify(&db_dir.join(&entry.snapshot), true, None).unwrap();
            assert!(v.contains("re-encode byte-identically"), "{v}");
        }

        // The repaired store holds exactly the pre-damage contents.
        let (db, report) =
            DurableDatabase::open(&db_dir, DbConfig::default(), SyncPolicy::Manual).unwrap();
        assert_eq!(report.torn_bytes, 0, "repair already truncated the tail");
        assert_eq!(
            db.database()
                .relation("people")
                .unwrap()
                .scan_all()
                .unwrap(),
            reference
        );
        std::fs::remove_dir_all(dir).ok();
    }

    // A damaged snapshot is beyond repair: its data exists nowhere else
    // once the checkpoint truncated the log. Scrub must say so and refuse.
    #[test]
    fn scrub_reports_corrupt_snapshot_as_unrepairable() {
        let (dir, db_dir) = seeded_db_dir("scrub-snap");
        {
            let (mut db, _) =
                DurableDatabase::open(&db_dir, DbConfig::default(), SyncPolicy::Always).unwrap();
            db.checkpoint().unwrap();
        }
        let manifest = avq_wal::Manifest::read_dir(&db_dir).unwrap().unwrap();
        let snap = db_dir.join(&manifest.relations[0].snapshot);
        inject(&snap, 77, 4).unwrap();

        let err = scrub(&db_dir, true).unwrap_err().to_string();
        assert!(err.contains("CORRUPT"), "{err}");
        assert!(err.contains("result:    damaged beyond repair"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    // Scrub on a fresh (never-checkpointed) dir is clean, not an error.
    #[test]
    fn scrub_fresh_dir_is_clean() {
        let (dir, db_dir) = seeded_db_dir("scrub-fresh");
        let out = scrub(&db_dir, false).unwrap();
        assert!(out.contains("manifest:  none (no checkpoint yet)"), "{out}");
        assert!(out.contains("result:    clean"), "{out}");
        std::fs::remove_dir_all(dir).ok();
    }
}
