//! AVQ-L001 fixture: every banned panic construct on a decode surface.

fn decode(bytes: &[u8]) -> u8 {
    let first = bytes.first().unwrap();
    let second = bytes.get(1).expect("second byte");
    let third = bytes[2];
    if *first == 0 {
        panic!("zero");
    }
    match second {
        0 => unreachable!(),
        _ => first + second + third,
    }
}

fn asserts_are_fine(bytes: &[u8]) -> u8 {
    // The assert family is exempt: deliberate invariant checks may index.
    debug_assert!(bytes[0] > 0);
    assert_eq!(bytes[1], 7);
    bytes.iter().copied().sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = vec![1u8, 2, 3];
        assert_eq!(v[0], super::decode(&v));
        v.get(9).unwrap();
    }
}
