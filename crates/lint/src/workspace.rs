//! Workspace discovery: find every production `.rs` file under
//! `crates/*/src`, scan each one, and parse the bits of workspace
//! metadata the cross-file rules need (member list, `names.rs`
//! constants, DESIGN.md sections).

use crate::lexer::{self, Kind, Scan};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One scanned source file.
pub struct SourceFile {
    /// `/`-separated path relative to the workspace root.
    pub rel: String,
    /// Token stream and directives.
    pub scan: Scan,
}

/// The scanned workspace.
pub struct Workspace {
    /// Absolute root directory.
    pub root: PathBuf,
    /// Every `crates/*/src/**/*.rs` file, sorted by path.
    pub files: Vec<SourceFile>,
    /// Member directories parsed from the root `Cargo.toml` (empty when
    /// the root has no manifest — fixture trees often don't).
    pub members: Vec<String>,
}

impl Workspace {
    /// Scan everything under `root`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        let mut crate_dirs = Vec::new();
        collect_crate_dirs(&crates_dir, &mut crate_dirs)?;
        crate_dirs.sort();
        for dir in &crate_dirs {
            let src = dir.join("src");
            if !src.is_dir() {
                continue;
            }
            let mut rs_files = Vec::new();
            collect_rs_files(&src, &mut rs_files)?;
            rs_files.sort();
            for path in rs_files {
                let text = fs::read_to_string(&path)?;
                let rel = relative(root, &path);
                files.push(SourceFile {
                    rel,
                    scan: lexer::scan(&text),
                });
            }
        }
        let members = parse_members(root);
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            members,
        })
    }

    /// The scan for an exact relative path, if that file was loaded.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Crate directories are `crates/<name>` plus nested `crates/shims/<name>`:
/// any directory under `crates/` that contains a `Cargo.toml`.
fn collect_crate_dirs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if !path.is_dir() {
            continue;
        }
        if path.join("Cargo.toml").is_file() {
            out.push(path);
        } else {
            collect_crate_dirs(&path, out)?;
        }
    }
    Ok(())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Path of `p` relative to `root`, `/`-separated.
fn relative(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Parse `members = [ "…", … ]` out of the root `Cargo.toml` without a
/// TOML parser: take every quoted string between the `members = [`
/// bracket and its closing `]`.
fn parse_members(root: &Path) -> Vec<String> {
    let Ok(text) = fs::read_to_string(root.join("Cargo.toml")) else {
        return Vec::new();
    };
    let Some(start) = text.find("members") else {
        return Vec::new();
    };
    let Some(open) = text[start..].find('[') else {
        return Vec::new();
    };
    let after = &text[start + open + 1..];
    let Some(close) = after.find(']') else {
        return Vec::new();
    };
    after[..close]
        .split('"')
        .skip(1)
        .step_by(2)
        .map(str::to_string)
        .collect()
}

/// A metric-name constant parsed from `names.rs`.
pub struct MetricConst {
    /// Constant identifier (`CODEC_ENCODE_BLOCKS`).
    pub ident: String,
    /// The metric name it holds (`avq.codec.encode.blocks`).
    pub value: String,
    /// Declaration line.
    pub line: u32,
}

/// The constants parsed out of `names.rs`: string-valued declarations plus
/// the two inventory slices.
#[derive(Default)]
pub struct NamesInventory {
    /// Every `pub const IDENT: &str = "…";` declaration, in order.
    pub consts: Vec<MetricConst>,
    /// Identifiers listed in the `ALL` metric-name slice.
    pub all: Vec<String>,
    /// Identifiers listed in the `TRACE_ATTRS` attribute-key slice.
    pub trace_attrs: Vec<String>,
}

/// Parse `pub const IDENT: &str = "…";` declarations and the `ALL` /
/// `TRACE_ATTRS` slices out of the scanned `names.rs` token stream.
pub fn parse_metric_consts(scan: &Scan) -> NamesInventory {
    let mut inv = NamesInventory::default();
    let t = &scan.tokens;
    let mut i = 0usize;
    while i < t.len() {
        if t[i].is_ident("const") && i + 1 < t.len() && t[i + 1].kind == Kind::Ident {
            let ident = t[i + 1].text.clone();
            // Find the `=` then the value, stopping at `;`.
            let mut j = i + 2;
            while j < t.len() && !t[j].is_punct('=') && !t[j].is_punct(';') {
                j += 1;
            }
            if j < t.len() && t[j].is_punct('=') {
                if ident == "ALL" || ident == "TRACE_ATTRS" {
                    let mut k = j + 1;
                    while k < t.len() && !t[k].is_punct(';') {
                        if t[k].kind == Kind::Ident {
                            let list = if ident == "ALL" {
                                &mut inv.all
                            } else {
                                &mut inv.trace_attrs
                            };
                            list.push(t[k].text.clone());
                        }
                        k += 1;
                    }
                    i = k;
                    continue;
                }
                if let Some(v) = t.get(j + 1).filter(|v| v.kind == Kind::Str) {
                    inv.consts.push(MetricConst {
                        ident,
                        value: v.text.clone(),
                        line: v.line,
                    });
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    inv
}

/// Extract the body of a `## N.`-numbered DESIGN.md section, if the
/// document exists and has that section.
pub fn design_section(root: &Path, number: u32) -> Option<String> {
    let text = fs::read_to_string(root.join("DESIGN.md")).ok()?;
    let header = format!("## {number}.");
    let start = text
        .lines()
        .scan(0usize, |off, l| {
            let this = *off;
            *off += l.len() + 1;
            Some((this, l))
        })
        .find(|(_, l)| l.starts_with(&header))
        .map(|(off, _)| off)?;
    let rest = &text[start..];
    let body_start = rest.find('\n').map(|i| i + 1).unwrap_or(rest.len());
    let body = &rest[body_start..];
    let end = body.find("\n## ").map(|i| i + 1).unwrap_or(body.len());
    Some(body[..end].to_string())
}

/// Backtick-quoted strings from the rows of the markdown table whose
/// header row contains the column `header` — other tables in the section
/// are ignored. Collection stops at the first non-`|` line after the table
/// starts.
pub fn named_table_backticks(section: &str, header: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_table = false;
    for line in section.lines() {
        let line = line.trim_start();
        if !line.starts_with('|') {
            if in_table {
                break;
            }
            continue;
        }
        if !in_table {
            if line.contains(header) {
                in_table = true;
            }
            continue;
        }
        out.extend(table_backticks(line));
    }
    out
}

/// Like [`named_table_backticks`], but keeps each row's backticked
/// cells grouped: one inner `Vec` per table row (separator rows, which
/// have no backticks, come back empty and are dropped). Used for the
/// §17 lock-hierarchy and atomics inventories, where a row is a tuple,
/// not a bag of names.
pub fn named_table_rows(section: &str, header: &str) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    let mut in_table = false;
    for line in section.lines() {
        let line = line.trim_start();
        if !line.starts_with('|') {
            if in_table {
                break;
            }
            continue;
        }
        if !in_table {
            if line.contains(header) {
                in_table = true;
            }
            continue;
        }
        let cells = table_backticks(line);
        if !cells.is_empty() {
            out.push(cells);
        }
    }
    out
}

/// All backtick-quoted strings on table rows (`| … |` lines) of a
/// markdown section.
pub fn table_backticks(section: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in section.lines() {
        let line = line.trim_start();
        if !line.starts_with('|') {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let after = &rest[open + 1..];
            let Some(close) = after.find('`') else { break };
            out.push(after[..close].to_string());
            rest = &after[close + 1..];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_parsing() {
        let dir = std::env::temp_dir().join("avq-lint-members-test");
        fs::create_dir_all(&dir).ok();
        fs::write(
            dir.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/a\", \"crates/b\"]\n",
        )
        .ok();
        assert_eq!(parse_members(&dir), ["crates/a", "crates/b"]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metric_const_parsing() {
        let scan = lexer::scan(
            "/// Doc.\npub const A: &str = \"avq.a\";\npub const B: &str = \"avq.b\";\npub const ALL: &[&str] = &[A, B];\npub const K: &str = \"rows\";\npub const TRACE_ATTRS: &[&str] = &[K];\npub fn prom(n: &str) -> String { n.into() }",
        );
        let inv = parse_metric_consts(&scan);
        assert_eq!(inv.consts.len(), 3);
        assert_eq!(inv.consts[0].ident, "A");
        assert_eq!(inv.consts[0].value, "avq.a");
        assert_eq!(inv.consts[2].ident, "K");
        assert_eq!(inv.all, ["A", "B"]);
        assert_eq!(inv.trace_attrs, ["K"]);
    }

    #[test]
    fn backtick_extraction() {
        let got =
            table_backticks("| `avq.x` | counter |\nprose with `ignored`\n| `avq.y` | span |\n");
        assert_eq!(got, ["avq.x", "avq.y"]);
    }

    #[test]
    fn named_table_extraction_skips_other_tables() {
        let section = "| policy | keeps |\n| `always` | all |\n\nprose\n\n| attribute | type |\n| --- | --- |\n| `rows` | u64 |\n| `kernel` | str |\n\n| other | table |\n| `nope` | x |\n";
        let got = named_table_backticks(section, "| attribute ");
        assert_eq!(got, ["rows", "kernel"]);
    }
}
