//! Untrusted-byte harness for `read_coded_relation`: 1000+ cases of fully
//! arbitrary input and of mutated valid files. The container parser must
//! return `Err` (or a relation that decodes cleanly) on any input — no
//! panics, no allocations proportional to hostile header claims.

use avq_codec::{compress, CodecOptions};
use avq_file::{crc32, read_coded_relation, write_coded_relation};
use avq_schema::{Domain, Relation, Schema, Value};
use proptest::prelude::*;

fn valid_file() -> Vec<u8> {
    let schema = Schema::from_pairs(vec![
        ("dept", Domain::enumerated(vec!["eng", "hr"]).unwrap()),
        ("id", Domain::uint(256).unwrap()),
    ])
    .unwrap();
    let rel = Relation::from_rows(
        schema,
        (0..40u64).map(|i| {
            vec![
                Value::from(["eng", "hr"][(i % 2) as usize]),
                Value::Uint(i * 5 % 256),
            ]
        }),
    )
    .unwrap();
    let coded = compress(
        &rel,
        CodecOptions {
            block_capacity: 128,
            ..Default::default()
        },
    )
    .unwrap();
    let mut buf = Vec::new();
    write_coded_relation(&mut buf, &coded).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Fully arbitrary bytes: the parser must reject or succeed cleanly.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(rel) = read_coded_relation(&mut &bytes[..]) {
            let _ = rel.decompress();
        }
    }

    /// Arbitrary bytes dressed up as an `.avq` file: valid magic, version,
    /// and trailing CRC, so the parser is forced deep into the structural
    /// checks instead of bouncing off the checksum.
    #[test]
    fn crc_valid_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..384)) {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"AVQF");
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&bytes);
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        if let Ok(rel) = read_coded_relation(&mut &buf[..]) {
            let _ = rel.decompress();
        }
    }

    /// Mutation corpus: flipped bytes of a valid file, with the CRC
    /// recomputed so structure — not the checksum — is on trial.
    #[test]
    fn mutated_valid_files_never_panic(
        flips in prop::collection::vec((any::<prop::sample::Index>(), 1u8..=255), 1..5),
    ) {
        let buf = valid_file();
        let mut bad = buf[..buf.len() - 4].to_vec();
        for (at, mask) in &flips {
            let i = at.index(bad.len());
            bad[i] ^= mask;
        }
        let crc = crc32(&bad);
        bad.extend_from_slice(&crc.to_le_bytes());
        if let Ok(rel) = read_coded_relation(&mut &bad[..]) {
            let _ = rel.decompress();
        }
    }
}
