//! Bit-level I/O and Elias-gamma codes for the bit-aligned coding mode.
//!
//! The paper's §3.4 run-length coder is *byte*-aligned: a difference costs
//! `1 + (m − leading-zero-bytes)` whole bytes, wasting up to 7 bits at each
//! end. [`crate::CodingMode::AvqChainedBits`] (a DESIGN.md extension)
//! removes that slack: each difference is stored as
//! `gamma(bitlen + 1) ‖ bitlen raw bits` of its φ-distance, where `gamma`
//! is the Elias-gamma prefix code. This module supplies the MSB-first
//! [`BitWriter`]/[`BitReader`] pair and the gamma code.

use avq_num::BigUnsigned;

/// Writes bits MSB-first into a byte vector.
#[derive(Debug, Default)]
pub(crate) struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0 ⇒ byte boundary).
    used: u8,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bits written so far.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn bit_len(&self) -> usize {
        // `used` counts the free bits remaining in the last byte.
        self.bytes.len() * 8 - self.used as usize
    }

    /// Writes a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
            self.used = 8;
        }
        self.used -= 1;
        if bit {
            if let Some(last) = self.bytes.last_mut() {
                *last |= 1 << self.used;
            }
        }
    }

    /// Writes the low `n` bits of `v`, MSB first.
    pub fn push_bits_u64(&mut self, v: u64, n: u32) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.push_bit(v >> i & 1 == 1);
        }
    }

    /// Writes the `n` low bits of a bignum, MSB first (`n ≥ v.bit_len()`).
    pub fn push_bits_big(&mut self, v: &BigUnsigned, n: usize) {
        debug_assert!(n >= v.bit_len());
        let bytes = v.to_bytes_be();
        let total = bytes.len() * 8;
        // Leading padding zeros.
        for _ in 0..n.saturating_sub(total) {
            self.push_bit(false);
        }
        let skip = total.saturating_sub(n);
        for i in skip..total {
            // `i < total = bytes.len() * 8`, so the byte always exists.
            let byte = bytes.get(i / 8).copied().unwrap_or(0);
            self.push_bit(byte >> (7 - i % 8) & 1 == 1);
        }
    }

    /// Elias-gamma code of `v` (`v ≥ 1`): ⌊log₂ v⌋ zeros then the binary
    /// representation of `v`.
    pub fn push_gamma(&mut self, v: u64) {
        debug_assert!(v >= 1, "gamma codes positive integers only");
        let n = 63 - v.leading_zeros();
        for _ in 0..n {
            self.push_bit(false);
        }
        self.push_bits_u64(v, n + 1);
    }

    /// Finishes, returning the padded byte vector.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub(crate) struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Bits consumed so far.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Reads one bit; `None` past the end.
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.bytes.get(self.pos / 8)?;
        let bit = byte >> (7 - self.pos % 8) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `n` bits into a u64, MSB first.
    pub fn read_bits_u64(&mut self, n: u32) -> Option<u64> {
        debug_assert!(n <= 64);
        let mut v = 0u64;
        for _ in 0..n {
            v = v << 1 | self.read_bit()? as u64;
        }
        Some(v)
    }

    /// Bits left before the end of the input.
    pub fn remaining_bits(&self) -> usize {
        (self.bytes.len() * 8).saturating_sub(self.pos)
    }

    /// Reads `n` bits into a bignum, MSB first.
    ///
    /// `n` may come straight from an attacker-controlled gamma code, so the
    /// read refuses (returns `None`) before allocating anything when the
    /// input cannot possibly hold `n` more bits.
    pub fn read_bits_big(&mut self, n: usize) -> Option<BigUnsigned> {
        if n > self.remaining_bits() {
            return None;
        }
        let nbytes = n.div_ceil(8);
        // lint: bounded(n was checked against remaining_bits just above)
        let mut bytes = vec![0u8; nbytes];
        let lead = nbytes * 8 - n;
        for i in 0..n {
            let bit = self.read_bit()? as u8;
            let at = lead + i;
            // `at < nbytes * 8`, so the byte always exists.
            if let Some(b) = bytes.get_mut(at / 8) {
                *b |= bit << (7 - at % 8);
            }
        }
        Some(BigUnsigned::from_bytes_be(&bytes))
    }

    /// Reads an Elias-gamma-coded positive integer.
    pub fn read_gamma(&mut self) -> Option<u64> {
        let mut zeros = 0u32;
        loop {
            if self.read_bit()? {
                break;
            }
            zeros += 1;
            if zeros > 63 {
                return None; // malformed: would overflow u64
            }
        }
        let rest = self.read_bits_u64(zeros)?;
        Some(1u64 << zeros | rest)
    }
}

/// Word-at-a-time MSB-first bit reader — the SWAR counterpart of
/// [`BitReader`].
///
/// Bits are staged in a 64-bit buffer whose *most significant* `bits` bits
/// are valid (everything below them is zero, an invariant every refill and
/// consume preserves). Refilling loads up to eight input bytes with one
/// `u64::from_be_bytes`, so a gamma length + payload pair is usually
/// decoded with two shifts and one `leading_zeros` instead of dozens of
/// per-bit pulls. Reads yield bit-identical results to [`BitReader`] on
/// every input, including truncated and malformed streams (a property test
/// below enforces this).
#[derive(Debug)]
pub(crate) struct WordReader<'a> {
    bytes: &'a [u8],
    /// Next input byte not yet staged in `buf`.
    byte_pos: usize,
    /// Staging buffer; the `bits` MSBs are valid, the rest are zero.
    buf: u64,
    /// Number of valid bits in `buf` (0..=64).
    bits: u32,
}

impl<'a> WordReader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        WordReader {
            bytes,
            byte_pos: 0,
            buf: 0,
            bits: 0,
        }
    }

    /// Bits left in the buffer plus the unread input.
    pub fn remaining_bits(&self) -> usize {
        self.bits as usize + 8 * (self.bytes.len().saturating_sub(self.byte_pos))
    }

    /// Tops the buffer up to at least 57 valid bits (or until the input is
    /// exhausted), loading whole bytes only.
    #[inline]
    fn refill(&mut self) {
        if self.bits > 56 {
            return;
        }
        if let Some(win) = self
            .bytes
            .get(self.byte_pos..)
            .and_then(|s| s.first_chunk::<8>())
        {
            // Fast path: stage the leading (64 − bits)/8 whole bytes of the
            // next word; the masked load keeps the below-`bits` region zero.
            let take = (64 - self.bits) / 8;
            let w = u64::from_be_bytes(*win) & (!0u64 << (64 - 8 * take));
            self.buf |= w >> self.bits;
            self.bits += 8 * take;
            self.byte_pos += take as usize;
            return;
        }
        // Tail: fewer than 8 input bytes left, load them one at a time.
        while self.bits <= 56 {
            let Some(&b) = self.bytes.get(self.byte_pos) else {
                return;
            };
            self.byte_pos += 1;
            self.buf |= (b as u64) << (56 - self.bits);
            self.bits += 8;
        }
    }

    /// Reads one bit; `None` past the end.
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read_bits_u64(1).map(|v| v == 1)
    }

    /// Reads `n ≤ 64` bits into a u64, MSB first; `None` when fewer than
    /// `n` bits remain.
    pub fn read_bits_u64(&mut self, n: u32) -> Option<u64> {
        debug_assert!(n <= 64);
        if n > 57 {
            // Two buffered reads; each half is ≤ 32 bits.
            let hi = self.read_bits_u64(32)?;
            let lo = self.read_bits_u64(n - 32)?;
            return Some(hi << (n - 32) | lo);
        }
        self.refill();
        if self.bits < n {
            return None;
        }
        if n == 0 {
            return Some(0);
        }
        let v = self.buf >> (64 - n);
        self.buf <<= n;
        self.bits -= n;
        Some(v)
    }

    /// Reads `n` bits into a bignum, MSB first.
    ///
    /// `n` may come straight from an attacker-controlled gamma code, so the
    /// read refuses (returns `None`) before allocating anything when the
    /// input cannot possibly hold `n` more bits.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn read_bits_big(&mut self, n: usize) -> Option<BigUnsigned> {
        let mut staging = Vec::new();
        let mut out = BigUnsigned::zero();
        self.read_bits_big_into(n, &mut staging, &mut out)?;
        Some(out)
    }

    /// Reads `n` bits MSB first into a caller-provided bignum, staging the
    /// bytes in `staging`. Equivalent to [`Self::read_bits_big`] (including
    /// the refuse-before-allocating contract on truncated input), but both
    /// buffers are reused across calls, so the steady-state decode of
    /// oversized entries never touches the allocator.
    pub fn read_bits_big_into(
        &mut self,
        n: usize,
        staging: &mut Vec<u8>,
        out: &mut BigUnsigned,
    ) -> Option<()> {
        if n > self.remaining_bits() {
            return None;
        }
        let nbytes = n.div_ceil(8);
        staging.clear();
        // The resize is bounded: n was checked against remaining_bits above.
        staging.resize(nbytes, 0);
        let mut i = 0usize;
        // A partial leading byte keeps the value right-aligned, matching
        // BigUnsigned::from_bytes_be.
        let lead = n % 8;
        if lead != 0 {
            if let Some(b) = staging.get_mut(0) {
                *b = self.read_bits_u64(lead as u32)? as u8;
            }
            i = 1;
        }
        while i < nbytes {
            if let Some(b) = staging.get_mut(i) {
                *b = self.read_bits_u64(8)? as u8;
            }
            i += 1;
        }
        out.set_from_bytes_be(staging);
        Some(())
    }

    /// Reads an Elias-gamma-coded positive integer.
    ///
    /// Fast path: after a refill the buffer holds ≥ 57 bits (when input
    /// remains), so any code with ≤ 28 leading zeros — every length the
    /// encoder emits for payloads under 2²⁹ bits — is decoded with one
    /// `leading_zeros` and one shift.
    pub fn read_gamma(&mut self) -> Option<u64> {
        self.refill();
        let lz = self.buf.leading_zeros();
        let total = 2 * lz + 1;
        if lz < self.bits && total <= self.bits {
            // The whole code is buffered: `total` MSBs are `lz` zeros, the
            // marker one, and `lz` payload bits — exactly the value.
            let v = self.buf >> (64 - total);
            self.buf <<= total;
            self.bits -= total;
            return Some(v);
        }
        // Slow path: the run of zeros reaches past the buffer (huge or
        // malformed code) or the input is nearly exhausted.
        let mut zeros = 0u32;
        loop {
            if self.read_bit()? {
                break;
            }
            zeros += 1;
            if zeros > 63 {
                return None; // malformed: would overflow u64
            }
        }
        let rest = self.read_bits_u64(zeros)?;
        Some(1u64 << zeros | rest)
    }
}

/// Bits needed for the gamma code of `v ≥ 1`.
pub(crate) fn gamma_len(v: u64) -> usize {
    debug_assert!(v >= 1);
    (2 * (63 - v.leading_zeros()) + 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, false, true, true];
        for &b in &pattern {
            w.push_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn u64_fields_roundtrip() {
        let mut w = BitWriter::new();
        w.push_bits_u64(0b101, 3);
        w.push_bits_u64(u64::MAX, 64);
        w.push_bits_u64(0, 5);
        w.push_bits_u64(42, 17);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits_u64(3), Some(0b101));
        assert_eq!(r.read_bits_u64(64), Some(u64::MAX));
        assert_eq!(r.read_bits_u64(5), Some(0));
        assert_eq!(r.read_bits_u64(17), Some(42));
    }

    #[test]
    fn gamma_roundtrip() {
        let mut w = BitWriter::new();
        let values = [1u64, 2, 3, 4, 7, 8, 100, 1_000_000, u32::MAX as u64];
        for &v in &values {
            w.push_gamma(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_gamma(), Some(v), "value {v}");
        }
    }

    #[test]
    fn gamma_len_matches_written() {
        for v in [1u64, 2, 3, 7, 8, 255, 256, 12345] {
            let mut w = BitWriter::new();
            w.push_gamma(v);
            assert_eq!(w.bit_len(), gamma_len(v), "value {v}");
        }
        assert_eq!(gamma_len(1), 1);
        assert_eq!(gamma_len(2), 3);
        assert_eq!(gamma_len(4), 5);
    }

    #[test]
    fn bignum_fields_roundtrip() {
        let vals = [
            BigUnsigned::zero(),
            BigUnsigned::from_u64(1),
            BigUnsigned::from_u64(0xDEAD_BEEF),
            BigUnsigned::from_u128(u128::MAX),
            BigUnsigned::from_bytes_be(&[0x7F; 20]),
        ];
        let mut w = BitWriter::new();
        for v in &vals {
            // Write with 3 bits of left padding.
            w.push_bits_big(v, v.bit_len() + 3);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for v in &vals {
            assert_eq!(r.read_bits_big(v.bit_len() + 3), Some(v.clone()));
        }
    }

    #[test]
    fn reads_past_end_are_none() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits_u64(8), Some(0xFF));
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits_u64(1), None);
        assert_eq!(r.read_gamma(), None);
    }

    #[test]
    fn malformed_gamma_rejected() {
        // 64+ leading zeros cannot be a valid u64 gamma code.
        let zeros = [0u8; 10];
        let mut r = BitReader::new(&zeros);
        assert_eq!(r.read_gamma(), None);
    }

    #[test]
    fn bit_positions_track() {
        let mut w = BitWriter::new();
        w.push_gamma(5); // 5 bits: 00101
        assert_eq!(w.bit_len(), 5);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        r.read_gamma().unwrap();
        assert_eq!(r.bit_pos(), 5);
    }

    /// A deterministic mix of gamma codes and raw fields that stresses
    /// refill boundaries (values straddling the 57-bit fast-path limit,
    /// runs of tiny codes, maximal codes).
    fn stress_stream() -> (Vec<u8>, Vec<(u64, u32)>) {
        let mut w = BitWriter::new();
        let mut script = Vec::new();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..400u64 {
            // xorshift: cheap deterministic pseudo-randomness.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let gamma = 1 + (x % [1, 2, 30, 1 << 20, u32::MAX as u64][(i % 5) as usize]);
            w.push_gamma(gamma);
            let bits = 1 + (x >> 32) as u32 % 64;
            let raw = if bits == 64 { x } else { x & ((1 << bits) - 1) };
            w.push_bits_u64(raw, bits);
            script.push((gamma, bits));
            script.push((raw, bits));
        }
        (w.into_bytes(), script)
    }

    #[test]
    fn word_reader_matches_bit_reader() {
        let (bytes, script) = stress_stream();
        let mut bit = BitReader::new(&bytes);
        let mut word = WordReader::new(&bytes);
        for (i, &(expected, bits)) in script.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(bit.read_gamma(), Some(expected), "gamma {i}");
                assert_eq!(word.read_gamma(), Some(expected), "gamma {i} (word)");
            } else {
                assert_eq!(bit.read_bits_u64(bits), Some(expected), "raw {i}");
                assert_eq!(word.read_bits_u64(bits), Some(expected), "raw {i} (word)");
            }
            assert_eq!(bit.remaining_bits(), word.remaining_bits(), "pos {i}");
        }
    }

    #[test]
    fn word_reader_matches_bit_reader_on_truncated_input() {
        let (bytes, _) = stress_stream();
        // Truncate at every length; both readers must agree on every read
        // until (and including) the first failure.
        for cut in 0..bytes.len().min(64) {
            let slice = &bytes[..cut];
            let mut bit = BitReader::new(slice);
            let mut word = WordReader::new(slice);
            loop {
                let a = bit.read_gamma();
                let b = word.read_gamma();
                assert_eq!(a, b, "gamma at cut {cut}");
                if a.is_none() {
                    break;
                }
                let a = bit.read_bits_u64(13);
                let b = word.read_bits_u64(13);
                assert_eq!(a, b, "raw at cut {cut}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn word_reader_matches_bit_reader_on_big_fields() {
        let vals = [
            BigUnsigned::zero(),
            BigUnsigned::from_u64(1),
            BigUnsigned::from_u64(0xDEAD_BEEF),
            BigUnsigned::from_u128(u128::MAX),
            BigUnsigned::from_bytes_be(&[0x7F; 20]),
        ];
        let mut w = BitWriter::new();
        for v in &vals {
            w.push_gamma(v.bit_len() as u64 + 1);
            w.push_bits_big(v, v.bit_len() + 3);
        }
        let bytes = w.into_bytes();
        let mut bit = BitReader::new(&bytes);
        let mut word = WordReader::new(&bytes);
        for v in &vals {
            assert_eq!(bit.read_gamma(), word.read_gamma());
            let a = bit.read_bits_big(v.bit_len() + 3);
            let b = word.read_bits_big(v.bit_len() + 3);
            assert_eq!(a, b);
            assert_eq!(a, Some(v.clone()));
        }
    }

    #[test]
    fn word_reader_rejects_malformed_gamma() {
        let zeros = [0u8; 10];
        let mut r = WordReader::new(&zeros);
        assert_eq!(r.read_gamma(), None);
    }
}
