//! Mixed-radix arithmetic over attribute-domain digit vectors.
//!
//! A relation scheme `𝓡 = A₁ × … × Aₙ` defines a mixed-radix number system:
//! a tuple `(a₁, …, aₙ)` with `aᵢ ∈ {0 … |Aᵢ|−1}` is a digit vector whose
//! value is the φ mapping of the paper (Eq. 2.2):
//!
//! ```text
//! φ(a₁ … aₙ) = Σᵢ aᵢ · Π_{j>i} |Aⱼ|
//! ```
//!
//! [`MixedRadix`] implements φ ([`MixedRadix::rank`]) and φ⁻¹
//! ([`MixedRadix::unrank`]) and — crucially for performance — addition,
//! subtraction, and comparison *directly in digit space* with per-digit
//! carry/borrow, so the per-tuple coding path never materializes a bignum.
//! Digit-space results are bit-identical to converting through
//! [`BigUnsigned`]; a property test in this module enforces that.

use crate::biguint::BigUnsigned;
use core::cmp::Ordering;
use core::fmt;

/// Errors arising from mixed-radix construction or digit validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RadixError {
    /// A radix (domain size) of zero was supplied; every domain must have at
    /// least one value.
    ZeroRadix {
        /// Index of the offending radix.
        position: usize,
    },
    /// No radices were supplied.
    Empty,
    /// A digit vector had the wrong number of digits.
    ArityMismatch {
        /// Arity of the number system.
        expected: usize,
        /// Arity of the supplied digit vector.
        got: usize,
    },
    /// A digit was out of range for its radix.
    DigitOutOfRange {
        /// Index of the offending digit.
        position: usize,
        /// The digit value found.
        digit: u64,
        /// The radix it must be strictly less than.
        radix: u64,
    },
}

impl fmt::Display for RadixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadixError::ZeroRadix { position } => {
                write!(f, "radix at position {position} is zero")
            }
            RadixError::Empty => write!(f, "no radices supplied"),
            RadixError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} digits, got {got}")
            }
            RadixError::DigitOutOfRange {
                position,
                digit,
                radix,
            } => write!(
                f,
                "digit {digit} at position {position} out of range for radix {radix}"
            ),
        }
    }
}

impl std::error::Error for RadixError {}

/// A mixed-radix number system defined by the per-attribute domain sizes.
///
/// Position 0 is the most significant digit (attribute `A₁`), matching the
/// paper's lexicographic ordering: comparing digit vectors lexicographically
/// is the same as comparing their φ values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedRadix {
    radices: Vec<u64>,
    /// `weights[i] = Π_{j>i} radices[j]` — the place value of digit `i`.
    weights: Vec<BigUnsigned>,
    /// `‖𝓡‖ = Π radices` — one past the largest representable value.
    space_size: BigUnsigned,
}

impl MixedRadix {
    /// Builds a number system from domain sizes. Every radix must be ≥ 1 and
    /// at least one radix must be supplied.
    pub fn new(radices: Vec<u64>) -> Result<Self, RadixError> {
        if radices.is_empty() {
            return Err(RadixError::Empty);
        }
        for (position, &r) in radices.iter().enumerate() {
            if r == 0 {
                return Err(RadixError::ZeroRadix { position });
            }
        }
        let n = radices.len();
        let mut weights = vec![BigUnsigned::one(); n];
        for i in (0..n - 1).rev() {
            weights[i] = weights[i + 1].mul_u64(radices[i + 1]);
        }
        let space_size = weights[0].mul_u64(radices[0]);
        Ok(MixedRadix {
            radices,
            weights,
            space_size,
        })
    }

    /// The number of digits (attributes).
    #[inline]
    pub fn arity(&self) -> usize {
        self.radices.len()
    }

    /// The per-position radices (domain sizes).
    #[inline]
    pub fn radices(&self) -> &[u64] {
        &self.radices
    }

    /// The place value `Π_{j>i} |Aⱼ|` of digit `i`.
    #[inline]
    pub fn weight(&self, i: usize) -> &BigUnsigned {
        &self.weights[i]
    }

    /// `‖𝓡‖ = Π |Aᵢ|`, the size of the tuple space.
    #[inline]
    pub fn space_size(&self) -> &BigUnsigned {
        &self.space_size
    }

    /// Validates arity and digit ranges.
    pub fn validate(&self, digits: &[u64]) -> Result<(), RadixError> {
        if digits.len() != self.radices.len() {
            return Err(RadixError::ArityMismatch {
                expected: self.radices.len(),
                got: digits.len(),
            });
        }
        for (position, (&digit, &radix)) in digits.iter().zip(&self.radices).enumerate() {
            if digit >= radix {
                return Err(RadixError::DigitOutOfRange {
                    position,
                    digit,
                    radix,
                });
            }
        }
        Ok(())
    }

    /// φ (Eq. 2.2): the ordinal position of a digit vector in the tuple
    /// space. Digits must be valid (checked in debug builds only; call
    /// [`Self::validate`] first for untrusted input).
    pub fn rank(&self, digits: &[u64]) -> BigUnsigned {
        debug_assert!(self.validate(digits).is_ok(), "invalid digits");
        // Horner evaluation: ((a₁·r₂ + a₂)·r₃ + a₃)·…
        let mut acc = BigUnsigned::zero();
        for (&digit, &radix) in digits.iter().zip(&self.radices) {
            acc = acc.mul_u64(radix).add_u64(digit);
        }
        acc
    }

    /// φ⁻¹ (Eq. 2.3–2.5): recovers the digit vector from an ordinal, or
    /// `None` if `value ≥ ‖𝓡‖`.
    pub fn unrank(&self, value: &BigUnsigned) -> Option<Vec<u64>> {
        if *value >= self.space_size {
            return None;
        }
        let mut digits = vec![0u64; self.radices.len()];
        let mut cur = value.clone();
        for i in (0..self.radices.len()).rev() {
            let (q, r) = cur.divmod_u64(self.radices[i]);
            digits[i] = r;
            cur = q;
        }
        debug_assert!(cur.is_zero());
        Some(digits)
    }

    /// φ⁻¹ into a caller-provided buffer: writes the digit vector of `value`
    /// into `out` and returns `true`, or returns `false` (leaving `out`
    /// unspecified) when `value ≥ ‖𝓡‖` or `out` has the wrong arity.
    ///
    /// Consumes `value` so the division chain can run in place — the
    /// allocation-free counterpart of [`Self::unrank`] used by streaming
    /// block decoding.
    pub fn unrank_into(&self, value: BigUnsigned, out: &mut [u64]) -> bool {
        if out.len() != self.radices.len() || value >= self.space_size {
            return false;
        }
        let mut cur = value;
        for i in (0..self.radices.len()).rev() {
            out[i] = cur.div_assign_u64(self.radices[i]);
        }
        debug_assert!(cur.is_zero());
        true
    }

    /// φ⁻¹ for values that fit a machine word, written into `out` without
    /// touching the heap. Returns `false` (leaving `out` unspecified) when
    /// `value ≥ ‖𝓡‖` or `out` has the wrong arity.
    pub fn unrank_u64_into(&self, mut value: u64, out: &mut [u64]) -> bool {
        if out.len() != self.radices.len() {
            return false;
        }
        for i in (0..self.radices.len()).rev() {
            let r = self.radices[i];
            out[i] = value % r;
            value /= r;
        }
        value == 0
    }

    /// Lexicographic comparison of digit vectors; by construction this equals
    /// comparing φ values (the `≺` total order of §2.2).
    pub fn cmp_digits(&self, a: &[u64], b: &[u64]) -> Ordering {
        debug_assert_eq!(a.len(), self.radices.len());
        debug_assert_eq!(b.len(), self.radices.len());
        a.cmp(b)
    }

    /// In-place digit-space addition with carry: `a += b`.
    ///
    /// Returns `false` when the sum overflows the tuple space; `a` then holds
    /// the wrapped (mod-‖𝓡‖) digits, each still valid for its radix. This is
    /// the allocation-free core of [`Self::checked_add`] and the hot path of
    /// chained block decoding.
    pub fn add_assign(&self, a: &mut [u64], b: &[u64]) -> bool {
        debug_assert!(self.validate(a).is_ok() && self.validate(b).is_ok());
        let mut carry: u64 = 0;
        for i in (0..self.radices.len()).rev() {
            let r = self.radices[i] as u128;
            let sum = a[i] as u128 + b[i] as u128 + carry as u128;
            a[i] = (sum % r) as u64;
            carry = (sum / r) as u64;
        }
        carry == 0
    }

    /// In-place digit-space subtraction with borrow: `a -= b`.
    ///
    /// Returns `false` when `a < b` (the true difference is negative); `a`
    /// then holds the wrapped digits, each still valid for its radix.
    pub fn sub_assign(&self, a: &mut [u64], b: &[u64]) -> bool {
        debug_assert!(self.validate(a).is_ok() && self.validate(b).is_ok());
        let mut borrow: u64 = 0;
        for i in (0..self.radices.len()).rev() {
            let need = b[i] as u128 + borrow as u128;
            let have = a[i] as u128;
            if have >= need {
                a[i] = (have - need) as u64;
                borrow = 0;
            } else {
                a[i] = (have + self.radices[i] as u128 - need) as u64;
                borrow = 1;
            }
        }
        borrow == 0
    }

    /// Digit-space addition with carry: `a + b`, or `None` on overflow of the
    /// tuple space. Equivalent to `unrank(rank(a) + rank(b))`.
    pub fn checked_add(&self, a: &[u64], b: &[u64]) -> Option<Vec<u64>> {
        let mut out = a.to_vec();
        if self.add_assign(&mut out, b) {
            Some(out)
        } else {
            None
        }
    }

    /// Digit-space subtraction with borrow: `a − b`, or `None` if `a < b`.
    /// Equivalent to `unrank(rank(a) − rank(b))`.
    pub fn checked_sub(&self, a: &[u64], b: &[u64]) -> Option<Vec<u64>> {
        let mut out = a.to_vec();
        if self.sub_assign(&mut out, b) {
            Some(out)
        } else {
            None
        }
    }

    /// `|a − b|` in digit space — the difference measure `d(tᵢ, tⱼ)` of
    /// Eq. 2.6, expressed back in 𝓡-space digits as §3.4 does.
    pub fn abs_diff(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        match self.cmp_digits(a, b) {
            Ordering::Less => self.checked_sub(b, a).expect("b >= a"),
            _ => self.checked_sub(a, b).expect("a >= b"),
        }
    }

    /// Adds a machine-word delta to a digit vector, or `None` on overflow.
    pub fn checked_add_value(&self, a: &[u64], delta: u64) -> Option<Vec<u64>> {
        debug_assert!(self.validate(a).is_ok());
        let n = self.radices.len();
        let mut out = vec![0u64; n];
        let mut carry = delta as u128;
        for i in (0..n).rev() {
            let r = self.radices[i] as u128;
            let sum = a[i] as u128 + carry;
            out[i] = (sum % r) as u64;
            carry = sum / r;
        }
        if carry != 0 {
            None
        } else {
            Some(out)
        }
    }

    /// The all-zeros digit vector (φ = 0).
    pub fn min_digits(&self) -> Vec<u64> {
        vec![0; self.radices.len()]
    }

    /// The largest digit vector (φ = ‖𝓡‖ − 1).
    pub fn max_digits(&self) -> Vec<u64> {
        self.radices.iter().map(|&r| r - 1).collect()
    }

    /// The successor in the ≺ order, or `None` at the top of the space.
    pub fn successor(&self, a: &[u64]) -> Option<Vec<u64>> {
        self.checked_add_value(a, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn employee_radix() -> MixedRadix {
        // The paper's Example 3.1 schema: |A| = 8, 16, 64, 64, 64.
        MixedRadix::new(vec![8, 16, 64, 64, 64]).unwrap()
    }

    #[test]
    fn construction_errors() {
        assert_eq!(MixedRadix::new(vec![]), Err(RadixError::Empty));
        assert_eq!(
            MixedRadix::new(vec![4, 0, 3]),
            Err(RadixError::ZeroRadix { position: 1 })
        );
    }

    #[test]
    fn space_size_is_product() {
        let mr = employee_radix();
        assert_eq!(
            mr.space_size().to_u64(),
            Some(8 * 16 * 64 * 64 * 64) // 33_554_432
        );
    }

    #[test]
    fn weights_are_suffix_products() {
        let mr = employee_radix();
        assert_eq!(mr.weight(0).to_u64(), Some(16 * 64 * 64 * 64));
        assert_eq!(mr.weight(3).to_u64(), Some(64));
        assert_eq!(mr.weight(4).to_u64(), Some(1));
    }

    /// The paper computes φ(3,08,36,39,35) = 14 830 051 in Example 3.2 (shown
    /// as the representative's 𝓝_𝓡 value in Fig. 3.3).
    #[test]
    fn paper_example_3_2_rank() {
        let mr = employee_radix();
        assert_eq!(mr.rank(&[3, 8, 36, 39, 35]).to_u64(), Some(14_830_051));
        assert_eq!(mr.rank(&[3, 8, 32, 34, 12]).to_u64(), Some(14_813_324));
        // And the difference re-expressed as digits: φ(0,00,04,05,23) = 16727.
        assert_eq!(mr.rank(&[0, 0, 4, 5, 23]).to_u64(), Some(16_727));
    }

    /// Example 3.3: φ(0,00,00,08,57) = 569 = 17296 − 16727.
    #[test]
    fn paper_example_3_3_chained_difference() {
        let mr = employee_radix();
        let d1 = mr.rank(&[0, 0, 4, 14, 16]); // 17296
        let d2 = mr.rank(&[0, 0, 4, 5, 23]); // 16727
        assert_eq!(d1.to_u64(), Some(17_296));
        let chained = d1.checked_sub(&d2).unwrap();
        assert_eq!(chained.to_u64(), Some(569));
        assert_eq!(mr.unrank(&chained).unwrap(), vec![0, 0, 0, 8, 57]);
    }

    #[test]
    fn rank_unrank_roundtrip_extremes() {
        let mr = employee_radix();
        let zero = mr.min_digits();
        assert!(mr.rank(&zero).is_zero());
        assert_eq!(mr.unrank(&BigUnsigned::zero()).unwrap(), zero);

        let max = mr.max_digits();
        let top = mr.rank(&max);
        assert_eq!(
            top.add_u64(1),
            *mr.space_size(),
            "max digit vector ranks to ‖𝓡‖−1"
        );
        assert_eq!(mr.unrank(&top).unwrap(), max);
        assert!(mr.unrank(mr.space_size()).is_none());
    }

    #[test]
    fn validate_catches_bad_digits() {
        let mr = employee_radix();
        assert!(mr.validate(&[0, 0, 0, 0, 0]).is_ok());
        assert!(mr.validate(&[7, 15, 63, 63, 63]).is_ok());
        assert_eq!(
            mr.validate(&[8, 0, 0, 0, 0]),
            Err(RadixError::DigitOutOfRange {
                position: 0,
                digit: 8,
                radix: 8
            })
        );
        assert_eq!(
            mr.validate(&[0, 0, 0]),
            Err(RadixError::ArityMismatch {
                expected: 5,
                got: 3
            })
        );
    }

    #[test]
    fn digit_add_carry_propagation() {
        let mr = MixedRadix::new(vec![10, 10, 10]).unwrap();
        // 099 + 001 = 100
        assert_eq!(
            mr.checked_add(&[0, 9, 9], &[0, 0, 1]).unwrap(),
            vec![1, 0, 0]
        );
        // 999 + 001 overflows
        assert!(mr.checked_add(&[9, 9, 9], &[0, 0, 1]).is_none());
    }

    #[test]
    fn digit_sub_borrow_propagation() {
        let mr = MixedRadix::new(vec![10, 10, 10]).unwrap();
        // 100 - 001 = 099
        assert_eq!(
            mr.checked_sub(&[1, 0, 0], &[0, 0, 1]).unwrap(),
            vec![0, 9, 9]
        );
        // 000 - 001 underflows
        assert!(mr.checked_sub(&[0, 0, 0], &[0, 0, 1]).is_none());
    }

    #[test]
    fn add_assign_wraps_on_overflow() {
        let mr = MixedRadix::new(vec![10, 10, 10]).unwrap();
        let mut a = [9u64, 9, 9];
        assert!(!mr.add_assign(&mut a, &[0, 0, 2]));
        // Wrapped mod ‖𝓡‖: 999 + 002 = 1001 ≡ 001.
        assert_eq!(a, [0, 0, 1]);
        assert!(mr.validate(&a).is_ok());
        let mut b = [0u64, 9, 9];
        assert!(mr.add_assign(&mut b, &[0, 0, 1]));
        assert_eq!(b, [1, 0, 0]);
    }

    #[test]
    fn sub_assign_wraps_on_underflow() {
        let mr = MixedRadix::new(vec![10, 10, 10]).unwrap();
        let mut a = [0u64, 0, 1];
        assert!(!mr.sub_assign(&mut a, &[0, 0, 3]));
        // Wrapped mod ‖𝓡‖: 001 − 003 ≡ 998.
        assert_eq!(a, [9, 9, 8]);
        assert!(mr.validate(&a).is_ok());
        let mut b = [1u64, 0, 0];
        assert!(mr.sub_assign(&mut b, &[0, 0, 1]));
        assert_eq!(b, [0, 9, 9]);
    }

    #[test]
    fn unrank_into_matches_unrank() {
        let mr = employee_radix();
        let mut buf = vec![0u64; mr.arity()];
        let r = mr.rank(&[3, 8, 36, 39, 35]);
        assert!(mr.unrank_into(r.clone(), &mut buf));
        assert_eq!(buf, vec![3, 8, 36, 39, 35]);
        assert!(!mr.unrank_into(mr.space_size().clone(), &mut buf));
        let mut short = vec![0u64; 2];
        assert!(!mr.unrank_into(r, &mut short));
    }

    #[test]
    fn unrank_u64_into_matches_unrank() {
        let mr = employee_radix();
        let mut buf = vec![0u64; mr.arity()];
        for v in [0u64, 1, 569, 14_830_051, 33_554_431] {
            assert!(mr.unrank_u64_into(v, &mut buf), "value {v}");
            assert_eq!(buf, mr.unrank(&BigUnsigned::from_u64(v)).unwrap());
        }
        assert!(
            !mr.unrank_u64_into(33_554_432, &mut buf),
            "‖𝓡‖ is out of space"
        );
        let mut short = vec![0u64; 2];
        assert!(!mr.unrank_u64_into(0, &mut short));
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let mr = employee_radix();
        let a = [3u64, 8, 36, 39, 35];
        let b = [3u64, 8, 32, 34, 12];
        let d1 = mr.abs_diff(&a, &b);
        let d2 = mr.abs_diff(&b, &a);
        assert_eq!(d1, d2);
        assert_eq!(d1, vec![0, 0, 4, 5, 23]); // Example 3.2
    }

    #[test]
    fn add_value_successor_chain() {
        let mr = MixedRadix::new(vec![2, 3]).unwrap();
        // Enumerate the whole 6-point space via successor.
        let mut cur = mr.min_digits();
        let mut seen = vec![cur.clone()];
        while let Some(next) = mr.successor(&cur) {
            seen.push(next.clone());
            cur = next;
        }
        assert_eq!(seen.len(), 6);
        for (i, digits) in seen.iter().enumerate() {
            assert_eq!(mr.rank(digits).to_u64(), Some(i as u64));
        }
    }

    #[test]
    fn huge_radices_do_not_overflow() {
        // Radices near u64::MAX exercise the u128 intermediates.
        let big = u64::MAX;
        let mr = MixedRadix::new(vec![big, big, big]).unwrap();
        let a = vec![big - 1, big - 1, big - 1];
        assert!(mr.validate(&a).is_ok());
        let r = mr.rank(&a);
        assert_eq!(mr.unrank(&r).unwrap(), a);
        assert!(mr.successor(&a).is_none());
        let almost = mr.checked_sub(&a, &[0, 0, 1]).unwrap();
        assert_eq!(mr.successor(&almost).unwrap(), a);
    }

    #[test]
    fn unit_radix_digits_are_always_zero() {
        // A domain of size 1 contributes nothing to the ordering.
        let mr = MixedRadix::new(vec![1, 5, 1]).unwrap();
        assert_eq!(mr.space_size().to_u64(), Some(5));
        assert_eq!(mr.rank(&[0, 3, 0]).to_u64(), Some(3));
        assert_eq!(mr.unrank(&BigUnsigned::from_u64(3)).unwrap(), vec![0, 3, 0]);
    }

    fn arb_system_and_pair() -> impl Strategy<Value = (Vec<u64>, Vec<u64>, Vec<u64>)> {
        prop::collection::vec(1u64..1000, 1..8).prop_flat_map(|radices| {
            let digit_strats: Vec<_> = radices.iter().map(|&r| 0..r).collect();
            (Just(radices), digit_strats.clone(), digit_strats)
        })
    }

    proptest! {
        #[test]
        fn prop_rank_unrank_bijection((radices, a, _b) in arb_system_and_pair()) {
            let mr = MixedRadix::new(radices).unwrap();
            let r = mr.rank(&a);
            prop_assert_eq!(mr.unrank(&r).unwrap(), a);
        }

        #[test]
        fn prop_digit_ops_match_bignum((radices, a, b) in arb_system_and_pair()) {
            let mr = MixedRadix::new(radices).unwrap();
            let ra = mr.rank(&a);
            let rb = mr.rank(&b);
            // Comparison agrees.
            prop_assert_eq!(mr.cmp_digits(&a, &b), ra.cmp(&rb));
            // Subtraction agrees (when defined).
            match mr.checked_sub(&a, &b) {
                Some(diff) => {
                    let expect = ra.checked_sub(&rb).expect("a >= b");
                    prop_assert_eq!(mr.rank(&diff), expect);
                }
                None => prop_assert!(ra < rb),
            }
            // Addition agrees (when defined).
            match mr.checked_add(&a, &b) {
                Some(sum) => {
                    prop_assert_eq!(mr.rank(&sum), ra.add(&rb));
                }
                None => prop_assert!(ra.add(&rb) >= *mr.space_size()),
            }
        }

        #[test]
        fn prop_sub_then_add_roundtrip((radices, a, b) in arb_system_and_pair()) {
            let mr = MixedRadix::new(radices).unwrap();
            let (hi, lo) = if mr.cmp_digits(&a, &b) == core::cmp::Ordering::Less {
                (b, a)
            } else {
                (a, b)
            };
            let diff = mr.checked_sub(&hi, &lo).unwrap();
            prop_assert_eq!(mr.checked_add(&lo, &diff).unwrap(), hi);
        }

        #[test]
        fn prop_add_value_matches_bignum(
            (radices, a, _b) in arb_system_and_pair(),
            delta in 0u64..1_000_000
        ) {
            let mr = MixedRadix::new(radices).unwrap();
            match mr.checked_add_value(&a, delta) {
                Some(sum) => {
                    prop_assert_eq!(mr.rank(&sum), mr.rank(&a).add_u64(delta));
                }
                None => {
                    prop_assert!(mr.rank(&a).add_u64(delta) >= *mr.space_size());
                }
            }
        }
    }
}
