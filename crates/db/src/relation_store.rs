//! A stored relation: coded data blocks + primary index + secondary indexes.
//!
//! This is the §4 system: tuples live in AVQ-coded blocks on the simulated
//! device; a primary B⁺-tree keyed on whole serialized tuples routes
//! point/range operations to blocks; secondary indexes with buckets serve
//! selections on non-clustering attributes; inserts and deletes re-code only
//! the affected block (splitting it when the coded form outgrows the block,
//! freeing it when emptied).

use crate::config::{DbConfig, ScanPolicy};
use crate::cost::{CostTracker, QueryCost};
use crate::error::DbError;
use crate::secondary::SecondaryIndex;
#[cfg(test)]
use avq_codec::CodingMode;
use avq_codec::{
    delete_from_block, insert_into_block, BlockCodec, BlockPacker, CodecError, DecodeScratch,
    DeleteOutcome, InsertOutcome,
};
use avq_schema::{Relation, Schema, Tuple};
use avq_storage::{BlockDevice, BlockId, BufferPool, DecodedCache, PoolStats, StorageError};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use avq_index::BPlusTree;
use avq_obs::names;

/// In-memory bookkeeping for one coded data block.
#[derive(Debug, Clone)]
pub struct StoredBlock {
    /// Device block id.
    pub id: BlockId,
    /// φ-smallest tuple in the block (the primary-index key).
    pub min: Tuple,
    /// φ-largest tuple in the block.
    pub max: Tuple,
    /// Tuples in the block.
    pub count: usize,
    /// Coded bytes used of the block capacity.
    pub used_bytes: usize,
}

/// A relation stored on the simulated device.
#[derive(Debug)]
pub struct StoredRelation {
    schema: Arc<Schema>,
    config: DbConfig,
    codec: BlockCodec,
    device: Arc<BlockDevice>,
    pool: Arc<BufferPool>,
    /// LRU cache of decoded tuple runs, layered over the buffer pool. The
    /// pool caches coded bytes; this caches the result of decoding them, so
    /// a warm re-scan performs zero decode calls.
    decoded: DecodedCache<Vec<Tuple>>,
    /// Reusable decode scratch shared by all cache-miss decodes.
    scratch: Mutex<DecodeScratch>,
    /// Blocks found unreadable or corrupt during policy-aware reads. Under
    /// [`ScanPolicy::SkipCorrupt`] these are skipped on later scans; each
    /// block is counted once in `avq_corrupt_blocks_total`.
    quarantined: Mutex<BTreeSet<BlockId>>,
    blocks: Vec<StoredBlock>,
    primary: BPlusTree,
    secondaries: BTreeMap<usize, SecondaryIndex>,
    tuple_count: usize,
}

impl StoredRelation {
    /// Bulk-loads a relation: sorts into φ order, packs into blocks, writes
    /// them to the device, and bulk-builds the primary index.
    pub fn bulk_load(
        device: Arc<BlockDevice>,
        pool: Arc<BufferPool>,
        relation: &Relation,
        config: DbConfig,
    ) -> Result<Self, DbError> {
        let schema = relation.schema().clone();
        let codec = BlockCodec::with_options(schema.clone(), config.codec.mode, config.codec.rep)
            .with_kernel(config.codec.kernel);
        let packer = BlockPacker::new(codec.clone(), config.codec.block_capacity);

        let mut tuples = relation.tuples().to_vec();
        tuples.sort_unstable();

        let ranges = packer.partition(&tuples)?;
        let mut blocks = Vec::with_capacity(ranges.len());
        let mut keys = Vec::with_capacity(ranges.len());
        for r in ranges {
            let run = &tuples[r];
            let coded = codec.encode(run)?;
            let id = device.allocate()?;
            pool.write(id, &coded)?;
            let min = run[0].clone();
            keys.push((serialize_key(&schema, &min), id as u64));
            blocks.push(StoredBlock {
                id,
                min,
                max: run[run.len() - 1].clone(),
                count: run.len(),
                used_bytes: coded.len(),
            });
        }
        let primary = BPlusTree::bulk_build(pool.clone(), config.index_order, &keys)?;
        Ok(StoredRelation {
            schema,
            codec,
            device,
            pool,
            decoded: DecodedCache::new(config.decoded_cache_blocks),
            scratch: Mutex::new(DecodeScratch::new()),
            quarantined: Mutex::new(BTreeSet::new()),
            config,
            blocks,
            primary,
            secondaries: BTreeMap::new(),
            tuple_count: tuples.len(),
        })
    }

    /// Loads a [`avq_codec::CodedRelation`] (e.g. read from an `.avq` file)
    /// into the store: its coded blocks are written to the device verbatim
    /// and the primary index is bulk-built from the block metadata. The
    /// relation's coding options override the database defaults (except the
    /// block capacity, which must fit the device).
    pub fn from_coded(
        device: Arc<BlockDevice>,
        pool: Arc<BufferPool>,
        coded: &avq_codec::CodedRelation,
        mut config: DbConfig,
    ) -> Result<Self, DbError> {
        let opts = coded.options();
        if opts.block_capacity > device.block_size() {
            return Err(DbError::Storage(avq_storage::StorageError::BlockTooLarge {
                got: opts.block_capacity,
                block_size: device.block_size(),
            }));
        }
        config.codec = opts;
        let codec = BlockCodec::with_options(coded.schema().clone(), opts.mode, opts.rep)
            .with_kernel(opts.kernel);
        let mut emitted = Vec::with_capacity(coded.block_count());
        for i in 0..coded.block_count() {
            let id = device.allocate()?;
            pool.write(id, coded.block(i))?;
            // Reuse the decoded tuples for metadata assembly.
            let tuples = codec.decode(coded.block(i))?;
            emitted.push((id, tuples));
        }
        Self::assemble_loaded(device, pool, coded.schema().clone(), config, emitted)
    }

    /// Assembles a stored relation from already-written data blocks (used by
    /// the streaming bulk loader): records metadata and bulk-builds the
    /// primary index. Blocks must arrive in φ order.
    pub(crate) fn assemble_loaded(
        device: Arc<BlockDevice>,
        pool: Arc<BufferPool>,
        schema: Arc<Schema>,
        config: DbConfig,
        emitted: Vec<(BlockId, Vec<Tuple>)>,
    ) -> Result<Self, DbError> {
        let codec = BlockCodec::with_options(schema.clone(), config.codec.mode, config.codec.rep)
            .with_kernel(config.codec.kernel);
        let mut blocks = Vec::with_capacity(emitted.len());
        let mut keys = Vec::with_capacity(emitted.len());
        let mut tuple_count = 0usize;
        for (id, run) in &emitted {
            debug_assert!(!run.is_empty());
            let min = run[0].clone();
            keys.push((serialize_key(&schema, &min), *id as u64));
            tuple_count += run.len();
            blocks.push(StoredBlock {
                id: *id,
                min,
                max: run[run.len() - 1].clone(),
                count: run.len(),
                used_bytes: codec.measure(run),
            });
        }
        let primary = BPlusTree::bulk_build(pool.clone(), config.index_order, &keys)?;
        Ok(StoredRelation {
            schema,
            codec,
            device,
            pool,
            decoded: DecodedCache::new(config.decoded_cache_blocks),
            scratch: Mutex::new(DecodeScratch::new()),
            quarantined: Mutex::new(BTreeSet::new()),
            config,
            blocks,
            primary,
            secondaries: BTreeMap::new(),
            tuple_count,
        })
    }

    /// The relation's schema.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of stored tuples.
    #[inline]
    pub fn tuple_count(&self) -> usize {
        self.tuple_count
    }

    /// Number of data blocks.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Per-block bookkeeping, φ-ordered.
    #[inline]
    pub fn blocks(&self) -> &[StoredBlock] {
        &self.blocks
    }

    /// The primary index.
    #[inline]
    pub fn primary_index(&self) -> &BPlusTree {
        &self.primary
    }

    /// The database configuration this relation was stored with.
    #[inline]
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Total coded payload bytes across data blocks.
    pub fn coded_payload_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.used_bytes).sum()
    }

    /// Compression accounting for the stored relation, including the block
    /// fill factor (§3.3 aims to minimize unused block space).
    pub fn storage_stats(&self) -> avq_codec::CompressionStats {
        let m = self.schema.tuple_bytes();
        avq_codec::CompressionStats {
            tuple_count: self.tuple_count,
            tuple_bytes: m,
            block_capacity: self.config.codec.block_capacity,
            uncoded_bytes: self.tuple_count * m,
            coded_payload_bytes: self.coded_payload_bytes(),
            coded_blocks: self.blocks.len(),
            uncoded_blocks: uncoded_block_count(
                &self.schema,
                self.tuple_count,
                self.config.codec.block_capacity,
            ),
        }
    }

    /// Mean fraction of each data block's capacity occupied by coded bytes.
    pub fn fill_factor(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.coded_payload_bytes() as f64
            / (self.blocks.len() * self.config.codec.block_capacity) as f64
    }

    /// The simulated device this relation lives on.
    #[inline]
    pub(crate) fn device(&self) -> &Arc<BlockDevice> {
        &self.device
    }

    /// All data-block ids in φ order.
    pub fn all_block_ids(&self) -> Vec<BlockId> {
        self.blocks.iter().map(|b| b.id).collect()
    }

    /// Reads one data block's tuples, appending them to `out`.
    ///
    /// The decoded-block cache is consulted first: a hit clones tuples from
    /// the cached run without touching the pool or the codec. On a miss the
    /// block is read through the pool, decoded via the shared
    /// [`DecodeScratch`], and the decoded run is cached for the next reader.
    ///
    /// Public so block-at-a-time physical operators (the SQL executor in
    /// `avq-sql`) can stream candidate blocks without materializing scans.
    pub fn decode_block_into(&self, id: BlockId, out: &mut Vec<Tuple>) -> Result<(), DbError> {
        self.decode_block_into_traced(id, out, &avq_obs::TraceCtx::disabled())
    }

    /// [`Self::decode_block_into`] with trace attribution: when `ctx` is
    /// recording, the read runs under an `avq.db.block_read` trace span
    /// carrying the block id and cache/pool-hit flags, and a cache miss
    /// nests the codec's `avq.codec.decode_block` span beneath it. With a
    /// disabled context the extra cost is one branch per call.
    pub fn decode_block_into_traced(
        &self,
        id: BlockId,
        out: &mut Vec<Tuple>,
        ctx: &avq_obs::TraceCtx,
    ) -> Result<(), DbError> {
        self.decode_block_into_governed(id, out, ctx, &avq_obs::GovCtx::unlimited())
    }

    /// [`Self::decode_block_into_traced`] under a governance budget: the
    /// block boundary is the poll point — a cancelled query or a tripped
    /// deadline/quota surfaces [`DbError::Governance`] before the block is
    /// served — the retry policy is clamped to the query's remaining
    /// deadline, and the block's coded bytes and tuples are charged to
    /// `gov` (cache hits charge tuples only: nothing was re-decoded, but
    /// the rows were still examined). Disabled contexts add one branch per
    /// call over the traced path.
    pub fn decode_block_into_governed(
        &self,
        id: BlockId,
        out: &mut Vec<Tuple>,
        ctx: &avq_obs::TraceCtx,
        gov: &avq_obs::GovCtx,
    ) -> Result<(), DbError> {
        let guard = ctx.span(names::SPAN_DB_BLOCK_READ);
        if guard.is_recording() {
            guard.attr(names::ATTR_BLOCK, id);
        }
        if let Some(run) = self.decoded.get(id) {
            gov.poll()?;
            out.extend_from_slice(&run);
            gov.charge_decoded(0, run.len() as u64);
            if guard.is_recording() {
                guard.attr(names::ATTR_CACHE_HIT, true);
            }
            return Ok(());
        }
        let pool_before = guard.is_recording().then(|| self.pool.stats());
        let retry = match gov.remaining_ms() {
            Some(rem) => self.config.retry.clamped_to_ms(rem),
            None => self.config.retry,
        };
        let bytes = self.pool.read_with_retry(id, retry)?;
        if let Some(before) = pool_before {
            guard.attr(names::ATTR_CACHE_HIT, false);
            let served_from_pool = self.pool.stats().since(&before).hits > 0;
            guard.attr(names::ATTR_POOL_HIT, served_from_pool);
        }
        let mut scratch = self.scratch.lock().expect("decode scratch poisoned");
        if self.decoded.is_enabled() {
            let mut run = Vec::new();
            self.codec
                // lint: allow(AVQ-L009, the scratch arena is the decode workspace itself; serializing decodes on it is the lock's purpose)
                .decode_into_scratch_governed(&bytes, &mut run, &mut scratch, ctx, gov)?;
            check_phi_order(&run)?;
            out.extend_from_slice(&run);
            self.decoded.insert(id, Arc::new(run));
        } else {
            let start = out.len();
            self.codec
                // lint: allow(AVQ-L009, the scratch arena is the decode workspace itself; serializing decodes on it is the lock's purpose)
                .decode_into_scratch_governed(&bytes, out, &mut scratch, ctx, gov)?;
            if let Err(e) = check_phi_order(&out[start..]) {
                out.truncate(start);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Policy-aware block decode: under [`ScanPolicy::FailFast`] this is
    /// [`Self::decode_block_into`]; under [`ScanPolicy::SkipCorrupt`] an
    /// unreadable or corrupt block is quarantined and reported as skipped
    /// (`Ok(false)`) instead of aborting the scan. Already-quarantined
    /// blocks are skipped without re-reading.
    pub(crate) fn decode_block_policy(
        &self,
        id: BlockId,
        out: &mut Vec<Tuple>,
    ) -> Result<bool, DbError> {
        self.decode_block_policy_governed(id, out, &avq_obs::GovCtx::unlimited())
    }

    /// [`Self::decode_block_policy`] under a governance budget. A
    /// [`DbError::Governance`] trip is *not* block corruption: it always
    /// aborts the scan — even under [`ScanPolicy::SkipCorrupt`] — so a
    /// tripped query can never masquerade as a short result. Quarantined
    /// and skipped blocks charge nothing: budget accounting covers exactly
    /// the blocks actually served.
    pub(crate) fn decode_block_policy_governed(
        &self,
        id: BlockId,
        out: &mut Vec<Tuple>,
        gov: &avq_obs::GovCtx,
    ) -> Result<bool, DbError> {
        let skip = self.config.scan_policy == ScanPolicy::SkipCorrupt;
        if skip && self.is_quarantined(id) {
            return Ok(false);
        }
        match self.decode_block_into_governed(id, out, &avq_obs::TraceCtx::disabled(), gov) {
            Ok(()) => Ok(true),
            Err(e) if skip && is_block_corruption(&e) => {
                self.quarantine(id);
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// True iff `id` has been quarantined by a prior policy-aware read.
    pub fn is_quarantined(&self, id: BlockId) -> bool {
        self.quarantined
            .lock()
            .expect("quarantine set poisoned")
            .contains(&id)
    }

    /// Blocks quarantined so far, ascending.
    pub fn quarantined_blocks(&self) -> Vec<BlockId> {
        self.quarantined
            .lock()
            .expect("quarantine set poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Quarantines `id`, counting it in `avq_corrupt_blocks_total` the
    /// first time. The decoded-cache entry (if any) is dropped so a later
    /// repair is not masked by stale tuples.
    fn quarantine(&self, id: BlockId) {
        let newly = self
            .quarantined
            .lock()
            .expect("quarantine set poisoned")
            .insert(id);
        if newly {
            self.decoded.invalidate(id);
            avq_obs::counter!(names::CORRUPT_BLOCKS_TOTAL).inc();
        }
    }

    /// Decoded-block cache counters (hits mean zero decode calls).
    pub fn decoded_stats(&self) -> PoolStats {
        self.decoded.stats()
    }

    /// Counters of the (shared) buffer pool this relation reads through.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Number of decoded runs currently resident in the decoded-block
    /// cache. The SQL planner uses the resident fraction to discount the
    /// per-block cost of re-reading a warm relation.
    pub fn decoded_cache_len(&self) -> usize {
        self.decoded.len()
    }

    /// Resets the decoded-block cache counters.
    pub fn reset_decoded_stats(&self) {
        self.decoded.reset_stats();
    }

    /// Empties the decoded-block cache so the next scans decode cold.
    pub fn clear_decoded_cache(&self) {
        self.decoded.clear();
    }

    /// Candidate blocks for a secondary-index range (falls back to every
    /// block when there is no index on `attr`).
    pub fn secondary_candidate_blocks(
        &self,
        attr: usize,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<BlockId>, DbError> {
        match self.secondaries.get(&attr) {
            Some(idx) => idx.blocks_for_range(lo, hi),
            None => Ok(self.all_block_ids()),
        }
    }

    /// Candidate blocks for a clustering-prefix range (public to the query
    /// planner).
    pub fn clustered_candidate_blocks(&self, lo: u64, hi: u64) -> Result<Vec<BlockId>, DbError> {
        self.clustered_candidates(lo, hi)
    }

    /// Builds a secondary index on attribute `attr` (Fig. 4.5) by scanning
    /// every block once.
    pub fn create_secondary_index(&mut self, attr: usize) -> Result<(), DbError> {
        if self.secondaries.contains_key(&attr) {
            return Err(DbError::IndexExists { attribute: attr });
        }
        let mut idx = SecondaryIndex::create(self.pool.clone(), self.config.index_order, attr)?;
        let mut buf = Vec::new();
        for b in &self.blocks {
            buf.clear();
            if self.decode_block_policy(b.id, &mut buf)? {
                idx.add_block(&buf, b.id)?;
            }
        }
        self.secondaries.insert(attr, idx);
        Ok(())
    }

    /// True iff a secondary index exists on `attr`.
    pub fn has_secondary_index(&self, attr: usize) -> bool {
        self.secondaries.contains_key(&attr)
    }

    /// Attribute positions with secondary indexes, ascending (recorded in
    /// the durable manifest so indexes are rebuilt on open).
    pub fn secondary_attrs(&self) -> Vec<usize> {
        self.secondaries.keys().copied().collect()
    }

    /// Decodes every block in φ order (full scan without cost accounting).
    /// Under [`ScanPolicy::SkipCorrupt`] damaged blocks are quarantined and
    /// the surviving blocks' tuples are returned.
    pub fn scan_all(&self) -> Result<Vec<Tuple>, DbError> {
        self.scan_all_governed(&avq_obs::GovCtx::unlimited())
    }

    /// [`Self::scan_all`] under a governance budget: each block boundary
    /// polls `gov`, so cancellation or a tripped deadline/quota aborts the
    /// scan with [`DbError::Governance`] within one block.
    pub fn scan_all_governed(&self, gov: &avq_obs::GovCtx) -> Result<Vec<Tuple>, DbError> {
        let mut out = Vec::with_capacity(self.tuple_count);
        for b in &self.blocks {
            self.decode_block_policy_governed(b.id, &mut out, gov)?;
        }
        Ok(out)
    }

    /// Point lookup: is `tuple` stored? Routes through the primary index
    /// (whole-tuple search key, §4.1) and decodes one block.
    pub fn contains(&self, tuple: &Tuple) -> Result<(bool, QueryCost), DbError> {
        self.schema.validate_tuple(tuple)?;
        let mut tracker = CostTracker::new(&self.device);
        let key = serialize_key(&self.schema, tuple);
        let hit = self.primary.floor(&key)?;
        tracker.end_index_phase();
        let found = match hit {
            None => false,
            Some((_, block)) => {
                let id = block as BlockId;
                let skip = self.config.scan_policy == ScanPolicy::SkipCorrupt;
                if skip && self.is_quarantined(id) {
                    false
                } else {
                    // Early-exit point probe: no full block reconstruction.
                    let probe = (|| -> Result<(bool, usize), DbError> {
                        let bytes = self.pool.read_with_retry(id, self.config.retry)?;
                        let scanned = self.codec.tuple_count(&bytes)?;
                        Ok((self.codec.contains_tuple(&bytes, tuple)?, scanned))
                    })();
                    match probe {
                        Ok((present, scanned)) => {
                            self.charge_cpu(1);
                            tracker.cost.data_blocks += 1;
                            tracker.cost.tuples_scanned += scanned;
                            present
                        }
                        Err(e) if skip && is_block_corruption(&e) => {
                            self.quarantine(id);
                            false
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        };
        tracker.cost.tuples_matched += found as usize;
        tracker.end_data_phase();
        Ok((found, tracker.cost))
    }

    /// Executes `σ_{lo ≤ A_attr ≤ hi}` and returns the matching tuples with
    /// the measured cost.
    ///
    /// Access-path selection mirrors the paper: attribute 0 is the
    /// clustering prefix of the φ order, so its selections are contiguous
    /// and served by the primary index; other attributes use their secondary
    /// index when one exists, and otherwise scan every block.
    pub fn select_range(
        &self,
        attr: usize,
        lo: u64,
        hi: u64,
    ) -> Result<(Vec<Tuple>, QueryCost), DbError> {
        self.select_range_governed(attr, lo, hi, &avq_obs::GovCtx::unlimited())
    }

    /// [`Self::select_range`] under a governance budget: every block
    /// boundary polls `gov`, matched tuples are charged against the memory
    /// budget as they materialize, and a trip surfaces
    /// [`DbError::Governance`] within one block.
    pub fn select_range_governed(
        &self,
        attr: usize,
        lo: u64,
        hi: u64,
        gov: &avq_obs::GovCtx,
    ) -> Result<(Vec<Tuple>, QueryCost), DbError> {
        let _span = avq_obs::span!(names::SPAN_DB_SELECT);
        avq_obs::counter!(names::DB_QUERIES).inc();
        let mut tracker = CostTracker::new(&self.device);
        let candidates: Vec<BlockId> = if attr == 0 {
            self.clustered_candidates(lo, hi)?
        } else if let Some(idx) = self.secondaries.get(&attr) {
            idx.blocks_for_range(lo, hi)?
        } else {
            self.blocks.iter().map(|b| b.id).collect()
        };
        tracker.end_index_phase();

        let tuple_mem = tuple_mem_bytes(&self.schema);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for id in candidates {
            scratch.clear();
            if !self.decode_block_policy_governed(id, &mut scratch, gov)? {
                continue;
            }
            self.charge_cpu(1);
            tracker.cost.data_blocks += 1;
            tracker.cost.tuples_scanned += scratch.len();
            let before = out.len();
            for t in &scratch {
                let v = t.digits()[attr];
                if v >= lo && v <= hi {
                    out.push(t.clone());
                }
            }
            gov.charge_mem((out.len() - before) as u64 * tuple_mem);
        }
        tracker.cost.tuples_matched = out.len();
        tracker.end_data_phase();
        Ok((out, tracker.cost))
    }

    /// Candidate blocks for a selection on the clustering prefix: the
    /// contiguous run of blocks whose φ range intersects
    /// `[(lo,0,…,0), (hi,max,…,max)]`, found via the primary index.
    fn clustered_candidates(&self, lo: u64, hi: u64) -> Result<Vec<BlockId>, DbError> {
        if self.blocks.is_empty() || lo > hi {
            return Ok(Vec::new());
        }
        let mut lo_digits = self.schema.radix().min_digits();
        lo_digits[0] = lo.min(self.schema.radix().radices()[0] - 1);
        let mut hi_digits = self.schema.radix().max_digits();
        hi_digits[0] = hi.min(self.schema.radix().radices()[0] - 1);
        let lo_key = serialize_key(&self.schema, &Tuple::new(lo_digits));
        let hi_key = serialize_key(&self.schema, &Tuple::new(hi_digits));

        let mut out = Vec::new();
        // The block containing the range start (its min may precede lo).
        if let Some((_, block)) = self.primary.floor(&lo_key)? {
            out.push(block as BlockId);
        }
        // Blocks whose min lies inside the range.
        for (_, block) in self.primary.range(&lo_key, &hi_key)? {
            let block = block as BlockId;
            if out.last() != Some(&block) {
                out.push(block);
            }
        }
        Ok(out)
    }

    fn charge_cpu(&self, blocks: u64) {
        if self.config.cpu_ms_per_block > 0.0 {
            self.device
                .clock()
                .advance_ms(self.config.cpu_ms_per_block * blocks as f64);
        }
    }

    /// Index of the in-memory block that should hold `tuple`.
    fn route(&self, tuple: &Tuple) -> Option<usize> {
        if self.blocks.is_empty() {
            return None;
        }
        let idx = self.blocks.partition_point(|b| b.min <= *tuple);
        Some(idx.saturating_sub(1))
    }

    /// Inserts a tuple (Fig. 4.6): the affected block is decoded, the tuple
    /// spliced in, and the block re-coded in place — or split into multiple
    /// blocks when the coded form no longer fits.
    pub fn insert(&mut self, tuple: &Tuple) -> Result<(), DbError> {
        self.schema.validate_tuple(tuple)?;
        let Some(bidx) = self.route(tuple) else {
            // First tuple of an empty relation.
            let coded = self.codec.encode(std::slice::from_ref(tuple))?;
            let id = self.device.allocate()?;
            self.pool.write(id, &coded)?;
            self.decoded.invalidate(id);
            self.blocks.push(StoredBlock {
                id,
                min: tuple.clone(),
                max: tuple.clone(),
                count: 1,
                used_bytes: coded.len(),
            });
            self.primary
                .insert(&serialize_key(&self.schema, tuple), id as u64)?;
            for idx in self.secondaries.values_mut() {
                idx.add_posting(tuple.digits()[idx.attribute()], id)?;
            }
            self.tuple_count += 1;
            return Ok(());
        };

        let old = self.blocks[bidx].clone();
        let bytes = self.pool.read(old.id)?;
        match insert_into_block(&self.codec, &bytes, tuple, self.config.codec.block_capacity)? {
            InsertOutcome::InPlace(coded) => {
                self.pool.write(old.id, &coded)?;
                self.decoded.invalidate(old.id);
                let b = &mut self.blocks[bidx];
                b.count += 1;
                b.used_bytes = coded.len();
                if *tuple < b.min {
                    let old_key = serialize_key(&self.schema, &b.min);
                    b.min = tuple.clone();
                    self.primary.delete(&old_key)?;
                    self.primary
                        .insert(&serialize_key(&self.schema, tuple), old.id as u64)?;
                }
                if *tuple > b.max {
                    b.max = tuple.clone();
                }
                for idx in self.secondaries.values_mut() {
                    idx.add_posting(tuple.digits()[idx.attribute()], old.id)?;
                }
            }
            InsertOutcome::Overflow(tuples) => {
                self.split_block(bidx, &tuples)?;
            }
        }
        self.tuple_count += 1;
        Ok(())
    }

    /// Re-packs an overflowing block's tuples into as many blocks as needed,
    /// reusing the original block id for the first run.
    fn split_block(&mut self, bidx: usize, tuples: &[Tuple]) -> Result<(), DbError> {
        let old = self.blocks[bidx].clone();
        // Secondary postings for the outgoing block are rebuilt below; the
        // old block's pre-split tuple set is `tuples` minus nothing we need
        // to distinguish: removing the union is safe because removals of
        // absent postings are no-ops.
        for idx in self.secondaries.values_mut() {
            idx.remove_block(tuples, old.id)?;
        }
        self.primary
            .delete(&serialize_key(&self.schema, &old.min))?;

        // Split *balanced* (like a B-tree) rather than re-packing maximally:
        // a maximal re-pack yields a full block plus a sliver, and the next
        // insert into the same region immediately splits again. Each half is
        // re-packed only if it still overflows on its own.
        let packer = BlockPacker::new(self.codec.clone(), self.config.codec.block_capacity);
        let mid = tuples.len() / 2;
        let mut ranges = Vec::new();
        for (base, half) in [(0, &tuples[..mid]), (mid, &tuples[mid..])] {
            if half.is_empty() {
                continue;
            }
            if self.codec.measure(half) <= self.config.codec.block_capacity {
                ranges.push(base..base + half.len());
            } else {
                for r in packer.partition(half)? {
                    ranges.push(base + r.start..base + r.end);
                }
            }
        }
        debug_assert!(ranges.len() >= 2, "overflow must split into >= 2 blocks");
        let mut new_blocks = Vec::with_capacity(ranges.len());
        for (i, r) in ranges.into_iter().enumerate() {
            let run = &tuples[r];
            let coded = self.codec.encode(run)?;
            let id = if i == 0 {
                old.id
            } else {
                self.device.allocate()?
            };
            self.pool.write(id, &coded)?;
            self.decoded.invalidate(id);
            self.primary
                .insert(&serialize_key(&self.schema, &run[0]), id as u64)?;
            for idx in self.secondaries.values_mut() {
                idx.add_block(run, id)?;
            }
            new_blocks.push(StoredBlock {
                id,
                min: run[0].clone(),
                max: run[run.len() - 1].clone(),
                count: run.len(),
                used_bytes: coded.len(),
            });
        }
        self.blocks.splice(bidx..bidx + 1, new_blocks);
        Ok(())
    }

    /// Deletes one occurrence of `tuple`.
    pub fn delete(&mut self, tuple: &Tuple) -> Result<(), DbError> {
        self.schema.validate_tuple(tuple)?;
        let Some(bidx) = self.route(tuple) else {
            return Err(DbError::TupleNotFound);
        };
        let old = self.blocks[bidx].clone();
        if *tuple < old.min || *tuple > old.max {
            return Err(DbError::TupleNotFound);
        }
        let bytes = self.pool.read(old.id)?;
        match delete_from_block(&self.codec, &bytes, tuple)? {
            DeleteOutcome::Emptied => {
                self.primary
                    .delete(&serialize_key(&self.schema, &old.min))?;
                for idx in self.secondaries.values_mut() {
                    idx.remove_posting(tuple.digits()[idx.attribute()], old.id)?;
                }
                self.pool.invalidate(old.id);
                self.decoded.invalidate(old.id);
                self.device.free(old.id)?;
                self.blocks.remove(bidx);
            }
            DeleteOutcome::InPlace(coded) => {
                self.pool.write(old.id, &coded)?;
                self.decoded.invalidate(old.id);
                let remaining = self.codec.decode(&coded)?;
                let b = &mut self.blocks[bidx];
                b.count -= 1;
                b.used_bytes = coded.len();
                let new_min = remaining[0].clone();
                let new_max = remaining[remaining.len() - 1].clone();
                if new_min != b.min {
                    let old_key = serialize_key(&self.schema, &b.min);
                    self.primary.delete(&old_key)?;
                    self.primary
                        .insert(&serialize_key(&self.schema, &new_min), old.id as u64)?;
                    b.min = new_min;
                }
                b.max = new_max;
                for idx in self.secondaries.values_mut() {
                    let attr = idx.attribute();
                    let v = tuple.digits()[attr];
                    if !remaining.iter().any(|t| t.digits()[attr] == v) {
                        idx.remove_posting(v, old.id)?;
                    }
                }
            }
        }
        self.tuple_count -= 1;
        Ok(())
    }

    /// Replaces `old` with `new` (§4.2: "tuple modification may simply be
    /// defined as a combination of tuple insertion and deletion").
    pub fn update(&mut self, old: &Tuple, new: &Tuple) -> Result<(), DbError> {
        self.delete(old)?;
        match self.insert(new) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Restore the deleted tuple so the relation is unchanged.
                self.insert(old).expect("re-inserting a just-deleted tuple");
                Err(e)
            }
        }
    }
}

/// A decoded run must be φ-sorted: block coding stores tuples in φ order,
/// so an out-of-order run means the bytes were silently damaged in a way
/// that still parsed (e.g. a bit flip inside an RLE count). Checked on
/// every cache-miss decode — O(n) over tuples already in cache.
fn check_phi_order(run: &[Tuple]) -> Result<(), DbError> {
    if run.windows(2).any(|w| matches!(w, [a, b] if a > b)) {
        return Err(DbError::Codec(CodecError::Corrupt {
            section: "order",
            offset: 0,
            detail: "decoded run violates phi order".to_owned(),
        }));
    }
    Ok(())
}

/// True for errors that condemn a single block (unreadable media or bytes
/// that no longer decode) rather than the whole operation. Only these are
/// skippable under [`ScanPolicy::SkipCorrupt`].
fn is_block_corruption(e: &DbError) -> bool {
    matches!(
        e,
        DbError::Codec(_) | DbError::Schema(_) | DbError::Storage(StorageError::Io { .. })
    )
}

/// Approximate heap bytes one materialized [`Tuple`] of this schema
/// occupies (its digit buffer plus container overhead) — the unit the
/// governance memory budget charges for query-proportional state such as
/// selection results and join hash tables.
pub fn tuple_mem_bytes(schema: &Schema) -> u64 {
    schema.arity() as u64 * 8 + 32
}

/// Serializes a tuple into its fixed-width primary-index key (byte order =
/// φ order).
pub(crate) fn serialize_key(schema: &Schema, tuple: &Tuple) -> Vec<u8> {
    let mut key = Vec::with_capacity(schema.tuple_bytes());
    schema.write_tuple(tuple, &mut key);
    key
}

/// Number of data blocks an *uncoded* (field-wise) copy of the same tuples
/// would occupy at this capacity — the paper's "No coding" baseline.
pub fn uncoded_block_count(schema: &Schema, tuple_count: usize, capacity: usize) -> usize {
    let m = schema.tuple_bytes();
    if m == 0 {
        return usize::from(tuple_count > 0);
    }
    let per_block = (capacity - avq_codec::BLOCK_HEADER_BYTES) / m;
    if per_block == 0 {
        0
    } else {
        tuple_count.div_ceil(per_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avq_schema::Domain;
    use avq_storage::DiskProfile;

    fn setup(
        n: u64,
        capacity: usize,
        mode: CodingMode,
    ) -> (Arc<BlockDevice>, Arc<BufferPool>, StoredRelation) {
        let schema = Schema::from_pairs(vec![
            ("a", Domain::uint(64).unwrap()),
            ("b", Domain::uint(64).unwrap()),
            ("c", Domain::uint(4096).unwrap()),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = (0..n)
            .map(|i| Tuple::from([(i * 7) % 64, (i * 13) % 64, (i * 29) % 4096]))
            .collect();
        let rel = Relation::from_tuples(schema, tuples).unwrap();
        let config = DbConfig {
            codec: avq_codec::CodecOptions {
                mode,
                block_capacity: capacity,
                ..Default::default()
            },
            disk: DiskProfile::paper_fixed(),
            ..Default::default()
        };
        let device = BlockDevice::new(capacity, config.disk);
        let pool = BufferPool::new(device.clone(), config.buffer_frames);
        let stored = StoredRelation::bulk_load(device.clone(), pool.clone(), &rel, config).unwrap();
        (device, pool, stored)
    }

    #[test]
    fn bulk_load_and_scan() {
        let (_, _, stored) = setup(500, 128, CodingMode::AvqChained);
        assert_eq!(stored.tuple_count(), 500);
        assert!(stored.block_count() > 1);
        let tuples = stored.scan_all().unwrap();
        assert_eq!(tuples.len(), 500);
        assert!(tuples.windows(2).all(|w| w[0] <= w[1]));
        stored.primary_index().validate().unwrap();
    }

    #[test]
    fn contains_routes_through_primary() {
        let (device, pool, stored) = setup(300, 128, CodingMode::AvqChained);
        let present = stored.scan_all().unwrap()[137].clone();
        pool.clear();
        device.reset_stats();
        let (found, cost) = stored.contains(&present).unwrap();
        assert!(found);
        assert_eq!(cost.data_reads, 1, "exactly one data block read");
        assert!(cost.index_reads >= 1);
        let absent = Tuple::from([63u64, 63, 4095]);
        let (found, _) = stored.contains(&absent).unwrap();
        assert!(!found);
    }

    #[test]
    fn clustered_selection_reads_contiguous_blocks() {
        let (device, pool, stored) = setup(1000, 256, CodingMode::AvqChained);
        pool.clear();
        device.reset_stats();
        let (rows, cost) = stored.select_range(0, 10, 20).unwrap();
        assert!(rows.iter().all(|t| (10..=20).contains(&t.digits()[0])));
        let expect = stored
            .scan_all()
            .unwrap()
            .iter()
            .filter(|t| (10..=20).contains(&t.digits()[0]))
            .count();
        assert_eq!(rows.len(), expect);
        assert!(
            (cost.data_reads as usize) < stored.block_count(),
            "prefix selection must not scan every block"
        );
    }

    #[test]
    fn secondary_selection_matches_full_scan() {
        let (_, _, mut stored) = setup(800, 256, CodingMode::AvqChained);
        stored.create_secondary_index(1).unwrap();
        assert!(stored.has_secondary_index(1));
        let (rows, cost) = stored.select_range(1, 5, 9).unwrap();
        let expect: Vec<Tuple> = stored
            .scan_all()
            .unwrap()
            .into_iter()
            .filter(|t| (5..=9).contains(&t.digits()[1]))
            .collect();
        let mut sorted_rows = rows.clone();
        sorted_rows.sort_unstable();
        assert_eq!(sorted_rows, expect);
        assert_eq!(cost.tuples_matched, expect.len());
    }

    #[test]
    fn unindexed_selection_scans_all_blocks() {
        let (device, pool, stored) = setup(400, 256, CodingMode::AvqChained);
        pool.clear();
        device.reset_stats();
        let (_, cost) = stored.select_range(2, 100, 200).unwrap();
        assert_eq!(cost.data_reads as usize, stored.block_count());
    }

    #[test]
    fn duplicate_index_rejected() {
        let (_, _, mut stored) = setup(50, 256, CodingMode::AvqChained);
        stored.create_secondary_index(1).unwrap();
        assert!(matches!(
            stored.create_secondary_index(1),
            Err(DbError::IndexExists { attribute: 1 })
        ));
    }

    #[test]
    fn insert_in_place_and_split() {
        let (_, _, mut stored) = setup(200, 128, CodingMode::AvqChained);
        let before_blocks = stored.block_count();
        // Insert many tuples clustered at one spot to force a split.
        for i in 0..50u64 {
            stored.insert(&Tuple::from([30u64, 30, i])).unwrap();
        }
        assert_eq!(stored.tuple_count(), 250);
        assert!(stored.block_count() > before_blocks, "splits happened");
        let tuples = stored.scan_all().unwrap();
        assert_eq!(tuples.len(), 250);
        assert!(tuples.windows(2).all(|w| w[0] <= w[1]));
        stored.primary_index().validate().unwrap();
        // Every inserted tuple is findable.
        for i in 0..50u64 {
            let (found, _) = stored.contains(&Tuple::from([30u64, 30, i])).unwrap();
            assert!(found, "tuple {i} lost");
        }
    }

    #[test]
    fn scattered_inserts_do_not_balloon_block_count() {
        // Regression: splits must be balanced (B-tree style). A maximal
        // re-pack leaves the split block full, so a scattered insert stream
        // would split on nearly every operation.
        let (_, _, mut stored) = setup(2000, 256, CodingMode::AvqChained);
        let before = stored.block_count();
        for i in 0..400u64 {
            let t = Tuple::from([(i * 37) % 64, (i * 53) % 64, (i * 101) % 4096]);
            stored.insert(&t).unwrap();
        }
        let after = stored.block_count();
        let grown = after - before;
        // 400 inserts over ~80 blocks of ~25 tuples each: block count may
        // grow by roughly the data growth (20%), not by one per insert.
        assert!(
            grown < 80,
            "block count grew by {grown} for 400 inserts ({before} -> {after})"
        );
        assert_eq!(stored.tuple_count(), 2400);
        // Everything still findable and ordered.
        let all = stored.scan_all().unwrap();
        assert_eq!(all.len(), 2400);
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
        stored.primary_index().validate().unwrap();
    }

    #[test]
    fn insert_below_global_min() {
        let (_, _, mut stored) = setup(100, 256, CodingMode::AvqChained);
        let t = Tuple::from([0u64, 0, 0]);
        stored.insert(&t).unwrap();
        let (found, _) = stored.contains(&t).unwrap();
        assert!(found);
        assert_eq!(stored.blocks()[0].min, t);
    }

    #[test]
    fn delete_and_empty_block_reclaim() {
        let (device, _, mut stored) = setup(60, 4096, CodingMode::AvqChained);
        // Everything fits a handful of blocks; delete every tuple.
        let tuples = stored.scan_all().unwrap();
        let live_before = device.live_blocks();
        for t in &tuples {
            stored.delete(t).unwrap();
        }
        assert_eq!(stored.tuple_count(), 0);
        assert_eq!(stored.block_count(), 0);
        assert!(device.live_blocks() < live_before, "blocks were freed");
        assert!(matches!(
            stored.delete(&tuples[0]),
            Err(DbError::TupleNotFound)
        ));
    }

    #[test]
    fn delete_missing_tuple() {
        let (_, _, mut stored) = setup(100, 256, CodingMode::AvqChained);
        // In-range but absent.
        let tuples = stored.scan_all().unwrap();
        let mut ghost = tuples[0].clone();
        // Find a digit tweak that makes it absent.
        ghost.digits_mut()[2] = (ghost.digits()[2] + 1) % 4096;
        if tuples.binary_search(&ghost).is_err() {
            assert!(matches!(stored.delete(&ghost), Err(DbError::TupleNotFound)));
        }
        assert_eq!(stored.tuple_count(), 100);
    }

    #[test]
    fn update_moves_tuple() {
        let (_, _, mut stored) = setup(100, 512, CodingMode::AvqChained);
        let old = stored.scan_all().unwrap()[50].clone();
        let new = Tuple::from([63u64, 63, 4095]);
        stored.update(&old, &new).unwrap();
        assert_eq!(stored.tuple_count(), 100);
        let (found_old, _) = stored.contains(&old).unwrap();
        let (found_new, _) = stored.contains(&new).unwrap();
        assert!(!found_old);
        assert!(found_new);
    }

    #[test]
    fn secondary_stays_correct_through_updates() {
        let (_, _, mut stored) = setup(300, 128, CodingMode::AvqChained);
        stored.create_secondary_index(1).unwrap();
        // Churn: insert clustered tuples (forcing splits) and delete some.
        for i in 0..40u64 {
            stored.insert(&Tuple::from([10u64, 7, i])).unwrap();
        }
        for i in 0..20u64 {
            stored.delete(&Tuple::from([10u64, 7, i])).unwrap();
        }
        let (rows, _) = stored.select_range(1, 7, 7).unwrap();
        let expect: usize = stored
            .scan_all()
            .unwrap()
            .iter()
            .filter(|t| t.digits()[1] == 7)
            .count();
        assert_eq!(rows.len(), expect);
    }

    #[test]
    fn fieldwise_baseline_works_identically() {
        let (_, _, mut stored) = setup(300, 256, CodingMode::FieldWise);
        assert_eq!(stored.tuple_count(), 300);
        stored.create_secondary_index(1).unwrap();
        let (rows, _) = stored.select_range(1, 0, 63).unwrap();
        assert_eq!(rows.len(), 300);
        stored.insert(&Tuple::from([1u64, 1, 1])).unwrap();
        stored.delete(&Tuple::from([1u64, 1, 1])).unwrap();
        assert_eq!(stored.tuple_count(), 300);
    }

    #[test]
    fn uncoded_block_count_formula() {
        let schema = Schema::from_pairs(vec![("a", Domain::uint(256).unwrap())]).unwrap();
        // capacity 10, header 4 -> 6 tuples of 1 byte per block
        assert_eq!(uncoded_block_count(&schema, 12, 10), 2);
        assert_eq!(uncoded_block_count(&schema, 13, 10), 3);
        assert_eq!(uncoded_block_count(&schema, 0, 10), 0);
    }

    #[test]
    fn storage_stats_and_fill_factor() {
        let (_, _, stored) = setup(1000, 256, CodingMode::AvqChained);
        let st = stored.storage_stats();
        assert_eq!(st.tuple_count, 1000);
        assert_eq!(st.coded_blocks, stored.block_count());
        assert_eq!(st.coded_payload_bytes, stored.coded_payload_bytes());
        let fill = stored.fill_factor();
        assert!(fill > 0.5 && fill <= 1.0, "packer fills blocks: {fill}");
    }

    #[test]
    fn warm_rescan_decodes_nothing() {
        let (device, _, stored) = setup(1000, 256, CodingMode::AvqChained);
        stored.clear_decoded_cache();
        stored.reset_decoded_stats();

        let cold = stored.scan_all().unwrap();
        let st = stored.decoded_stats();
        assert_eq!(st.hits, 0, "cold scan cannot hit");
        assert_eq!(st.misses as usize, stored.block_count());

        device.reset_stats();
        let warm = stored.scan_all().unwrap();
        assert_eq!(warm, cold);
        let st = stored.decoded_stats();
        assert_eq!(
            st.hits as usize,
            stored.block_count(),
            "warm re-scan must be served entirely from the decoded cache"
        );
        assert_eq!(st.misses as usize, stored.block_count(), "no new misses");
        assert_eq!(
            device.io_stats().reads,
            0,
            "decoded-cache hits skip the device entirely"
        );
    }

    #[test]
    fn mutations_invalidate_decoded_blocks() {
        let (_, _, mut stored) = setup(500, 256, CodingMode::AvqChained);
        let before = stored.scan_all().unwrap(); // warm the cache
        let t = Tuple::from([31u64, 31, 31]);
        stored.insert(&t).unwrap();
        let after_insert = stored.scan_all().unwrap();
        let mut expect = before.clone();
        let at = expect.partition_point(|x| *x <= t);
        expect.insert(at, t.clone());
        assert_eq!(after_insert, expect, "cached run must not mask the insert");
        stored.delete(&t).unwrap();
        assert_eq!(stored.scan_all().unwrap(), before);
    }

    #[test]
    fn disabled_cache_still_scans_correctly() {
        let schema = Schema::from_pairs(vec![
            ("a", Domain::uint(64).unwrap()),
            ("b", Domain::uint(64).unwrap()),
            ("c", Domain::uint(4096).unwrap()),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = (0..300u64)
            .map(|i| Tuple::from([(i * 7) % 64, (i * 13) % 64, (i * 29) % 4096]))
            .collect();
        let rel = Relation::from_tuples(schema, tuples).unwrap();
        let config = DbConfig {
            codec: avq_codec::CodecOptions {
                block_capacity: 256,
                ..Default::default()
            },
            decoded_cache_blocks: 0,
            ..Default::default()
        };
        let device = BlockDevice::new(256, config.disk);
        let pool = BufferPool::new(device.clone(), config.buffer_frames);
        let stored = StoredRelation::bulk_load(device, pool, &rel, config).unwrap();
        let a = stored.scan_all().unwrap();
        let b = stored.scan_all().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 300);
        assert_eq!(
            stored.decoded_stats(),
            avq_storage::PoolStats::default(),
            "disabled cache measures nothing"
        );
    }

    #[test]
    fn coded_beats_uncoded_on_blocks() {
        let (_, _, stored) = setup(2000, 256, CodingMode::AvqChained);
        let uncoded = uncoded_block_count(stored.schema(), 2000, 256);
        assert!(
            stored.block_count() < uncoded,
            "AVQ {} blocks must beat uncoded {} blocks",
            stored.block_count(),
            uncoded
        );
    }
}
