//! Relation-level compression: the full §3 pipeline in one call.
//!
//! [`compress`] takes a [`Relation`], applies tuple re-ordering (§3.2),
//! block partitioning (§3.3), and block coding (§3.4), and returns a
//! [`CodedRelation`] — the sequence of coded block streams plus the per-block
//! metadata (representative, bounds) that access methods build on.

use crate::block::BlockCodec;
use crate::error::CodecError;
use crate::kernel::DecodeKernel;
use crate::mode::{CodingMode, RepChoice};
use crate::packer::BlockPacker;
use crate::stats::CompressionStats;
use avq_obs::names;
use avq_schema::{Relation, Schema, Tuple};
use std::sync::Arc;

/// Options for the compression pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecOptions {
    /// How blocks are coded.
    pub mode: CodingMode,
    /// Which tuple of a block becomes its representative.
    pub rep: RepChoice,
    /// Disk-block capacity in bytes (the paper uses 8192).
    pub block_capacity: usize,
    /// Which decode kernel block decoding routes through. Affects decode
    /// speed only — the coded bytes and decoded tuples are identical for
    /// every kernel.
    pub kernel: DecodeKernel,
}

impl Default for CodecOptions {
    fn default() -> Self {
        CodecOptions {
            mode: CodingMode::default(),
            rep: RepChoice::default(),
            block_capacity: 8192,
            kernel: DecodeKernel::default(),
        }
    }
}

/// Per-block metadata kept outside the coded stream.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    /// The block's representative tuple (the §4.1 primary-index key).
    pub representative: Tuple,
    /// φ-smallest tuple in the block.
    pub min: Tuple,
    /// φ-largest tuple in the block.
    pub max: Tuple,
    /// Number of tuples in the block.
    pub tuple_count: usize,
    /// Coded size in bytes.
    pub coded_bytes: usize,
}

/// A compressed relation: coded block streams plus metadata.
#[derive(Debug, Clone)]
pub struct CodedRelation {
    schema: Arc<Schema>,
    options: CodecOptions,
    blocks: Vec<Vec<u8>>,
    meta: Vec<BlockMeta>,
    tuple_count: usize,
}

/// Compresses a relation. The input order is irrelevant: tuples are copied
/// and sorted into φ order first (§3.2).
pub fn compress(relation: &Relation, options: CodecOptions) -> Result<CodedRelation, CodecError> {
    let mut tuples = relation.tuples().to_vec();
    tuples.sort_unstable();
    compress_sorted(relation.schema().clone(), &tuples, options)
}

/// Compresses tuples already in φ order (skips the copy + sort).
pub fn compress_sorted(
    schema: Arc<Schema>,
    tuples: &[Tuple],
    options: CodecOptions,
) -> Result<CodedRelation, CodecError> {
    let _span = avq_obs::span!(names::SPAN_CODEC_COMPRESS);
    avq_obs::counter!(names::CODEC_COMPRESS_RELATIONS).inc();
    let codec = BlockCodec::with_options(schema.clone(), options.mode, options.rep);
    let packer = BlockPacker::new(codec.clone(), options.block_capacity);
    let ranges = packer.partition(tuples)?;
    // lint: bounded(one entry per packed block range)
    let mut blocks = Vec::with_capacity(ranges.len());
    // lint: bounded(one entry per packed block range)
    let mut meta = Vec::with_capacity(ranges.len());
    for r in ranges {
        // Partition ranges tile `tuples`, so each is in bounds and
        // non-empty.
        let run = tuples.get(r).unwrap_or(&[]);
        let coded = codec.encode(run)?;
        let rep_idx = match options.mode {
            CodingMode::FieldWise => 0,
            _ => options.rep.index(run.len()),
        };
        let (Some(rep), Some(min), Some(max)) = (run.get(rep_idx), run.first(), run.last()) else {
            return Err(CodecError::EmptyBlock);
        };
        meta.push(BlockMeta {
            representative: rep.clone(),
            min: min.clone(),
            max: max.clone(),
            tuple_count: run.len(),
            coded_bytes: coded.len(),
        });
        blocks.push(coded);
    }
    Ok(CodedRelation {
        schema,
        options,
        blocks,
        meta,
        tuple_count: tuples.len(),
    })
}

impl CodedRelation {
    /// Reassembles a coded relation from previously-encoded block streams
    /// (e.g. read back from a file), recomputing per-block metadata by
    /// decoding each block and validating the global φ order.
    pub fn from_blocks(
        schema: Arc<Schema>,
        options: CodecOptions,
        blocks: Vec<Vec<u8>>,
    ) -> Result<Self, CodecError> {
        let codec = BlockCodec::with_options(schema.clone(), options.mode, options.rep)
            .with_kernel(options.kernel);
        // lint: bounded(one entry per supplied block)
        let mut meta = Vec::with_capacity(blocks.len());
        let mut tuple_count = 0usize;
        let mut prev_max: Option<Tuple> = None;
        for (i, b) in blocks.iter().enumerate() {
            let tuples = codec.decode(b)?;
            let rep = codec.read_representative(b)?;
            // Decode rejects empty blocks, so min/max always exist.
            let (Some(min), Some(max)) = (tuples.first(), tuples.last()) else {
                return Err(CodecError::EmptyBlock);
            };
            if let Some(pm) = &prev_max {
                if min < pm {
                    return Err(CodecError::UnsortedInput { position: i });
                }
            }
            prev_max = Some(max.clone());
            tuple_count += tuples.len();
            meta.push(BlockMeta {
                representative: rep,
                min: min.clone(),
                max: max.clone(),
                tuple_count: tuples.len(),
                coded_bytes: b.len(),
            });
        }
        Ok(CodedRelation {
            schema,
            options,
            blocks,
            meta,
            tuple_count,
        })
    }

    /// The relation's schema.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The options the relation was coded with.
    #[inline]
    pub fn options(&self) -> CodecOptions {
        self.options
    }

    /// A codec configured for this relation's blocks (including the decode
    /// kernel selected in the options).
    pub fn codec(&self) -> BlockCodec {
        BlockCodec::with_options(self.schema.clone(), self.options.mode, self.options.rep)
            .with_kernel(self.options.kernel)
    }

    /// Same relation, decoded through a different kernel. The coded bytes
    /// are untouched — only the decode path selected by [`Self::codec`]
    /// changes.
    #[must_use]
    pub fn with_kernel(mut self, kernel: DecodeKernel) -> Self {
        self.options.kernel = kernel;
        self
    }

    /// Number of coded blocks.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of tuples.
    #[inline]
    pub fn tuple_count(&self) -> usize {
        self.tuple_count
    }

    /// The coded byte stream of block `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.block_count()` (documented index API).
    #[inline]
    pub fn block(&self, i: usize) -> &[u8] {
        // lint: allow(AVQ-L001, documented panicking index accessor; i is caller-validated)
        &self.blocks[i]
    }

    /// All coded block streams in φ order.
    #[inline]
    pub fn blocks(&self) -> &[Vec<u8>] {
        &self.blocks
    }

    /// Metadata of block `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.block_count()` (documented index API).
    #[inline]
    pub fn meta(&self, i: usize) -> &BlockMeta {
        // lint: allow(AVQ-L001, documented panicking index accessor; i is caller-validated)
        &self.meta[i]
    }

    /// Metadata of all blocks in φ order.
    #[inline]
    pub fn metas(&self) -> &[BlockMeta] {
        &self.meta
    }

    /// Decodes block `i` into tuples.
    ///
    /// # Panics
    /// Panics if `i >= self.block_count()` (documented index API).
    pub fn decode_block(&self, i: usize) -> Result<Vec<Tuple>, CodecError> {
        // lint: allow(AVQ-L001, documented panicking index accessor; i is caller-validated)
        self.codec().decode(&self.blocks[i])
    }

    /// Decompresses the whole relation (tuples come back in φ order).
    ///
    /// One [`crate::DecodeScratch`] is carried across all blocks, so the
    /// whole pass allocates O(tuples): the digit vector each tuple owns,
    /// and nothing else once the scratch reaches steady state.
    pub fn decompress(&self) -> Result<Relation, CodecError> {
        let codec = self.codec();
        let mut scratch = crate::block::DecodeScratch::new();
        // lint: bounded(tuple_count was counted at compression time)
        let mut tuples = Vec::with_capacity(self.tuple_count);
        for b in &self.blocks {
            codec.decode_into_scratch(b, &mut tuples, &mut scratch)?;
        }
        Relation::from_tuples(self.schema.clone(), tuples).map_err(|e| CodecError::Corrupt {
            section: "entries",
            offset: 0,
            detail: format!("decoded tuples violate the schema: {e}"),
        })
    }

    /// Index of the first block whose φ-range could contain `tuple`
    /// (binary search on block bounds). Returns `None` for an empty relation.
    pub fn locate_block(&self, tuple: &Tuple) -> Option<usize> {
        if self.meta.is_empty() {
            return None;
        }
        // First block whose max >= tuple; if none, the last block.
        let idx = self.meta.partition_point(|m| m.max < *tuple);
        Some(idx.min(self.meta.len() - 1))
    }

    /// Compression accounting for this relation.
    pub fn stats(&self) -> CompressionStats {
        let m = self.schema.tuple_bytes();
        let uncoded_bytes = self.tuple_count * m;
        let coded_payload_bytes = self.blocks.iter().map(Vec::len).sum();
        let cap = self.options.block_capacity;
        // Uncoded layout: fixed-width tuples, none split across blocks, with
        // the same 4-byte header the coded blocks carry.
        let per_block = cap
            .saturating_sub(crate::block::BLOCK_HEADER_BYTES)
            .checked_div(m)
            .unwrap_or(self.tuple_count.max(1));
        let uncoded_blocks = match per_block {
            0 => 0,
            per_block => self.tuple_count.div_ceil(per_block),
        };
        CompressionStats {
            tuple_count: self.tuple_count,
            tuple_bytes: m,
            block_capacity: cap,
            uncoded_bytes,
            coded_payload_bytes,
            coded_blocks: self.blocks.len(),
            uncoded_blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avq_num::BigUnsigned;
    use avq_schema::Domain;

    fn schema() -> Arc<Schema> {
        Schema::from_pairs(vec![
            ("a", Domain::uint(32).unwrap()),
            ("b", Domain::uint(64).unwrap()),
            ("c", Domain::uint(128).unwrap()),
        ])
        .unwrap()
    }

    fn relation(n: u64, stride: u64) -> Relation {
        let s = schema();
        let tuples: Vec<Tuple> = (0..n)
            .map(|i| {
                Tuple::new(
                    s.radix()
                        .unrank(&BigUnsigned::from_u64(i * stride))
                        .unwrap(),
                )
            })
            .collect();
        Relation::from_tuples(s, tuples).unwrap()
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let rel = relation(1000, 37);
        for mode in CodingMode::ALL {
            let opts = CodecOptions {
                mode,
                block_capacity: 256,
                ..Default::default()
            };
            let coded = compress(&rel, opts).unwrap();
            let back = coded.decompress().unwrap();
            let mut expect = rel.tuples().to_vec();
            expect.sort_unstable();
            assert_eq!(back.tuples(), &expect[..], "mode {mode}");
        }
    }

    #[test]
    fn unsorted_input_is_sorted_by_compress() {
        let s = schema();
        let tuples = vec![
            Tuple::from([5u64, 0, 0]),
            Tuple::from([1u64, 0, 0]),
            Tuple::from([3u64, 0, 0]),
        ];
        let rel = Relation::from_tuples(s, tuples).unwrap();
        let coded = compress(&rel, CodecOptions::default()).unwrap();
        let back = coded.decompress().unwrap();
        assert!(back.is_sorted());
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn meta_bounds_are_correct() {
        let rel = relation(500, 101);
        let coded = compress(
            &rel,
            CodecOptions {
                block_capacity: 128,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(coded.block_count() > 1);
        let mut total = 0usize;
        for i in 0..coded.block_count() {
            let tuples = coded.decode_block(i).unwrap();
            let meta = coded.meta(i);
            assert_eq!(meta.tuple_count, tuples.len());
            assert_eq!(meta.min, tuples[0]);
            assert_eq!(meta.max, *tuples.last().unwrap());
            assert_eq!(meta.coded_bytes, coded.block(i).len());
            assert!(tuples.contains(&meta.representative));
            total += tuples.len();
        }
        assert_eq!(total, coded.tuple_count());
        // Blocks are disjoint and ordered.
        for w in coded.metas().windows(2) {
            assert!(w[0].max < w[1].min);
        }
    }

    #[test]
    fn locate_block_finds_containing_block() {
        let rel = relation(400, 53);
        let coded = compress(
            &rel,
            CodecOptions {
                block_capacity: 96,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..coded.block_count() {
            for t in coded.decode_block(i).unwrap() {
                assert_eq!(coded.locate_block(&t), Some(i), "tuple {t:?}");
            }
        }
        // A tuple beyond every block maps to the last block.
        let beyond = Tuple::from([31u64, 63, 127]);
        assert_eq!(coded.locate_block(&beyond), Some(coded.block_count() - 1));
    }

    #[test]
    fn stats_add_up() {
        let rel = relation(2000, 11);
        let coded = compress(
            &rel,
            CodecOptions {
                block_capacity: 512,
                ..Default::default()
            },
        )
        .unwrap();
        let st = coded.stats();
        assert_eq!(st.tuple_count, 2000);
        assert_eq!(st.uncoded_bytes, 2000 * 3);
        assert_eq!(st.coded_blocks, coded.block_count());
        assert_eq!(
            st.coded_payload_bytes,
            coded.blocks().iter().map(Vec::len).sum::<usize>()
        );
        // Dense data must compress: fewer coded blocks than uncoded.
        assert!(st.coded_blocks < st.uncoded_blocks);
        assert!(st.block_reduction_percent() > 0.0);
    }

    #[test]
    fn empty_relation() {
        let rel = Relation::new(schema());
        let coded = compress(&rel, CodecOptions::default()).unwrap();
        assert_eq!(coded.block_count(), 0);
        assert_eq!(coded.tuple_count(), 0);
        assert!(coded.locate_block(&Tuple::from([0u64, 0, 0])).is_none());
        assert_eq!(coded.decompress().unwrap().len(), 0);
    }

    #[test]
    fn paper_block_capacity_default() {
        assert_eq!(CodecOptions::default().block_capacity, 8192);
    }
}
