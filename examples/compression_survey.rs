//! Compression-efficiency survey: the §5.1 sweep (Fig. 5.7) at example
//! scale, plus the coding-mode and block-size ablations from DESIGN.md.
//!
//! Run with: `cargo run --release -p avq --example compression_survey`
//! (pass a tuple count as the first argument to change the scale; default
//! 20 000).

use avq::prelude::*;
use avq::workload::SyntheticSpec;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    // Fig. 5.7: four relation characteristics, 15 attributes each.
    println!("Fig 5.7 — percentage reduction in disk blocks ({n} tuples, 8 KiB blocks)");
    println!(
        "{:<28} {:>8} {:>8} {:>10} {:>10}",
        "test", "uncoded", "coded", "blocks", "payload"
    );
    for (name, spec) in SyntheticSpec::fig_5_7_tests(n) {
        let relation = spec.generate();
        let coded = compress(&relation, CodecOptions::default()).unwrap();
        let st = coded.stats();
        println!(
            "{:<28} {:>8} {:>8} {:>9.1}% {:>9.1}%",
            name,
            st.uncoded_blocks,
            st.coded_blocks,
            st.block_reduction_percent(),
            st.payload_reduction_percent()
        );
    }
    println!("(paper: Test 1 = 73.0%, Test 2 = 65.6%, Test 3 = 73.2%, Test 4 = 65.6%)");

    // Ablation: coding mode × representative choice on the §5.2 relation.
    let spec = SyntheticSpec::section_5_2(n);
    let relation = spec.generate();
    println!(
        "\nmode × representative ablation (§5.2 relation: 16 attrs, {} B tuples, {n} tuples)",
        relation.schema().tuple_bytes()
    );
    println!(
        "{:<14} {:<8} {:>8} {:>10}",
        "mode", "rep", "blocks", "reduction"
    );
    for mode in CodingMode::ALL {
        for rep in RepChoice::ALL {
            let coded = compress(
                &relation,
                CodecOptions {
                    mode,
                    rep,
                    block_capacity: 8192,
                    ..Default::default()
                },
            )
            .unwrap();
            let st = coded.stats();
            println!(
                "{:<14} {:<8} {:>8} {:>9.1}%",
                mode.to_string(),
                rep.to_string(),
                st.coded_blocks,
                st.block_reduction_percent()
            );
            if mode == CodingMode::FieldWise {
                break; // representative is irrelevant without differencing
            }
        }
    }

    // Ablation: block-size sensitivity (§3.3's partition size).
    println!("\nblock-size sweep (chained AVQ, median representative)");
    println!(
        "{:<10} {:>8} {:>8} {:>10}",
        "block", "uncoded", "coded", "reduction"
    );
    for shift in 10..=16 {
        let capacity = 1usize << shift;
        let coded = compress(
            &relation,
            CodecOptions {
                block_capacity: capacity,
                ..Default::default()
            },
        )
        .unwrap();
        let st = coded.stats();
        println!(
            "{:<10} {:>8} {:>8} {:>9.1}%",
            format!("{} KiB", capacity / 1024),
            st.uncoded_blocks,
            st.coded_blocks,
            st.block_reduction_percent()
        );
    }
}
