//! Request-scoped structured tracing, layered on the span machinery.
//!
//! The flat metrics in [`crate::Registry`] say how much time each family
//! consumed; this module says *which request* spent it. A [`TraceCollector`]
//! hands out [`TraceCtx`] handles — explicitly threaded through call stacks,
//! no thread-local magic — and every layer that holds one attaches
//! hierarchical [`TraceSpan`] records (name, parent, start/elapsed via
//! [`Stopwatch`], typed attributes such as `blocks_read` or `kernel`).
//! Finished traces land in a bounded ring buffer under a [`SamplingPolicy`];
//! traces whose root span exceeds a configurable latency budget are
//! retroactively promoted to a slow-query log regardless of sampling,
//! together with the SQL text, chosen plan, and per-stage
//! estimated-vs-actual rows captured by [`QueryCapture`].
//!
//! A disabled [`TraceCtx`] (the default) is a `None` — every operation on
//! it is a branch and nothing else, so hot paths thread a context
//! unconditionally and pay only when a trace is live.
//!
//! This module also owns the process-wide span-event fan-out: the sink set
//! installed through [`add_span_sink`] (or the PR 3 compatibility wrapper
//! [`crate::set_span_observer`]) receives enter/exit events from the
//! [`crate::span!`] macro guards. There is exactly one dispatch path —
//! [`SpanGuard`](crate::SpanGuard) calls the same `emit_*` functions the
//! observer hook used to duplicate.
//!
//! # Locking honesty
//!
//! The crate forbids `unsafe`, so the ring buffer is not a single atomic
//! pointer array: slot *claiming* is lock-free (one `fetch_add` on the
//! cursor), and each claimed slot is then swapped under a per-slot mutex
//! held only for the pointer store. Writers never contend on a global lock
//! and never block readers of other slots. Span recording within one trace
//! serializes on that trace's own mutex — traces are per-request, so this
//! is uncontended in the common case.

use crate::names;
use crate::span::{SpanObserver, Stopwatch};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Locks a mutex, recovering the data from a poisoned lock — tracing must
/// never turn a panic elsewhere into a second panic in a `Drop`.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `Duration` → nanoseconds, saturating at `u64::MAX`.
fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

// --- span-event fan-out (the unified SpanObserver path) ---------------------

const MAX_SINKS: usize = 4;

struct SinkSet {
    slots: [OnceLock<Box<dyn SpanObserver>>; MAX_SINKS],
    len: AtomicUsize,
}

static SINKS: SinkSet = SinkSet {
    slots: [const { OnceLock::new() }; MAX_SINKS],
    len: AtomicUsize::new(0),
};

/// Registers a span-event sink. Every sink receives enter/exit events from
/// all [`crate::span!`] guards for the life of the process. Returns `false`
/// when all [`MAX_SINKS`](add_span_sink) slots are taken.
pub fn add_span_sink(sink: Box<dyn SpanObserver>) -> bool {
    let mut sink = sink;
    for (i, slot) in SINKS.slots.iter().enumerate() {
        match slot.set(sink) {
            Ok(()) => {
                SINKS.len.fetch_max(i + 1, Ordering::Release);
                return true;
            }
            Err(returned) => sink = returned,
        }
    }
    false
}

/// First-set-wins guard preserving the PR 3 `set_span_observer` contract.
pub(crate) static LEGACY_OBSERVER_INSTALLED: AtomicBool = AtomicBool::new(false);

/// Fans a span-enter event out to every registered sink.
#[inline]
pub(crate) fn emit_enter(name: &'static str) {
    let n = SINKS.len.load(Ordering::Acquire);
    for slot in &SINKS.slots[..n] {
        if let Some(sink) = slot.get() {
            sink.enter(name);
        }
    }
}

/// Fans a span-exit event out to every registered sink.
#[inline]
pub(crate) fn emit_exit(name: &'static str, elapsed_ns: u64) {
    let n = SINKS.len.load(Ordering::Acquire);
    for slot in &SINKS.slots[..n] {
        if let Some(sink) = slot.get() {
            sink.exit(name, elapsed_ns);
        }
    }
}

// --- trace model ------------------------------------------------------------

/// Identifies one trace (one traced request), unique per collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Index of a span within its trace, in creation order; span `0` is the
/// root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

/// A typed attribute value attached to a [`TraceSpan`].
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned count (rows, blocks, bytes…).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (cost estimates).
    F64(f64),
    /// Short text (kernel name, plan summary, SQL text).
    Str(String),
    /// Flag (cache hit / miss).
    Bool(bool),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl AttrValue {
    /// Renders the value for the pretty-text exporter: numbers bare,
    /// strings `{:?}`-quoted so attribute lists stay one line.
    fn text(&self) -> String {
        match self {
            AttrValue::U64(v) => v.to_string(),
            AttrValue::I64(v) => v.to_string(),
            AttrValue::F64(v) => format!("{v}"),
            AttrValue::Str(v) => format!("{v:?}"),
            AttrValue::Bool(v) => v.to_string(),
        }
    }

    /// Renders the value as a JSON scalar.
    fn json(&self) -> String {
        match self {
            AttrValue::U64(v) => v.to_string(),
            AttrValue::I64(v) => v.to_string(),
            AttrValue::F64(v) if v.is_finite() => format!("{v}"),
            AttrValue::F64(v) => format!("\"{v}\""),
            AttrValue::Str(v) => format!("\"{}\"", json_escape(v)),
            AttrValue::Bool(v) => v.to_string(),
        }
    }
}

/// One node of a trace's span tree.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Span name — a [`crate::names`] constant (AVQ-L004 enforces this).
    pub name: &'static str,
    /// Parent span, or `None` for the root.
    pub parent: Option<SpanId>,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall time between open and close, nanoseconds.
    pub elapsed_ns: u64,
    /// Typed attributes, in attachment order. Keys are
    /// [`crate::names::TRACE_ATTRS`] constants.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Per-stage estimated-vs-actual row counts captured for the slow-query
/// log, one entry per plan node in pre-order.
#[derive(Debug, Clone)]
pub struct StageRows {
    /// Human-readable plan-node label (`scan people via full-scan`).
    pub label: String,
    /// Planner cardinality estimate.
    pub est_rows: u64,
    /// Rows the executor actually produced.
    pub actual_rows: u64,
}

/// What the SQL layer knew about a traced statement: enough for the
/// slow-query log to explain *why* a query was slow.
#[derive(Debug, Clone, Default)]
pub struct QueryCapture {
    /// The statement text as submitted.
    pub sql: String,
    /// The chosen physical plan's one-line summary.
    pub plan: String,
    /// Estimated-vs-actual rows per plan node.
    pub stages: Vec<StageRows>,
}

/// Mutable state of a live trace, behind the trace's own mutex.
struct TraceState {
    epoch: Stopwatch,
    spans: Vec<TraceSpan>,
    /// Stack of open span indices; the top is the parent of new spans.
    open: Vec<u32>,
    query: Option<QueryCapture>,
}

struct ActiveTrace {
    id: TraceId,
    state: Mutex<TraceState>,
}

/// A trace context, threaded explicitly through the layers of a request.
///
/// Cloning is cheap (an `Option<Arc>`); the disabled context is the
/// [`Default`] and makes every operation a no-op branch.
#[derive(Clone, Default)]
pub struct TraceCtx {
    inner: Option<Arc<ActiveTrace>>,
}

impl std::fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(t) => write!(f, "TraceCtx(trace {})", t.id.0),
            None => write!(f, "TraceCtx(disabled)"),
        }
    }
}

impl TraceCtx {
    /// The no-op context: records nothing, allocates nothing.
    pub fn disabled() -> TraceCtx {
        TraceCtx { inner: None }
    }

    /// True when a trace is live and spans will be recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The live trace's id, if any.
    pub fn id(&self) -> Option<TraceId> {
        self.inner.as_ref().map(|t| t.id)
    }

    /// Opens a child span of the innermost open span (or the root, when no
    /// span is open). The returned guard closes it on drop.
    #[inline]
    pub fn span(&self, name: &'static str) -> TraceSpanGuard {
        let Some(active) = &self.inner else {
            return TraceSpanGuard {
                trace: None,
                idx: 0,
            };
        };
        let mut st = lock(&active.state);
        let start_ns = dur_ns(st.epoch.elapsed());
        let parent = st.open.last().map(|&i| SpanId(i));
        let idx = st.spans.len() as u32;
        st.spans.push(TraceSpan {
            name,
            parent,
            start_ns,
            elapsed_ns: 0,
            attrs: Vec::new(),
        });
        st.open.push(idx);
        TraceSpanGuard {
            trace: Some(Arc::clone(active)),
            idx,
        }
    }

    /// Records an already-measured span retroactively: a child of the
    /// innermost open span that ended *now* and lasted `elapsed`. Used by
    /// executors that time stages with their own [`Stopwatch`].
    pub fn complete_span(
        &self,
        name: &'static str,
        elapsed: Duration,
        attrs: Vec<(&'static str, AttrValue)>,
    ) {
        let Some(active) = &self.inner else { return };
        let mut st = lock(&active.state);
        let end_ns = dur_ns(st.epoch.elapsed());
        let elapsed_ns = dur_ns(elapsed);
        let parent = st.open.last().map(|&i| SpanId(i));
        st.spans.push(TraceSpan {
            name,
            parent,
            start_ns: end_ns.saturating_sub(elapsed_ns),
            elapsed_ns,
            attrs,
        });
    }

    /// Attaches the statement text and plan summary for the slow-query log.
    pub fn set_query(&self, sql: &str, plan: &str) {
        let Some(active) = &self.inner else { return };
        let mut st = lock(&active.state);
        let q = st.query.get_or_insert_with(QueryCapture::default);
        q.sql = sql.to_owned();
        q.plan = plan.to_owned();
    }

    /// Attaches per-stage estimated-vs-actual rows for the slow-query log.
    pub fn set_stage_rows(&self, stages: Vec<StageRows>) {
        let Some(active) = &self.inner else { return };
        let mut st = lock(&active.state);
        st.query.get_or_insert_with(QueryCapture::default).stages = stages;
    }
}

/// RAII guard for an open [`TraceCtx::span`]. Closes the span (recording
/// elapsed time) on drop; attach attributes through [`Self::attr`].
pub struct TraceSpanGuard {
    trace: Option<Arc<ActiveTrace>>,
    idx: u32,
}

impl std::fmt::Debug for TraceSpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.trace {
            Some(t) => write!(f, "TraceSpanGuard(trace {}, span {})", t.id.0, self.idx),
            None => write!(f, "TraceSpanGuard(disabled)"),
        }
    }
}

impl TraceSpanGuard {
    /// True when this guard belongs to a live trace.
    pub fn is_recording(&self) -> bool {
        self.trace.is_some()
    }

    /// Attaches a typed attribute to this span. `key` must be a
    /// [`crate::names::TRACE_ATTRS`] constant (AVQ-L004 enforces this).
    pub fn attr(&self, key: &'static str, value: impl Into<AttrValue>) {
        let Some(active) = &self.trace else { return };
        let mut st = lock(&active.state);
        let idx = self.idx as usize;
        if let Some(span) = st.spans.get_mut(idx) {
            span.attrs.push((key, value.into()));
        }
    }
}

impl Drop for TraceSpanGuard {
    fn drop(&mut self) {
        let Some(active) = &self.trace else { return };
        let mut st = lock(&active.state);
        let now_ns = dur_ns(st.epoch.elapsed());
        let idx = self.idx;
        if let Some(span) = st.spans.get_mut(idx as usize) {
            span.elapsed_ns = now_ns.saturating_sub(span.start_ns);
        }
        // Defensive: drop order is LIFO in straight-line code, but a guard
        // held across an early return may close out of order.
        st.open.retain(|&i| i != idx);
    }
}

// --- collector --------------------------------------------------------------

/// Which finished traces the collector keeps in its ring buffer.
///
/// The decision is made at [`TraceCollector::finish`] time, so
/// threshold-triggered sampling can consult the root span's measured
/// latency. The slow-query log is independent of sampling: over-budget
/// traces are promoted even when the policy drops them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplingPolicy {
    /// Keep every trace.
    Always,
    /// Keep one trace in `n` (by trace id; `0` and `1` keep every trace).
    OneIn(u64),
    /// Keep only traces whose root span took at least this long.
    SlowerThan(Duration),
}

/// Slow-query log capacity: old entries fall off the front.
const SLOW_LOG_CAP: usize = 32;

/// A bounded ring buffer of finished traces plus the slow-query log.
///
/// `begin` hands out a live [`TraceCtx`]; `finish` applies the sampling
/// policy, stores kept traces in the ring (overwriting the oldest slot),
/// and retroactively promotes over-budget traces to the slow-query log.
pub struct TraceCollector {
    slots: Vec<Mutex<Option<Arc<TraceData>>>>,
    cursor: AtomicU64,
    seq: AtomicU64,
    policy: SamplingPolicy,
    /// Root-span latency budget in ns; `u64::MAX` disables the slow log.
    slow_budget_ns: AtomicU64,
    slow: Mutex<VecDeque<Arc<TraceData>>>,
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("capacity", &self.slots.len())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl TraceCollector {
    /// A collector with `capacity` ring slots (at least one) under `policy`.
    /// The slow-query log starts disabled; see [`Self::set_slow_budget`].
    pub fn new(capacity: usize, policy: SamplingPolicy) -> TraceCollector {
        let capacity = capacity.max(1);
        TraceCollector {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            policy,
            slow_budget_ns: AtomicU64::new(u64::MAX),
            slow: Mutex::new(VecDeque::new()),
        }
    }

    /// Enables the slow-query log: any trace whose root span takes at least
    /// `budget` is promoted, regardless of the sampling policy.
    pub fn set_slow_budget(&self, budget: Duration) {
        self.slow_budget_ns.store(dur_ns(budget), Ordering::Relaxed);
    }

    /// Builder form of [`Self::set_slow_budget`].
    #[must_use]
    pub fn with_slow_budget(self, budget: Duration) -> TraceCollector {
        self.set_slow_budget(budget);
        self
    }

    /// The collector's sampling policy.
    pub fn policy(&self) -> SamplingPolicy {
        self.policy
    }

    /// Starts a new trace and returns its live context.
    pub fn begin(&self) -> TraceCtx {
        crate::counter!(names::TRACE_STARTED).inc();
        let id = TraceId(self.seq.fetch_add(1, Ordering::Relaxed) + 1);
        TraceCtx {
            inner: Some(Arc::new(ActiveTrace {
                id,
                state: Mutex::new(TraceState {
                    epoch: Stopwatch::start(),
                    spans: Vec::new(),
                    open: Vec::new(),
                    query: None,
                }),
            })),
        }
    }

    /// Finishes a trace: closes any still-open spans, applies the sampling
    /// policy, stores kept traces in the ring, and promotes over-budget
    /// traces to the slow-query log. Returns the trace data when the
    /// sampling policy kept it (a disabled context returns `None`).
    pub fn finish(&self, ctx: TraceCtx) -> Option<Arc<TraceData>> {
        let active = ctx.inner?;
        let (spans, query, root_ns) = {
            let mut st = lock(&active.state);
            let now_ns = dur_ns(st.epoch.elapsed());
            let open = std::mem::take(&mut st.open);
            for idx in open {
                if let Some(span) = st.spans.get_mut(idx as usize) {
                    span.elapsed_ns = now_ns.saturating_sub(span.start_ns);
                }
            }
            let spans = std::mem::take(&mut st.spans);
            let root_ns = spans.first().map_or(0, |s| s.elapsed_ns);
            (spans, st.query.take(), root_ns)
        };
        let data = Arc::new(TraceData {
            id: active.id,
            spans,
            query,
        });
        let kept = match self.policy {
            SamplingPolicy::Always => true,
            SamplingPolicy::OneIn(n) => n <= 1 || (data.id.0 - 1).is_multiple_of(n),
            SamplingPolicy::SlowerThan(d) => root_ns >= dur_ns(d),
        };
        if kept {
            crate::counter!(names::TRACE_SAMPLED).inc();
            let slot = (self.cursor.fetch_add(1, Ordering::Relaxed) as usize) % self.slots.len();
            *lock(&self.slots[slot]) = Some(Arc::clone(&data));
        } else {
            crate::counter!(names::TRACE_DROPPED).inc();
        }
        if root_ns >= self.slow_budget_ns.load(Ordering::Relaxed) {
            crate::counter!(names::TRACE_SLOW).inc();
            let mut slow = lock(&self.slow);
            if slow.len() == SLOW_LOG_CAP {
                slow.pop_front();
            }
            slow.push_back(Arc::clone(&data));
        }
        kept.then_some(data)
    }

    /// Traces currently held in the ring, oldest first.
    pub fn recent(&self) -> Vec<Arc<TraceData>> {
        let mut out: Vec<Arc<TraceData>> =
            self.slots.iter().filter_map(|s| lock(s).clone()).collect();
        out.sort_by_key(|t| t.id);
        out
    }

    /// The slow-query log, oldest first.
    pub fn slow_queries(&self) -> Vec<Arc<TraceData>> {
        lock(&self.slow).iter().cloned().collect()
    }
}

// --- finished traces and exporters ------------------------------------------

/// A finished trace: the span tree plus the optional query capture.
#[derive(Debug, Clone)]
pub struct TraceData {
    /// Trace id assigned by [`TraceCollector::begin`].
    pub id: TraceId,
    /// Spans in creation order; span `0` is the root.
    pub spans: Vec<TraceSpan>,
    /// SQL capture, when the SQL layer ran under this trace.
    pub query: Option<QueryCapture>,
}

/// Formats nanoseconds for humans (`850ns`, `12.3µs`, `4.56ms`, `1.20s`).
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Escapes a string for a JSON double-quoted literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl TraceData {
    /// Children of `parent` (or roots for `None`), in creation order.
    fn children(&self, parent: Option<u32>) -> impl Iterator<Item = (u32, &TraceSpan)> {
        self.spans
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.parent.map(|p| p.0) == parent)
            .map(|(i, s)| (i as u32, s))
    }

    /// The root span's elapsed time in nanoseconds (0 for an empty trace).
    pub fn root_ns(&self) -> u64 {
        self.spans.first().map_or(0, |s| s.elapsed_ns)
    }

    /// Pretty-text span tree. With `redact` every duration renders as `-`,
    /// so golden tests can pin the exact output.
    pub fn render_text(&self, redact: bool) -> String {
        let mut out = String::new();
        let root = if redact {
            "-".to_owned()
        } else {
            fmt_ns(self.root_ns())
        };
        let _ = writeln!(
            out,
            "trace {} ({} spans, root {})",
            self.id.0,
            self.spans.len(),
            root
        );
        for (idx, span) in self.children(None) {
            self.render_text_node(&mut out, idx, span, 0, redact);
        }
        out
    }

    fn render_text_node(
        &self,
        out: &mut String,
        idx: u32,
        span: &TraceSpan,
        depth: usize,
        redact: bool,
    ) {
        let t = if redact {
            "-".to_owned()
        } else {
            fmt_ns(span.elapsed_ns)
        };
        let _ = write!(
            out,
            "{:indent$}-> {} ({t})",
            "",
            span.name,
            indent = depth * 2
        );
        for (key, value) in &span.attrs {
            let _ = write!(out, " {key}={}", value.text());
        }
        out.push('\n');
        for (child_idx, child) in self.children(Some(idx)) {
            self.render_text_node(out, child_idx, child, depth + 1, redact);
        }
    }

    /// JSONL export: one JSON object per span, one span per line.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, span) in self.spans.iter().enumerate() {
            let parent = span.parent.map_or("null".to_owned(), |p| p.0.to_string());
            let _ = write!(
                out,
                "{{\"trace\":{},\"span\":{i},\"parent\":{parent},\"name\":\"{}\",\"start_ns\":{},\"elapsed_ns\":{},\"attrs\":{{",
                self.id.0,
                json_escape(span.name),
                span.start_ns,
                span.elapsed_ns,
            );
            for (j, (key, value)) in span.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", json_escape(key), value.json());
            }
            out.push_str("}}\n");
        }
        out
    }

    /// Chrome trace-event JSON (`chrome://tracing` / Perfetto): complete
    /// (`"ph":"X"`) events with microsecond timestamps.
    pub fn render_chrome(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"avq\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{",
                json_escape(span.name),
                span.start_ns as f64 / 1e3,
                span.elapsed_ns as f64 / 1e3,
                self.id.0,
            );
            for (j, (key, value)) in span.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", json_escape(key), value.json());
            }
            out.push_str("}}");
        }
        out.push_str("],\"displayTimeUnit\":\"ns\"}");
        out
    }

    /// Slow-query report: SQL text, plan summary, estimated-vs-actual rows
    /// per plan node, then the span tree. `redact` as in
    /// [`Self::render_text`].
    pub fn render_slow(&self, redact: bool) -> String {
        let mut out = String::new();
        let root = if redact {
            "-".to_owned()
        } else {
            fmt_ns(self.root_ns())
        };
        let _ = writeln!(out, "slow query: trace {} (root {root})", self.id.0);
        if let Some(q) = &self.query {
            let _ = writeln!(out, "sql: {}", q.sql);
            let _ = writeln!(out, "plan: {}", q.plan);
            if !q.stages.is_empty() {
                let width = q
                    .stages
                    .iter()
                    .map(|s| s.label.len())
                    .max()
                    .unwrap_or(0)
                    .max("node".len());
                let _ = writeln!(out, "{:width$}  est_rows  actual_rows", "node");
                for s in &q.stages {
                    let _ = writeln!(
                        out,
                        "{:width$}  {:>8}  {:>11}",
                        s.label, s.est_rows, s.actual_rows
                    );
                }
            }
        }
        out.push_str(&self.render_text(redact));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector() -> TraceCollector {
        TraceCollector::new(4, SamplingPolicy::Always)
    }

    #[test]
    fn disabled_ctx_is_inert() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        assert!(ctx.id().is_none());
        let g = ctx.span("anything");
        assert!(!g.is_recording());
        g.attr("rows", 1u64);
        ctx.complete_span("x", Duration::from_nanos(5), Vec::new());
        ctx.set_query("q", "p");
        drop(g);
    }

    #[test]
    fn spans_nest_and_attrs_attach() {
        let c = collector();
        let ctx = c.begin();
        {
            let root = ctx.span("root");
            root.attr("rows", 3u64);
            {
                let child = ctx.span("child");
                child.attr("kernel", "swar");
                let _grand = ctx.span("grand");
            }
            let _sibling = ctx.span("sibling");
        }
        let data = c.finish(ctx).expect("always-sampled");
        assert_eq!(data.spans.len(), 4);
        assert_eq!(data.spans[0].parent, None);
        assert_eq!(data.spans[1].parent, Some(SpanId(0)));
        assert_eq!(data.spans[2].parent, Some(SpanId(1)));
        assert_eq!(data.spans[3].parent, Some(SpanId(0)));
        assert_eq!(data.spans[0].attrs[0].0, "rows");
        assert_eq!(data.spans[1].attrs[0].1, AttrValue::Str("swar".into()));
        assert!(data.spans[0].elapsed_ns >= data.spans[1].elapsed_ns);
    }

    #[test]
    fn complete_span_backdates() {
        let c = collector();
        let ctx = c.begin();
        {
            let _root = ctx.span("root");
            ctx.complete_span(
                "stage",
                Duration::from_micros(10),
                vec![("rows", AttrValue::U64(7))],
            );
        }
        let data = c.finish(ctx).unwrap();
        assert_eq!(data.spans[1].parent, Some(SpanId(0)));
        assert_eq!(data.spans[1].elapsed_ns, 10_000);
        assert_eq!(data.spans[1].attrs, vec![("rows", AttrValue::U64(7))]);
    }

    #[test]
    fn one_in_n_sampling_keeps_every_nth() {
        let c = TraceCollector::new(8, SamplingPolicy::OneIn(3));
        let mut kept = 0;
        for _ in 0..9 {
            let ctx = c.begin();
            {
                let _g = ctx.span("root");
            }
            if c.finish(ctx).is_some() {
                kept += 1;
            }
        }
        assert_eq!(kept, 3);
        assert_eq!(c.recent().len(), 3);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let c = TraceCollector::new(2, SamplingPolicy::Always);
        for _ in 0..5 {
            let ctx = c.begin();
            {
                let _g = ctx.span("root");
            }
            c.finish(ctx);
        }
        let recent = c.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].id, TraceId(4));
        assert_eq!(recent[1].id, TraceId(5));
    }

    #[test]
    fn slow_budget_promotes_regardless_of_sampling() {
        // Sampling drops everything; the zero budget promotes everything.
        let c = TraceCollector::new(2, SamplingPolicy::SlowerThan(Duration::from_secs(3600)))
            .with_slow_budget(Duration::ZERO);
        let ctx = c.begin();
        ctx.set_query("select 1", "full-scan");
        {
            let _g = ctx.span("root");
        }
        assert!(c.finish(ctx).is_none(), "sampling should drop it");
        let slow = c.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].query.as_ref().unwrap().sql, "select 1");
    }

    #[test]
    fn finish_closes_leaked_spans() {
        let c = collector();
        let ctx = c.begin();
        let g = ctx.span("root");
        std::mem::forget(g);
        let data = c.finish(ctx).unwrap();
        // elapsed was backfilled at finish time.
        assert_eq!(data.spans.len(), 1);
        assert!(data.root_ns() > 0 || data.spans[0].elapsed_ns == 0);
    }

    #[test]
    fn text_render_shape() {
        let c = collector();
        let ctx = c.begin();
        {
            let root = ctx.span("root.span");
            root.attr("kernel", "swar");
            let _child = ctx.span("child.span");
        }
        let data = c.finish(ctx).unwrap();
        let text = data.render_text(true);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "trace 1 (2 spans, root -)");
        assert_eq!(lines[1], "-> root.span (-) kernel=\"swar\"");
        assert_eq!(lines[2], "  -> child.span (-)");
    }

    #[test]
    fn jsonl_one_line_per_span() {
        let c = collector();
        let ctx = c.begin();
        {
            let g = ctx.span("a");
            g.attr("rows", 2u64);
            let _child = ctx.span("b");
        }
        let data = c.finish(ctx).unwrap();
        let jsonl = data.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"a\""));
        assert!(lines[0].contains("\"attrs\":{\"rows\":2}"));
        assert!(lines[1].contains("\"parent\":0"));
    }

    #[test]
    fn chrome_export_is_balanced_json() {
        let c = collector();
        let ctx = c.begin();
        ctx.set_query("select \"quoted\"", "p");
        {
            let g = ctx.span("root");
            g.attr("plan_summary", "full-scan \"x\"\n");
            let _child = ctx.span("child");
        }
        let data = c.finish(ctx).unwrap();
        let chrome = data.render_chrome();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        // Cheap structural validity: braces/brackets balance and quotes pair
        // up outside escapes.
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escape = false;
        for ch in chrome.chars() {
            if in_str {
                if escape {
                    escape = false;
                } else if ch == '\\' {
                    escape = true;
                } else if ch == '"' {
                    in_str = false;
                }
                continue;
            }
            match ch {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn slow_report_contains_capture() {
        let c = collector().with_slow_budget(Duration::ZERO);
        let ctx = c.begin();
        ctx.set_query("select * from t", "full-scan");
        ctx.set_stage_rows(vec![StageRows {
            label: "scan t".into(),
            est_rows: 100,
            actual_rows: 42,
        }]);
        {
            let _g = ctx.span("root");
        }
        c.finish(ctx);
        let slow = c.slow_queries();
        let report = slow[0].render_slow(true);
        assert!(report.contains("sql: select * from t"));
        assert!(report.contains("plan: full-scan"));
        assert!(report.contains("scan t"));
        assert!(report.contains("100"));
        assert!(report.contains("42"));
    }

    #[test]
    fn concurrent_span_recording_is_safe() {
        let c = Arc::new(collector());
        let ctx = c.begin();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ctx = ctx.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        let g = ctx.span("worker");
                        g.attr("rows", 1u64);
                    }
                });
            }
        });
        let data = c.finish(ctx).unwrap();
        assert_eq!(data.spans.len(), 400);
    }
}
