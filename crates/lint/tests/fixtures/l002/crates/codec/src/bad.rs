//! AVQ-L002 fixture: untrusted-length allocations with and without the
//! required bounded waiver.

fn alloc(claimed: usize) -> (Vec<u8>, Vec<u8>, Vec<u8>, Vec<u8>) {
    let unwaived = Vec::with_capacity(claimed);
    let from_macro = vec![0u8; claimed];
    // lint: bounded(claimed was checked against the remaining input)
    let waived = Vec::with_capacity(claimed);
    let literal_is_fine = Vec::with_capacity(4096);
    (unwaived, from_macro, waived, literal_is_fine)
}
