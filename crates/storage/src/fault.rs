//! Deterministic, seeded fault injection for the storage layer.
//!
//! The paper's block-local coding (§3) means a single damaged block should
//! never take down a whole relation. This module supplies the damage: a
//! [`FaultPlan`] describes *which* blocks misbehave and *how* (hard read or
//! write errors, silent bit flips, torn writes, transient-then-ok errors),
//! and the [`crate::BlockDevice`] consults the plan on every transfer. All
//! randomness is derived from a caller-supplied seed via splitmix64, so a
//! failing run reproduces from its seed alone — the same discipline as the
//! WAL crash-injection matrix.
//!
//! For the durable path (snapshots, WAL segments, `.avq` files on a real
//! filesystem) the analogue is [`FaultFile`], an `io::Read`/`io::Write`
//! shim with byte-offset faults, plus [`corrupt_file_in_place`], which
//! flips seeded bits of an existing file — what `avqtool inject` and the
//! scrub tests use.

use crate::clock::SimClock;
use crate::error::{BlockId, StorageError};
use avq_obs::names;
use std::collections::BTreeSet;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// splitmix64: the one-word PRNG used to derive every injected decision.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Reads of the target blocks fail with a permanent I/O error.
    ReadError,
    /// Writes to the target blocks fail with a permanent I/O error.
    WriteError,
    /// Reads succeed but one seeded bit of the payload is flipped.
    BitFlip,
    /// Writes silently persist only a seeded strict prefix of the payload.
    TornWrite,
    /// The first `failures` reads of a target block fail with a *transient*
    /// error; later attempts succeed. Models recoverable media hiccups.
    TransientRead {
        /// How many leading read attempts fail before the block recovers.
        failures: u32,
    },
}

#[derive(Debug)]
struct Rule {
    /// `None` targets every block.
    blocks: Option<BTreeSet<BlockId>>,
    kind: FaultKind,
}

impl Rule {
    fn matches(&self, id: BlockId) -> bool {
        match &self.blocks {
            None => true,
            Some(set) => set.contains(&id),
        }
    }
}

/// A seeded, deterministic description of which blocks misbehave and how.
///
/// Install on a device with [`crate::BlockDevice::set_fault_plan`]; every
/// subsequent `read`/`write` consults the plan. Counters record how many
/// faults actually fired so tests can assert exact injection counts.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
    /// Per-block read-attempt counts, for `TransientRead`.
    attempts: Mutex<Vec<(BlockId, u64)>>,
    fired: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
            attempts: Mutex::new(Vec::new()),
            fired: AtomicU64::new(0),
        }
    }

    /// The seed this plan derives every decision from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a fault applying to *every* block.
    pub fn with_fault(mut self, kind: FaultKind) -> Self {
        self.rules.push(Rule { blocks: None, kind });
        self
    }

    /// Adds a fault applying only to the given blocks.
    pub fn with_fault_on(
        mut self,
        kind: FaultKind,
        blocks: impl IntoIterator<Item = BlockId>,
    ) -> Self {
        self.rules.push(Rule {
            blocks: Some(blocks.into_iter().collect()),
            kind,
        });
        self
    }

    /// Deterministically picks `k` distinct blocks out of `candidates`
    /// (seeded partial Fisher–Yates). Returns all of them when `k` is
    /// larger than the candidate set.
    pub fn pick_blocks(seed: u64, candidates: &[BlockId], k: usize) -> BTreeSet<BlockId> {
        let mut pool: Vec<BlockId> = candidates.to_vec();
        let mut picked = BTreeSet::new();
        let mut state = seed ^ 0xa5a5_5a5a_dead_beef;
        for round in 0..k.min(pool.len()) {
            state = splitmix64(state.wrapping_add(round as u64));
            let idx = (state % pool.len() as u64) as usize;
            picked.insert(pool.swap_remove(idx));
        }
        picked
    }

    /// How many faults have actually fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    fn fire(&self) {
        self.fired.fetch_add(1, Ordering::Relaxed);
    }

    /// Which bit of an `len`-byte payload the seeded flip lands on.
    fn flip_bit(&self, id: BlockId, len: usize) -> usize {
        let r = splitmix64(self.seed ^ (u64::from(id) << 20) ^ 0x0b17_f11b);
        (r % (len as u64 * 8)) as usize
    }

    /// Read-attempt counter for `id`, incremented on each call.
    fn bump_attempts(&self, id: BlockId) -> u64 {
        let mut attempts = self.attempts.lock().expect("fault plan lock poisoned");
        match attempts.iter_mut().find(|(b, _)| *b == id) {
            Some((_, n)) => {
                *n += 1;
                *n
            }
            None => {
                attempts.push((id, 1));
                1
            }
        }
    }

    /// Applies read-side faults to the payload just fetched for `id`.
    pub(crate) fn on_read(&self, id: BlockId, data: &mut [u8]) -> Result<(), StorageError> {
        for rule in self.rules.iter().filter(|r| r.matches(id)) {
            match rule.kind {
                FaultKind::ReadError => {
                    self.fire();
                    return Err(StorageError::Io {
                        id,
                        detail: "injected read error",
                        transient: false,
                    });
                }
                FaultKind::TransientRead { failures } => {
                    if self.bump_attempts(id) <= u64::from(failures) {
                        self.fire();
                        return Err(StorageError::Io {
                            id,
                            detail: "injected transient read error",
                            transient: true,
                        });
                    }
                }
                FaultKind::BitFlip => {
                    if !data.is_empty() {
                        let bit = self.flip_bit(id, data.len());
                        data[bit / 8] ^= 1 << (bit % 8);
                        self.fire();
                    }
                }
                FaultKind::WriteError | FaultKind::TornWrite => {}
            }
        }
        Ok(())
    }

    /// Applies write-side faults to the payload about to be stored at `id`.
    pub(crate) fn on_write(&self, id: BlockId, data: &mut Vec<u8>) -> Result<(), StorageError> {
        for rule in self.rules.iter().filter(|r| r.matches(id)) {
            match rule.kind {
                FaultKind::WriteError => {
                    self.fire();
                    return Err(StorageError::Io {
                        id,
                        detail: "injected write error",
                        transient: false,
                    });
                }
                FaultKind::TornWrite => {
                    if !data.is_empty() {
                        let r = splitmix64(self.seed ^ (u64::from(id) << 24) ^ 0x7041_0041);
                        let keep = (r % data.len() as u64) as usize;
                        data.truncate(keep);
                        self.fire();
                    }
                }
                FaultKind::ReadError | FaultKind::BitFlip | FaultKind::TransientRead { .. } => {}
            }
        }
        Ok(())
    }
}

/// Bounded retry for transient device faults.
///
/// `read_with_retry` (on [`crate::BufferPool`]) re-attempts a read up to
/// `max_attempts` total tries, charging `backoff_ms` (doubling per retry)
/// to the device's virtual clock between attempts, and never charging more
/// than `max_total_ms` of backoff in total across one call. Only errors
/// marked `transient` are retried; hard faults surface immediately. A
/// governed query clamps the cap to its remaining deadline with
/// [`RetryPolicy::clamped_to_ms`], so retries can never outlive the query
/// budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Virtual backoff before the first retry; doubles on each further one.
    pub backoff_ms: f64,
    /// Total-budget cap: a retry whose backoff would push the cumulative
    /// virtual backoff of this call past this many ms is not taken — the
    /// transient error surfaces instead.
    pub max_total_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ms: 1.0,
            max_total_ms: 100.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_ms: 0.0,
            max_total_ms: 0.0,
        }
    }

    /// Replaces the total backoff budget.
    #[must_use]
    pub fn with_total_budget_ms(mut self, ms: f64) -> Self {
        self.max_total_ms = ms.max(0.0);
        self
    }

    /// Tightens the total backoff budget to at most `remaining_ms` — the
    /// hook a governed query uses so retry backoff never exceeds its
    /// remaining deadline. Never loosens the cap.
    #[must_use]
    pub fn clamped_to_ms(mut self, remaining_ms: f64) -> Self {
        if remaining_ms < self.max_total_ms {
            self.max_total_ms = remaining_ms.max(0.0);
        }
        self
    }
}

/// Runs `op` under `policy`, retrying transient [`StorageError::Io`]
/// failures with exponential virtual backoff charged to `clock`. Each retry
/// increments the `avq.io_retries.total` counter. Retrying stops — and the
/// transient error surfaces — once another backoff would push the call past
/// `policy.max_total_ms` of cumulative charged backoff.
pub fn retry_with_backoff<T>(
    policy: RetryPolicy,
    clock: &SimClock,
    mut op: impl FnMut() -> Result<T, StorageError>,
) -> Result<T, StorageError> {
    let attempts = policy.max_attempts.max(1);
    let mut backoff = policy.backoff_ms;
    let mut spent = 0.0;
    let mut attempt = 1;
    loop {
        match op() {
            Err(
                err @ StorageError::Io {
                    transient: true, ..
                },
            ) if attempt < attempts => {
                if spent + backoff > policy.max_total_ms {
                    return Err(err);
                }
                avq_obs::counter!(names::IO_RETRIES_TOTAL).inc();
                clock.advance_ms(backoff);
                spent += backoff;
                backoff *= 2.0;
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// A byte-offset fault for stream (file) I/O, used by [`FaultFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFault {
    /// Writes past this many bytes are silently dropped (torn write): the
    /// caller sees success, the medium keeps only the prefix.
    TornAfter(u64),
    /// Writes past this many bytes fail with an I/O error.
    WriteErrorAfter(u64),
    /// Reads past this many bytes fail with an I/O error.
    ReadErrorAfter(u64),
    /// The byte at this offset has one seeded bit flipped on read.
    FlipOnRead(u64),
}

/// An `io::Read`/`io::Write`/`io::Seek` shim that injects [`StreamFault`]s
/// into an inner stream, for exercising the durable path (WAL segments,
/// snapshot files) without touching its call sites: hand the durable code a
/// `FaultFile<File>` wherever it would take a `File`.
#[derive(Debug)]
pub struct FaultFile<T> {
    inner: T,
    seed: u64,
    faults: Vec<StreamFault>,
    pos: u64,
}

impl<T> FaultFile<T> {
    /// Wraps `inner` with the given seeded faults.
    pub fn new(inner: T, seed: u64, faults: Vec<StreamFault>) -> Self {
        FaultFile {
            inner,
            seed,
            faults,
            pos: 0,
        }
    }

    /// Unwraps the shim, returning the inner stream.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Write> Write for FaultFile<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let start = self.pos;
        let end = start + buf.len() as u64;
        for fault in &self.faults {
            match *fault {
                StreamFault::WriteErrorAfter(limit) if end > limit => {
                    return Err(io::Error::other(format!(
                        "injected write error after byte {limit}"
                    )));
                }
                StreamFault::TornAfter(limit) if end > limit => {
                    // Persist only the part below the tear, report success.
                    let keep = limit.saturating_sub(start) as usize;
                    if keep > 0 {
                        self.inner.write_all(&buf[..keep])?;
                    }
                    self.pos = end;
                    return Ok(buf.len());
                }
                _ => {}
            }
        }
        let n = self.inner.write(buf)?;
        self.pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<T: Read> Read for FaultFile<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let start = self.pos;
        for fault in &self.faults {
            if let StreamFault::ReadErrorAfter(limit) = *fault {
                if start >= limit {
                    return Err(io::Error::other(format!(
                        "injected read error after byte {limit}"
                    )));
                }
            }
        }
        let n = self.inner.read(buf)?;
        for fault in &self.faults {
            if let StreamFault::FlipOnRead(offset) = *fault {
                if offset >= start && offset < start + n as u64 {
                    let bit = (splitmix64(self.seed ^ offset) % 8) as u8;
                    buf[(offset - start) as usize] ^= 1 << bit;
                }
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

impl<T: Seek> Seek for FaultFile<T> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let new = self.inner.seek(pos)?;
        self.pos = new;
        Ok(new)
    }
}

/// Flips `k` seeded bits of the file at `path` in place and returns the
/// affected byte offsets (sorted, distinct). This is the one-call corruption
/// primitive behind `avqtool inject` and the scrub/repair tests: the same
/// `(seed, k)` always damages the same bytes of a given file.
pub fn corrupt_file_in_place(path: &Path, seed: u64, k: usize) -> io::Result<Vec<u64>> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Ok(Vec::new());
    }
    let mut offsets = BTreeSet::new();
    let mut state = seed ^ 0xc0ff_ee00_c0ff_ee00;
    let limit = k.min(bytes.len());
    while offsets.len() < limit {
        state = splitmix64(state);
        offsets.insert(state % bytes.len() as u64);
    }
    for &off in &offsets {
        let bit = (splitmix64(seed ^ off) % 8) as u8;
        bytes[off as usize] ^= 1 << bit;
    }
    std::fs::write(path, &bytes)?;
    Ok(offsets.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_blocks_is_deterministic_and_distinct() {
        let candidates: Vec<BlockId> = (0..100).collect();
        let a = FaultPlan::pick_blocks(7, &candidates, 10);
        let b = FaultPlan::pick_blocks(7, &candidates, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let c = FaultPlan::pick_blocks(8, &candidates, 10);
        assert_ne!(a, c, "different seeds pick different blocks");
        assert_eq!(FaultPlan::pick_blocks(1, &candidates, 1000).len(), 100);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let plan = FaultPlan::new(42).with_fault_on(FaultKind::BitFlip, [3]);
        let original = vec![0xAAu8; 16];
        let mut data = original.clone();
        plan.on_read(3, &mut data).unwrap();
        let diff_bits: u32 = original
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff_bits, 1);
        assert_eq!(plan.faults_fired(), 1);
        // Untargeted block untouched.
        let mut other = original.clone();
        plan.on_read(4, &mut other).unwrap();
        assert_eq!(other, original);
    }

    #[test]
    fn transient_read_recovers_after_failures() {
        let plan = FaultPlan::new(1).with_fault_on(FaultKind::TransientRead { failures: 2 }, [0]);
        let mut data = vec![1u8];
        let e1 = plan.on_read(0, &mut data).unwrap_err();
        assert!(matches!(
            e1,
            StorageError::Io {
                transient: true,
                ..
            }
        ));
        assert!(plan.on_read(0, &mut data).is_err());
        assert!(plan.on_read(0, &mut data).is_ok(), "third attempt succeeds");
    }

    #[test]
    fn torn_write_keeps_strict_prefix() {
        let plan = FaultPlan::new(9).with_fault_on(FaultKind::TornWrite, [5]);
        let mut data = vec![7u8; 64];
        plan.on_write(5, &mut data).unwrap();
        assert!(data.len() < 64);
        assert!(data.iter().all(|&b| b == 7));
    }

    #[test]
    fn retry_recovers_transient_and_gives_up_on_hard() {
        let clock = SimClock::new();
        let mut left = 2;
        let got = retry_with_backoff(RetryPolicy::default(), &clock, || {
            if left > 0 {
                left -= 1;
                Err(StorageError::Io {
                    id: 0,
                    detail: "flaky",
                    transient: true,
                })
            } else {
                Ok(99)
            }
        });
        assert_eq!(got, Ok(99));
        assert!(
            clock.now_ms() >= 3.0 - 1e-9,
            "two backoffs charged: 1 + 2 ms"
        );

        let hard = retry_with_backoff(RetryPolicy::default(), &clock, || -> Result<(), _> {
            Err(StorageError::Io {
                id: 1,
                detail: "dead",
                transient: false,
            })
        });
        assert!(matches!(
            hard,
            Err(StorageError::Io {
                transient: false,
                ..
            })
        ));
    }

    #[test]
    fn retry_total_budget_caps_backoff() {
        // 10 attempts of doubling backoff would charge 1+2+4+… ms; a 3 ms
        // total budget lets only the first two retries run.
        let clock = SimClock::new();
        let policy = RetryPolicy {
            max_attempts: 10,
            backoff_ms: 1.0,
            max_total_ms: 3.0,
        };
        let mut calls = 0u32;
        let out: Result<(), _> = retry_with_backoff(policy, &clock, || {
            calls += 1;
            Err(StorageError::Io {
                id: 0,
                detail: "always flaky",
                transient: true,
            })
        });
        assert!(matches!(
            out,
            Err(StorageError::Io {
                transient: true,
                ..
            })
        ));
        assert_eq!(calls, 3, "first try + two retries inside the 3 ms budget");
        assert!((clock.now_ms() - 3.0).abs() < 1e-9);

        // Clamping to a spent deadline refuses the very first retry.
        let clock = SimClock::new();
        let mut calls = 0u32;
        let out: Result<(), _> =
            retry_with_backoff(RetryPolicy::default().clamped_to_ms(0.0), &clock, || {
                calls += 1;
                Err(StorageError::Io {
                    id: 0,
                    detail: "always flaky",
                    transient: true,
                })
            });
        assert!(out.is_err());
        assert_eq!(calls, 1);
        assert_eq!(clock.now_ms(), 0.0, "no backoff charged past the deadline");
    }

    #[test]
    fn fault_file_torn_write_keeps_prefix() {
        let mut out = Vec::new();
        {
            let mut f = FaultFile::new(&mut out, 3, vec![StreamFault::TornAfter(10)]);
            f.write_all(&[1u8; 8]).unwrap();
            f.write_all(&[2u8; 8]).unwrap(); // crosses the tear at 10
            f.write_all(&[3u8; 8]).unwrap(); // entirely past it
            f.flush().unwrap();
        }
        assert_eq!(out, vec![1, 1, 1, 1, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn fault_file_read_flip_and_error() {
        let data = [0u8; 32];
        let mut f = FaultFile::new(&data[..], 5, vec![StreamFault::FlipOnRead(7)]);
        let mut buf = vec![0u8; 32];
        f.read_exact(&mut buf).unwrap();
        assert_eq!(buf.iter().filter(|&&b| b != 0).count(), 1);
        assert_ne!(buf[7], 0);

        let mut f = FaultFile::new(&data[..], 5, vec![StreamFault::ReadErrorAfter(16)]);
        let mut buf = vec![0u8; 16];
        f.read_exact(&mut buf).unwrap();
        assert!(f.read_exact(&mut buf).is_err());
    }

    #[test]
    fn corrupt_file_in_place_is_seed_deterministic() {
        let dir = std::env::temp_dir().join(format!("avq-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.bin");
        let original = vec![0x55u8; 256];
        std::fs::write(&path, &original).unwrap();
        let offs = corrupt_file_in_place(&path, 123, 4).unwrap();
        assert_eq!(offs.len(), 4);
        let damaged = std::fs::read(&path).unwrap();
        let differing: Vec<u64> = original
            .iter()
            .zip(&damaged)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(differing, offs);
        // Same seed on the same original bytes damages the same offsets.
        std::fs::write(&path, &original).unwrap();
        assert_eq!(corrupt_file_in_place(&path, 123, 4).unwrap(), offs);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
