//! Device-level fault-injection integration: a [`FaultPlan`] installed on a
//! [`BlockDevice`] must shape every read and write that reaches the device,
//! while the [`BufferPool`] keeps its caching contract (a cached block
//! never re-consults the plan until invalidated).

use avq_storage::{
    BlockDevice, BufferPool, DiskProfile, FaultKind, FaultPlan, RetryPolicy, StorageError,
};

fn device_and_pool() -> (
    std::sync::Arc<BlockDevice>,
    std::sync::Arc<BufferPool>,
    Vec<avq_storage::BlockId>,
) {
    let device = BlockDevice::new(256, DiskProfile::paper_fixed());
    let pool = BufferPool::new(device.clone(), 64);
    let mut ids = Vec::new();
    for i in 0..10u8 {
        let id = device.allocate().unwrap();
        pool.write(id, &[i; 200]).unwrap();
        ids.push(id);
    }
    (device, pool, ids)
}

#[test]
fn read_error_fires_only_on_targeted_blocks() {
    let (device, pool, ids) = device_and_pool();
    let plan =
        device.set_fault_plan(FaultPlan::new(1).with_fault_on(FaultKind::ReadError, [ids[3]]));
    pool.clear();
    for &id in &ids {
        let got = pool.read(id);
        if id == ids[3] {
            assert!(matches!(
                got,
                Err(StorageError::Io {
                    transient: false,
                    ..
                })
            ));
        } else {
            assert_eq!(got.unwrap().len(), 200);
        }
    }
    assert_eq!(plan.faults_fired(), 1);
    device.clear_fault_plan();
    assert!(
        pool.read(ids[3]).is_ok(),
        "clearing the plan heals the block"
    );
}

#[test]
fn pool_cache_shields_reads_until_invalidated() {
    let (device, pool, ids) = device_and_pool();
    // Warm the cache first, then install the fault.
    pool.read(ids[0]).unwrap();
    device.set_fault_plan(FaultPlan::new(2).with_fault_on(FaultKind::ReadError, [ids[0]]));
    assert!(
        pool.read(ids[0]).is_ok(),
        "cached frame served without touching the device"
    );
    pool.invalidate(ids[0]);
    assert!(pool.read(ids[0]).is_err(), "cache miss reaches the fault");
}

#[test]
fn bit_flip_is_deterministic_per_seed() {
    let (device, pool, ids) = device_and_pool();
    device.set_fault_plan(FaultPlan::new(42).with_fault_on(FaultKind::BitFlip, [ids[5]]));
    pool.clear();
    let a = pool.read(ids[5]).unwrap();
    pool.clear();
    let b = pool.read(ids[5]).unwrap();
    assert_eq!(*a, *b, "same seed flips the same bit");
    let clean = [5u8; 200];
    let diff: u32 = clean
        .iter()
        .zip(a.iter())
        .map(|(x, y)| (x ^ y).count_ones())
        .sum();
    assert_eq!(diff, 1, "exactly one damaged bit");
}

#[test]
fn write_error_and_torn_write() {
    let (device, pool, ids) = device_and_pool();
    device.set_fault_plan(
        FaultPlan::new(3)
            .with_fault_on(FaultKind::WriteError, [ids[1]])
            .with_fault_on(FaultKind::TornWrite, [ids[2]]),
    );
    assert!(matches!(
        pool.write(ids[1], &[9u8; 100]),
        Err(StorageError::Io { .. })
    ));
    // Torn write reports success but persists only a strict prefix.
    pool.write(ids[2], &[9u8; 100]).unwrap();
    pool.invalidate(ids[2]);
    device.clear_fault_plan();
    let stored = pool.read(ids[2]).unwrap();
    assert!(
        stored.len() < 100,
        "suffix lost: {} bytes kept",
        stored.len()
    );
    assert!(stored.iter().all(|&b| b == 9));
}

#[test]
fn transient_read_heals_through_retry() {
    let (device, pool, ids) = device_and_pool();
    device.set_fault_plan(
        FaultPlan::new(4).with_fault_on(FaultKind::TransientRead { failures: 2 }, [ids[7]]),
    );
    pool.clear();
    let policy = RetryPolicy {
        max_attempts: 3,
        backoff_ms: 2.0,
        ..RetryPolicy::default()
    };
    let before = device.clock().now_ms();
    let got = pool.read_with_retry(ids[7], policy).unwrap();
    assert_eq!(got.len(), 200);
    assert!(
        device.clock().now_ms() - before >= 6.0 - 1e-9,
        "two backoffs charged: 2 + 4 ms"
    );

    // The same fault with no retry budget surfaces the transient error.
    device.set_fault_plan(
        FaultPlan::new(4).with_fault_on(FaultKind::TransientRead { failures: 2 }, [ids[8]]),
    );
    pool.clear();
    assert!(matches!(
        pool.read_with_retry(ids[8], RetryPolicy::none()),
        Err(StorageError::Io {
            transient: true,
            ..
        })
    ));
}
