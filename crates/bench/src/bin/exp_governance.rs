//! Experiment E14 — resource governance under load: shed rate and
//! queue-wait of the admission gate across an open/closed-loop mix of
//! short interactive probes and long background scans, plus how fast a
//! blown deadline is noticed (deadline-hit latency) and what an enabled
//! but unlimited governance context costs over the ungoverned path.
//!
//! Results are printed as tables and recorded as JSON in
//! `results/BENCH_governance.json` (override with the second argument).
//!
//! With `AVQ_PERF_SMOKE=1` the run additionally acts as a CI guard: it
//! exits nonzero if the under-provisioned phase shed anything or the
//! overloaded phase shed nothing.
//!
//! Usage: `cargo run --release -p avq-bench --bin exp_governance [n] [json_path]`

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avq_bench::measure::avg_ms;
use avq_bench::report::Table;
use avq_db::{
    AdmissionConfig, AdmissionController, Database, DbConfig, GovCtx, GovernanceError, QueryBudget,
    QueryClass,
};
use avq_schema::{Domain, Relation, Schema, Tuple};
use std::sync::atomic::{AtomicU64, Ordering};

/// `events(day < 365, user < 1000)` with a secondary index on `user`, so
/// the probe workload runs index-nested rather than scanning.
fn events_db(n: usize) -> Database {
    let mut config = DbConfig::default();
    config.codec.block_capacity = 256;
    let mut db = Database::new(config);
    let schema = Schema::from_pairs(vec![
        ("day", Domain::uint(365).unwrap()),
        ("user", Domain::uint(1000).unwrap()),
    ])
    .unwrap();
    let tuples: Vec<Tuple> = (0..n as u64)
        .map(|i| Tuple::from([i % 365, (i * 13) % 1000]))
        .collect();
    db.create_relation("events", &Relation::from_tuples(schema, tuples).unwrap())
        .unwrap();
    db.relation_mut("events")
        .unwrap()
        .create_secondary_index(1)
        .unwrap();
    db.drop_caches();
    db
}

/// Per-phase outcome tallies, shared across worker threads.
#[derive(Default)]
struct Tally {
    attempts: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
    tripped: AtomicU64,
}

/// One closed-loop phase: `workers` threads each submit `iters` queries
/// through `gate`, alternating a short interactive probe with a long
/// background scan. Returns the tallies.
fn run_phase(
    db: &Database,
    gate: &AdmissionController,
    workers: usize,
    iters: usize,
    scan_timeout_ms: Option<f64>,
) -> Tally {
    let tally = Tally::default();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tally = &tally;
            scope.spawn(move || {
                for i in 0..iters {
                    let long = (w + i) % 2 == 1;
                    let (class, stmt) = if long {
                        (
                            QueryClass::Background,
                            "select count(*), min(user), max(user) from events".to_owned(),
                        )
                    } else {
                        (
                            QueryClass::Interactive,
                            format!("select * from events where user = {}", (w * 131 + i) % 1000),
                        )
                    };
                    let mut budget = QueryBudget::unlimited();
                    if long {
                        if let Some(ms) = scan_timeout_ms {
                            budget = budget.with_timeout_ms(ms);
                        }
                    }
                    let gov = GovCtx::new(budget, db.clock().clone());
                    tally.attempts.fetch_add(1, Ordering::Relaxed);
                    match gate.admit(class, &gov) {
                        Ok(_permit) => {
                            tally.admitted.fetch_add(1, Ordering::Relaxed);
                            let r = avq_sql::run_governed(
                                db,
                                &stmt,
                                &avq_obs::TraceCtx::disabled(),
                                &gov,
                            );
                            if r.is_err() {
                                tally.tripped.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(GovernanceError::Shed { .. }) => {
                            tally.shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            tally.tripped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    tally
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let json_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "results/BENCH_governance.json".to_owned());

    let db = events_db(n);
    let blocks = db.relation("events").unwrap().block_count();
    println!("relation: {n} tuples -> {blocks} blocks\n");

    // Phase 1 — provisioned: more slots than workers, nothing queues for
    // long and nothing sheds.
    let low_gate = AdmissionController::new(
        AdmissionConfig {
            slots: 4,
            queue_limit: 8,
        },
        db.clock().clone(),
    );
    let low_before = avq_obs::global().snapshot();
    let low = run_phase(&db, &low_gate, 2, 20, None);
    let low_delta = avq_obs::global().snapshot().since(&low_before);

    // Phase 2 — overload: 12 workers fight for 2 slots behind a 3-deep
    // queue; the gate must shed (queue-full and deadline-unmeetable), not
    // queue unboundedly.
    let over_gate = AdmissionController::new(
        AdmissionConfig {
            slots: 2,
            queue_limit: 3,
        },
        db.clock().clone(),
    );
    let over_before = avq_obs::global().snapshot();
    let over = run_phase(&db, &over_gate, 12, 12, Some(500.0));
    let over_delta = avq_obs::global().snapshot().since(&over_before);

    let mut t = Table::new([
        "phase",
        "workers",
        "slots",
        "queue",
        "attempts",
        "admitted",
        "shed",
        "tripped",
        "shed rate",
    ]);
    let phase_row = |t: &mut Table, name: &str, workers: usize, cfg: AdmissionConfig, y: &Tally| {
        let attempts = y.attempts.load(Ordering::Relaxed);
        let shed = y.shed.load(Ordering::Relaxed);
        t.row([
            name.to_owned(),
            workers.to_string(),
            cfg.slots.to_string(),
            cfg.queue_limit.to_string(),
            attempts.to_string(),
            y.admitted.load(Ordering::Relaxed).to_string(),
            shed.to_string(),
            y.tripped.load(Ordering::Relaxed).to_string(),
            format!("{:.3}", shed as f64 / attempts.max(1) as f64),
        ]);
    };
    phase_row(&mut t, "provisioned", 2, low_gate.config(), &low);
    phase_row(&mut t, "overload", 12, over_gate.config(), &over);
    t.print();
    println!();

    // Deadline-hit latency: how much real time passes between submitting a
    // query whose virtual deadline is already unmeetable and getting its
    // typed timeout back. Cold caches force the scan onto the simulated
    // disk so the clock really advances.
    let mut hit_ms = Vec::new();
    for _ in 0..10 {
        db.drop_caches();
        let gov = GovCtx::new(
            QueryBudget::unlimited().with_timeout_ms(2.0),
            db.clock().clone(),
        );
        let sw = avq_obs::Stopwatch::start();
        let r = avq_sql::run_governed(
            &db,
            "select count(*) from events",
            &avq_obs::TraceCtx::disabled(),
            &gov,
        );
        assert!(r.is_err(), "a 2 virtual-ms scan of {blocks} blocks");
        hit_ms.push(sw.elapsed().as_secs_f64() * 1000.0);
    }
    let hit_avg = hit_ms.iter().sum::<f64>() / hit_ms.len() as f64;
    let hit_max = hit_ms.iter().cloned().fold(0.0f64, f64::max);

    // Governance overhead: the same warm scan ungoverned vs under an
    // enabled-but-unlimited budget. The delta is the per-block poll and
    // charge arithmetic.
    let stmt = "select count(*) from events";
    let _ = avq_sql::run(&db, stmt).unwrap();
    let plain_ms = avg_ms(2, 20, || {
        std::hint::black_box(avq_sql::run(&db, stmt).unwrap());
    });
    let wide = GovCtx::new(
        QueryBudget::unlimited()
            .with_max_rows(u64::MAX)
            .with_max_decoded_bytes(u64::MAX),
        db.clock().clone(),
    );
    let governed_ms = avg_ms(2, 20, || {
        std::hint::black_box(
            avq_sql::run_governed(&db, stmt, &avq_obs::TraceCtx::disabled(), &wide).unwrap(),
        );
    });
    let overhead = governed_ms / plain_ms;

    let mut t = Table::new(["measure", "value"]);
    t.row(["deadline-hit avg ms".to_owned(), format!("{hit_avg:.3}")]);
    t.row(["deadline-hit max ms".to_owned(), format!("{hit_max:.3}")]);
    t.row(["warm scan plain ms".to_owned(), format!("{plain_ms:.3}")]);
    t.row([
        "warm scan governed ms".to_owned(),
        format!("{governed_ms:.3}"),
    ]);
    t.row(["governed overhead ×".to_owned(), format!("{overhead:.3}")]);
    t.print();

    let gov_count = |d: &avq_obs::Snapshot, name: &str| d.counters.get(name).copied().unwrap_or(0);
    let low_shed = low.shed.load(Ordering::Relaxed);
    let over_shed = over.shed.load(Ordering::Relaxed);
    let queue_wait =
        avq_bench::report::latency_json(&over_delta, &[avq_obs::names::GOV_QUEUE_WAIT_NS]);
    let phase_json =
        |name: &str, workers: usize, cfg: AdmissionConfig, y: &Tally, d: &avq_obs::Snapshot| {
            format!(
                "{{\"phase\": \"{name}\", \"workers\": {workers}, \"slots\": {}, \
             \"queue_limit\": {}, \"attempts\": {}, \"admitted\": {}, \"shed\": {}, \
             \"tripped\": {}, \"gov_admitted_counter\": {}, \"gov_shed_counter\": {}, \
             \"gov_timeouts_counter\": {}}}",
                cfg.slots,
                cfg.queue_limit,
                y.attempts.load(Ordering::Relaxed),
                y.admitted.load(Ordering::Relaxed),
                y.shed.load(Ordering::Relaxed),
                y.tripped.load(Ordering::Relaxed),
                gov_count(d, avq_obs::names::GOV_ADMITTED),
                gov_count(d, avq_obs::names::GOV_SHED),
                gov_count(d, avq_obs::names::GOV_TIMEOUTS),
            )
        };
    let json = format!(
        "{{\n  \"experiment\": \"governance\",\n  \"tuples\": {n},\n  \"blocks\": {blocks},\n  \
         \"phases\": [{}, {}],\n  \
         \"queue_wait_ns\": {queue_wait},\n  \
         \"deadline_hit_avg_ms\": {hit_avg:.3},\n  \"deadline_hit_max_ms\": {hit_max:.3},\n  \
         \"warm_scan_plain_ms\": {plain_ms:.4},\n  \"warm_scan_governed_ms\": {governed_ms:.4},\n  \
         \"governed_overhead\": {overhead:.4}\n}}\n",
        phase_json("provisioned", 2, low_gate.config(), &low, &low_delta),
        phase_json("overload", 12, over_gate.config(), &over, &over_delta),
    );
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap();
        }
    }
    std::fs::write(&json_path, json).unwrap();
    println!("\nwrote {json_path}");

    if std::env::var("AVQ_PERF_SMOKE").is_ok_and(|v| v == "1") {
        if low_shed > 0 {
            eprintln!("perf smoke FAILED: provisioned phase shed {low_shed} queries");
            std::process::exit(1);
        }
        if over_shed == 0 {
            eprintln!("perf smoke FAILED: overload phase shed nothing");
            std::process::exit(1);
        }
        println!("perf smoke ok: 0 sheds provisioned, {over_shed} sheds at overload");
    }
}
