//! Experiment E5 — Fig. 5.7: compression efficiency.
//!
//! Generates the four relation characteristics of Fig. 5.7 (a) — {skew} ×
//! {domain-size variance} with 15 attributes — across relation sizes, codes
//! each with the paper's AVQ configuration, and prints the percentage
//! reduction in disk blocks, `100·(1 − a/b)`.
//!
//! Usage: `cargo run --release -p avq-bench --bin exp_compression [sizes...]`
//! (default sizes: 1000 10000 100000)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avq_bench::report::Table;
use avq_codec::{compress, CodecOptions};
use avq_workload::SyntheticSpec;

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![1_000, 10_000, 100_000]
        } else {
            args
        }
    };

    println!("Fig 5.7 — percentage reduction in size (blocks), 8192-byte blocks\n");
    let mut table = Table::new(["No. of tuples", "Test 1", "Test 2", "Test 3", "Test 4"]);
    for &n in &sizes {
        let mut cells = vec![format!("{n}")];
        for (_, spec) in SyntheticSpec::fig_5_7_tests(n) {
            let relation = spec.generate();
            let coded = compress(&relation, CodecOptions::default()).unwrap();
            cells.push(format!("{:.1}%", coded.stats().block_reduction_percent()));
        }
        table.row(cells);
    }
    table.print();
    println!("\npaper (Fig 5.7 b): Test 1 = 73.0%, Test 2 = 65.6%, Test 3 = 73.2%, Test 4 = 65.6%");
    println!("paper observations: (1) large reduction everywhere; (2) homogeneous domain");
    println!("sizes compress better (Tests 1,3 > Tests 2,4); (3) skew has no effect");
    println!("(Test 1 ≈ Test 3, Test 2 ≈ Test 4).");

    // Payload-level detail for the largest size.
    let n = *sizes.last().unwrap();
    println!("\ndetail at {n} tuples:");
    let mut detail = Table::new([
        "test",
        "m (B)",
        "uncoded blocks",
        "coded blocks",
        "block red.",
        "payload red.",
        "B/tuple",
    ]);
    for (name, spec) in SyntheticSpec::fig_5_7_tests(n) {
        let relation = spec.generate();
        let m = relation.schema().tuple_bytes();
        let coded = compress(&relation, CodecOptions::default()).unwrap();
        let st = coded.stats();
        detail.row([
            name.to_string(),
            m.to_string(),
            st.uncoded_blocks.to_string(),
            st.coded_blocks.to_string(),
            format!("{:.1}%", st.block_reduction_percent()),
            format!("{:.1}%", st.payload_reduction_percent()),
            format!("{:.2}", st.bytes_per_tuple()),
        ]);
    }
    detail.print();
}
