//! `EXPLAIN ANALYZE`: per-stage wall-clock timing and cache attribution
//! for selections, equijoins, and aggregates.
//!
//! The cost model in [`crate::cost`] charges the *simulated* 1994 disk;
//! this module measures where *real* time goes — index probing, block
//! decode, predicate filtering, join matching — and how many block reads
//! each stage served from cache (buffer-pool hits + decoded-block hits)
//! instead of decode + device I/O. Reports render as a fixed-format table
//! that `avqtool explain` prints and a CLI golden test pins.

use crate::aggregate::{AggState, Aggregate, AggregateValue};
use crate::database::Database;
use crate::error::DbError;
use crate::join::JoinStrategy;
use crate::query::{AccessPath, Selection};
use crate::relation_store::StoredRelation;
use avq_obs::{names, Stopwatch};
use avq_schema::Tuple;
use avq_storage::{BlockId, PoolStats};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// One timed stage of a query plan.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage name (`index-probe`, `scan`, `filter`, `join`, …).
    pub stage: &'static str,
    /// Rows the stage produced (for scans: tuples decoded; for probes:
    /// candidate blocks located).
    pub rows: u64,
    /// Data blocks the stage touched.
    pub blocks: u64,
    /// Block reads served from cache during the stage (buffer-pool hits
    /// plus decoded-block cache hits).
    pub cache_hits: u64,
    /// Wall-clock time spent in the stage.
    pub elapsed: Duration,
}

/// A per-stage `EXPLAIN ANALYZE` report.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// Human-readable description of the query.
    pub query: String,
    /// The plan chosen (access path or join strategy).
    pub plan: String,
    /// Timed stages in execution order.
    pub stages: Vec<StageReport>,
    /// Rows in the final result.
    pub rows: u64,
}

impl ExplainReport {
    /// Total elapsed time across all stages.
    pub fn total_elapsed(&self) -> Duration {
        self.stages.iter().map(|s| s.elapsed).sum()
    }

    /// Total cache hits across all stages.
    pub fn total_cache_hits(&self) -> u64 {
        self.stages.iter().map(|s| s.cache_hits).sum()
    }
}

/// Formats a duration compactly (`845ns`, `12.3µs`, `4.5ms`, `1.20s`).
pub fn format_elapsed(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

impl ExplainReport {
    /// Renders just the fixed-format stage table (header, separator, one
    /// row per stage, `total` row) without the query/plan preamble. Shared
    /// by [`Display`](core::fmt::Display) and the SQL plan renderer, so
    /// `EXPLAIN ANALYZE` tables look identical everywhere.
    pub fn stage_table(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<13} | {:>10} | {:>8} | {:>10} | {:>10}",
            "stage", "rows", "blocks", "cache_hits", "elapsed"
        );
        let _ = writeln!(
            out,
            "{:-<14}+{:-<12}+{:-<10}+{:-<12}+{:-<11}",
            "", "", "", "", ""
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<13} | {:>10} | {:>8} | {:>10} | {:>10}",
                s.stage,
                s.rows,
                s.blocks,
                s.cache_hits,
                format_elapsed(s.elapsed)
            );
        }
        let blocks: u64 = self.stages.iter().map(|s| s.blocks).sum();
        let _ = write!(
            out,
            "{:<13} | {:>10} | {:>8} | {:>10} | {:>10}",
            "total",
            self.rows,
            blocks,
            self.total_cache_hits(),
            format_elapsed(self.total_elapsed())
        );
        out
    }
}

impl core::fmt::Display for ExplainReport {
    /// The `avqtool explain` table. A CLI golden test pins this shape
    /// (header, column order, separator, `total` row) — change it there
    /// too or not at all.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "EXPLAIN ANALYZE: {}", self.query)?;
        writeln!(f, "plan: {}", self.plan)?;
        write!(f, "{}", self.stage_table())
    }
}

/// Cache counters at a stage boundary: decoded-block cache + buffer pool.
/// Public so external executors (the SQL subsystem) attribute cache hits to
/// their own plan nodes with the same arithmetic.
pub struct CacheMark {
    decoded: PoolStats,
    pool: PoolStats,
}

impl CacheMark {
    /// Snapshots `rel`'s cache counters at a stage boundary.
    pub fn take(rel: &StoredRelation) -> Self {
        CacheMark {
            decoded: rel.decoded_stats(),
            pool: rel.pool_stats(),
        }
    }

    /// Cache hits accrued on `rel` since this mark.
    pub fn hits_since(&self, rel: &StoredRelation) -> u64 {
        rel.decoded_stats().since(&self.decoded).hits + rel.pool_stats().since(&self.pool).hits
    }
}

fn path_name(path: AccessPath) -> String {
    path.to_string()
}

impl StoredRelation {
    /// Executes `selection` like [`Self::select`], additionally timing each
    /// plan stage and attributing cache hits to it.
    pub fn explain_select(
        &self,
        query: String,
        selection: &Selection,
    ) -> Result<(Vec<Tuple>, ExplainReport), DbError> {
        let _span = avq_obs::span!(names::SPAN_DB_EXPLAIN);
        let path = selection.plan(self);
        let mut stages = Vec::new();

        // Stage 1: locate candidate blocks through the chosen access path.
        let mark = CacheMark::take(self);
        let probe_start = Stopwatch::start();
        let candidates: Vec<BlockId> = self.candidate_blocks(selection, path)?;
        stages.push(StageReport {
            stage: "index-probe",
            rows: candidates.len() as u64,
            blocks: 0,
            cache_hits: mark.hits_since(self),
            elapsed: probe_start.elapsed(),
        });

        // Stages 2+3: decode candidates (scan) and apply conjuncts (filter),
        // timed separately within one streaming pass.
        let mut scan_elapsed = Duration::ZERO;
        let mut filter_elapsed = Duration::ZERO;
        let mut scanned = 0u64;
        let mark = CacheMark::take(self);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for &id in &candidates {
            let t = Stopwatch::start();
            scratch.clear();
            self.decode_block_into(id, &mut scratch)?;
            scan_elapsed += t.elapsed();
            scanned += scratch.len() as u64;
            let t = Stopwatch::start();
            for tuple in &scratch {
                if selection.matches(tuple) {
                    out.push(tuple.clone());
                }
            }
            filter_elapsed += t.elapsed();
        }
        stages.push(StageReport {
            stage: "scan",
            rows: scanned,
            blocks: candidates.len() as u64,
            cache_hits: mark.hits_since(self),
            elapsed: scan_elapsed,
        });
        stages.push(StageReport {
            stage: "filter",
            rows: out.len() as u64,
            blocks: 0,
            cache_hits: 0,
            elapsed: filter_elapsed,
        });

        let rows = out.len() as u64;
        Ok((
            out,
            ExplainReport {
                query,
                plan: path_name(path),
                stages,
                rows,
            },
        ))
    }

    /// Evaluates `agg` under `selection` like [`Self::aggregate`], with the
    /// per-stage report of the underlying selection plus an `aggregate`
    /// stage.
    pub fn explain_aggregate(
        &self,
        query: String,
        agg: Aggregate,
        selection: &Selection,
    ) -> Result<(AggregateValue, ExplainReport), DbError> {
        let (rows, mut report) = self.explain_select(query, selection)?;
        let t = Stopwatch::start();
        let mut state = AggState::default();
        for tuple in &rows {
            state.feed(agg, tuple);
        }
        let value = state.finish(agg);
        report.stages.push(StageReport {
            stage: "aggregate",
            rows: 1,
            blocks: 0,
            cache_hits: 0,
            elapsed: t.elapsed(),
        });
        report.rows = 1;
        Ok((value, report))
    }
}

/// Executes `outer ⋈ inner` like [`crate::equijoin`], additionally timing
/// each join stage (outer scan, index probe, inner scan, matching) and
/// attributing cache hits to each.
pub fn explain_equijoin(
    query: String,
    outer: &StoredRelation,
    outer_attr: usize,
    inner: &StoredRelation,
    inner_attr: usize,
) -> Result<(Vec<(Tuple, Tuple)>, ExplainReport), DbError> {
    let _span = avq_obs::span!(names::SPAN_DB_EXPLAIN);
    let use_index = inner.has_secondary_index(inner_attr);
    let strategy = if use_index {
        JoinStrategy::IndexNestedLoop
    } else {
        JoinStrategy::BlockNestedLoop
    };

    let mut outer_scan = Duration::ZERO;
    let mut probe = Duration::ZERO;
    let mut inner_scan = Duration::ZERO;
    let mut join = Duration::ZERO;
    let mut outer_rows = 0u64;
    let mut inner_rows = 0u64;
    let mut probe_blocks = 0u64;
    let mut inner_blocks = 0u64;
    let mut outer_hits = 0u64;
    let mut inner_hits = 0u64;

    let mut out = Vec::new();
    let mut outer_tuples = Vec::new();
    let mut inner_tuples = Vec::new();
    let inner_ids = inner.all_block_ids();
    let outer_ids = outer.all_block_ids();
    let outer_block_count = outer_ids.len() as u64;
    for oid in outer_ids {
        let mark = CacheMark::take(outer);
        let t = Stopwatch::start();
        outer_tuples.clear();
        outer.decode_block_into(oid, &mut outer_tuples)?;
        outer_scan += t.elapsed();
        outer_hits += mark.hits_since(outer);
        outer_rows += outer_tuples.len() as u64;

        let t = Stopwatch::start();
        let mut by_value: BTreeMap<u64, Vec<&Tuple>> = BTreeMap::new();
        for tuple in &outer_tuples {
            by_value
                .entry(tuple.digits()[outer_attr])
                .or_default()
                .push(tuple);
        }
        join += t.elapsed();

        let candidates: Vec<BlockId> = if use_index {
            let t = Stopwatch::start();
            let mut set = BTreeSet::new();
            for &v in by_value.keys() {
                for b in inner.secondary_candidate_blocks(inner_attr, v, v)? {
                    set.insert(b);
                }
            }
            probe += t.elapsed();
            probe_blocks += set.len() as u64;
            set.into_iter().collect()
        } else {
            inner_ids.clone()
        };

        for iid in candidates {
            let mark = CacheMark::take(inner);
            let t = Stopwatch::start();
            inner_tuples.clear();
            inner.decode_block_into(iid, &mut inner_tuples)?;
            inner_scan += t.elapsed();
            inner_hits += mark.hits_since(inner);
            inner_blocks += 1;
            inner_rows += inner_tuples.len() as u64;

            let t = Stopwatch::start();
            for it in &inner_tuples {
                if let Some(os) = by_value.get(&it.digits()[inner_attr]) {
                    for ot in os {
                        out.push(((*ot).clone(), it.clone()));
                    }
                }
            }
            join += t.elapsed();
        }
    }

    let mut stages = vec![StageReport {
        stage: "scan-outer",
        rows: outer_rows,
        blocks: outer_block_count,
        cache_hits: outer_hits,
        elapsed: outer_scan,
    }];
    if use_index {
        stages.push(StageReport {
            stage: "index-probe",
            rows: probe_blocks,
            blocks: 0,
            cache_hits: 0,
            elapsed: probe,
        });
    }
    stages.push(StageReport {
        stage: "scan-inner",
        rows: inner_rows,
        blocks: inner_blocks,
        cache_hits: inner_hits,
        elapsed: inner_scan,
    });
    stages.push(StageReport {
        stage: "join",
        rows: out.len() as u64,
        blocks: 0,
        cache_hits: 0,
        elapsed: join,
    });

    let rows = out.len() as u64;
    Ok((
        out,
        ExplainReport {
            query,
            plan: match strategy {
                JoinStrategy::IndexNestedLoop => "index-nested-loop".to_owned(),
                JoinStrategy::BlockNestedLoop => "block-nested-loop".to_owned(),
            },
            stages,
            rows,
        },
    ))
}

impl Database {
    /// `EXPLAIN ANALYZE` for a logical range selection (same arguments as
    /// [`Self::select_range`]).
    pub fn explain_select_range(
        &self,
        name: &str,
        attr: &str,
        lo: &avq_schema::Value,
        hi: &avq_schema::Value,
    ) -> Result<ExplainReport, DbError> {
        let rel = self.relation(name)?;
        let schema = rel.schema().clone();
        let attr_idx = schema.index_of(attr)?;
        let domain = schema.attribute(attr_idx).domain();
        let lo_ord = domain.encode(lo)?;
        let hi_ord = domain.encode(hi)?;
        let selection = Selection::all().and(crate::query::RangePredicate {
            attr: attr_idx,
            lo: lo_ord,
            hi: hi_ord,
        });
        let query = format!("select {name} where {lo} <= {attr} <= {hi}");
        let (_, report) = rel.explain_select(query, &selection)?;
        Ok(report)
    }

    /// `EXPLAIN ANALYZE` for `outer ⋈ inner` on the named attributes.
    pub fn explain_equijoin(
        &self,
        outer_name: &str,
        outer_attr: &str,
        inner_name: &str,
        inner_attr: &str,
    ) -> Result<ExplainReport, DbError> {
        let outer = self.relation(outer_name)?;
        let inner = self.relation(inner_name)?;
        let oa = outer.schema().index_of(outer_attr)?;
        let ia = inner.schema().index_of(inner_attr)?;
        let query = format!("join {outer_name}.{outer_attr} = {inner_name}.{inner_attr}");
        let (_, report) = explain_equijoin(query, outer, oa, inner, ia)?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DbConfig;
    use crate::query::RangePredicate;
    use avq_codec::CodecOptions;
    use avq_schema::{Domain, Relation, Schema};
    use avq_storage::{BlockDevice, BufferPool};

    fn stored(with_index: bool) -> StoredRelation {
        let schema = Schema::from_pairs(vec![
            ("a", Domain::uint(16).unwrap()),
            ("b", Domain::uint(64).unwrap()),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = (0..1500u64)
            .map(|i| Tuple::from([(i * 3) % 16, (i * 7) % 64]))
            .collect();
        let relation = Relation::from_tuples(schema, tuples).unwrap();
        let config = DbConfig {
            codec: CodecOptions {
                block_capacity: 256,
                ..Default::default()
            },
            ..Default::default()
        };
        let device = BlockDevice::new(256, config.disk);
        let pool = BufferPool::new(device.clone(), config.buffer_frames);
        let mut s = StoredRelation::bulk_load(device, pool, &relation, config).unwrap();
        if with_index {
            s.create_secondary_index(1).unwrap();
        }
        s
    }

    #[test]
    fn explain_select_matches_select() {
        let rel = stored(true);
        let sel = Selection::all().and(RangePredicate {
            attr: 1,
            lo: 10,
            hi: 30,
        });
        let (expected, _, path) = rel.select(&sel).unwrap();
        let (rows, report) = rel.explain_select("q".to_owned(), &sel).unwrap();
        assert_eq!(rows, expected);
        assert_eq!(path, AccessPath::SecondaryIndex { attr: 1 });
        assert_eq!(report.plan, "secondary-index(attr=1)");
        assert_eq!(report.rows, rows.len() as u64);
        let names: Vec<_> = report.stages.iter().map(|s| s.stage).collect();
        assert_eq!(names, ["index-probe", "scan", "filter"]);
        // The filter stage's row count is the result size; the scan stage
        // decoded at least that many.
        assert_eq!(report.stages[2].rows, rows.len() as u64);
        assert!(report.stages[1].rows >= report.stages[2].rows);
        assert!(report.stages[1].blocks > 0);
    }

    #[test]
    fn warm_rescan_attributes_cache_hits() {
        let rel = stored(false);
        let sel = Selection::all().and(RangePredicate {
            attr: 1,
            lo: 0,
            hi: 63,
        });
        let (_, cold) = rel.explain_select("q".to_owned(), &sel).unwrap();
        let (_, warm) = rel.explain_select("q".to_owned(), &sel).unwrap();
        assert_eq!(cold.plan, "full-scan");
        // Second scan of the same blocks is served from cache.
        let warm_scan = &warm.stages[1];
        assert!(
            warm_scan.cache_hits >= warm_scan.blocks,
            "warm scan should hit cache: {warm_scan:?}"
        );
        let _ = cold;
    }

    #[test]
    fn explain_join_matches_equijoin() {
        let rel = stored(true);
        let (expected, _, _) = crate::join::equijoin(&rel, 1, &rel, 1).unwrap();
        let (mut rows, report) = explain_equijoin("j".to_owned(), &rel, 1, &rel, 1).unwrap();
        let mut expected = expected;
        rows.sort_unstable();
        expected.sort_unstable();
        assert_eq!(rows, expected);
        assert_eq!(report.plan, "index-nested-loop");
        let names: Vec<_> = report.stages.iter().map(|s| s.stage).collect();
        assert_eq!(names, ["scan-outer", "index-probe", "scan-inner", "join"]);
        assert_eq!(report.rows, rows.len() as u64);
    }

    #[test]
    fn explain_aggregate_appends_stage() {
        let rel = stored(false);
        let sel = Selection::all().and(RangePredicate {
            attr: 1,
            lo: 0,
            hi: 31,
        });
        let (expected, _) = rel.aggregate(Aggregate::Sum { attr: 1 }, &sel).unwrap();
        let (value, report) = rel
            .explain_aggregate("agg".to_owned(), Aggregate::Sum { attr: 1 }, &sel)
            .unwrap();
        assert_eq!(value, expected);
        assert_eq!(report.stages.last().unwrap().stage, "aggregate");
        assert_eq!(report.rows, 1);
    }

    #[test]
    fn report_renders_pinned_table_shape() {
        let report = ExplainReport {
            query: "select t where 1 <= b <= 2".to_owned(),
            plan: "full-scan".to_owned(),
            stages: vec![
                StageReport {
                    stage: "scan",
                    rows: 100,
                    blocks: 4,
                    cache_hits: 2,
                    elapsed: Duration::from_micros(1234),
                },
                StageReport {
                    stage: "filter",
                    rows: 10,
                    blocks: 0,
                    cache_hits: 0,
                    elapsed: Duration::from_nanos(900),
                },
            ],
            rows: 10,
        };
        let text = report.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "EXPLAIN ANALYZE: select t where 1 <= b <= 2");
        assert_eq!(lines[1], "plan: full-scan");
        assert_eq!(
            lines[2],
            "stage         |       rows |   blocks | cache_hits |    elapsed"
        );
        assert!(lines[3].chars().all(|c| c == '-' || c == '+'));
        assert_eq!(
            lines[4],
            "scan          |        100 |        4 |          2 |      1.2ms"
        );
        assert_eq!(
            lines[5],
            "filter        |         10 |        0 |          0 |      900ns"
        );
        assert_eq!(
            lines[6],
            "total         |         10 |        4 |          2 |      1.2ms"
        );
    }

    #[test]
    fn elapsed_formatting_units() {
        assert_eq!(format_elapsed(Duration::from_nanos(845)), "845ns");
        assert_eq!(format_elapsed(Duration::from_nanos(12_340)), "12.3µs");
        assert_eq!(format_elapsed(Duration::from_micros(4_500)), "4.5ms");
        assert_eq!(format_elapsed(Duration::from_millis(1_200)), "1.20s");
    }
}
