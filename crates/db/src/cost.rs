//! Query cost accounting — the measurable terms of Eq. 5.7/5.8.
//!
//! `C = I + N·(t₁ + t₂)`: the tracker splits physical reads into the index
//! phase (`I`) and the data phase (`N·t₁`), and reports the simulated clock
//! time charged along the way (I/O plus any per-block CPU cost).

use avq_storage::{BlockDevice, SimClock};
use std::sync::Arc;

/// The cost of one executed query.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryCost {
    /// Physical block reads during index traversal (the paper's `I`, in
    /// blocks).
    pub index_reads: u64,
    /// Physical data-block reads (equals [`Self::data_blocks`] when caches
    /// are cold).
    pub data_reads: u64,
    /// Logical data blocks accessed — the paper's `N`. Independent of
    /// buffer-pool state.
    pub data_blocks: u64,
    /// Simulated milliseconds spent in the index phase.
    pub index_ms: f64,
    /// Simulated milliseconds spent in the data phase (I/O + per-block CPU).
    pub data_ms: f64,
    /// Tuples decoded and examined.
    pub tuples_scanned: usize,
    /// Tuples matching the predicate.
    pub tuples_matched: usize,
}

impl QueryCost {
    /// Total simulated milliseconds (the paper's `C`).
    pub fn total_ms(&self) -> f64 {
        self.index_ms + self.data_ms
    }

    /// Total physical reads.
    pub fn total_reads(&self) -> u64 {
        self.index_reads + self.data_reads
    }
}

/// Phase-delimited cost measurement over a device + clock.
pub(crate) struct CostTracker<'a> {
    device: &'a Arc<BlockDevice>,
    clock: &'a Arc<SimClock>,
    reads_mark: u64,
    ms_mark: f64,
    pub cost: QueryCost,
}

impl<'a> CostTracker<'a> {
    pub fn new(device: &'a Arc<BlockDevice>) -> Self {
        let clock = device.clock();
        CostTracker {
            device,
            clock,
            reads_mark: device.io_stats().reads,
            ms_mark: clock.now_ms(),
            cost: QueryCost::default(),
        }
    }

    fn take_delta(&mut self) -> (u64, f64) {
        let reads = self.device.io_stats().reads;
        let ms = self.clock.now_ms();
        let d = (reads - self.reads_mark, ms - self.ms_mark);
        self.reads_mark = reads;
        self.ms_mark = ms;
        d
    }

    /// Ends the index phase, attributing the delta to `I`.
    pub fn end_index_phase(&mut self) {
        let (reads, ms) = self.take_delta();
        self.cost.index_reads += reads;
        self.cost.index_ms += ms;
    }

    /// Ends the data phase, attributing the delta to `N`.
    pub fn end_data_phase(&mut self) {
        let (reads, ms) = self.take_delta();
        self.cost.data_reads += reads;
        self.cost.data_ms += ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avq_storage::DiskProfile;

    #[test]
    fn phases_split_reads_and_time() {
        let device = BlockDevice::new(64, DiskProfile::paper_fixed());
        let a = device.allocate().unwrap();
        let b = device.allocate().unwrap();
        device.write(a, b"a").unwrap();
        device.write(b, b"b").unwrap();

        let mut t = CostTracker::new(&device);
        device.read(a).unwrap();
        t.end_index_phase();
        device.read(b).unwrap();
        device.read(a).unwrap();
        t.end_data_phase();

        assert_eq!(t.cost.index_reads, 1);
        assert_eq!(t.cost.data_reads, 2);
        assert!((t.cost.index_ms - 30.0).abs() < 1e-9);
        assert!((t.cost.data_ms - 60.0).abs() < 1e-9);
        assert!((t.cost.total_ms() - 90.0).abs() < 1e-9);
        assert_eq!(t.cost.total_reads(), 3);
    }

    #[test]
    fn writes_do_not_count_as_reads() {
        let device = BlockDevice::new(64, DiskProfile::paper_fixed());
        let a = device.allocate().unwrap();
        let mut t = CostTracker::new(&device);
        device.write(a, b"x").unwrap();
        t.end_data_phase();
        assert_eq!(t.cost.data_reads, 0);
        // ...but their time is still charged to the phase.
        assert!((t.cost.data_ms - 30.0).abs() < 1e-9);
    }
}
