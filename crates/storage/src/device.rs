//! The simulated block device.
//!
//! An array of fixed-size blocks with allocate/free/read/write, a
//! [`DiskProfile`] that charges every physical transfer to a shared
//! [`SimClock`], and counters for the `N` (blocks accessed) measurements of
//! §5.3.3. The device is thread-safe; clones of the surrounding `Arc` share
//! blocks, clock, and counters.

use crate::clock::SimClock;
use crate::error::{BlockId, StorageError};
use crate::fault::FaultPlan;
use crate::profile::DiskProfile;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::RwLock;

/// Running I/O counters for a device.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Number of physical block reads.
    pub reads: u64,
    /// Number of physical block writes.
    pub writes: u64,
}

impl IoStats {
    /// Total physical transfers.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

#[derive(Debug)]
struct Slot {
    data: Option<Vec<u8>>,
}

/// A simulated disk of fixed-size blocks.
#[derive(Debug)]
pub struct BlockDevice {
    block_size: usize,
    profile: DiskProfile,
    clock: Arc<SimClock>,
    slots: RwLock<Vec<Slot>>,
    free_list: RwLock<Vec<BlockId>>,
    reads: AtomicU64,
    writes: AtomicU64,
    faults: RwLock<Option<Arc<FaultPlan>>>,
}

impl BlockDevice {
    /// Creates a device with its own clock.
    pub fn new(block_size: usize, profile: DiskProfile) -> Arc<Self> {
        Self::with_clock(block_size, profile, Arc::new(SimClock::new()))
    }

    /// Creates a device charging I/O to an existing clock.
    pub fn with_clock(block_size: usize, profile: DiskProfile, clock: Arc<SimClock>) -> Arc<Self> {
        assert!(block_size > 0, "block size must be positive");
        Arc::new(BlockDevice {
            block_size,
            profile,
            clock,
            slots: RwLock::new(Vec::new()),
            free_list: RwLock::new(Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            faults: RwLock::new(None),
        })
    }

    /// Installs a fault plan; every later read/write consults it. Replaces
    /// any previous plan.
    pub fn set_fault_plan(&self, plan: FaultPlan) -> Arc<FaultPlan> {
        let plan = Arc::new(plan);
        *self.faults.write().expect("device lock poisoned") = Some(plan.clone());
        plan
    }

    /// Removes the installed fault plan, if any.
    pub fn clear_fault_plan(&self) {
        *self.faults.write().expect("device lock poisoned") = None;
    }

    /// The currently installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.read().expect("device lock poisoned").clone()
    }

    /// The device's block size in bytes.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The device's cost model.
    #[inline]
    pub fn profile(&self) -> &DiskProfile {
        &self.profile
    }

    /// The clock this device charges to.
    #[inline]
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    /// Allocates a fresh (zero-length) block and returns its id. Allocation
    /// itself is free: the cost model charges transfers, not bookkeeping.
    pub fn allocate(&self) -> Result<BlockId, StorageError> {
        if let Some(id) = self.free_list.write().expect("device lock poisoned").pop() {
            self.slots.write().expect("device lock poisoned")[id as usize].data = Some(Vec::new());
            return Ok(id);
        }
        let mut slots = self.slots.write().expect("device lock poisoned");
        let id = slots.len();
        if id > u32::MAX as usize {
            return Err(StorageError::OutOfBlocks);
        }
        slots.push(Slot {
            data: Some(Vec::new()),
        });
        Ok(id as BlockId)
    }

    /// Frees a block for reuse.
    pub fn free(&self, id: BlockId) -> Result<(), StorageError> {
        let mut slots = self.slots.write().expect("device lock poisoned");
        let slot = slots
            .get_mut(id as usize)
            .ok_or(StorageError::NoSuchBlock { id })?;
        if slot.data.is_none() {
            return Err(StorageError::NoSuchBlock { id });
        }
        slot.data = None;
        drop(slots);
        self.free_list
            .write()
            .expect("device lock poisoned")
            .push(id);
        Ok(())
    }

    /// Reads a block, charging one block transfer. When a fault plan is
    /// installed the attempt is still charged (the arm moved) before the
    /// plan gets to fail the read or damage the returned bytes.
    pub fn read(&self, id: BlockId) -> Result<Vec<u8>, StorageError> {
        let slots = self.slots.read().expect("device lock poisoned");
        let slot = slots
            .get(id as usize)
            .ok_or(StorageError::NoSuchBlock { id })?;
        let mut data = slot
            .data
            .as_ref()
            .ok_or(StorageError::NoSuchBlock { id })?
            .clone();
        drop(slots);
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.clock
            .advance_ms(self.profile.block_time_ms(self.block_size));
        if let Some(plan) = self.fault_plan() {
            plan.on_read(id, &mut data)?;
        }
        Ok(data)
    }

    /// Writes a block, charging one block transfer. The payload may be
    /// shorter than the block size (blocks store their used prefix); longer
    /// payloads are rejected.
    pub fn write(&self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        if data.len() > self.block_size {
            return Err(StorageError::BlockTooLarge {
                got: data.len(),
                block_size: self.block_size,
            });
        }
        // A torn write truncates the payload; a write error aborts before
        // the slot is touched (and charges nothing, like other rejects).
        let payload = match self.fault_plan() {
            Some(plan) => {
                let mut copy = data.to_vec();
                plan.on_write(id, &mut copy)?;
                Some(copy)
            }
            None => None,
        };
        let mut slots = self.slots.write().expect("device lock poisoned");
        let slot = slots
            .get_mut(id as usize)
            .ok_or(StorageError::NoSuchBlock { id })?;
        let buf = slot.data.as_mut().ok_or(StorageError::NoSuchBlock { id })?;
        buf.clear();
        buf.extend_from_slice(payload.as_deref().unwrap_or(data));
        drop(slots);
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.clock
            .advance_ms(self.profile.block_time_ms(self.block_size));
        Ok(())
    }

    /// Number of live (allocated, un-freed) blocks.
    pub fn live_blocks(&self) -> usize {
        self.slots
            .read()
            .expect("device lock poisoned")
            .iter()
            .filter(|s| s.data.is_some())
            .count()
    }

    /// Snapshot of the I/O counters.
    pub fn io_stats(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Resets the I/O counters (the clock is reset separately).
    pub fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Arc<BlockDevice> {
        BlockDevice::new(64, DiskProfile::paper_fixed())
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let d = device();
        let id = d.allocate().unwrap();
        d.write(id, b"hello").unwrap();
        assert_eq!(d.read(id).unwrap(), b"hello");
    }

    #[test]
    fn io_charges_clock_and_counters() {
        let d = device();
        let id = d.allocate().unwrap();
        d.write(id, b"x").unwrap();
        let _ = d.read(id).unwrap();
        let _ = d.read(id).unwrap();
        let st = d.io_stats();
        assert_eq!(st.reads, 2);
        assert_eq!(st.writes, 1);
        assert_eq!(st.total(), 3);
        assert!((d.clock().now_ms() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_write_rejected() {
        let d = device();
        let id = d.allocate().unwrap();
        let err = d.write(id, &[0u8; 65]).unwrap_err();
        assert_eq!(
            err,
            StorageError::BlockTooLarge {
                got: 65,
                block_size: 64
            }
        );
        // Failed writes charge nothing.
        assert_eq!(d.io_stats().writes, 0);
    }

    #[test]
    fn exact_block_size_write_allowed() {
        let d = device();
        let id = d.allocate().unwrap();
        d.write(id, &[7u8; 64]).unwrap();
        assert_eq!(d.read(id).unwrap(), vec![7u8; 64]);
    }

    #[test]
    fn free_and_reuse() {
        let d = device();
        let a = d.allocate().unwrap();
        let b = d.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(d.live_blocks(), 2);
        d.free(a).unwrap();
        assert_eq!(d.live_blocks(), 1);
        assert!(d.read(a).is_err());
        assert!(d.free(a).is_err(), "double free rejected");
        let c = d.allocate().unwrap();
        assert_eq!(c, a, "freed id is reused");
        assert_eq!(d.read(c).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn unknown_block_rejected() {
        let d = device();
        assert_eq!(
            d.read(99).unwrap_err(),
            StorageError::NoSuchBlock { id: 99 }
        );
        assert!(d.write(99, b"x").is_err());
        assert!(d.free(99).is_err());
    }

    #[test]
    fn reset_stats_keeps_data() {
        let d = device();
        let id = d.allocate().unwrap();
        d.write(id, b"keep").unwrap();
        d.reset_stats();
        assert_eq!(d.io_stats(), IoStats::default());
        assert_eq!(d.read(id).unwrap(), b"keep");
    }

    #[test]
    fn shared_clock_across_devices() {
        let clock = Arc::new(SimClock::new());
        let d1 = BlockDevice::with_clock(64, DiskProfile::paper_fixed(), clock.clone());
        let d2 = BlockDevice::with_clock(64, DiskProfile::paper_fixed(), clock.clone());
        let a = d1.allocate().unwrap();
        let b = d2.allocate().unwrap();
        d1.write(a, b"1").unwrap();
        d2.write(b, b"2").unwrap();
        assert!((clock.now_ms() - 60.0).abs() < 1e-9);
    }
}
