//! Allocation accounting for the *governed* decode path with governance
//! disabled: `decode_into_scratch_governed` under an unlimited
//! [`avq_obs::GovCtx`] must cost the same one allocation per tuple as the
//! plain streaming path — the disabled context is one branch per block,
//! never a per-tuple allocation. Counting-allocator twin of
//! `alloc_decode.rs`; the only test in this binary so no concurrent test
//! thread can perturb the counter.

use avq_codec::{compress, CodecOptions, DecodeScratch};
use avq_obs::{GovCtx, TraceCtx};
use avq_schema::{Domain, Relation, Schema, Tuple};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_governance_decode_allocates_one_vec_per_tuple() {
    const N: u64 = 100_000;
    let schema = Schema::from_pairs(vec![
        ("a", Domain::uint(64).unwrap()),
        ("b", Domain::uint(256).unwrap()),
        ("c", Domain::uint(4096).unwrap()),
        ("d", Domain::uint(65536).unwrap()),
    ])
    .unwrap();
    let tuples: Vec<Tuple> = (0..N)
        .map(|i| {
            Tuple::from([
                (i / 4096) % 64,
                (i * 7) % 256,
                (i * 31) % 4096,
                (i * 131) % 65536,
            ])
        })
        .collect();
    let rel = Relation::from_tuples(schema, tuples).unwrap();
    let coded = compress(&rel, CodecOptions::default()).unwrap();
    assert_eq!(coded.tuple_count(), N as usize);
    assert!(coded.block_count() > 1);

    let codec = coded.codec();
    let ctx = TraceCtx::disabled();
    let gov = GovCtx::unlimited();
    let mut scratch = DecodeScratch::new();
    let mut out: Vec<Tuple> = Vec::with_capacity(N as usize);

    // Warm the scratch so steady-state capacity is reached before counting.
    codec
        .decode_into_scratch_governed(coded.block(0), &mut out, &mut scratch, &ctx, &gov)
        .unwrap();
    out.clear();

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..coded.block_count() {
        codec
            .decode_into_scratch_governed(coded.block(i), &mut out, &mut scratch, &ctx, &gov)
            .unwrap();
    }
    let during = ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(out.len(), N as usize);
    // Identical budget to the ungoverned twin: one digit-vector per tuple
    // plus bounded scratch growth. A regression here means the governance
    // plumbing started allocating on the hot path.
    let budget = N + 64;
    assert!(
        during <= budget,
        "governed decode allocated {during} times for {N} tuples (budget {budget})"
    );
    assert!(during >= N, "expected at least one allocation per tuple");
}
