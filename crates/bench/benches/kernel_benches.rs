//! Criterion micro-benchmarks for the decode kernels: scalar vs SWAR
//! per-block decode across coding modes, fixed-chunk vs work-stealing
//! parallel decompression at 1/2/4/8 threads, and a counting-allocator
//! check that the steady-state SWAR decode path performs at most one heap
//! allocation per decoded tuple (the tuple's own digit storage).

use avq_codec::{
    compress, decode_blocks_chunked, decode_blocks_parallel, BlockCodec, CodecOptions, CodingMode,
    DecodeKernel, DecodeScratch, RepChoice,
};
use avq_schema::{Schema, Tuple};
use avq_workload::SyntheticSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Heap allocations observed process-wide, for the ≤ 1 alloc/tuple check.
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// [`System`] with an allocation counter in front.
struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn sorted_tuples(n: usize) -> (Arc<Schema>, Vec<Tuple>) {
    let spec = SyntheticSpec::section_5_2(n);
    let schema = spec.schema();
    let mut tuples = spec.generate().into_tuples();
    tuples.sort_unstable();
    tuples.dedup();
    (schema, tuples)
}

/// Steady-state allocation budget: with a warmed scratch and a reused
/// output vector, decoding a block through the SWAR kernel must allocate
/// at most one heap block per tuple (each `Tuple`'s digit storage) — the
/// staging buffers are reused, never reallocated.
fn assert_swar_alloc_budget() {
    let (schema, tuples) = sorted_tuples(4096);
    let run = &tuples[..400.min(tuples.len())];
    for mode in CodingMode::ALL {
        let codec = BlockCodec::with_options(schema.clone(), mode, RepChoice::Median)
            .with_kernel(DecodeKernel::Swar);
        let coded = codec.encode(run).unwrap();
        let mut out: Vec<Tuple> = Vec::new();
        let mut scratch = DecodeScratch::new();
        // Warm every buffer (scratch staging, output capacity).
        for _ in 0..3 {
            out.clear();
            codec
                .decode_into_scratch(&coded, &mut out, &mut scratch)
                .unwrap();
        }
        const ROUNDS: u64 = 16;
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..ROUNDS {
            out.clear();
            codec
                .decode_into_scratch(&coded, &mut out, &mut scratch)
                .unwrap();
            black_box(&out);
        }
        let allocs = ALLOCS.load(Ordering::Relaxed) - before;
        let per_tuple = allocs as f64 / (ROUNDS * run.len() as u64) as f64;
        println!("swar {mode} steady-state: {per_tuple:.3} allocs/tuple ({allocs} total)");
        assert!(
            per_tuple <= 1.0,
            "SWAR decode ({mode}) allocated {per_tuple:.3} heap blocks per tuple (> 1)"
        );
    }
}

/// Per-block decode under each kernel, for every coding mode.
fn bench_kernel_decode(c: &mut Criterion) {
    assert_swar_alloc_budget();

    let (schema, tuples) = sorted_tuples(4096);
    let run = &tuples[..400.min(tuples.len())];

    let mut g = c.benchmark_group("kernel_decode");
    g.throughput(Throughput::Elements(run.len() as u64));
    for mode in CodingMode::ALL {
        for kernel in DecodeKernel::ALL {
            let codec = BlockCodec::with_options(schema.clone(), mode, RepChoice::Median)
                .with_kernel(kernel);
            let coded = codec.encode(run).unwrap();
            g.bench_with_input(BenchmarkId::new(kernel, mode), &codec, |b, codec| {
                let mut out = Vec::new();
                let mut scratch = DecodeScratch::new();
                b.iter(|| {
                    out.clear();
                    codec
                        .decode_into_scratch(black_box(&coded), &mut out, &mut scratch)
                        .unwrap();
                    black_box(&out);
                })
            });
        }
    }
    g.finish();
}

/// Whole-relation parallel decode: fixed-chunk striping vs. the
/// work-stealing block queue at 1/2/4/8 threads.
fn bench_parallel_strategies(c: &mut Criterion) {
    let spec = SyntheticSpec::section_5_2(20_000);
    let relation = spec.generate();
    let coded = compress(&relation, CodecOptions::default()).unwrap();
    let codec = coded.codec();

    let mut g = c.benchmark_group("parallel_decode");
    g.throughput(Throughput::Elements(coded.tuple_count() as u64));
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("chunked", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(
                        decode_blocks_chunked(&codec, black_box(coded.blocks()), threads).unwrap(),
                    )
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("stealing", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(
                        decode_blocks_parallel(&codec, black_box(coded.blocks()), threads).unwrap(),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_kernel_decode, bench_parallel_strategies);
criterion_main!(benches);
