//! Experiment E7 — Fig. 5.8: `N`, the number of blocks accessed when
//! executing `σ_{a ≤ A_k ≤ b}(R)` for each attribute `k`, on the uncoded
//! and the AVQ-coded copies of the §5.2 relation.
//!
//! Usage: `cargo run --release -p avq-bench --bin exp_blocks_accessed [n]`
//! (default n = 100000, the paper's size)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avq_bench::harness;
use avq_bench::report::Table;
use avq_codec::CodingMode;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let (spec, relation) = harness::timing_relation(n);
    eprintln!("loading uncoded database ({n} tuples)...");
    let uncoded = harness::load_database(&relation, CodingMode::FieldWise, 0.0);
    eprintln!("loading AVQ database...");
    let coded = harness::load_database(&relation, CodingMode::AvqChained, 0.0);

    let total_uncoded = uncoded.relation(harness::REL).unwrap().block_count();
    let total_coded = coded.relation(harness::REL).unwrap().block_count();
    println!(
        "data blocks: {} uncoded, {} AVQ-coded ({:.1}% reduction)\n",
        total_uncoded,
        total_coded,
        100.0 * (1.0 - total_coded as f64 / total_uncoded as f64)
    );

    eprintln!("running the per-attribute query suite...");
    let nu = harness::blocks_accessed(&uncoded, &spec);
    let nc = harness::blocks_accessed(&coded, &spec);

    let mut table = Table::new(["Attribute No.", "No coding (N)", "AVQ (N)", "ratio"]);
    let mut sum_u = 0u64;
    let mut sum_c = 0u64;
    for (k, (&(u, _), &(c, _))) in nu.iter().zip(&nc).enumerate() {
        sum_u += u;
        sum_c += c;
        table.row([
            format!("{}", k + 1),
            u.to_string(),
            c.to_string(),
            if c > 0 {
                format!("{:.2}", u as f64 / c as f64)
            } else {
                "-".into()
            },
        ]);
    }
    let avg_u = sum_u as f64 / nu.len() as f64;
    let avg_c = sum_c as f64 / nc.len() as f64;
    table.row([
        "average".to_string(),
        format!("{avg_u:.1}"),
        format!("{avg_c:.1}"),
        format!("{:.2}", avg_u / avg_c),
    ]);
    table.print();

    println!(
        "\nAVQ reduces average blocks accessed by {:.1}% (paper: 100(1-55/153.6) = 64.2%)",
        100.0 * (1.0 - avg_c / avg_u)
    );
    println!("paper shape: non-key attributes touch ~every data block (189 vs 64);");
    println!("the clustering attribute (k=1) touches a contiguous fraction; the");
    println!("primary-key attribute (k=16) touches exactly one block in both stores.");
}
