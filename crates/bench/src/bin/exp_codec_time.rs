//! Experiment E6 — Fig. 5.9 rows 1–2: average block coding and decoding
//! time on the §5.2 relation (16 attributes, 38-byte tuples, 10⁵ tuples,
//! 8192-byte blocks), 100 repetitions each, data resident in memory.
//!
//! Host times are reported raw and scaled to the paper's three machines via
//! the calibrated `cpu_scale` factors (HP 9000/735 ≡ 1).
//!
//! Usage: `cargo run --release -p avq-bench --bin exp_codec_time [n] [reps]`

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avq_bench::harness;
use avq_bench::measure::avg_ms;
use avq_bench::report::Table;
use avq_codec::{BlockCodec, BlockPacker, CodingMode, RepChoice};
use avq_storage::MachineProfile;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    let (_, relation) = harness::timing_relation(n);
    let schema = relation.schema().clone();
    let mut tuples = relation.into_tuples();
    tuples.sort_unstable();

    println!(
        "relation: {n} tuples × {} bytes, 8192-byte blocks, {reps} reps\n",
        schema.tuple_bytes()
    );

    // Host-measured per-block times for each of the three techniques.
    let mut host = Table::new([
        "technique",
        "blocks",
        "code ms/block (host)",
        "decode ms/block (host)",
    ]);
    let mut avq_decode_host = 0.0f64;
    for mode in CodingMode::ALL {
        let codec = BlockCodec::with_options(schema.clone(), mode, RepChoice::Median);
        let packer = BlockPacker::new(codec.clone(), 8192);
        let ranges = packer.partition(&tuples).unwrap();
        let nblocks = ranges.len();

        // Encode all blocks, repeatedly; report per-block average.
        let ranges_enc = ranges.clone();
        let encode_ms = avg_ms(2, reps, || {
            for r in &ranges_enc {
                let coded = codec.encode(&tuples[r.clone()]).unwrap();
                std::hint::black_box(&coded);
            }
        }) / nblocks as f64;

        let blocks: Vec<Vec<u8>> = ranges
            .iter()
            .map(|r| codec.encode(&tuples[r.clone()]).unwrap())
            .collect();
        let mut scratch = Vec::new();
        let decode_ms = avg_ms(2, reps, || {
            for b in &blocks {
                scratch.clear();
                codec.decode_into(b, &mut scratch).unwrap();
                std::hint::black_box(&scratch);
            }
        }) / nblocks as f64;

        if mode == CodingMode::AvqChained {
            avq_decode_host = decode_ms;
        }
        host.row([
            mode.to_string(),
            nblocks.to_string(),
            format!("{encode_ms:.4}"),
            format!("{decode_ms:.4}"),
        ]);
    }
    host.print();

    // The paper's published per-machine values, with the scale factors the
    // response-time experiment uses (HP 9000/735 ≡ 1).
    println!("\nFig 5.9 rows 1-2 — the paper's machines (used by exp_response_time):");
    let mut scaled = Table::new([
        "machine",
        "cpu scale",
        "code ms (paper)",
        "decode ms (paper t2)",
        "extract ms (paper t3)",
    ]);
    for m in MachineProfile::paper_machines() {
        scaled.row([
            m.name.to_string(),
            format!("{:.2}", m.cpu_scale),
            format!("{:.2}", m.paper_encode_ms),
            format!("{:.2}", m.paper_decode_ms),
            format!("{:.2}", m.paper_extract_ms),
        ]);
    }
    scaled.print();
    println!(
        "\nhost AVQ decode: {avq_decode_host:.4} ms/block (the 1994 HP 9000/735 took 13.85 ms —\n\
         a ~{:.0}× hardware speedup, which is the paper's own point: CPU outpaces disk)",
        13.85 / avq_decode_host
    );
}
