//! AVQ-L008 — wrapper-family drift.
//!
//! A *family* is a plain fn plus its `_traced` / `_governed` siblings in
//! the same file and impl block. The rule proves four properties:
//! signatures agree modulo trailing ctx parameters, exactly one member
//! carries the implementation (the rest delegate to a family member),
//! no suffixed member is an orphan, and functions reachable from
//! governed roots call the governed variant of any fn that has one — so
//! governance actually propagates down the decode path.

use std::collections::BTreeMap;

use super::Finding;
use crate::callgraph::{reachable, CallGraph};
use crate::symbols::{FnDef, Symbols};
use crate::workspace::Workspace;

/// Wrapper-family suffixes, in ctx-parameter order.
const SUFFIXES: &[&str] = &["_traced", "_governed"];

/// Context parameter types that wrappers thread through.
const CTX_TYPES: &[&str] = &["TraceCtx", "GovCtx"];

/// The base name if `name` carries a family suffix.
fn base_of(name: &str) -> Option<&str> {
    SUFFIXES
        .iter()
        .find_map(|s| name.strip_suffix(s))
        .filter(|b| !b.is_empty())
}

/// Is this parameter a threaded context (by type text)?
fn is_ctx_param(ty: &str) -> bool {
    CTX_TYPES.iter().any(|c| ty.contains(c))
}

/// Key identifying the namespace a fn lives in: (file, impl type).
fn ns_key(f: &FnDef) -> (usize, String) {
    (f.file, f.impl_type.clone().unwrap_or_default())
}

/// Does fn `fi` contain a call site naming another member of `family`?
fn delegates(cg: &CallGraph, fi: usize, family: &[usize], syms: &Symbols) -> bool {
    let self_name = &syms.fns[fi].name;
    cg.sites_of(fi).any(|s| {
        s.name != *self_name
            && family
                .iter()
                .any(|&m| m != fi && syms.fns[m].name == s.name)
    })
}

/// Run AVQ-L008 over the workspace.
pub fn check(ws: &Workspace, syms: &Symbols, cg: &CallGraph, out: &mut Vec<Finding>) {
    let _ = ws;
    // Group fns into families: (file, impl, base) → member indices.
    let mut families: BTreeMap<(usize, String, String), Vec<usize>> = BTreeMap::new();
    for (fi, f) in syms.fns.iter().enumerate() {
        let base = base_of(&f.name).unwrap_or(&f.name).to_string();
        let (file, imp) = ns_key(f);
        families.entry((file, imp, base)).or_default().push(fi);
    }

    for ((_, _, base), members) in &families {
        // A family only exists once a suffixed wrapper does; bare fns
        // that merely share a name (trait `from` impls, operator
        // methods) are not families.
        let wrappers: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&m| syms.fns[m].name != *base)
            .collect();
        if wrappers.is_empty() {
            continue;
        }
        let plain = members.iter().copied().find(|&m| syms.fns[m].name == *base);
        let Some(plain) = plain else {
            for &m in &wrappers {
                let f = &syms.fns[m];
                out.push(Finding {
                    file: f.rel.clone(),
                    line: f.line,
                    rule: "AVQ-L008".into(),
                    message: format!(
                        "`{}` has no plain `{}` in the same file/impl — wrapper without a base (orphan)",
                        f.name, base
                    ),
                });
            }
            continue;
        };

        let pf = &syms.fns[plain];
        let plain_core: Vec<_> = pf.params.iter().filter(|p| !is_ctx_param(&p.ty)).collect();

        // (a) signature agreement modulo trailing ctx params.
        for &m in &wrappers {
            let f = &syms.fns[m];
            let core: Vec<_> = f.params.iter().filter(|p| !is_ctx_param(&p.ty)).collect();
            let trailing_ctx = f
                .params
                .iter()
                .skip_while(|p| !is_ctx_param(&p.ty))
                .all(|p| is_ctx_param(&p.ty));
            if f.has_self != pf.has_self
                || core.len() != plain_core.len()
                || core
                    .iter()
                    .zip(&plain_core)
                    .any(|(a, b)| a.name != b.name || a.ty != b.ty)
            {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: f.line,
                    rule: "AVQ-L008".into(),
                    message: format!(
                        "`{}` signature drifts from `{}` (non-ctx parameters must match the plain variant exactly)",
                        f.name, pf.name
                    ),
                });
            } else if !trailing_ctx {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: f.line,
                    rule: "AVQ-L008".into(),
                    message: format!(
                        "`{}`: ctx parameters (TraceCtx/GovCtx) must come after all shared parameters",
                        f.name
                    ),
                });
            }
        }

        // (b) single implementation, everyone else delegates.
        {
            let family: Vec<usize> = std::iter::once(plain)
                .chain(wrappers.iter().copied())
                .collect();
            let impls: Vec<usize> = family
                .iter()
                .copied()
                .filter(|&m| syms.fns[m].body.is_some() && !delegates(cg, m, &family, syms))
                .collect();
            if impls.is_empty() && family.iter().all(|&m| syms.fns[m].body.is_some()) {
                let f = &syms.fns[plain];
                out.push(Finding {
                    file: f.rel.clone(),
                    line: f.line,
                    rule: "AVQ-L008".into(),
                    message: format!(
                        "family `{}`: every member delegates — no implementation found (delegation cycle?)",
                        base
                    ),
                });
            }
            if impls.len() > 1 {
                for &m in &impls {
                    let f = &syms.fns[m];
                    if f.name == *base {
                        continue; // the plain member may carry the impl
                    }
                    out.push(Finding {
                        file: f.rel.clone(),
                        line: f.line,
                        rule: "AVQ-L008".into(),
                        message: format!(
                            "`{}` forks the family body instead of delegating — exactly one member of `{}` may carry the implementation",
                            f.name, base
                        ),
                    });
                }
            }
        }
    }

    // (c) governed discipline: fns reachable from `_governed` roots must
    // call governed variants where one exists.
    let roots: Vec<usize> = syms
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.name.ends_with("_governed"))
        .map(|(i, _)| i)
        .collect();
    let reach = reachable(&cg.edges, &roots);
    for (fi, f) in syms.fns.iter().enumerate() {
        if !reach[fi] {
            continue;
        }
        let caller_base = base_of(&f.name).unwrap_or(&f.name).to_string();
        for site in cg.sites_of(fi) {
            let Some(t) = site.target else { continue };
            let callee = &syms.fns[t];
            if base_of(&callee.name).is_some() {
                continue; // already a suffixed variant
            }
            if callee.name == caller_base {
                continue; // delegation inside the caller's own family
            }
            let gov = format!("{}_governed", callee.name);
            let callee_ns = ns_key(callee);
            let has_gov = syms
                .fns
                .iter()
                .any(|g| g.name == gov && ns_key(g) == callee_ns);
            if has_gov {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: site.line,
                    rule: "AVQ-L008".into(),
                    message: format!(
                        "`{}` is on a governed path but calls plain `{}` — call `{}` so governance propagates",
                        f.name, callee.name, gov
                    ),
                });
            }
        }
    }
}
