//! Parallel bulk compression.
//!
//! Block coding is embarrassingly parallel once the partition is fixed:
//! every block depends only on its own run of tuples. [`compress_parallel`]
//! computes the partition sequentially (it is a cheap scan) and encodes the
//! runs on a scoped thread pool, producing output byte-identical to
//! [`crate::compress`].

use crate::block::BlockCodec;
use crate::compress::{compress_sorted, CodecOptions, CodedRelation};
use crate::error::CodecError;
use crate::packer::BlockPacker;
use avq_schema::{Relation, Schema, Tuple};
use std::sync::Arc;

/// Compresses a relation using up to `threads` worker threads. The result is
/// byte-identical to [`crate::compress`] with the same options.
pub fn compress_parallel(
    relation: &Relation,
    options: CodecOptions,
    threads: usize,
) -> Result<CodedRelation, CodecError> {
    let mut tuples = relation.tuples().to_vec();
    tuples.sort_unstable();
    compress_sorted_parallel(relation.schema().clone(), &tuples, options, threads)
}

/// Parallel variant of [`crate::compress_sorted`].
pub fn compress_sorted_parallel(
    schema: Arc<Schema>,
    tuples: &[Tuple],
    options: CodecOptions,
    threads: usize,
) -> Result<CodedRelation, CodecError> {
    let threads = threads.max(1);
    if threads == 1 || tuples.len() < 4096 {
        return compress_sorted(schema, tuples, options);
    }
    let codec = BlockCodec::with_options(schema.clone(), options.mode, options.rep);
    let packer = BlockPacker::new(codec.clone(), options.block_capacity);
    let ranges = packer.partition(tuples)?;

    let mut blocks: Vec<Result<Vec<u8>, CodecError>> = Vec::with_capacity(ranges.len());
    blocks.resize_with(ranges.len(), || Ok(Vec::new()));

    // Static chunking: contiguous stripes of blocks per worker keep each
    // worker's reads local.
    let per_worker = ranges.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (ranges_chunk, out_chunk) in
            ranges.chunks(per_worker).zip(blocks.chunks_mut(per_worker))
        {
            let codec = codec.clone();
            scope.spawn(move || {
                for (r, out) in ranges_chunk.iter().zip(out_chunk.iter_mut()) {
                    *out = codec.encode(&tuples[r.clone()]);
                }
            });
        }
    });

    let blocks: Vec<Vec<u8>> = blocks.into_iter().collect::<Result<_, _>>()?;
    CodedRelation::from_blocks(schema, options, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compress;
    use crate::mode::CodingMode;
    use avq_schema::Domain;

    fn relation(n: u64) -> Relation {
        let schema = Schema::from_pairs(vec![
            ("a", Domain::uint(64).unwrap()),
            ("b", Domain::uint(256).unwrap()),
            ("c", Domain::uint(4096).unwrap()),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = (0..n)
            .map(|i| Tuple::from([(i * 13) % 64, (i * 7) % 256, (i * 31) % 4096]))
            .collect();
        Relation::from_tuples(schema, tuples).unwrap()
    }

    #[test]
    fn parallel_matches_sequential_bytes() {
        let rel = relation(20_000);
        for mode in CodingMode::ALL {
            let opts = CodecOptions {
                mode,
                block_capacity: 512,
                ..Default::default()
            };
            let seq = compress(&rel, opts).unwrap();
            for threads in [1, 2, 4, 7] {
                let par = compress_parallel(&rel, opts, threads).unwrap();
                assert_eq!(par.block_count(), seq.block_count());
                for i in 0..seq.block_count() {
                    assert_eq!(
                        par.block(i),
                        seq.block(i),
                        "mode {mode}, {threads} threads, block {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn small_input_falls_back_to_sequential() {
        let rel = relation(100);
        let opts = CodecOptions {
            block_capacity: 512,
            ..Default::default()
        };
        let par = compress_parallel(&rel, opts, 8).unwrap();
        let seq = compress(&rel, opts).unwrap();
        assert_eq!(par.blocks(), seq.blocks());
    }

    #[test]
    fn zero_threads_clamped() {
        let rel = relation(500);
        let par = compress_parallel(&rel, CodecOptions::default(), 0).unwrap();
        assert_eq!(par.tuple_count(), 500);
    }

    #[test]
    fn parallel_roundtrip() {
        let rel = relation(30_000);
        let par = compress_parallel(
            &rel,
            CodecOptions {
                block_capacity: 1024,
                ..Default::default()
            },
            4,
        )
        .unwrap();
        let back = par.decompress().unwrap();
        let mut expect = rel.tuples().to_vec();
        expect.sort_unstable();
        assert_eq!(back.tuples(), &expect[..]);
    }
}
