//! # avq — lossless relational database compression by Augmented Vector Quantization
//!
//! A from-scratch Rust reproduction of **Ng & Ravishankar, "Relational
//! Database Compression Using Augmented Vector Quantization" (ICDE 1995)**:
//! lossless, block-local compression of relational tables that preserves
//! standard database operations.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`num`] — bignums and the mixed-radix φ mapping (Eq. 2.2–2.5);
//! * [`schema`] — domains, attribute encoding (§3.1), tuples, relations;
//! * [`codec`] — the AVQ block coder itself (§3.2–3.4): tuple re-ordering,
//!   block packing, differential + run-length coding, block updates;
//! * [`storage`] — a simulated 1994 disk with cost model and buffer pool;
//! * [`index`] — B⁺-trees (whole-tuple primary keys) and Fig. 4.5 buckets;
//! * [`db`] — the database layer: bulk load, range selection with
//!   `C = I + N(t₁ + t₂)` cost accounting, insert/delete/update,
//!   conjunctive selections, aggregation, and equijoins;
//! * [`mod@file`] — the `.avq` on-disk container (schema + blocks + CRC-32);
//! * [`wal`] — the write-ahead log and checkpointed directory layout that
//!   make mutations durable (`DurableDatabase` in [`db`] sits on top);
//! * [`workload`] — the paper's employee example and §5 synthetic sweeps.
//!
//! ## Quickstart
//!
//! ```
//! use avq::prelude::*;
//!
//! // The paper's 50-tuple employee relation (Fig. 2.2).
//! let relation = avq::workload::employee_relation();
//!
//! // Compress with the paper's configuration (chained AVQ, median
//! // representative, 8 KiB blocks).
//! let coded = compress(&relation, CodecOptions::default()).unwrap();
//! assert_eq!(coded.decompress().unwrap().len(), 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use avq_codec as codec;
pub use avq_db as db;
pub use avq_file as file;
pub use avq_index as index;
pub use avq_num as num;
pub use avq_schema as schema;
pub use avq_storage as storage;
pub use avq_wal as wal;
pub use avq_workload as workload;

/// The most commonly used types, one `use` away.
pub mod prelude {
    pub use avq_codec::{
        compress, BlockCodec, BlockPacker, CodecOptions, CodedRelation, CodingMode, RepChoice,
    };
    pub use avq_db::{
        equijoin, Aggregate, AggregateValue, Database, DbConfig, DurableDatabase, QueryCost,
        RangePredicate, Selection, SyncPolicy,
    };
    pub use avq_num::{BigUnsigned, MixedRadix};
    pub use avq_schema::{Attribute, Domain, Relation, Schema, Tuple, Value};
    pub use avq_storage::{BlockDevice, BufferPool, DiskProfile, MachineProfile, SimClock};
}
