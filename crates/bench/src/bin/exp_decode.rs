//! Experiment E12 — decode-path performance: scalar vs SWAR decode
//! kernels, streaming per-block decode with a reused scratch vs. a fresh
//! scratch per block, whole-relation parallel decompression (fixed-chunk
//! striping vs. the work-stealing block queue), and the cold-vs-warm full
//! scan through the decoded-block cache (a warm re-scan performs zero
//! decode calls, asserted via the cache's hit/miss counters).
//!
//! Results are printed as tables and recorded as JSON in
//! `results/BENCH_decode.json` (override the path with the second
//! argument).
//!
//! With `AVQ_PERF_SMOKE=1` the run additionally acts as a CI guard: it
//! exits nonzero if the sequential SWAR kernel is slower than the scalar
//! reference (with 5% slack for timer noise).
//!
//! Usage: `cargo run --release -p avq-bench --bin exp_decode [n] [json_path]`

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avq_bench::harness;
use avq_bench::measure::avg_ms;
use avq_bench::report::Table;
use avq_codec::{
    compress, decode_blocks_chunked, decode_blocks_parallel, CodecOptions, DecodeKernel,
    DecodeScratch,
};
use avq_db::{Database, DbConfig};
use avq_schema::Tuple;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let json_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "results/BENCH_decode.json".to_owned());
    let reps = if n >= 50_000 { 20 } else { 50 };
    let obs_before = avq_obs::global().snapshot();

    let (_, relation) = harness::timing_relation(n);
    let coded = compress(&relation, CodecOptions::default()).unwrap();
    let blocks = coded.block_count();
    println!(
        "relation: {n} tuples × {} bytes -> {blocks} coded blocks, {reps} reps\n",
        relation.schema().tuple_bytes()
    );

    // Sequential per-block decode through each kernel, one reused scratch
    // (the zero-allocation path). The scalar kernel is the reference; the
    // SWAR kernel must beat it.
    let mut out: Vec<Tuple> = Vec::new();
    let mut scratch = DecodeScratch::new();
    let mut kernel_ms = [0.0f64; 2];
    let mut t = Table::new(["kernel", "total ms", "ms/block", "speedup"]);
    for kernel in DecodeKernel::ALL {
        let codec = coded.codec().with_kernel(kernel);
        let ms = avg_ms(1, reps, || {
            out.clear();
            for i in 0..blocks {
                codec
                    .decode_into_scratch(coded.block(i), &mut out, &mut scratch)
                    .unwrap();
            }
            std::hint::black_box(&out);
        });
        kernel_ms[kernel.tag() as usize] = ms;
    }
    let scalar_ms = kernel_ms[DecodeKernel::Scalar.tag() as usize];
    let swar_ms = kernel_ms[DecodeKernel::Swar.tag() as usize];
    for kernel in DecodeKernel::ALL {
        let ms = kernel_ms[kernel.tag() as usize];
        t.row([
            kernel.to_string(),
            format!("{ms:.3}"),
            format!("{:.4}", ms / blocks as f64),
            format!("{:.2}", scalar_ms / ms),
        ]);
    }
    t.print();
    println!();

    // Fresh scratch per call vs. the reused scratch (default kernel) —
    // the allocation cost of not reusing the staging buffers.
    let codec = coded.codec();
    let fresh_ms = avg_ms(1, reps, || {
        out.clear();
        for i in 0..blocks {
            codec.decode_into(coded.block(i), &mut out).unwrap();
        }
        std::hint::black_box(&out);
    });
    let reused_ms = avg_ms(1, reps, || {
        out.clear();
        for i in 0..blocks {
            codec
                .decode_into_scratch(coded.block(i), &mut out, &mut scratch)
                .unwrap();
        }
        std::hint::black_box(&out);
    });

    let mut t = Table::new(["decode path", "total ms", "ms/block"]);
    t.row([
        "fresh scratch".to_owned(),
        format!("{fresh_ms:.3}"),
        format!("{:.4}", fresh_ms / blocks as f64),
    ]);
    t.row([
        "reused scratch".to_owned(),
        format!("{reused_ms:.3}"),
        format!("{:.4}", reused_ms / blocks as f64),
    ]);
    t.print();
    println!();

    // Whole-relation decompression: sequential, then fixed-chunk striping
    // vs. the work-stealing block queue at each thread count.
    let seq_ms = avg_ms(1, reps, || {
        std::hint::black_box(coded.decompress().unwrap());
    });
    let thread_counts = [1usize, 2, 4, 8];
    let mut par_chunked = Vec::new();
    let mut par_stealing = Vec::new();
    let mut t = Table::new(["threads", "chunked ms", "stealing ms", "speedup (stealing)"]);
    t.row([
        "seq".to_owned(),
        format!("{seq_ms:.3}"),
        format!("{seq_ms:.3}"),
        "1.00".to_owned(),
    ]);
    for &threads in &thread_counts {
        let chunked_ms = avg_ms(1, reps, || {
            std::hint::black_box(decode_blocks_chunked(&codec, coded.blocks(), threads).unwrap());
        });
        let stealing_ms = avg_ms(1, reps, || {
            std::hint::black_box(decode_blocks_parallel(&codec, coded.blocks(), threads).unwrap());
        });
        t.row([
            threads.to_string(),
            format!("{chunked_ms:.3}"),
            format!("{stealing_ms:.3}"),
            format!("{:.2}", seq_ms / stealing_ms),
        ]);
        par_chunked.push((threads, chunked_ms));
        par_stealing.push((threads, stealing_ms));
    }
    t.print();
    println!();

    // Cold vs. warm full scan through the decoded-block cache.
    let config = DbConfig::default().with_decoded_cache_blocks(blocks.max(1) * 2);
    let mut db = Database::new(config);
    db.create_relation(harness::REL, &relation).unwrap();
    let rel = db.relation(harness::REL).unwrap();

    // Cold scans are made repeatable by dropping all caches before each
    // repetition; warm scans repeat naturally once the cache is populated.
    let cold_ms = avg_ms(1, reps, || {
        db.drop_caches();
        std::hint::black_box(rel.scan_all().unwrap());
    });
    let warm_ms = avg_ms(1, reps, || {
        std::hint::black_box(rel.scan_all().unwrap());
    });

    // Counter contract: one cold scan misses every block; the warm
    // re-scan — measured as the traffic *since* the cold pass, so the
    // cold misses cannot leak into the warm window — hits every block and
    // performs zero decode calls.
    db.drop_caches();
    rel.reset_decoded_stats();
    let cold_scan = rel.scan_all().unwrap();
    let cold_stats = rel.decoded_stats();
    assert_eq!(cold_stats.hits, 0, "cold scan cannot hit the decoded cache");
    assert_eq!(
        cold_stats.misses as usize,
        rel.block_count(),
        "cold scan must decode every block"
    );
    let warm_scan = rel.scan_all().unwrap();
    let warm_stats = rel.decoded_stats().since(&cold_stats);
    assert_eq!(warm_scan, cold_scan);
    assert_eq!(
        warm_stats.hits as usize,
        rel.block_count(),
        "warm re-scan must be served entirely from the decoded cache"
    );
    assert_eq!(
        warm_stats.misses, 0,
        "warm re-scan performs zero decode calls"
    );

    let mut t = Table::new(["scan", "ms", "cache hits", "cache misses"]);
    t.row([
        "cold".to_owned(),
        format!("{cold_ms:.3}"),
        cold_stats.hits.to_string(),
        cold_stats.misses.to_string(),
    ]);
    t.row([
        "warm".to_owned(),
        format!("{warm_ms:.3}"),
        warm_stats.hits.to_string(),
        warm_stats.misses.to_string(),
    ]);
    t.print();

    let par_json = |runs: &[(usize, f64)]| -> String {
        runs.iter()
            .map(|&(threads, ms)| {
                format!(
                    "{{\"threads\": {threads}, \"ms\": {ms:.3}, \"speedup\": {:.3}}}",
                    seq_ms / ms
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    // Per-block latency percentiles from the metrics registry: everything
    // recorded since the experiment started.
    let obs_delta = avq_obs::global().snapshot().since(&obs_before);
    let families = [
        format!("{}.ns", avq_obs::names::SPAN_CODEC_ENCODE_BLOCK),
        format!("{}.ns", avq_obs::names::SPAN_CODEC_DECODE_BLOCK),
    ];
    let family_refs: Vec<&str> = families.iter().map(String::as_str).collect();
    let latency = avq_bench::report::latency_json(&obs_delta, &family_refs);
    let json = format!(
        "{{\n  \"experiment\": \"decode\",\n  \"tuples\": {n},\n  \"blocks\": {blocks},\n  \
         \"host_threads\": {host_threads},\n  \
         \"sequential_scalar_ms\": {scalar_ms:.3},\n  \"sequential_swar_ms\": {swar_ms:.3},\n  \
         \"swar_speedup\": {:.3},\n  \
         \"fresh_scratch_ms\": {fresh_ms:.3},\n  \"reused_scratch_ms\": {reused_ms:.3},\n  \
         \"sequential_decompress_ms\": {seq_ms:.3},\n  \
         \"parallel_decompress_chunked\": [{}],\n  \
         \"parallel_decompress\": [{}],\n  \
         \"scan_cold_ms\": {cold_ms:.3},\n  \"scan_warm_ms\": {warm_ms:.3},\n  \
         \"cold_cache_misses\": {},\n  \
         \"warm_cache_hits\": {},\n  \"warm_cache_misses\": {},\n  \
         \"latency_ns\": {latency}\n}}\n",
        scalar_ms / swar_ms,
        par_json(&par_chunked),
        par_json(&par_stealing),
        cold_stats.misses,
        warm_stats.hits,
        warm_stats.misses,
    );
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap();
        }
    }
    std::fs::write(&json_path, json).unwrap();
    println!("\nwrote {json_path}");

    if std::env::var("AVQ_PERF_SMOKE").is_ok_and(|v| v == "1") {
        let slack = 1.05;
        if swar_ms > scalar_ms * slack {
            eprintln!(
                "perf smoke FAILED: swar {swar_ms:.3} ms > scalar {scalar_ms:.3} ms × {slack}"
            );
            std::process::exit(1);
        }
        println!(
            "perf smoke ok: swar {swar_ms:.3} ms vs scalar {scalar_ms:.3} ms ({:.2}×)",
            scalar_ms / swar_ms
        );
    }
}
