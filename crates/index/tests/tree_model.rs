//! Model-based property tests: the B⁺-tree and the hash index are driven
//! with arbitrary operation sequences against `std::collections` models.

use avq_index::{BPlusTree, HashIndex};
use avq_storage::{BlockDevice, BufferPool, DiskProfile};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

fn pool(block_size: usize) -> Arc<BufferPool> {
    BufferPool::new(BlockDevice::new(block_size, DiskProfile::instant()), 256)
}

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16, u64),
    Delete(u16),
    Get(u16),
    Floor(u16),
    Range(u16, u16),
}

fn arb_tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (any::<u16>(), any::<u64>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        any::<u16>().prop_map(TreeOp::Delete),
        any::<u16>().prop_map(TreeOp::Get),
        any::<u16>().prop_map(TreeOp::Floor),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
    ]
}

fn key(k: u16) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn btree_matches_btreemap(
        ops in prop::collection::vec(arb_tree_op(), 1..300),
        order in prop_oneof![Just(3usize), Just(8), Just(usize::MAX)],
        block_size in prop_oneof![Just(128usize), Just(4096)],
    ) {
        let mut tree = BPlusTree::create_with_order(pool(block_size), order).unwrap();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                TreeOp::Insert(k, v) => {
                    let got = tree.insert(&key(k), v).unwrap();
                    let expect = model.insert(key(k), v);
                    prop_assert_eq!(got, expect);
                }
                TreeOp::Delete(k) => {
                    let got = tree.delete(&key(k));
                    match model.remove(&key(k)) {
                        Some(v) => prop_assert_eq!(got.unwrap(), v),
                        None => prop_assert!(got.is_err()),
                    }
                }
                TreeOp::Get(k) => {
                    prop_assert_eq!(tree.get(&key(k)).unwrap(), model.get(&key(k)).copied());
                }
                TreeOp::Floor(k) => {
                    let got = tree.floor(&key(k)).unwrap();
                    let expect = model
                        .range(..=key(k))
                        .next_back()
                        .map(|(k, &v)| (k.clone(), v));
                    prop_assert_eq!(got, expect);
                }
                TreeOp::Range(a, b) => {
                    let got = tree.range(&key(a), &key(b)).unwrap();
                    let expect: Vec<(Vec<u8>, u64)> = model
                        .range(key(a)..=key(b))
                        .map(|(k, &v)| (k.clone(), v))
                        .collect();
                    prop_assert_eq!(got, expect);
                }
            }
        }
        tree.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.stats().unwrap().entries, model.len());
    }

    #[test]
    fn hash_matches_multiset(
        ops in prop::collection::vec(
            (any::<bool>(), 0u64..64, 0u64..16), 1..400
        ),
    ) {
        let mut hash = HashIndex::create(pool(128)).unwrap();
        let mut model: BTreeSet<(u64, u64)> = BTreeSet::new();
        for &(is_insert, k, v) in &ops {
            if is_insert {
                hash.insert(k, v).unwrap();
                model.insert((k, v));
            } else {
                let got = hash.remove(k, v).unwrap();
                let expect = model.remove(&(k, v));
                prop_assert_eq!(got, expect);
            }
        }
        prop_assert_eq!(hash.len(), model.len());
        for probe in 0..64u64 {
            let got = hash.get(probe).unwrap();
            let expect: Vec<u64> = model
                .iter()
                .filter(|&&(k, _)| k == probe)
                .map(|&(_, v)| v)
                .collect();
            prop_assert_eq!(got, expect, "key {}", probe);
        }
    }

    #[test]
    fn bulk_build_equals_incremental(
        mut keys in prop::collection::btree_set(any::<u16>(), 1..200),
        order in prop_oneof![Just(3usize), Just(16)],
    ) {
        let pairs: Vec<(Vec<u8>, u64)> = keys
            .iter()
            .map(|&k| (key(k), k as u64))
            .collect();
        let bulk = BPlusTree::bulk_build(pool(256), order, &pairs).unwrap();
        let mut incr = BPlusTree::create_with_order(pool(256), order).unwrap();
        for (k, v) in &pairs {
            incr.insert(k, *v).unwrap();
        }
        bulk.validate().map_err(TestCaseError::fail)?;
        incr.validate().map_err(TestCaseError::fail)?;
        // Same logical content regardless of construction path.
        let lo = key(0);
        let hi = key(u16::MAX);
        prop_assert_eq!(bulk.range(&lo, &hi).unwrap(), incr.range(&lo, &hi).unwrap());
        keys.clear();
    }
}
