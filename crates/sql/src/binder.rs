//! Name and type resolution against the database catalog.
//!
//! The binder turns a parsed [`Statement`](crate::ast::Statement) into a
//! [`BoundQuery`]: table
//! references resolve to stored relations, column references to
//! `(table, attribute)` pairs, and `WHERE` conjuncts to inclusive ordinal
//! ranges in each attribute's domain (§3.1 attribute encoding). Strict
//! comparisons become inclusive bounds by stepping one ordinal; literals
//! outside a numeric domain clamp to the domain edge (an equality against an
//! out-of-domain literal yields a provably empty range rather than an
//! error, matching SQL semantics).

use crate::ast::{
    AggFunc, ColRef, Literal, Predicate, Projection, SelectItem, SelectStmt, TableRef,
};
use crate::error::SqlError;
use avq_db::Database;
use avq_schema::{Domain, Schema, Value};
use std::sync::Arc;

/// A resolved table in `FROM`/`JOIN` order.
#[derive(Debug, Clone)]
pub struct BoundTable {
    /// Relation name in the database.
    pub relation: String,
    /// Display label: the alias when given, else the relation name.
    pub label: String,
    /// The relation's schema.
    pub schema: Arc<Schema>,
}

/// A resolved equijoin condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundJoin {
    /// `(table index, attribute index)` of the left side.
    pub left: (usize, usize),
    /// `(table index, attribute index)` of the right side.
    pub right: (usize, usize),
}

/// One `WHERE` conjunct as an inclusive ordinal range. `lo > hi` encodes a
/// provably empty range.
#[derive(Debug, Clone)]
pub struct BoundPredicate {
    /// Table index.
    pub table: usize,
    /// Attribute index within the table.
    pub attr: usize,
    /// Inclusive lower ordinal.
    pub lo: u64,
    /// Inclusive upper ordinal.
    pub hi: u64,
    /// The original conjunct text, for plan rendering.
    pub display: String,
}

/// A resolved projection item.
#[derive(Debug, Clone)]
pub enum BoundItem {
    /// A base column.
    Column {
        /// `(table index, attribute index)`.
        col: (usize, usize),
    },
    /// An aggregate; `arg == None` is `COUNT(*)`.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// The argument column.
        arg: Option<(usize, usize)>,
    },
}

/// The fully resolved query.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// Tables in `FROM`/`JOIN` order.
    pub tables: Vec<BoundTable>,
    /// Equijoin conditions (one per `JOIN` clause).
    pub joins: Vec<BoundJoin>,
    /// `WHERE` conjuncts as ordinal ranges.
    pub predicates: Vec<BoundPredicate>,
    /// Projection items in output order.
    pub items: Vec<BoundItem>,
    /// Column headers for the result table, in output order.
    pub headers: Vec<String>,
    /// `GROUP BY` column.
    pub group_by: Option<(usize, usize)>,
    /// `ORDER BY` column and direction.
    pub order_by: Option<((usize, usize), bool)>,
    /// `LIMIT` row count.
    pub limit: Option<usize>,
    /// True when any item aggregates (the result is one row per group).
    pub grouped: bool,
    /// The canonical statement text, for plan headers.
    pub text: String,
}

impl BoundQuery {
    /// True when any bound predicate is provably empty (`lo > hi`).
    pub fn provably_empty(&self) -> bool {
        self.predicates.iter().any(|p| p.lo > p.hi)
    }
}

/// Where a literal lands relative to a domain's ordinal space.
enum Clamped {
    Below,
    In(u64),
    Above,
}

fn clamp_numeric(domain: &Domain, n: i128) -> Result<Clamped, SqlError> {
    match domain {
        Domain::Uint { size } => Ok(if n < 0 {
            Clamped::Below
        } else if n >= i128::from(*size) {
            Clamped::Above
        } else {
            Clamped::In(n as u64)
        }),
        Domain::IntRange { min, max } => Ok(if n < i128::from(*min) {
            Clamped::Below
        } else if n > i128::from(*max) {
            Clamped::Above
        } else {
            Clamped::In((n - i128::from(*min)) as u64)
        }),
        Domain::Enumerated { .. } => Err(SqlError::Bind {
            msg: format!("cannot compare an enumerated column with the number {n}"),
        }),
    }
}

/// Binds a literal bound for one side of a range. Returns the clamped
/// ordinal position; enum members must match exactly.
fn clamp_literal(domain: &Domain, lit: &Literal, col: &ColRef) -> Result<Clamped, SqlError> {
    match lit {
        Literal::Number(n) => clamp_numeric(domain, *n),
        Literal::Str(s) => match domain {
            Domain::Enumerated { .. } => match domain.encode(&Value::from(s.as_str())) {
                Ok(ord) => Ok(Clamped::In(ord)),
                Err(_) => Err(SqlError::Bind {
                    msg: format!("'{s}' is not a member of the domain of column `{col}`"),
                }),
            },
            _ => Err(SqlError::Bind {
                msg: format!(
                    "cannot compare {} column `{col}` with the string '{s}'",
                    domain.type_name()
                ),
            }),
        },
    }
}

struct Binder<'a> {
    db: &'a Database,
    tables: Vec<BoundTable>,
}

impl<'a> Binder<'a> {
    fn add_table(&mut self, tref: &TableRef) -> Result<usize, SqlError> {
        let rel = self.db.relation(&tref.name).map_err(|_| SqlError::Bind {
            msg: format!("unknown relation `{}`", tref.name),
        })?;
        let label = tref.alias.clone().unwrap_or_else(|| tref.name.clone());
        if self.tables.iter().any(|t| t.label == label) {
            return Err(SqlError::Bind {
                msg: format!("duplicate table name or alias `{label}` (use aliases)"),
            });
        }
        self.tables.push(BoundTable {
            relation: tref.name.clone(),
            label,
            schema: rel.schema().clone(),
        });
        Ok(self.tables.len() - 1)
    }

    fn resolve(&self, col: &ColRef) -> Result<(usize, usize), SqlError> {
        if let Some(q) = &col.table {
            let (t, table) = self
                .tables
                .iter()
                .enumerate()
                .find(|(_, b)| b.label == *q)
                .ok_or_else(|| SqlError::Bind {
                    msg: format!("unknown table or alias `{q}` in `{col}`"),
                })?;
            let a = table
                .schema
                .index_of(&col.column)
                .map_err(|_| SqlError::Bind {
                    msg: format!("relation `{q}` has no column `{}`", col.column),
                })?;
            return Ok((t, a));
        }
        let mut found: Option<(usize, usize)> = None;
        for (t, b) in self.tables.iter().enumerate() {
            if let Ok(a) = b.schema.index_of(&col.column) {
                if found.is_some() {
                    return Err(SqlError::Bind {
                        msg: format!("column `{}` is ambiguous (qualify it)", col.column),
                    });
                }
                found = Some((t, a));
            }
        }
        found.ok_or_else(|| SqlError::Bind {
            msg: format!("unknown column `{}`", col.column),
        })
    }

    fn domain(&self, col: (usize, usize)) -> &Domain {
        // `resolve` produced the indices, so they are in range.
        self.tables[col.0].schema.attribute(col.1).domain()
    }

    fn bind_predicate(&self, pred: &Predicate) -> Result<BoundPredicate, SqlError> {
        use crate::ast::CmpOp;
        let (colref, display) = match pred {
            Predicate::Cmp { col, .. } | Predicate::Between { col, .. } => (col, pred.to_string()),
        };
        let (t, a) = self.resolve(colref)?;
        let domain = self.domain((t, a));
        let max = domain.size().saturating_sub(1);
        // Map each conjunct to an inclusive ordinal range; `lo > hi` (1, 0)
        // encodes "provably empty".
        const EMPTY: (u64, u64) = (1, 0);
        let (lo, hi) = match pred {
            Predicate::Cmp { op, lit, col, .. } => {
                let pos = clamp_literal(domain, lit, col)?;
                match (op, pos) {
                    (CmpOp::Eq, Clamped::In(o)) => (o, o),
                    (CmpOp::Eq, _) => EMPTY,
                    (CmpOp::Lt, Clamped::In(0)) | (CmpOp::Lt, Clamped::Below) => EMPTY,
                    (CmpOp::Lt, Clamped::In(o)) => (0, o - 1),
                    (CmpOp::Lt, Clamped::Above) => (0, max),
                    (CmpOp::Le, Clamped::Below) => EMPTY,
                    (CmpOp::Le, Clamped::In(o)) => (0, o),
                    (CmpOp::Le, Clamped::Above) => (0, max),
                    (CmpOp::Gt, Clamped::Below) => (0, max),
                    (CmpOp::Gt, Clamped::In(o)) if o == max => EMPTY,
                    (CmpOp::Gt, Clamped::In(o)) => (o + 1, max),
                    (CmpOp::Gt, Clamped::Above) => EMPTY,
                    (CmpOp::Ge, Clamped::Below) => (0, max),
                    (CmpOp::Ge, Clamped::In(o)) => (o, max),
                    (CmpOp::Ge, Clamped::Above) => EMPTY,
                }
            }
            Predicate::Between { lo, hi, col, .. } => {
                let lo_pos = clamp_literal(domain, lo, col)?;
                let hi_pos = clamp_literal(domain, hi, col)?;
                let lo_ord = match lo_pos {
                    Clamped::Below => 0,
                    Clamped::In(o) => o,
                    Clamped::Above => {
                        return Ok(BoundPredicate {
                            table: t,
                            attr: a,
                            lo: 1,
                            hi: 0,
                            display,
                        })
                    }
                };
                let hi_ord = match hi_pos {
                    Clamped::Below => {
                        return Ok(BoundPredicate {
                            table: t,
                            attr: a,
                            lo: 1,
                            hi: 0,
                            display,
                        })
                    }
                    Clamped::In(o) => o,
                    Clamped::Above => max,
                };
                (lo_ord, hi_ord)
            }
        };
        Ok(BoundPredicate {
            table: t,
            attr: a,
            lo,
            hi,
            display,
        })
    }
}

/// Resolves `stmt` against `db`.
pub fn bind(db: &Database, stmt: &SelectStmt) -> Result<BoundQuery, SqlError> {
    let mut b = Binder {
        db,
        tables: Vec::new(),
    };
    b.add_table(&stmt.from)?;
    let mut joins = Vec::new();
    for j in &stmt.joins {
        let new_idx = b.add_table(&j.table)?;
        let left = b.resolve(&j.left)?;
        let right = b.resolve(&j.right)?;
        if left.0 == right.0 {
            return Err(SqlError::Bind {
                msg: format!(
                    "join condition `{} = {}` references only one table",
                    j.left, j.right
                ),
            });
        }
        // One side must be the table introduced by this JOIN clause.
        if left.0 != new_idx && right.0 != new_idx {
            return Err(SqlError::Bind {
                msg: format!(
                    "join condition `{} = {}` does not reference `{}`",
                    j.left,
                    j.right,
                    b.tables.last().map_or("", |t| t.label.as_str())
                ),
            });
        }
        joins.push(BoundJoin { left, right });
    }

    let mut predicates = Vec::new();
    for p in &stmt.predicates {
        predicates.push(b.bind_predicate(p)?);
    }

    let group_by = match &stmt.group_by {
        Some(c) => Some(b.resolve(c)?),
        None => None,
    };

    // Projection.
    let mut items = Vec::new();
    let mut headers = Vec::new();
    let mut grouped = group_by.is_some();
    match &stmt.projection {
        Projection::Star => {
            if group_by.is_some() {
                return Err(SqlError::Bind {
                    msg: "`select *` cannot be combined with `group by`".to_owned(),
                });
            }
            for (t, table) in b.tables.iter().enumerate() {
                for (a, attr) in table.schema.attributes().iter().enumerate() {
                    items.push(BoundItem::Column { col: (t, a) });
                    headers.push(if b.tables.len() > 1 {
                        format!("{}.{}", table.label, attr.name())
                    } else {
                        attr.name().to_owned()
                    });
                }
            }
        }
        Projection::Items(list) => {
            for item in list {
                match item {
                    SelectItem::Column(c) => {
                        items.push(BoundItem::Column { col: b.resolve(c)? });
                        headers.push(c.to_string());
                    }
                    SelectItem::Aggregate { func, arg } => {
                        grouped = true;
                        let arg = match arg {
                            Some(c) => {
                                let col = b.resolve(c)?;
                                if matches!(func, AggFunc::Sum | AggFunc::Avg)
                                    && matches!(b.domain(col), Domain::Enumerated { .. })
                                {
                                    return Err(SqlError::Bind {
                                        msg: format!("{}({c}) needs a numeric column", func.name()),
                                    });
                                }
                                Some(col)
                            }
                            None => None,
                        };
                        items.push(BoundItem::Aggregate { func: *func, arg });
                        headers.push(item.to_string());
                    }
                }
            }
            if grouped {
                // Plain columns in an aggregate query must be the group key.
                for (item, header) in items.iter().zip(&headers) {
                    if let BoundItem::Column { col } = item {
                        if group_by != Some(*col) {
                            return Err(SqlError::Bind {
                                msg: format!(
                                    "column `{header}` must appear in `group by` or an aggregate"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    if grouped && group_by.is_none() && items.iter().any(|i| matches!(i, BoundItem::Column { .. }))
    {
        return Err(SqlError::Bind {
            msg: "plain columns cannot mix with aggregates without `group by`".to_owned(),
        });
    }

    // ORDER BY: any column for plain queries; the group key for grouped.
    let order_by = match &stmt.order_by {
        Some(o) => {
            let col = b.resolve(&o.col)?;
            if grouped && group_by != Some(col) {
                return Err(SqlError::Bind {
                    msg: format!(
                        "`order by {}` must name the `group by` column in a grouped query",
                        o.col
                    ),
                });
            }
            Some((col, o.desc))
        }
        None => None,
    };

    let limit = match stmt.limit {
        Some(n) => Some(usize::try_from(n).map_err(|_| SqlError::Bind {
            msg: format!("limit {n} is too large"),
        })?),
        None => None,
    };

    Ok(BoundQuery {
        tables: b.tables,
        joins,
        predicates,
        items,
        headers,
        group_by,
        order_by,
        limit,
        grouped,
        text: stmt.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse;
    use avq_db::DbConfig;
    use avq_schema::{Relation, Tuple};

    fn db() -> Database {
        let schema = Schema::from_pairs(vec![
            (
                "dept",
                Domain::enumerated(vec!["eng", "hr", "ops"]).unwrap(),
            ),
            ("age", Domain::int_range(-10, 89).unwrap()),
            ("id", Domain::uint(1000).unwrap()),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = (0..300u64)
            .map(|i| Tuple::from([i % 3, (i * 7) % 100, i]))
            .collect();
        let rel = Relation::from_tuples(schema, tuples).unwrap();
        let mut db = Database::new(DbConfig::default());
        db.create_relation("people", &rel).unwrap();
        db
    }

    fn bound(db: &Database, sql: &str) -> Result<BoundQuery, SqlError> {
        match parse(sql).unwrap() {
            Statement::Select(s) => bind(db, &s),
            Statement::Explain { stmt, .. } => bind(db, &stmt),
        }
    }

    #[test]
    fn binds_predicates_to_ordinals() {
        let db = db();
        // age is IntRange(-10, 89): value 0 is ordinal 10.
        let q = bound(&db, "select * from people where age >= 0").unwrap();
        assert_eq!(q.predicates.len(), 1);
        assert_eq!((q.predicates[0].lo, q.predicates[0].hi), (10, 99));
        let q = bound(&db, "select * from people where dept = 'hr'").unwrap();
        assert_eq!((q.predicates[0].lo, q.predicates[0].hi), (1, 1));
    }

    #[test]
    fn strict_ops_step_one_ordinal() {
        let db = db();
        let q = bound(&db, "select * from people where id < 5").unwrap();
        assert_eq!((q.predicates[0].lo, q.predicates[0].hi), (0, 4));
        let q = bound(&db, "select * from people where id > 5").unwrap();
        assert_eq!((q.predicates[0].lo, q.predicates[0].hi), (6, 999));
    }

    #[test]
    fn out_of_domain_clamps_or_empties() {
        let db = db();
        let q = bound(&db, "select * from people where id <= 5000").unwrap();
        assert_eq!((q.predicates[0].lo, q.predicates[0].hi), (0, 999));
        let q = bound(&db, "select * from people where id = 5000").unwrap();
        assert!(q.provably_empty());
        let q = bound(&db, "select * from people where age < -10").unwrap();
        assert!(q.provably_empty());
    }

    #[test]
    fn unknown_names_are_bind_errors() {
        let db = db();
        assert!(matches!(
            bound(&db, "select * from nope"),
            Err(SqlError::Bind { .. })
        ));
        assert!(matches!(
            bound(&db, "select nope from people"),
            Err(SqlError::Bind { .. })
        ));
        assert!(matches!(
            bound(&db, "select * from people where people.nope = 1"),
            Err(SqlError::Bind { .. })
        ));
    }

    #[test]
    fn type_mismatches_are_bind_errors() {
        let db = db();
        assert!(matches!(
            bound(&db, "select * from people where dept = 3"),
            Err(SqlError::Bind { .. })
        ));
        assert!(matches!(
            bound(&db, "select * from people where id = 'eng'"),
            Err(SqlError::Bind { .. })
        ));
        assert!(matches!(
            bound(&db, "select sum(dept) from people"),
            Err(SqlError::Bind { .. })
        ));
    }

    #[test]
    fn unlisted_enum_member_is_bind_error() {
        let db = db();
        // Comparing against a string outside the enum's member list is a
        // bind error (unlike numeric literals, which clamp) — pinned here.
        assert!(matches!(
            bound(&db, "select * from people where dept = 'sales'"),
            Err(SqlError::Bind { .. })
        ));
    }

    #[test]
    fn grouped_projection_rules() {
        let db = db();
        assert!(bound(&db, "select dept, count(*) from people group by dept").is_ok());
        assert!(matches!(
            bound(&db, "select age, count(*) from people group by dept"),
            Err(SqlError::Bind { .. })
        ));
        assert!(matches!(
            bound(&db, "select age, count(*) from people"),
            Err(SqlError::Bind { .. })
        ));
        assert!(matches!(
            bound(&db, "select * from people group by dept"),
            Err(SqlError::Bind { .. })
        ));
    }

    #[test]
    fn order_by_in_grouped_query_must_be_group_key() {
        let db = db();
        assert!(bound(
            &db,
            "select dept, count(*) from people group by dept order by dept desc"
        )
        .is_ok());
        assert!(matches!(
            bound(
                &db,
                "select dept, count(*) from people group by dept order by age"
            ),
            Err(SqlError::Bind { .. })
        ));
    }

    #[test]
    fn self_join_needs_aliases() {
        let db = db();
        assert!(matches!(
            bound(
                &db,
                "select * from people join people on people.id = people.id"
            ),
            Err(SqlError::Bind { .. })
        ));
        let q = bound(&db, "select * from people a join people b on a.id = b.id").unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(
            q.joins[0],
            BoundJoin {
                left: (0, 2),
                right: (1, 2)
            }
        );
    }
}
