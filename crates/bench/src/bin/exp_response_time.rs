//! Experiment E8 — Fig. 5.9: the full response-time table.
//!
//! `C₁ = I + N(t₁ + t₂)` (AVQ-coded) vs `C₂ = I + N(t₁ + t₃)` (uncoded),
//! with every term *measured* on the simulated device: `N` and `I` come from
//! the per-attribute query suite of Fig. 5.8 averaged over all attributes,
//! `t₁` is the 30 ms/block disk model, and `t₂`/`t₃` are the paper's
//! per-machine CPU times charged per block (rows 2 and 4 of the figure).
//!
//! Usage: `cargo run --release -p avq-bench --bin exp_response_time [n]`

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avq_bench::harness;
use avq_bench::report::Table;
use avq_codec::CodingMode;
use avq_storage::MachineProfile;

struct Side {
    blocks: usize,
    avg_n: f64,
    avg_index_ms: f64,
}

fn measure_side(
    relation: &avq_schema::Relation,
    spec: &avq_workload::SyntheticSpec,
    mode: CodingMode,
) -> Side {
    let db = harness::load_database(relation, mode, 0.0);
    let blocks = db.relation(harness::REL).unwrap().block_count();
    let results = harness::blocks_accessed(&db, spec);
    let avg_n = results.iter().map(|&(n, _)| n as f64).sum::<f64>() / results.len() as f64;
    let avg_i = results.iter().map(|&(_, i)| i as f64).sum::<f64>() / results.len() as f64;
    Side {
        blocks,
        avg_n,
        avg_index_ms: avg_i * 30.0,
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let (spec, relation) = harness::timing_relation(n);

    eprintln!("measuring uncoded and AVQ sides in parallel...");
    let (uncoded, coded) = std::thread::scope(|s| {
        let u = s.spawn(|| measure_side(&relation, &spec, CodingMode::FieldWise));
        let c = s.spawn(|| measure_side(&relation, &spec, CodingMode::AvqChained));
        (u.join().expect("uncoded side"), c.join().expect("AVQ side"))
    });

    println!(
        "relation: {n} tuples; data blocks {} uncoded / {} AVQ ({:.1}% reduction)\n",
        uncoded.blocks,
        coded.blocks,
        100.0 * (1.0 - coded.blocks as f64 / uncoded.blocks as f64)
    );

    let t1 = 30.0f64;
    let mut table = Table::new([
        "No.",
        "Description",
        "HP 9000/735",
        "Sun 4/50",
        "Dec 5000/120",
        "paper (HP)",
    ]);
    let machines = MachineProfile::paper_machines();
    let per_machine =
        |f: &dyn Fn(&MachineProfile) -> String| -> Vec<String> { machines.iter().map(f).collect() };

    let row = |no: &str, desc: &str, vals: Vec<String>, paper: &str| {
        let mut cells = vec![no.to_string(), desc.to_string()];
        cells.extend(vals);
        cells.push(paper.to_string());
        cells
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    rows.push(row(
        "2",
        "Block decoding time (ms), t2",
        per_machine(&|m| format!("{:.2}", m.paper_decode_ms)),
        "13.85",
    ));
    rows.push(row(
        "3",
        "Single block I/O time (ms), t1",
        per_machine(&|_| format!("{t1:.2}")),
        "30.00",
    ));
    rows.push(row(
        "4",
        "Time to extract tuples (ms), t3",
        per_machine(&|m| format!("{:.2}", m.paper_extract_ms)),
        "1.34",
    ));
    rows.push(row(
        "5",
        "Index search time uncoded (s), I",
        per_machine(&|_| format!("{:.3}", uncoded.avg_index_ms / 1000.0)),
        "0.283",
    ));
    rows.push(row(
        "6",
        "Index search time AVQ (s), I",
        per_machine(&|_| format!("{:.3}", coded.avg_index_ms / 1000.0)),
        "0.096",
    ));
    rows.push(row(
        "7",
        "Blocks accessed uncoded, N",
        per_machine(&|_| format!("{:.1}", uncoded.avg_n)),
        "153.6",
    ));
    rows.push(row(
        "8",
        "Blocks accessed AVQ, N",
        per_machine(&|_| format!("{:.1}", coded.avg_n)),
        "55.0",
    ));
    let c2: Vec<f64> = machines
        .iter()
        .map(|m| uncoded.avg_index_ms + uncoded.avg_n * (t1 + m.paper_extract_ms))
        .collect();
    let c1: Vec<f64> = machines
        .iter()
        .map(|m| coded.avg_index_ms + coded.avg_n * (t1 + m.paper_decode_ms))
        .collect();
    rows.push(row(
        "9",
        "Total I/O time uncoded (s), C2",
        c2.iter().map(|v| format!("{:.3}", v / 1000.0)).collect(),
        "5.093",
    ));
    rows.push(row(
        "10",
        "Total I/O time AVQ (s), C1",
        c1.iter().map(|v| format!("{:.3}", v / 1000.0)).collect(),
        "2.506",
    ));
    rows.push(row(
        "11",
        "Improvement 100(1 - C1/C2)",
        c1.iter()
            .zip(&c2)
            .map(|(a, b)| format!("{:.1}%", 100.0 * (1.0 - a / b)))
            .collect(),
        "50.8%",
    ));

    for r in rows {
        table.row(r);
    }
    table.print();

    println!("\npaper row 11: HP 50.8%, Sun 34.0%, DEC 20.1%.");
    println!("shape checks: (1) AVQ wins on every machine; (2) the win grows with CPU");
    println!("speed (HP > Sun > DEC), the paper's core claim about technology trends.");
}
