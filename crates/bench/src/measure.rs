//! Host-time measurement helpers for the CPU-bound experiments.

use std::time::Instant;

/// Measures the average wall-clock milliseconds of `f` over `reps`
/// repetitions after `warmup` unmeasured runs.
pub fn avg_ms<F: FnMut()>(warmup: usize, reps: usize, mut f: F) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1000.0 / reps as f64
}

/// A simple min/mean/max summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest observation.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest observation.
    pub max: f64,
}

/// Summarizes a non-empty sample.
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty(), "empty sample");
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &s in samples {
        min = min.min(s);
        max = max.max(s);
        sum += s;
    }
    Summary {
        min,
        mean: sum / samples.len() as f64,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_ms_counts_reps() {
        let mut calls = 0;
        let _ = avg_ms(2, 5, || calls += 1);
        assert_eq!(calls, 7);
    }

    #[test]
    fn summary() {
        let s = summarize(&[1.0, 2.0, 6.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 6.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        summarize(&[]);
    }
}
