//! RAII timing spans and the handle-caching macros.
//!
//! `span!("avq.codec.decode_block")` opens a [`SpanGuard`] that records the
//! elapsed wall time (nanoseconds) into the histogram named
//! `avq.codec.decode_block.ns` when dropped. The histogram handle is cached
//! in a per-call-site static, so entering a span costs one `OnceLock` load,
//! one `Instant::now`, and (on drop) one histogram record — cheap enough
//! for per-block hot paths.
//!
//! Span enter/exit events fan out to the sink set owned by
//! [`crate::trace`] — the same path the structured-tracing subsystem uses
//! — via [`crate::trace::add_span_sink`]. [`set_span_observer`] survives as
//! the PR 3 compatibility wrapper (first call wins, later calls return
//! `false`); observer bridges are just trace sinks now, so there is a
//! single dispatch path instead of the old dedicated `OBSERVER` slot.

use crate::metric::Histogram;
use crate::trace;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// A wall-clock stopwatch for ad-hoc stage timing (e.g. `EXPLAIN ANALYZE`).
///
/// The AVQ workspace confines raw `std::time` reads to this crate and the
/// bench harness (`avq-lint` rule **AVQ-L005**): engine code that needs real
/// elapsed time goes through [`Stopwatch`] or [`crate::span!`], and code
/// that charges simulated 1994-disk time uses the storage crate's virtual
/// clock instead.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Wall-clock time elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Receives span lifecycle events. Implement this to bridge spans into an
/// external tracing system (e.g. a `tracing`-subscriber adapter behind the
/// `tracing-bridge` feature).
pub trait SpanObserver: Send + Sync {
    /// Called when a span is entered.
    fn enter(&self, name: &'static str);
    /// Called when a span closes, with its elapsed time in nanoseconds.
    fn exit(&self, name: &'static str, elapsed_ns: u64);
}

/// Installs the process-wide span observer as a trace sink. Only the first
/// call wins; returns `false` if an observer was already installed (or the
/// sink set is full). New code should call [`crate::trace::add_span_sink`]
/// directly, which supports more than one sink.
pub fn set_span_observer(observer: Box<dyn SpanObserver>) -> bool {
    if trace::LEGACY_OBSERVER_INSTALLED.swap(true, Ordering::SeqCst) {
        return false;
    }
    trace::add_span_sink(observer)
}

/// An open timing span. Records its elapsed time into `hist` when dropped.
/// Created by the [`crate::span!`] macro; construct directly only in tests.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    name: &'static str,
    hist: &'a Histogram,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    /// Opens a span that records into `hist` on drop.
    #[inline]
    pub fn enter(name: &'static str, hist: &'a Histogram) -> Self {
        trace::emit_enter(name);
        SpanGuard {
            name,
            hist,
            start: Instant::now(),
        }
    }

    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist.record(ns);
        trace::emit_exit(self.name, ns);
    }
}

/// Returns a cached `&'static` handle to the global counter `$name`.
/// The registry is consulted once per call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        let h: &'static $crate::Counter = HANDLE.get_or_init(|| $crate::global().counter($name));
        h
    }};
}

/// Returns a cached `&'static` handle to the global gauge `$name`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        let h: &'static $crate::Gauge = HANDLE.get_or_init(|| $crate::global().gauge($name));
        h
    }};
}

/// Returns a cached `&'static` handle to the global histogram `$name`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        let h: &'static $crate::Histogram =
            HANDLE.get_or_init(|| $crate::global().histogram($name));
        h
    }};
}

/// Opens a timing span: `let _g = span!(names::SPAN_WAL_FSYNC);` records
/// elapsed nanoseconds into the global histogram `avq.wal.fsync.ns` when
/// `_g` drops. The name may be any `&'static str` expression — typically a
/// [`crate::names`] constant — not just a literal; the `.ns` histogram
/// handle is resolved once per call site and cached.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        let h: &'static $crate::Histogram = HANDLE.get_or_init(|| {
            let mut n = ::std::string::String::from($name);
            n.push_str(".ns");
            $crate::global().histogram(&n)
        });
        $crate::SpanGuard::enter($name, h)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn guard_records_elapsed_on_drop() {
        let h = Histogram::new();
        {
            let _g = SpanGuard::enter("test.span", &h);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.sum >= 1_000_000, "at least 1ms recorded, got {}", s.sum);
    }

    #[test]
    fn span_macro_reuses_one_global_histogram() {
        {
            let _a = crate::span!("avq.obs.test.spanmacro");
        }
        {
            let _b = crate::span!("avq.obs.test.spanmacro");
        }
        let snap = crate::global().snapshot();
        let h = &snap.histograms["avq.obs.test.spanmacro.ns"];
        assert!(h.count >= 2);
    }

    #[test]
    fn stopwatch_measures_elapsed() {
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(sw.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn span_macro_accepts_const_names() {
        const NAME: &str = "avq.obs.test.constspan";
        {
            let _g = crate::span!(NAME);
        }
        let snap = crate::global().snapshot();
        assert!(snap.histograms["avq.obs.test.constspan.ns"].count >= 1);
    }

    #[test]
    fn counter_macro_caches_handle() {
        crate::counter!("avq.obs.test.counter").add(3);
        crate::counter!("avq.obs.test.counter").add(4);
        assert!(crate::global().counter("avq.obs.test.counter").get() >= 7);
    }

    struct CountingObserver {
        enters: AtomicU64,
        exits: AtomicU64,
    }

    impl SpanObserver for CountingObserver {
        fn enter(&self, _name: &'static str) {
            self.enters.fetch_add(1, Ordering::Relaxed);
        }
        fn exit(&self, _name: &'static str, elapsed_ns: u64) {
            // Elapsed is a real measurement, not a sentinel.
            assert!(elapsed_ns < u64::MAX);
            self.exits.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn observer_sees_enter_and_exit() {
        // The observer slot is process-global and first-set-wins; this is
        // the only test in the crate that installs one.
        let obs = Box::leak(Box::new(CountingObserver {
            enters: AtomicU64::new(0),
            exits: AtomicU64::new(0),
        }));
        assert!(set_span_observer(Box::new(ObserverRef(obs))));
        {
            let _g = crate::span!("avq.obs.test.observed");
        }
        assert!(obs.enters.load(Ordering::Relaxed) >= 1);
        assert!(obs.exits.load(Ordering::Relaxed) >= 1);
        // Second install is rejected.
        assert!(!set_span_observer(Box::new(ObserverRef(obs))));
    }

    struct ObserverRef(&'static CountingObserver);

    impl SpanObserver for ObserverRef {
        fn enter(&self, name: &'static str) {
            self.0.enter(name);
        }
        fn exit(&self, name: &'static str, elapsed_ns: u64) {
            self.0.exit(name, elapsed_ns);
        }
    }
}
