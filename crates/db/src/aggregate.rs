//! Aggregation over (possibly compressed) relations, with block skipping.
//!
//! Demonstrates the second half of the paper's §4 claim — standard
//! operations work unchanged on coded data — and adds an optimization the
//! block structure makes natural: per-block φ bounds let `COUNT`/`MIN`/`MAX`
//! queries over the clustering prefix skip or short-circuit whole blocks
//! without decoding them.

use crate::cost::{CostTracker, QueryCost};
use crate::error::DbError;
use crate::query::Selection;
use crate::relation_store::StoredRelation;
use avq_obs::names;
use std::collections::BTreeMap;

/// An aggregate function over one attribute (ordinal space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of matching tuples.
    Count,
    /// Sum of the attribute's ordinals.
    Sum {
        /// Attribute position.
        attr: usize,
    },
    /// Minimum ordinal.
    Min {
        /// Attribute position.
        attr: usize,
    },
    /// Maximum ordinal.
    Max {
        /// Attribute position.
        attr: usize,
    },
    /// Mean ordinal (as a float).
    Avg {
        /// Attribute position.
        attr: usize,
    },
}

/// The result of an aggregate query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggregateValue {
    /// Count result.
    Count(u64),
    /// Sum result.
    Sum(u128),
    /// Min/Max result, `None` when no tuple matched.
    Extremum(Option<u64>),
    /// Average result, `None` when no tuple matched.
    Avg(Option<f64>),
}

impl StoredRelation {
    /// Evaluates an aggregate under a selection.
    ///
    /// Fast paths (no block decode):
    /// * `COUNT` with an empty selection — block headers carry tuple counts
    ///   (served from in-memory metadata; zero I/O);
    /// * `MIN`/`MAX` of the clustering attribute with an empty selection —
    ///   only the first / last block is decoded.
    pub fn aggregate(
        &self,
        agg: Aggregate,
        selection: &Selection,
    ) -> Result<(AggregateValue, QueryCost), DbError> {
        let _span = avq_obs::span!(names::SPAN_DB_AGGREGATE);
        avq_obs::counter!(names::DB_AGGREGATES).inc();
        let mut tracker = CostTracker::new(self.device());

        if selection.predicates().is_empty() {
            match agg {
                Aggregate::Count => {
                    tracker.end_index_phase();
                    return Ok((
                        AggregateValue::Count(self.tuple_count() as u64),
                        tracker.cost,
                    ));
                }
                Aggregate::Min { attr: 0 } => {
                    let v = self.blocks().first().map(|b| b.min.digits()[0]);
                    tracker.end_index_phase();
                    return Ok((AggregateValue::Extremum(v), tracker.cost));
                }
                Aggregate::Max { attr: 0 } => {
                    let v = self.blocks().last().map(|b| b.max.digits()[0]);
                    tracker.end_index_phase();
                    return Ok((AggregateValue::Extremum(v), tracker.cost));
                }
                _ => {}
            }
        }

        // General path: stream the selection through a fold (matching
        // tuples are never materialized).
        let (state, cost, _) =
            self.fold_matching(selection, AggState::default(), |st, t| st.feed(agg, t))?;
        tracker.cost = cost;
        Ok((state.finish(agg), tracker.cost))
    }

    /// Evaluates an aggregate per distinct value of `group_attr` (GROUP BY),
    /// streaming block-at-a-time.
    pub fn aggregate_group_by(
        &self,
        group_attr: usize,
        agg: Aggregate,
        selection: &Selection,
    ) -> Result<(BTreeMap<u64, AggregateValue>, QueryCost), DbError> {
        let (groups, cost, _) =
            self.fold_matching(selection, BTreeMap::<u64, AggState>::new(), |groups, t| {
                groups
                    .entry(t.digits()[group_attr])
                    .or_default()
                    .feed(agg, t);
            })?;
        let out = groups
            .into_iter()
            .map(|(k, st)| (k, st.finish(agg)))
            .collect();
        Ok((out, cost))
    }
}

/// Streaming fold state shared by all aggregate functions (and by
/// [`crate::explain`]'s timed aggregate stage).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct AggState {
    count: u64,
    sum: u128,
    min: Option<u64>,
    max: Option<u64>,
}

impl AggState {
    pub(crate) fn feed(&mut self, agg: Aggregate, t: &avq_schema::Tuple) {
        self.count += 1;
        let attr = match agg {
            Aggregate::Count => return,
            Aggregate::Sum { attr }
            | Aggregate::Min { attr }
            | Aggregate::Max { attr }
            | Aggregate::Avg { attr } => attr,
        };
        let v = t.digits()[attr];
        self.sum += v as u128;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    pub(crate) fn finish(self, agg: Aggregate) -> AggregateValue {
        match agg {
            Aggregate::Count => AggregateValue::Count(self.count),
            Aggregate::Sum { .. } => AggregateValue::Sum(self.sum),
            Aggregate::Min { .. } => AggregateValue::Extremum(self.min),
            Aggregate::Max { .. } => AggregateValue::Extremum(self.max),
            Aggregate::Avg { .. } => AggregateValue::Avg(if self.count == 0 {
                None
            } else {
                Some(self.sum as f64 / self.count as f64)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DbConfig;
    use crate::query::RangePredicate;
    use avq_codec::CodecOptions;
    use avq_schema::{Domain, Relation, Schema, Tuple};
    use avq_storage::{BlockDevice, BufferPool};

    fn stored() -> StoredRelation {
        let schema = Schema::from_pairs(vec![
            ("a", Domain::uint(10).unwrap()),
            ("b", Domain::uint(100).unwrap()),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = (0..1000u64)
            .map(|i| Tuple::from([i % 10, i % 100]))
            .collect();
        let relation = Relation::from_tuples(schema, tuples).unwrap();
        let config = DbConfig {
            codec: CodecOptions {
                block_capacity: 128,
                ..Default::default()
            },
            ..Default::default()
        };
        let device = BlockDevice::new(128, config.disk);
        let pool = BufferPool::new(device.clone(), config.buffer_frames);
        StoredRelation::bulk_load(device, pool, &relation, config).unwrap()
    }

    #[test]
    fn count_all_is_free() {
        let rel = stored();
        let (v, cost) = rel.aggregate(Aggregate::Count, &Selection::all()).unwrap();
        assert_eq!(v, AggregateValue::Count(1000));
        assert_eq!(cost.data_blocks, 0, "metadata answers COUNT(*)");
    }

    #[test]
    fn min_max_of_clustering_attr_is_cheap() {
        let rel = stored();
        let (v, cost) = rel
            .aggregate(Aggregate::Min { attr: 0 }, &Selection::all())
            .unwrap();
        assert_eq!(v, AggregateValue::Extremum(Some(0)));
        assert_eq!(cost.data_blocks, 0);
        let (v, _) = rel
            .aggregate(Aggregate::Max { attr: 0 }, &Selection::all())
            .unwrap();
        assert_eq!(v, AggregateValue::Extremum(Some(9)));
    }

    #[test]
    fn sum_and_avg_match_brute_force() {
        let rel = stored();
        let all = rel.scan_all().unwrap();
        let sel = Selection::all().and(RangePredicate {
            attr: 1,
            lo: 10,
            hi: 50,
        });
        let matching: Vec<_> = all.iter().filter(|t| sel.matches(t)).collect();
        let expect_sum: u128 = matching.iter().map(|t| t.digits()[1] as u128).sum();

        let (v, _) = rel.aggregate(Aggregate::Sum { attr: 1 }, &sel).unwrap();
        assert_eq!(v, AggregateValue::Sum(expect_sum));

        let (v, _) = rel.aggregate(Aggregate::Avg { attr: 1 }, &sel).unwrap();
        let AggregateValue::Avg(Some(avg)) = v else {
            panic!("non-empty selection");
        };
        assert!((avg - expect_sum as f64 / matching.len() as f64).abs() < 1e-9);

        let (v, _) = rel.aggregate(Aggregate::Count, &sel).unwrap();
        assert_eq!(v, AggregateValue::Count(matching.len() as u64));
    }

    #[test]
    fn empty_match_extremes_are_none() {
        let rel = stored();
        // Contradictory conjuncts on the same attribute: nothing matches.
        let sel = Selection::all()
            .and(RangePredicate::equals(1, 0))
            .and(RangePredicate::equals(1, 1));
        let (v, _) = rel.aggregate(Aggregate::Min { attr: 1 }, &sel).unwrap();
        assert_eq!(v, AggregateValue::Extremum(None));
        let (v, _) = rel.aggregate(Aggregate::Avg { attr: 1 }, &sel).unwrap();
        assert_eq!(v, AggregateValue::Avg(None));
    }

    #[test]
    fn group_by_matches_brute_force() {
        let rel = stored();
        let all = rel.scan_all().unwrap();
        let sel = Selection::all().and(RangePredicate {
            attr: 1,
            lo: 0,
            hi: 49,
        });
        let (groups, _) = rel
            .aggregate_group_by(0, Aggregate::Sum { attr: 1 }, &sel)
            .unwrap();
        for g in 0..10u64 {
            let expect: u128 = all
                .iter()
                .filter(|t| t.digits()[0] == g && t.digits()[1] < 50)
                .map(|t| t.digits()[1] as u128)
                .sum();
            assert_eq!(
                groups.get(&g).copied(),
                Some(AggregateValue::Sum(expect)),
                "group {g}"
            );
        }
        // COUNT per group.
        let (counts, _) = rel
            .aggregate_group_by(0, Aggregate::Count, &Selection::all())
            .unwrap();
        assert_eq!(counts.len(), 10);
        assert!(counts.values().all(|v| *v == AggregateValue::Count(100)));
    }

    #[test]
    fn group_by_empty_selection_result() {
        let rel = stored();
        let sel = Selection::all()
            .and(RangePredicate::equals(1, 0))
            .and(RangePredicate::equals(1, 1));
        let (groups, _) = rel.aggregate_group_by(0, Aggregate::Count, &sel).unwrap();
        assert!(groups.is_empty());
    }

    #[test]
    fn min_with_predicate_decodes_blocks() {
        let rel = stored();
        let sel = Selection::all().and(RangePredicate {
            attr: 0,
            lo: 3,
            hi: 3,
        });
        let (v, cost) = rel.aggregate(Aggregate::Min { attr: 1 }, &sel).unwrap();
        let expect = rel
            .scan_all()
            .unwrap()
            .iter()
            .filter(|t| t.digits()[0] == 3)
            .map(|t| t.digits()[1])
            .min();
        assert_eq!(v, AggregateValue::Extremum(expect));
        assert!(cost.data_blocks > 0);
        assert!((cost.data_blocks as usize) < rel.block_count());
    }
}
