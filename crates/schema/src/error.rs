//! Error types for schema construction and attribute encoding.

use core::fmt;

/// Errors raised while building schemas or encoding/decoding attribute
/// values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A schema must have at least one attribute.
    EmptySchema,
    /// Attribute names within a schema must be unique.
    DuplicateAttribute {
        /// The repeated attribute name.
        name: String,
    },
    /// A domain must contain at least one value.
    EmptyDomain {
        /// Name of the offending attribute.
        attribute: String,
    },
    /// An integer range domain had `min > max`.
    InvalidRange {
        /// Lower bound supplied.
        min: i64,
        /// Upper bound supplied.
        max: i64,
    },
    /// An enumerated domain contained the same value twice.
    DuplicateDomainValue {
        /// The repeated domain value.
        value: String,
    },
    /// A value did not belong to the attribute's domain.
    ValueNotInDomain {
        /// Name of the attribute being encoded.
        attribute: String,
        /// Rendering of the offending value.
        value: String,
    },
    /// A value had the wrong type for the attribute's domain.
    TypeMismatch {
        /// Name of the attribute being encoded.
        attribute: String,
        /// What the domain expects.
        expected: &'static str,
        /// What was supplied.
        got: &'static str,
    },
    /// An ordinal was out of range during decoding.
    OrdinalOutOfRange {
        /// Name of the attribute being decoded.
        attribute: String,
        /// The ordinal supplied.
        ordinal: u64,
        /// The domain size it must be strictly less than.
        size: u64,
    },
    /// A row had the wrong number of values for the schema.
    ArityMismatch {
        /// Number of attributes in the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// Referenced an attribute that does not exist.
    NoSuchAttribute {
        /// The name or index that failed to resolve.
        attribute: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::EmptySchema => write!(f, "schema has no attributes"),
            SchemaError::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute name {name:?}")
            }
            SchemaError::EmptyDomain { attribute } => {
                write!(f, "attribute {attribute:?} has an empty domain")
            }
            SchemaError::InvalidRange { min, max } => {
                write!(f, "invalid integer range: min {min} > max {max}")
            }
            SchemaError::DuplicateDomainValue { value } => {
                write!(f, "duplicate domain value {value:?}")
            }
            SchemaError::ValueNotInDomain { attribute, value } => {
                write!(f, "value {value} not in domain of attribute {attribute:?}")
            }
            SchemaError::TypeMismatch {
                attribute,
                expected,
                got,
            } => write!(f, "attribute {attribute:?} expects {expected}, got {got}"),
            SchemaError::OrdinalOutOfRange {
                attribute,
                ordinal,
                size,
            } => write!(
                f,
                "ordinal {ordinal} out of range for attribute {attribute:?} (domain size {size})"
            ),
            SchemaError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row has {got} values but schema has {expected} attributes"
                )
            }
            SchemaError::NoSuchAttribute { attribute } => {
                write!(f, "no such attribute: {attribute}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}
