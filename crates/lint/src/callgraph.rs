//! The approximate call graph.
//!
//! Call *sites* are recognized syntactically from the token stream —
//! `name(…)` free calls, `recv.name(…)` method calls, `Qual::name(…)`
//! path calls — and resolved against the [`Symbols`] table by a
//! conservative cascade:
//!
//! 1. a path qualifier that names a known impl type or a workspace crate
//!    narrows the candidate set to that type / crate;
//! 2. otherwise a unique same-file definition wins;
//! 3. otherwise a unique same-crate definition wins;
//! 4. otherwise a globally unique definition wins;
//! 5. otherwise the call is left **unresolved**.
//!
//! The posture is deliberately false-negative (DESIGN.md §17): an
//! unresolved call contributes no edge, so reachability-based rules can
//! miss paths that flow through trait objects, closures, or ambiguous
//! names — but every edge that *is* in the graph corresponds to a real
//! syntactic call whose target heuristic had exactly one answer.

use std::collections::BTreeMap;

use crate::lexer::{balanced, Kind, Token};
use crate::symbols::{FnDef, Symbols};
use crate::workspace::Workspace;

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the caller in `Symbols::fns`.
    pub caller: usize,
    /// Callee name as written.
    pub name: String,
    /// Path qualifier (`Qual::name`), if any — the last identifier
    /// before the `::`.
    pub qualifier: Option<String>,
    /// True for `recv.name(…)` method-call syntax.
    pub is_method: bool,
    /// Receiver token range (indices into the file's token stream) for
    /// method calls: the primary expression the `.` hangs off.
    pub receiver: Option<(usize, usize)>,
    /// Token index of the callee-name token.
    pub name_tok: usize,
    /// Argument token ranges, one `(start, end)` (exclusive) per
    /// top-level comma-separated argument.
    pub args: Vec<(usize, usize)>,
    /// 1-based source line of the callee name.
    pub line: u32,
    /// Resolved target: index into `Symbols::fns`, if the cascade found
    /// exactly one.
    pub target: Option<usize>,
}

/// The call graph for one workspace: every recognized call site, plus
/// an adjacency list over resolved edges.
pub struct CallGraph {
    /// All call sites, grouped in caller order.
    pub sites: Vec<CallSite>,
    /// `edges[f]` = indices (into `Symbols::fns`) of resolved callees of
    /// fn `f`, sorted and deduplicated.
    pub edges: Vec<Vec<usize>>,
    /// Count of call sites the cascade could not resolve.
    pub unresolved: usize,
}

impl CallGraph {
    /// Builds the graph for `ws` over the given symbol table.
    pub fn build(ws: &Workspace, syms: &Symbols) -> CallGraph {
        let mut sites = Vec::new();
        for (fi, fun) in syms.fns.iter().enumerate() {
            let Some((open, close)) = fun.body else {
                continue;
            };
            let toks = &ws.files[fun.file].scan.tokens;
            // Bodies of fns nested inside this one belong to the nested
            // fn, not to us.
            let nested: Vec<(usize, usize)> = syms
                .fns
                .iter()
                .filter(|g| g.file == fun.file)
                .filter_map(|g| g.body)
                .filter(|&(o, c)| o > open && c < close)
                .collect();
            collect_sites(toks, fi, open + 1, close, &nested, &mut sites);
        }
        let mut unresolved = 0usize;
        let mut edges = vec![Vec::new(); syms.fns.len()];
        for site in &mut sites {
            site.target = resolve(site, syms);
            match site.target {
                Some(t) => edges[site.caller].push(t),
                None => unresolved += 1,
            }
        }
        for e in &mut edges {
            e.sort_unstable();
            e.dedup();
        }
        CallGraph {
            sites,
            edges,
            unresolved,
        }
    }

    /// Call sites belonging to caller `f`.
    pub fn sites_of(&self, f: usize) -> impl Iterator<Item = &CallSite> {
        self.sites.iter().filter(move |s| s.caller == f)
    }

    /// Stable JSON rendering of the resolved graph: one key per defined
    /// fn (qualified id, sorted), each with its sorted callee-id list,
    /// plus a summary object. Line numbers are deliberately omitted so
    /// the `results/callgraph.json` snapshot only drifts when the call
    /// structure does.
    pub fn to_json(&self, syms: &Symbols) -> String {
        let mut map: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (fi, fun) in syms.fns.iter().enumerate() {
            let mut callees: Vec<String> = self.edges[fi]
                .iter()
                .map(|&t| syms.fns[t].qualified())
                .collect();
            callees.sort();
            callees.dedup();
            // Duplicate qualified ids (e.g. two trait impls the table
            // collapsed) merge their edge lists.
            map.entry(fun.qualified()).or_default().extend(callees);
        }
        let mut s = String::from("{\n  \"functions\": {\n");
        let n = map.len();
        for (i, (id, mut callees)) in map.into_iter().enumerate() {
            callees.sort();
            callees.dedup();
            s.push_str("    \"");
            s.push_str(&esc(&id));
            s.push_str("\": [");
            for (j, c) in callees.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push('"');
                s.push_str(&esc(c));
                s.push('"');
            }
            s.push(']');
            if i + 1 < n {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  },\n  \"summary\": {");
        s.push_str(&format!(
            "\"functions\": {}, \"call_sites\": {}, \"resolved\": {}, \"unresolved\": {}",
            syms.fns.len(),
            self.sites.len(),
            self.sites.len() - self.unresolved,
            self.unresolved
        ));
        s.push_str("}\n}\n");
        s
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Keywords that look like `kw(…)` but are not calls.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "fn"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "async"
            | "await"
            | "unsafe"
            | "impl"
            | "dyn"
            | "where"
            | "as"
            | "in"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
    )
}

/// Scan tokens `[start, end)` of one fn body for call sites, skipping
/// the `skip` sub-ranges (nested fn bodies).
fn collect_sites(
    t: &[Token],
    caller: usize,
    start: usize,
    end: usize,
    skip: &[(usize, usize)],
    out: &mut Vec<CallSite>,
) {
    let mut i = start;
    while i < end {
        if let Some(&(_, close)) = skip.iter().find(|&&(o, c)| o <= i && i <= c) {
            i = close + 1;
            continue;
        }
        let tok = &t[i];
        if tok.kind != Kind::Ident || is_keyword(&tok.text) {
            i += 1;
            continue;
        }
        // Macro invocation `name!(…)` — never a fn call.
        if t.get(i + 1).is_some_and(|x| x.is_punct('!')) {
            i += 1;
            continue;
        }
        // The token after the name (possibly past a turbofish) must be `(`.
        let mut after = i + 1;
        if t.get(after).is_some_and(|x| x.is_punct(':'))
            && t.get(after + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(after + 2).is_some_and(|x| x.is_punct('<'))
        {
            // Turbofish `name::<T>(…)`: skip to matching `>`.
            let mut depth = 0i32;
            let mut j = after + 2;
            while j < end {
                if t[j].is_punct('<') {
                    depth += 1;
                } else if t[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            after = j + 1;
        }
        if !t.get(after).is_some_and(|x| x.is_punct('(')) {
            i += 1;
            continue;
        }
        let Some(close) = balanced(t, after, '(', ')') else {
            i += 1;
            continue;
        };
        // Classify by what precedes the name.
        let prev = i.checked_sub(1).map(|p| &t[p]);
        let mut is_method = false;
        let mut qualifier = None;
        let mut receiver = None;
        match prev {
            Some(p) if p.is_punct('.') => {
                is_method = true;
                receiver = receiver_range(t, i - 1, start);
            }
            Some(p) if p.is_punct(':') => {
                // `Qual::name(` — take the last ident before the `::`.
                if i >= 3 && t[i - 2].is_punct(':') && t[i - 3].kind == Kind::Ident {
                    qualifier = Some(t[i - 3].text.clone());
                } else {
                    // `::name(` or `<T as X>::name(` — unknown qualifier;
                    // leave it unresolvable rather than guess.
                    qualifier = Some(String::new());
                }
            }
            Some(p) if p.is_ident("fn") => {
                // A nested fn definition, not a call.
                i = after + 1;
                continue;
            }
            _ => {}
        }
        let args = split_args(t, after, close);
        out.push(CallSite {
            caller,
            name: tok.text.clone(),
            qualifier,
            is_method,
            receiver,
            name_tok: i,
            args,
            line: tok.line,
            target: None,
        });
        // Arguments may themselves contain calls: keep scanning from
        // just inside the parens.
        i += 1;
    }
}

/// Argument ranges of a call whose `(` is at `open` and `)` at `close`.
fn split_args(t: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    if open + 1 == close {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = open + 1;
    for (j, x) in t.iter().enumerate().take(close).skip(open + 1) {
        if x.is_punct('(') || x.is_punct('[') || x.is_punct('{') {
            depth += 1;
        } else if x.is_punct(')') || x.is_punct(']') || x.is_punct('}') {
            depth -= 1;
        } else if x.is_punct('<') {
            angle += 1;
        } else if x.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if x.is_punct(',') && depth == 0 && angle == 0 {
            if start < j {
                out.push((start, j));
            }
            start = j + 1;
        }
    }
    if start < close {
        out.push((start, close));
    }
    out
}

/// The receiver expression of a method call: walk left from the `.` at
/// `dot` over one postfix chain (`a.b[0].c()?` etc.), stopping at an
/// operator or statement boundary. Returns a token range.
fn receiver_range(t: &[Token], dot: usize, floor: usize) -> Option<(usize, usize)> {
    let mut i = dot;
    while i > floor {
        let p = &t[i - 1];
        if p.kind == Kind::Ident && !is_keyword(&p.text) {
            i -= 1;
            continue;
        }
        if p.is_punct(')') || p.is_punct(']') {
            // Matching open bracket: walk back.
            let (openc, closec) = if p.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 0i32;
            let mut j = i - 1;
            loop {
                if t[j].is_punct(closec) {
                    depth += 1;
                } else if t[j].is_punct(openc) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == floor {
                    return None;
                }
                j -= 1;
            }
            i = j;
            continue;
        }
        if p.is_punct('.') || p.is_punct('?') {
            i -= 1;
            continue;
        }
        if p.is_punct(':') && i >= 2 && t[i - 2].is_punct(':') {
            i -= 2;
            continue;
        }
        break;
    }
    if i == dot {
        None
    } else {
        Some((i, dot))
    }
}

/// Map a crate-path qualifier (`avq_codec`) to its directory
/// (`crates/codec/`). The workspace convention is `avq_<dir>`.
fn crate_qualifier_dir(q: &str) -> Option<String> {
    let dir = q.strip_prefix("avq_")?;
    Some(format!("crates/{dir}/"))
}

/// The resolution cascade described in the module docs.
fn resolve(site: &CallSite, syms: &Symbols) -> Option<usize> {
    let candidates: Vec<(usize, &FnDef)> = syms.by_name(&site.name).collect();
    if candidates.is_empty() {
        return None;
    }
    let caller = &syms.fns[site.caller];

    // Qualified path call: `Type::name(…)` or `avq_crate::name(…)`.
    if let Some(q) = &site.qualifier {
        if q.is_empty() {
            return None;
        }
        let by_type: Vec<usize> = candidates
            .iter()
            .filter(|(_, f)| f.impl_type.as_deref() == Some(q.as_str()))
            .map(|(i, _)| *i)
            .collect();
        if let [one] = by_type[..] {
            return Some(one);
        }
        if by_type.len() > 1 {
            return None;
        }
        if let Some(dir) = crate_qualifier_dir(q) {
            let by_crate: Vec<usize> = candidates
                .iter()
                .filter(|(_, f)| f.crate_dir == dir && f.impl_type.is_none())
                .map(|(i, _)| *i)
                .collect();
            if let [one] = by_crate[..] {
                return Some(one);
            }
        }
        return None;
    }

    // Method calls only match defs with a receiver; free calls only
    // match defs without one (associated fns called via `Self::` land
    // in the qualified branch).
    let shaped: Vec<(usize, &FnDef)> = candidates
        .into_iter()
        .filter(|(_, f)| f.has_self == site.is_method)
        .collect();
    // `self.name(…)` prefers the caller's own impl block.
    if site.is_method {
        if let Some(own) = caller.impl_type.as_deref() {
            let same_impl: Vec<usize> = shaped
                .iter()
                .filter(|(_, f)| {
                    f.impl_type.as_deref() == Some(own) && f.crate_dir == caller.crate_dir
                })
                .map(|(i, _)| *i)
                .collect();
            if let [one] = same_impl[..] {
                return Some(one);
            }
        }
    }
    let same_file: Vec<usize> = shaped
        .iter()
        .filter(|(_, f)| f.file == caller.file)
        .map(|(i, _)| *i)
        .collect();
    if let [one] = same_file[..] {
        return Some(one);
    }
    if same_file.len() > 1 {
        return None;
    }
    let same_crate: Vec<usize> = shaped
        .iter()
        .filter(|(_, f)| f.crate_dir == caller.crate_dir)
        .map(|(i, _)| *i)
        .collect();
    if let [one] = same_crate[..] {
        return Some(one);
    }
    if same_crate.len() > 1 {
        return None;
    }
    if let [(one, _)] = shaped[..] {
        return Some(one);
    }
    None
}

/// Breadth-first reachable set over resolved edges from `roots`.
/// Returns a boolean mask over `Symbols::fns`.
pub fn reachable(edges: &[Vec<usize>], roots: &[usize]) -> Vec<bool> {
    let mut seen = vec![false; edges.len()];
    let mut queue: Vec<usize> = Vec::new();
    for &r in roots {
        if !seen[r] {
            seen[r] = true;
            queue.push(r);
        }
    }
    while let Some(f) = queue.pop() {
        for &t in &edges[f] {
            if !seen[t] {
                seen[t] = true;
                queue.push(t);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;
    use crate::workspace::{SourceFile, Workspace};

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files
                .iter()
                .map(|(rel, src)| SourceFile {
                    rel: rel.to_string(),
                    scan: scan(src),
                })
                .collect(),
            members: Vec::new(),
            root: std::path::PathBuf::from("."),
        }
    }

    fn graph(files: &[(&str, &str)]) -> (Workspace, Symbols, CallGraph) {
        let ws = ws_of(files);
        let syms = Symbols::build(&ws);
        let cg = CallGraph::build(&ws, &syms);
        (ws, syms, cg)
    }

    fn edge(syms: &Symbols, cg: &CallGraph, from: &str, to: &str) -> bool {
        let f = syms.by_name(from).next().unwrap().0;
        let t = syms.by_name(to).next().unwrap().0;
        cg.edges[f].contains(&t)
    }

    #[test]
    fn free_method_and_qualified_calls_resolve() {
        let (_, syms, cg) = graph(&[(
            "crates/db/src/a.rs",
            "struct S;\n\
             impl S { fn m(&self) { helper(1); } }\n\
             fn helper(x: u32) -> u32 { x }\n\
             fn top(s: &S) { s.m(); S::assoc(); }\n\
             impl S { fn assoc() {} }",
        )]);
        assert!(edge(&syms, &cg, "m", "helper"));
        assert!(edge(&syms, &cg, "top", "m"));
        assert!(edge(&syms, &cg, "top", "assoc"));
    }

    #[test]
    fn cross_crate_qualified_and_ambiguity() {
        let (_, syms, cg) = graph(&[
            (
                "crates/db/src/a.rs",
                "fn caller() { avq_codec::decode(); ambiguous(); }",
            ),
            (
                "crates/codec/src/lib.rs",
                "pub fn decode() {}\npub fn ambiguous() {}",
            ),
            ("crates/wal/src/lib.rs", "pub fn ambiguous() {}"),
        ]);
        assert!(edge(&syms, &cg, "caller", "decode"));
        // `ambiguous` has two global candidates and no local one: no edge.
        let caller = syms.by_name("caller").next().unwrap().0;
        assert_eq!(cg.edges[caller].len(), 1);
        assert_eq!(cg.unresolved, 1);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let (_, syms, cg) = graph(&[(
            "crates/db/src/a.rs",
            "fn f() { println!(\"x\"); if true { g(); } return; }\nfn g() {}",
        )]);
        let f = syms.by_name("f").next().unwrap().0;
        assert_eq!(cg.edges[f].len(), 1);
        assert!(edge(&syms, &cg, "f", "g"));
    }

    #[test]
    fn turbofish_and_args() {
        let (_, syms, cg) = graph(&[(
            "crates/db/src/a.rs",
            "fn f() { g::<u32>(1, h(2)); }\nfn g<T>(a: T, b: u32) {}\nfn h(x: u32) -> u32 { x }",
        )]);
        assert!(edge(&syms, &cg, "f", "g"));
        assert!(edge(&syms, &cg, "f", "h"));
        let site = cg.sites.iter().find(|s| s.name == "g").unwrap();
        assert_eq!(site.args.len(), 2);
    }

    #[test]
    fn json_shape_is_stable() {
        let (_, syms, cg) = graph(&[("crates/db/src/a.rs", "fn a() { b(); }\nfn b() {}")]);
        let j = cg.to_json(&syms);
        assert!(j.contains("\"crates/db/src/a.rs::a\": [\"crates/db/src/a.rs::b\"]"));
        assert!(
            j.contains("\"functions\": 2, \"call_sites\": 1, \"resolved\": 1, \"unresolved\": 0")
        );
    }
}
