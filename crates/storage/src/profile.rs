//! Disk and CPU cost models (§5.3.2 of the paper).
//!
//! The response-time evaluation charges every block transfer a fixed 1994
//! disk latency — seek + rotational delay + transfer + controller overhead —
//! and scales CPU-bound coding times per machine. Both models are plain data
//! so experiments can sweep them.

/// Analytic per-block I/O cost model.
///
/// `block_time_ms = seek + rotational + bytes/rate + controller`, or a flat
/// override when `fixed_ms` is set (the paper rounds its sum to 30 ms and
/// uses that figure throughout Fig. 5.9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskProfile {
    /// Average seek time in milliseconds (paper: 10–20 ms, uses 20).
    pub seek_ms: f64,
    /// Rotational delay in milliseconds (paper: 8 ms).
    pub rotational_ms: f64,
    /// Controller overhead in milliseconds (paper: 2 ms).
    pub controller_ms: f64,
    /// Sustained transfer rate in megabytes per second (paper: 3 MB/s).
    pub transfer_mb_per_s: f64,
    /// When set, every block costs exactly this many milliseconds and the
    /// analytic components are ignored.
    pub fixed_ms: Option<f64>,
}

impl DiskProfile {
    /// The paper's disk, with the analytic components it lists.
    pub fn analytic_1994() -> Self {
        DiskProfile {
            seek_ms: 20.0,
            rotational_ms: 8.0,
            controller_ms: 2.0,
            transfer_mb_per_s: 3.0,
            fixed_ms: None,
        }
    }

    /// The paper's rounded figure: exactly 30 ms per block (`t₁` in
    /// Fig. 5.9), regardless of block size.
    pub fn paper_fixed() -> Self {
        DiskProfile {
            fixed_ms: Some(30.0),
            ..Self::analytic_1994()
        }
    }

    /// A zero-latency profile for tests that only count blocks.
    pub fn instant() -> Self {
        DiskProfile {
            seek_ms: 0.0,
            rotational_ms: 0.0,
            controller_ms: 0.0,
            transfer_mb_per_s: f64::INFINITY,
            fixed_ms: Some(0.0),
        }
    }

    /// Milliseconds charged for transferring one block of `bytes` bytes.
    pub fn block_time_ms(&self, bytes: usize) -> f64 {
        if let Some(fixed) = self.fixed_ms {
            return fixed;
        }
        let transfer = bytes as f64 / (self.transfer_mb_per_s * 1_000_000.0) * 1000.0;
        self.seek_ms + self.rotational_ms + transfer + self.controller_ms
    }
}

impl Default for DiskProfile {
    fn default() -> Self {
        Self::paper_fixed()
    }
}

/// A machine profile for CPU-bound costs: a name and a scale factor applied
/// to times measured on the host.
///
/// §5.2 measures block coding/decoding on three 1994 machines. We reproduce
/// the *model* by measuring on the host and scaling; the shipped constants
/// are calibrated so the scaled times reproduce the paper's rows 1–2
/// relative to the HP 9000/735.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Display name.
    pub name: &'static str,
    /// Multiplier on host-measured CPU time (HP 9000/735 ≡ 1.0).
    pub cpu_scale: f64,
    /// The paper's measured block decoding time `t₂` in ms (Fig. 5.9 row 2),
    /// used when reproducing the published table exactly.
    pub paper_decode_ms: f64,
    /// The paper's measured block coding time in ms (Fig. 5.9 row 1).
    pub paper_encode_ms: f64,
    /// The paper's tuple-extraction time `t₃` in ms (Fig. 5.9 row 4).
    pub paper_extract_ms: f64,
}

impl MachineProfile {
    /// HP 9000/735 — the fastest machine in Fig. 5.9 (reference, scale 1).
    pub fn hp_9000_735() -> Self {
        MachineProfile {
            name: "HP 9000/735",
            cpu_scale: 1.0,
            paper_encode_ms: 13.91,
            paper_decode_ms: 13.85,
            paper_extract_ms: 1.34,
        }
    }

    /// Sun 4/50 (SPARCstation IPX class).
    pub fn sun_4_50() -> Self {
        MachineProfile {
            name: "Sun 4/50",
            cpu_scale: 40.45 / 13.85,
            paper_encode_ms: 40.29,
            paper_decode_ms: 40.45,
            paper_extract_ms: 3.70,
        }
    }

    /// DEC 5000/120 — the slowest machine in Fig. 5.9.
    pub fn dec_5000_120() -> Self {
        MachineProfile {
            name: "DEC 5000/120",
            cpu_scale: 61.33 / 13.85,
            paper_encode_ms: 69.92,
            paper_decode_ms: 61.33,
            paper_extract_ms: 9.77,
        }
    }

    /// The three machines of Fig. 5.9, fastest first.
    pub fn paper_machines() -> Vec<MachineProfile> {
        vec![Self::hp_9000_735(), Self::sun_4_50(), Self::dec_5000_120()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_matches_paper_arithmetic() {
        // 20 + 8 + 8192/3MB + 2 ≈ 32.7 ms — the sum the paper rounds to 30.
        let p = DiskProfile::analytic_1994();
        let t = p.block_time_ms(8192);
        assert!((t - 32.730_666).abs() < 1e-3, "got {t}");
    }

    #[test]
    fn fixed_profile_is_exactly_30() {
        let p = DiskProfile::paper_fixed();
        assert_eq!(p.block_time_ms(8192), 30.0);
        assert_eq!(p.block_time_ms(1), 30.0);
    }

    #[test]
    fn instant_profile_is_free() {
        assert_eq!(DiskProfile::instant().block_time_ms(8192), 0.0);
    }

    #[test]
    fn machine_scales_are_relative_to_hp() {
        let hp = MachineProfile::hp_9000_735();
        let sun = MachineProfile::sun_4_50();
        let dec = MachineProfile::dec_5000_120();
        assert_eq!(hp.cpu_scale, 1.0);
        assert!(sun.cpu_scale > 2.5 && sun.cpu_scale < 3.5);
        assert!(dec.cpu_scale > sun.cpu_scale);
        assert_eq!(MachineProfile::paper_machines().len(), 3);
    }
}
