//! Flow-insensitive intraprocedural taint propagation.
//!
//! The engine answers one question per function body: starting from a
//! seed set of tainted binding names (plus any calls to registered
//! byte-source functions inside the body), which names are tainted at
//! the end of a bounded fixpoint over the body's `let` statements, which
//! *sinks* (allocation sizes, slice indices) do tainted values reach,
//! and which call arguments carry taint out of the function?
//!
//! Deliberate approximations, all on the false-negative side except
//! where noted (DESIGN.md §17):
//! - flow-insensitive: a name validated *anywhere* in the body counts as
//!   clean everywhere in it (false-negative);
//! - a `let` whose initializer contains a registered validator call is
//!   never tainted by that initializer (false-negative);
//! - field accesses (`x.len`) and struct-literal field names are not
//!   treated as uses of a tainted `len` binding (false-negative);
//! - loop/match bindings (`for x in …`) are not tracked (false-negative);
//! - any identifier token sharing a tainted name is a use of it, even a
//!   shadowed rebinding (the one false-*positive* direction, answered
//!   with `// lint: sanitized(<why>)` waivers).

use std::collections::BTreeSet;

use crate::callgraph::CallSite;
use crate::lexer::{balanced, Kind, Token};

/// Names the taint engine consults, borrowed from the lint config (or a
/// test harness).
pub struct TaintConfig<'a> {
    /// Functions whose *return value* is untrusted bytes/integers.
    pub sources: &'a [&'a str],
    /// Methods that fill their *receiver* from untrusted bytes.
    pub fill_sources: &'a [&'a str],
    /// Functions/methods that validate or clamp; arguments and receivers
    /// passing through them count as clean.
    pub validators: &'a [&'a str],
    /// Call names whose arguments are allocation-size sinks.
    pub sink_calls: &'a [&'a str],
}

/// One tainted value reaching a sink.
#[derive(Debug, Clone)]
pub struct SinkHit {
    /// 1-based source line of the sink.
    pub line: u32,
    /// Sink class, e.g. `allocation size` or `slice index`.
    pub what: &'static str,
    /// The sink expression's anchor (`with_capacity`, `vec!`, `[…]`).
    pub sink: String,
    /// The tainted name that reached it.
    pub ident: String,
}

/// The result of analyzing one body.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Final tainted name set (asserted by the unit tests; the rules
    /// consume `hits` and `tainted_args`).
    #[cfg_attr(not(test), allow(dead_code))]
    pub tainted: BTreeSet<String>,
    /// Tainted values reaching local sinks, in body order.
    pub hits: Vec<SinkHit>,
    /// `(index into the provided site list, tainted argument positions,
    /// tainted name)` for every call passing taint onward.
    pub tainted_args: Vec<(usize, usize, String)>,
}

/// One `let` statement: bound names and initializer token range.
struct LetStmt {
    pats: Vec<String>,
    rhs: Option<(usize, usize)>,
}

/// Analyzer for one function body.
pub struct Intra<'a> {
    toks: &'a [Token],
    body: (usize, usize),
    sites: Vec<&'a CallSite>,
    lets: Vec<LetStmt>,
}

impl<'a> Intra<'a> {
    /// Prepare the body `[open, close]` of one fn whose call sites are
    /// `sites` (each site's `name_tok` must lie inside the body).
    pub fn new(toks: &'a [Token], body: (usize, usize), sites: Vec<&'a CallSite>) -> Intra<'a> {
        let lets = parse_lets(toks, body);
        Intra {
            toks,
            body,
            sites,
            lets,
        }
    }

    /// Run the fixpoint from `seeds` and scan for sinks. With
    /// `track_sources`, calls to registered source functions seed taint
    /// too (the top-level mode); without it, only the seeds propagate
    /// (the mode used for parameter summaries, so a callee's own source
    /// calls don't pollute the per-parameter answer).
    pub fn analyze(
        &self,
        seeds: &BTreeSet<String>,
        cfg: &TaintConfig<'_>,
        track_sources: bool,
    ) -> Analysis {
        // Names cleansed anywhere in the body: arguments and receivers
        // of validator calls.
        let mut cleansed: BTreeSet<String> = BTreeSet::new();
        for s in &self.sites {
            if !cfg.validators.contains(&s.name.as_str()) {
                continue;
            }
            for &(a, b) in &s.args {
                collect_used_idents(&self.toks[a..b], &mut cleansed);
            }
            if let Some((a, b)) = s.receiver {
                collect_used_idents(&self.toks[a..b], &mut cleansed);
            }
        }

        let mut tainted: BTreeSet<String> = seeds
            .iter()
            .filter(|s| !cleansed.contains(*s))
            .cloned()
            .collect();

        // Fill-style sources taint their receiver unconditionally.
        for s in &self.sites {
            if track_sources && cfg.fill_sources.contains(&s.name.as_str()) {
                if let Some((a, b)) = s.receiver {
                    if b - a == 1 && self.toks[a].kind == Kind::Ident {
                        let name = self.toks[a].text.clone();
                        if !cleansed.contains(&name) {
                            tainted.insert(name);
                        }
                    }
                }
            }
        }

        // Bounded fixpoint over the `let` statements.
        for _ in 0..10 {
            let mut changed = false;
            for l in &self.lets {
                let Some(rhs) = l.rhs else { continue };
                if self.range_has_validator(rhs, cfg) {
                    continue;
                }
                let dirty = (track_sources && self.range_has_source(rhs, cfg))
                    || range_uses_any(&self.toks[rhs.0..rhs.1], &tainted);
                if !dirty {
                    continue;
                }
                for p in &l.pats {
                    if !cleansed.contains(p) && tainted.insert(p.clone()) {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let mut out = Analysis {
            tainted: tainted.clone(),
            ..Analysis::default()
        };

        // Sinks: registered allocation calls…
        for s in &self.sites {
            if !cfg.sink_calls.contains(&s.name.as_str()) {
                continue;
            }
            for &(a, b) in &s.args {
                if let Some(ident) = self.first_dirty(a, b, &tainted, cfg, track_sources) {
                    out.hits.push(SinkHit {
                        line: s.line,
                        what: "allocation size",
                        sink: s.name.clone(),
                        ident,
                    });
                    break;
                }
            }
        }
        // …`vec![_; n]` macro lengths…
        let t = self.toks;
        for i in self.body.0 + 1..self.body.1 {
            if t[i].is_ident("vec")
                && t.get(i + 1).is_some_and(|x| x.is_punct('!'))
                && t.get(i + 2).is_some_and(|x| x.is_punct('['))
            {
                let Some(end) = balanced(t, i + 2, '[', ']') else {
                    continue;
                };
                if let Some(semi) = top_level_semicolon(&t[i + 3..end]) {
                    let len = (i + 3 + semi + 1, end);
                    if let Some(ident) =
                        self.first_dirty(len.0, len.1, &tainted, cfg, track_sources)
                    {
                        out.hits.push(SinkHit {
                            line: t[i].line,
                            what: "allocation size",
                            sink: "vec![_; n]".into(),
                            ident,
                        });
                    }
                }
            }
            // …and direct index expressions.
            if t[i].is_punct('[') && i > self.body.0 + 1 {
                let prev = &t[i - 1];
                let indexes = prev.is_punct(')')
                    || prev.is_punct(']')
                    || (prev.kind == Kind::Ident && !is_stmt_keyword(&prev.text));
                if !indexes {
                    continue;
                }
                let Some(end) = balanced(t, i, '[', ']') else {
                    continue;
                };
                if let Some(ident) = self.first_dirty(i + 1, end, &tainted, cfg, track_sources) {
                    out.hits.push(SinkHit {
                        line: t[i].line,
                        what: "slice index",
                        sink: "[…]".into(),
                        ident,
                    });
                }
            }
        }
        out.hits.sort_by_key(|h| h.line);

        // Taint escaping through call arguments.
        for (si, s) in self.sites.iter().enumerate() {
            for (pos, &(a, b)) in s.args.iter().enumerate() {
                if let Some(ident) = self.first_dirty(a, b, &tainted, cfg, track_sources) {
                    out.tainted_args.push((si, pos, ident));
                }
            }
        }
        out
    }

    /// A tainted name (or, in source-tracking mode, the name of a
    /// source call) used inside the token range, if any — skipping
    /// ranges that pass a validator.
    fn first_dirty(
        &self,
        a: usize,
        b: usize,
        tainted: &BTreeSet<String>,
        cfg: &TaintConfig<'_>,
        track_sources: bool,
    ) -> Option<String> {
        if self.range_has_validator((a, b), cfg) {
            return None;
        }
        let slice = &self.toks[a..b];
        let mut used = BTreeSet::new();
        collect_used_idents(slice, &mut used);
        if let Some(hit) = used.iter().find(|u| tainted.contains(*u)) {
            return Some(hit.clone());
        }
        if track_sources {
            for s in &self.sites {
                if s.name_tok >= a && s.name_tok < b && cfg.sources.contains(&s.name.as_str()) {
                    return Some(format!("{}(…)", s.name));
                }
            }
        }
        None
    }

    fn range_has_source(&self, (a, b): (usize, usize), cfg: &TaintConfig<'_>) -> bool {
        self.sites
            .iter()
            .any(|s| s.name_tok >= a && s.name_tok < b && cfg.sources.contains(&s.name.as_str()))
    }

    fn range_has_validator(&self, (a, b): (usize, usize), cfg: &TaintConfig<'_>) -> bool {
        self.sites
            .iter()
            .any(|s| s.name_tok >= a && s.name_tok < b && cfg.validators.contains(&s.name.as_str()))
    }
}

/// Statement keywords that legally precede `[` without indexing.
fn is_stmt_keyword(s: &str) -> bool {
    matches!(
        s,
        "return" | "break" | "in" | "if" | "else" | "match" | "mut" | "let" | "as" | "move"
    )
}

/// Identifier *uses* in a token slice: plain identifiers, excluding
/// field accesses (preceded by `.`), struct-literal field names /
/// labeled arguments (followed by a single `:`), and keywords.
fn collect_used_idents(slice: &[Token], out: &mut BTreeSet<String>) {
    for (j, tok) in slice.iter().enumerate() {
        if tok.kind != Kind::Ident || is_stmt_keyword(&tok.text) {
            continue;
        }
        if !tok
            .text
            .chars()
            .next()
            .is_some_and(|c| c.is_lowercase() || c == '_')
        {
            continue;
        }
        if j > 0 && slice[j - 1].is_punct('.') {
            continue;
        }
        let next_colon = slice.get(j + 1).is_some_and(|x| x.is_punct(':'));
        let path = slice.get(j + 2).is_some_and(|x| x.is_punct(':'));
        if next_colon && !path {
            continue;
        }
        out.insert(tok.text.clone());
    }
}

/// Does the slice use any name from `set`?
fn range_uses_any(slice: &[Token], set: &BTreeSet<String>) -> bool {
    if set.is_empty() {
        return false;
    }
    let mut used = BTreeSet::new();
    collect_used_idents(slice, &mut used);
    used.iter().any(|u| set.contains(u))
}

/// First `;` at bracket depth zero in a delimiter group's tokens.
fn top_level_semicolon(group: &[Token]) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in group.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return Some(j);
        }
    }
    None
}

/// Parse the `let` statements of a body range: bound lowercase names and
/// initializer extent.
fn parse_lets(t: &[Token], (open, close): (usize, usize)) -> Vec<LetStmt> {
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        if !t[i].is_ident("let") {
            i += 1;
            continue;
        }
        // Collect pattern names up to the `=` (or `;` for `let x;`).
        let mut pats = Vec::new();
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut eq = None;
        while j < close {
            let x = &t[j];
            if x.is_punct('(') || x.is_punct('[') || x.is_punct('{') || x.is_punct('<') {
                depth += 1;
            } else if x.is_punct(')') || x.is_punct(']') || x.is_punct('}') || x.is_punct('>') {
                depth -= 1;
            } else if x.is_punct(';') && depth <= 0 {
                break;
            } else if x.is_punct('=') && depth <= 0 {
                // `=` but not `==`, `=>`, `>=`, `<=`, `!=`.
                let two = t
                    .get(j + 1)
                    .is_some_and(|n| n.is_punct('=') || n.is_punct('>'));
                let prior = j > 0
                    && matches!(
                        t[j - 1].text.as_str(),
                        "=" | "<" | ">" | "!" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
                    )
                    && t[j - 1].kind == Kind::Punct;
                if !two && !prior {
                    eq = Some(j);
                    break;
                }
            } else if x.kind == Kind::Ident
                && !matches!(x.text.as_str(), "mut" | "ref" | "let")
                && x.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
            {
                pats.push(x.text.clone());
            }
            j += 1;
        }
        let Some(eq) = eq else {
            out.push(LetStmt { pats, rhs: None });
            i = j + 1;
            continue;
        };
        // Initializer: from after `=` to the `;` at relative depth 0.
        let mut depth = 0i32;
        let mut k = eq + 1;
        let mut end = close;
        while k < close {
            let x = &t[k];
            if x.is_punct('(') || x.is_punct('[') || x.is_punct('{') {
                depth += 1;
            } else if x.is_punct(')') || x.is_punct(']') || x.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    end = k;
                    break;
                }
            } else if x.is_punct(';') && depth == 0 {
                end = k;
                break;
            }
            k += 1;
        }
        out.push(LetStmt {
            pats,
            rhs: Some((eq + 1, end)),
        });
        i = eq + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::lexer::scan;
    use crate::symbols::Symbols;
    use crate::workspace::{SourceFile, Workspace};

    const CFG: TaintConfig<'static> = TaintConfig {
        sources: &["read_header", "load_be"],
        fill_sources: &["set_from_bytes_be"],
        validators: &["check_count", "min"],
        sink_calls: &["with_capacity", "reserve"],
    };

    fn analyze(body_src: &str) -> Analysis {
        let src = format!("fn probe(bytes: &[u8]) {{\n{body_src}\n}}");
        let ws = Workspace {
            files: vec![SourceFile {
                rel: "crates/x/src/a.rs".into(),
                scan: scan(&src),
            }],
            members: Vec::new(),
            root: std::path::PathBuf::from("."),
        };
        let syms = Symbols::build(&ws);
        let cg = CallGraph::build(&ws, &syms);
        let f = &syms.fns[0];
        let intra = Intra::new(
            &ws.files[0].scan.tokens,
            f.body.unwrap(),
            cg.sites_of(0).collect(),
        );
        intra.analyze(&BTreeSet::new(), &CFG, true)
    }

    #[test]
    fn source_to_sink_is_caught() {
        let a =
            analyze("let (u, idx) = read_header(bytes)?;\nlet mut v = Vec::new();\nv.reserve(u);");
        assert!(a.tainted.contains("u"));
        assert_eq!(a.hits.len(), 1);
        assert_eq!(a.hits[0].what, "allocation size");
        assert_eq!(a.hits[0].ident, "u");
    }

    #[test]
    fn propagation_through_lets_and_vec_macro() {
        let a = analyze("let u = load_be(bytes, 0, 4);\nlet n = u * 3;\nlet v = vec![0u8; n + 1];");
        assert!(a.tainted.contains("n"));
        assert_eq!(a.hits.len(), 1);
        assert_eq!(a.hits[0].sink, "vec![_; n]");
    }

    #[test]
    fn validators_cleanse() {
        let a = analyze(
            "let u = load_be(bytes, 0, 4);\nlet n = check_count(u)?;\nlet v = Vec::with_capacity(n);",
        );
        assert!(a.hits.is_empty(), "{:?}", a.hits);
        // A clamped rhs is also clean.
        let b = analyze(
            "let u = load_be(bytes, 0, 4);\nlet n = u.min(64);\nlet v = Vec::with_capacity(n);",
        );
        assert!(b.hits.is_empty(), "{:?}", b.hits);
    }

    #[test]
    fn fill_source_taints_receiver_and_index_sink_fires() {
        let a = analyze(
            "let mut big = 0u64;\nbig.set_from_bytes_be(bytes);\nlet x = table[big as usize];",
        );
        assert!(a.tainted.contains("big"));
        assert_eq!(a.hits.len(), 1);
        assert_eq!(a.hits[0].what, "slice index");
    }

    #[test]
    fn tainted_args_escape() {
        let a = analyze("let u = load_be(bytes, 0, 4);\nconsume(u);");
        assert_eq!(a.tainted_args.len(), 1);
        assert!(a.tainted_args.iter().any(|(_, _, id)| id == "u"));
    }
}
