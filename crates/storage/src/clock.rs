//! A virtual clock accumulating simulated I/O and CPU time.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically advancing virtual clock with nanosecond resolution.
///
/// The simulator charges disk latencies and scaled CPU times to this clock
/// instead of sleeping, so the response-time experiments of §5.3 run in
/// microseconds of wall time while reporting 1994-era seconds.
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ms` milliseconds (negative values are ignored).
    pub fn advance_ms(&self, ms: f64) {
        if ms > 0.0 {
            let ns = (ms * 1_000_000.0).round() as u64;
            self.nanos.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.nanos.load(Ordering::Relaxed) as f64 / 1_000_000.0
    }

    /// Current virtual time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ms() / 1000.0
    }

    /// Resets the clock to zero.
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
    }
}

/// Governance deadlines (`avq_obs::GovCtx`) read virtual time through this
/// impl, so a query budget is charged by the same simulated I/O and CPU
/// costs the experiments report — never by a real wall clock.
impl avq_obs::NowMs for SimClock {
    fn now_ms(&self) -> f64 {
        SimClock::now_ms(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_reads() {
        let c = SimClock::new();
        assert_eq!(c.now_ms(), 0.0);
        c.advance_ms(30.0);
        c.advance_ms(0.5);
        assert!((c.now_ms() - 30.5).abs() < 1e-9);
        assert!((c.now_secs() - 0.0305).abs() < 1e-9);
    }

    #[test]
    fn negative_advance_ignored() {
        let c = SimClock::new();
        c.advance_ms(-5.0);
        assert_eq!(c.now_ms(), 0.0);
    }

    #[test]
    fn reset() {
        let c = SimClock::new();
        c.advance_ms(10.0);
        c.reset();
        assert_eq!(c.now_ms(), 0.0);
    }

    #[test]
    fn sub_millisecond_resolution() {
        let c = SimClock::new();
        for _ in 0..1000 {
            c.advance_ms(0.001);
        }
        assert!((c.now_ms() - 1.0).abs() < 1e-9);
    }
}
