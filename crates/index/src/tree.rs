//! A disk-resident B⁺-tree over the simulated block device.
//!
//! This is the access-method substrate of §4.1: the primary index keys are
//! *entire serialized tuples* (fixed-width big-endian serialization preserves
//! the φ order as raw byte comparison), and secondary indexes key on
//! attribute values. Payloads are `u64` (data-block ids or bucket heads).
//!
//! Properties:
//!
//! * nodes live one-per-block on the device, read through the buffer pool,
//!   so traversals are charged simulated I/O (the paper's `I` term);
//! * node capacity is bounded both by serialized bytes (the block size) and
//!   by an optional key-count cap (`order`), which lets tests build the
//!   order-3 trees of Figs. 4.4/4.5;
//! * keys are unique; [`BPlusTree::insert`] upserts;
//! * deletion is *lazy* (keys are removed, nodes are never merged) — the
//!   strategy PostgreSQL uses; separator invariants are preserved because
//!   deletion never moves keys between nodes.

use crate::error::IndexError;
use crate::node::{Node, NO_LEAF};
use avq_storage::{BlockId, BufferPool};
use std::sync::Arc;

/// Aggregate shape statistics for a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Levels from root to leaf inclusive (1 for a lone leaf root).
    pub height: usize,
    /// Total nodes (= blocks) in the tree.
    pub nodes: usize,
    /// Leaf nodes.
    pub leaves: usize,
    /// Total key entries across leaves.
    pub entries: usize,
}

/// A B⁺-tree mapping byte-string keys to `u64` payloads.
#[derive(Debug)]
pub struct BPlusTree {
    pool: Arc<BufferPool>,
    root: BlockId,
    /// Maximum keys per node (`usize::MAX` = bytes-only limit).
    max_keys: usize,
}

impl BPlusTree {
    /// Creates an empty tree whose nodes are capped at the block size only.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self, IndexError> {
        Self::create_with_order(pool, usize::MAX)
    }

    /// Creates an empty tree with at most `max_keys` keys per node
    /// (in addition to the block-size byte limit). `max_keys` must be ≥ 2.
    pub fn create_with_order(pool: Arc<BufferPool>, max_keys: usize) -> Result<Self, IndexError> {
        assert!(max_keys >= 2, "a B+ tree node needs at least 2 keys");
        let root = pool.device().allocate()?;
        pool.write(root, &Node::empty_leaf().to_bytes())?;
        Ok(BPlusTree {
            pool,
            root,
            max_keys,
        })
    }

    /// Bulk-builds a tree from strictly ascending `(key, value)` pairs,
    /// filling nodes completely (classic bottom-up build).
    pub fn bulk_build(
        pool: Arc<BufferPool>,
        max_keys: usize,
        pairs: &[(Vec<u8>, u64)],
    ) -> Result<Self, IndexError> {
        assert!(max_keys >= 2, "a B+ tree node needs at least 2 keys");
        if let Some(pos) = pairs.windows(2).position(|w| w[0].0 >= w[1].0) {
            return Err(IndexError::UnsortedBuildInput { position: pos + 1 });
        }
        let block_size = pool.device().block_size();
        let mut tree = BPlusTree {
            pool,
            root: 0,
            max_keys,
        };
        if pairs.is_empty() {
            tree.root = tree.pool.device().allocate()?;
            tree.pool.write(tree.root, &Node::empty_leaf().to_bytes())?;
            return Ok(tree);
        }

        // Cut pairs into leaves.
        let mut leaf_runs: Vec<&[(Vec<u8>, u64)]> = Vec::new();
        {
            let mut start = 0usize;
            let mut bytes = 7usize; // leaf header
            let mut keys = 0usize;
            for (i, (k, _)) in pairs.iter().enumerate() {
                let entry = 2 + k.len() + 8;
                if 7 + entry > block_size {
                    return Err(IndexError::EntryTooLarge {
                        entry_bytes: entry,
                        block_size,
                    });
                }
                if keys + 1 > max_keys || bytes + entry > block_size {
                    leaf_runs.push(&pairs[start..i]);
                    start = i;
                    bytes = 7;
                    keys = 0;
                }
                bytes += entry;
                keys += 1;
            }
            leaf_runs.push(&pairs[start..]);
        }

        // Allocate leaf blocks up front so next pointers are known.
        let leaf_ids: Vec<BlockId> = leaf_runs
            .iter()
            .map(|_| tree.pool.device().allocate())
            .collect::<Result<_, _>>()?;
        let mut level: Vec<(Vec<u8>, BlockId)> = Vec::with_capacity(leaf_ids.len());
        for (i, run) in leaf_runs.iter().enumerate() {
            let node = Node::Leaf {
                entries: run.to_vec(),
                next: leaf_ids.get(i + 1).copied().unwrap_or(NO_LEAF),
            };
            tree.pool.write(leaf_ids[i], &node.to_bytes())?;
            level.push((run[0].0.clone(), leaf_ids[i]));
        }

        // Build internal levels until a single root remains.
        while level.len() > 1 {
            let mut next_level = Vec::new();
            let mut start = 0usize;
            while start < level.len() {
                // Greedy: take children while the node fits (bytes + order).
                let mut end = start + 1;
                let mut bytes = 7; // header + child0 (4 bytes counted in 7)
                while end < level.len() && end - start <= max_keys {
                    let add = 2 + level[end].0.len() + 4;
                    if bytes + add > block_size {
                        break;
                    }
                    bytes += add;
                    end += 1;
                }
                // Avoid a dangling single-child node at the end (except when
                // the whole level is one child, which becomes the root).
                if end == level.len() - 1 && end - start >= 2 {
                    end -= 1;
                }
                let group = &level[start..end];
                let node = Node::Internal {
                    keys: group[1..].iter().map(|(k, _)| k.clone()).collect(),
                    children: group.iter().map(|&(_, id)| id).collect(),
                };
                let id = tree.pool.device().allocate()?;
                tree.pool.write(id, &node.to_bytes())?;
                next_level.push((group[0].0.clone(), id));
                start = end;
            }
            level = next_level;
        }
        tree.root = level[0].1;
        Ok(tree)
    }

    /// The block id of the root node.
    #[inline]
    pub fn root(&self) -> BlockId {
        self.root
    }

    /// The buffer pool this tree reads through.
    #[inline]
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    fn load(&self, id: BlockId) -> Result<Node, IndexError> {
        let bytes = self.pool.read(id)?;
        Node::from_bytes(id, &bytes)
    }

    fn store(&self, id: BlockId, node: &Node) -> Result<(), IndexError> {
        self.pool.write(id, &node.to_bytes())?;
        Ok(())
    }

    fn node_overflows(&self, node: &Node) -> bool {
        node.key_count() > self.max_keys || node.serialized_len() > self.pool.device().block_size()
    }

    /// Exact lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<u64>, IndexError> {
        let mut id = self.root;
        loop {
            match self.load(id)? {
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| entries[i].1));
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    id = children[idx];
                }
            }
        }
    }

    /// Greatest entry with key ≤ `key`, if any.
    pub fn floor(&self, key: &[u8]) -> Result<Option<(Vec<u8>, u64)>, IndexError> {
        self.floor_rec(self.root, key)
    }

    /// The paper's Fig. 4.4 routing: at each node, follow the child whose
    /// separator (or entry) is *closest* to the key by absolute numeric
    /// difference, treating keys as fixed-width big-endian integers.
    ///
    /// Provided for fidelity and for the test demonstrating why this crate
    /// routes by [`Self::floor`] instead: closest-difference routing can
    /// misdirect a key lying just past a block boundary (see
    /// `closest_routing_can_misroute`), while floor search is exact.
    pub fn closest(&self, key: &[u8]) -> Result<Option<(Vec<u8>, u64)>, IndexError> {
        let mut id = self.root;
        loop {
            match self.load(id)? {
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .iter()
                        .min_by_key(|(k, _)| byte_distance(k, key))
                        .cloned());
                }
                Node::Internal { keys, children } => {
                    // The paper compares the key against each separator and
                    // follows "the link corresponding to the smaller of the
                    // differences": pick the child adjacent to the closest
                    // separator, on the side the key falls.
                    let (best, _) = keys
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, k)| byte_distance(k, key))
                        .expect("internal nodes have >= 1 key");
                    id = if key < keys[best].as_slice() {
                        children[best]
                    } else {
                        children[best + 1]
                    };
                }
            }
        }
    }

    fn floor_rec(&self, id: BlockId, key: &[u8]) -> Result<Option<(Vec<u8>, u64)>, IndexError> {
        match self.load(id)? {
            Node::Leaf { entries, .. } => {
                let idx = entries.partition_point(|(k, _)| k.as_slice() <= key);
                Ok((idx > 0).then(|| entries[idx - 1].clone()))
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                // Fall back leftward across children emptied by lazy deletes.
                for i in (0..=idx).rev() {
                    if let Some(hit) = self.floor_rec(children[i], key)? {
                        return Ok(Some(hit));
                    }
                }
                Ok(None)
            }
        }
    }

    /// All entries with `lo ≤ key ≤ hi`, in key order.
    pub fn range(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, u64)>, IndexError> {
        let mut out = Vec::new();
        if lo > hi {
            return Ok(out);
        }
        // Descend to the leaf that would contain `lo`.
        let mut id = self.root;
        loop {
            match self.load(id)? {
                Node::Leaf { .. } => break,
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= lo);
                    id = children[idx];
                }
            }
        }
        // Walk the leaf chain.
        loop {
            let Node::Leaf { entries, next } = self.load(id)? else {
                return Err(IndexError::CorruptNode {
                    block: id,
                    detail: "leaf chain reached internal node".into(),
                });
            };
            for (k, v) in &entries {
                if k.as_slice() > hi {
                    return Ok(out);
                }
                if k.as_slice() >= lo {
                    out.push((k.clone(), *v));
                }
            }
            if next == NO_LEAF {
                return Ok(out);
            }
            id = next;
        }
    }

    /// Inserts or replaces `key`, returning the previous payload if any.
    pub fn insert(&mut self, key: &[u8], value: u64) -> Result<Option<u64>, IndexError> {
        let entry = 2 + key.len() + 8;
        let block_size = self.pool.device().block_size();
        if 7 + entry > block_size {
            return Err(IndexError::EntryTooLarge {
                entry_bytes: entry,
                block_size,
            });
        }
        let (old, split) = self.insert_rec(self.root, key, value)?;
        if let Some((sep, right)) = split {
            // Grow a new root.
            let new_root = self.pool.device().allocate()?;
            let node = Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            };
            self.store(new_root, &node)?;
            self.root = new_root;
        }
        Ok(old)
    }

    #[allow(clippy::type_complexity)]
    fn insert_rec(
        &mut self,
        id: BlockId,
        key: &[u8],
        value: u64,
    ) -> Result<(Option<u64>, Option<(Vec<u8>, BlockId)>), IndexError> {
        match self.load(id)? {
            Node::Leaf { mut entries, next } => {
                let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        let old = entries[i].1;
                        entries[i].1 = value;
                        Some(old)
                    }
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value));
                        None
                    }
                };
                let node = Node::Leaf { entries, next };
                if !self.node_overflows(&node) {
                    self.store(id, &node)?;
                    return Ok((old, None));
                }
                // Split the leaf.
                let Node::Leaf { mut entries, next } = node else {
                    unreachable!()
                };
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0.clone();
                let right_id = self.pool.device().allocate()?;
                self.store(
                    right_id,
                    &Node::Leaf {
                        entries: right_entries,
                        next,
                    },
                )?;
                self.store(
                    id,
                    &Node::Leaf {
                        entries,
                        next: right_id,
                    },
                )?;
                Ok((old, Some((sep, right_id))))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                let (old, child_split) = self.insert_rec(children[idx], key, value)?;
                if let Some((sep, right)) = child_split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                }
                let node = Node::Internal { keys, children };
                if !self.node_overflows(&node) {
                    self.store(id, &node)?;
                    return Ok((old, None));
                }
                let Node::Internal {
                    mut keys,
                    mut children,
                } = node
                else {
                    unreachable!()
                };
                let mid = keys.len() / 2;
                let up = keys[mid].clone();
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // `up` moves to the parent
                let right_children = children.split_off(mid + 1);
                let right_id = self.pool.device().allocate()?;
                self.store(
                    right_id,
                    &Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    },
                )?;
                self.store(id, &Node::Internal { keys, children })?;
                Ok((old, Some((up, right_id))))
            }
        }
    }

    /// Removes `key` (lazy: no rebalancing), returning its payload.
    pub fn delete(&mut self, key: &[u8]) -> Result<u64, IndexError> {
        let mut id = self.root;
        loop {
            match self.load(id)? {
                Node::Leaf { mut entries, next } => {
                    let i = entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .map_err(|_| IndexError::KeyNotFound)?;
                    let (_, val) = entries.remove(i);
                    self.store(id, &Node::Leaf { entries, next })?;
                    return Ok(val);
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    id = children[idx];
                }
            }
        }
    }

    /// Walks the whole tree, returning shape statistics.
    pub fn stats(&self) -> Result<TreeStats, IndexError> {
        let mut stats = TreeStats {
            height: 0,
            nodes: 0,
            leaves: 0,
            entries: 0,
        };
        self.stats_rec(self.root, 1, &mut stats)?;
        Ok(stats)
    }

    fn stats_rec(&self, id: BlockId, depth: usize, st: &mut TreeStats) -> Result<(), IndexError> {
        st.nodes += 1;
        st.height = st.height.max(depth);
        match self.load(id)? {
            Node::Leaf { entries, .. } => {
                st.leaves += 1;
                st.entries += entries.len();
            }
            Node::Internal { children, .. } => {
                for c in children {
                    self.stats_rec(c, depth + 1, st)?;
                }
            }
        }
        Ok(())
    }

    /// Verifies structural invariants (used by tests): in-node key order,
    /// separator bounds, uniform leaf depth, leaf-chain order, and node
    /// capacity. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut leaf_depths = Vec::new();
        let mut last_key: Option<Vec<u8>> = None;
        self.validate_rec(self.root, None, None, 1, &mut leaf_depths, &mut last_key)
            .map_err(|e| e.to_string())?;
        if let Some((&first, _)) = leaf_depths.split_first() {
            if leaf_depths.iter().any(|&d| d != first) {
                return Err("leaves at differing depths".into());
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn validate_rec(
        &self,
        id: BlockId,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        depth: usize,
        leaf_depths: &mut Vec<usize>,
        last_key: &mut Option<Vec<u8>>,
    ) -> Result<(), String> {
        let node = self.load(id).map_err(|e| e.to_string())?;
        if node.key_count() > self.max_keys {
            return Err(format!("node {id} exceeds max_keys"));
        }
        if node.serialized_len() > self.pool.device().block_size() {
            return Err(format!("node {id} exceeds block size"));
        }
        match node {
            Node::Leaf { entries, .. } => {
                leaf_depths.push(depth);
                for (k, _) in &entries {
                    if let Some(l) = lo {
                        if k.as_slice() < l {
                            return Err(format!("leaf {id} key below separator"));
                        }
                    }
                    if let Some(h) = hi {
                        if k.as_slice() >= h {
                            return Err(format!("leaf {id} key at/above separator"));
                        }
                    }
                    if let Some(prev) = last_key {
                        if k <= prev {
                            return Err(format!("leaf chain out of order at node {id}"));
                        }
                    }
                    *last_key = Some(k.clone());
                }
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err(format!("node {id} child/key arity mismatch"));
                }
                if keys.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(format!("node {id} keys out of order"));
                }
                for (i, &child) in children.iter().enumerate() {
                    let child_lo = if i == 0 {
                        lo
                    } else {
                        Some(keys[i - 1].as_slice())
                    };
                    let child_hi = if i == keys.len() {
                        hi
                    } else {
                        Some(keys[i].as_slice())
                    };
                    self.validate_rec(child, child_lo, child_hi, depth + 1, leaf_depths, last_key)?;
                }
            }
        }
        Ok(())
    }
}

/// |a − b| over big-endian byte strings of possibly different lengths,
/// returned as a comparable byte vector (shorter-padded comparison).
fn byte_distance(a: &[u8], b: &[u8]) -> Vec<u8> {
    // Normalize to a common width.
    let w = a.len().max(b.len());
    let pad = |x: &[u8]| -> Vec<u8> {
        let mut v = vec![0u8; w - x.len()];
        v.extend_from_slice(x);
        v
    };
    let (a, b) = (pad(a), pad(b));
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    // Schoolbook borrow subtraction, big-endian.
    let mut out = vec![0u8; w];
    let mut borrow = 0i16;
    for i in (0..w).rev() {
        let mut d = hi[i] as i16 - lo[i] as i16 - borrow;
        if d < 0 {
            d += 256;
            borrow = 1;
        } else {
            borrow = 0;
        }
        out[i] = d as u8;
    }
    debug_assert_eq!(borrow, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use avq_storage::{BlockDevice, DiskProfile};

    fn pool(block_size: usize) -> Arc<BufferPool> {
        BufferPool::new(BlockDevice::new(block_size, DiskProfile::instant()), 64)
    }

    fn key(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn empty_tree() {
        let t = BPlusTree::create(pool(256)).unwrap();
        assert_eq!(t.get(&key(1)).unwrap(), None);
        assert_eq!(t.floor(&key(1)).unwrap(), None);
        assert!(t.range(&key(0), &key(9)).unwrap().is_empty());
        let st = t.stats().unwrap();
        assert_eq!((st.height, st.nodes, st.entries), (1, 1, 0));
        t.validate().unwrap();
    }

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::create(pool(256)).unwrap();
        for i in [5u64, 1, 9, 3, 7] {
            assert_eq!(t.insert(&key(i), i * 10).unwrap(), None);
        }
        for i in [1u64, 3, 5, 7, 9] {
            assert_eq!(t.get(&key(i)).unwrap(), Some(i * 10));
        }
        assert_eq!(t.get(&key(2)).unwrap(), None);
        t.validate().unwrap();
    }

    #[test]
    fn upsert_replaces() {
        let mut t = BPlusTree::create(pool(256)).unwrap();
        assert_eq!(t.insert(&key(1), 10).unwrap(), None);
        assert_eq!(t.insert(&key(1), 20).unwrap(), Some(10));
        assert_eq!(t.get(&key(1)).unwrap(), Some(20));
        assert_eq!(t.stats().unwrap().entries, 1);
    }

    #[test]
    fn many_inserts_split_and_stay_valid() {
        let mut t = BPlusTree::create_with_order(pool(4096), 4).unwrap();
        // Insert in a scrambled order.
        for i in 0..500u64 {
            let k = (i * 7919) % 1000; // distinct mod 1000 since gcd(7919,1000)=1
            t.insert(&key(k), k).unwrap();
        }
        t.validate().unwrap();
        let st = t.stats().unwrap();
        assert_eq!(st.entries, 500);
        assert!(st.height >= 4, "order-4 tree of 500 keys must be deep");
        for i in 0..500u64 {
            let k = (i * 7919) % 1000;
            assert_eq!(t.get(&key(k)).unwrap(), Some(k));
        }
    }

    #[test]
    fn byte_capacity_forces_splits() {
        // Tiny blocks: a few entries per node even without an order cap.
        let mut t = BPlusTree::create(pool(64)).unwrap();
        for i in 0..100u64 {
            t.insert(&key(i), i).unwrap();
        }
        t.validate().unwrap();
        let st = t.stats().unwrap();
        assert!(st.nodes > 20);
        assert_eq!(st.entries, 100);
    }

    #[test]
    fn floor_semantics() {
        let mut t = BPlusTree::create_with_order(pool(4096), 4).unwrap();
        for i in (0..100u64).map(|i| i * 10) {
            t.insert(&key(i), i).unwrap();
        }
        assert_eq!(t.floor(&key(55)).unwrap().unwrap().1, 50);
        assert_eq!(t.floor(&key(50)).unwrap().unwrap().1, 50);
        assert_eq!(t.floor(&key(0)).unwrap().unwrap().1, 0);
        assert_eq!(t.floor(&[0u8; 8]).unwrap().unwrap().1, 0);
        assert_eq!(t.floor(&7u64.to_be_bytes()).unwrap().unwrap().1, 0);
        assert_eq!(t.floor(&key(99999)).unwrap().unwrap().1, 990);
    }

    #[test]
    fn floor_below_min_is_none() {
        let mut t = BPlusTree::create(pool(256)).unwrap();
        t.insert(&key(10), 1).unwrap();
        assert_eq!(t.floor(&key(9)).unwrap(), None);
    }

    #[test]
    fn range_scan() {
        let mut t = BPlusTree::create_with_order(pool(4096), 4).unwrap();
        for i in 0..200u64 {
            t.insert(&key(i), i).unwrap();
        }
        let hits = t.range(&key(50), &key(60)).unwrap();
        assert_eq!(hits.len(), 11);
        assert_eq!(hits[0].1, 50);
        assert_eq!(hits[10].1, 60);
        // Degenerate ranges.
        assert_eq!(t.range(&key(7), &key(7)).unwrap().len(), 1);
        assert!(t.range(&key(8), &key(7)).unwrap().is_empty());
        // Range covering everything.
        assert_eq!(t.range(&key(0), &key(1000)).unwrap().len(), 200);
    }

    #[test]
    fn delete_then_lookup() {
        let mut t = BPlusTree::create_with_order(pool(4096), 4).unwrap();
        for i in 0..100u64 {
            t.insert(&key(i), i).unwrap();
        }
        for i in (0..100u64).step_by(2) {
            assert_eq!(t.delete(&key(i)).unwrap(), i);
        }
        assert_eq!(t.delete(&key(0)).unwrap_err(), IndexError::KeyNotFound);
        for i in 0..100u64 {
            let expect = (i % 2 == 1).then_some(i);
            assert_eq!(t.get(&key(i)).unwrap(), expect);
        }
        // Floor skips deleted keys (possibly across emptied leaves).
        assert_eq!(t.floor(&key(50)).unwrap().unwrap().1, 49);
        t.validate().unwrap();
        assert_eq!(t.stats().unwrap().entries, 50);
    }

    #[test]
    fn floor_across_fully_emptied_subtree() {
        let mut t = BPlusTree::create_with_order(pool(4096), 2).unwrap();
        for i in 0..30u64 {
            t.insert(&key(i), i).unwrap();
        }
        // Empty out a stretch in the middle.
        for i in 10..20u64 {
            t.delete(&key(i)).unwrap();
        }
        assert_eq!(t.floor(&key(19)).unwrap().unwrap().1, 9);
        assert_eq!(t.range(&key(8), &key(21)).unwrap().len(), 4); // 8,9,20,21
    }

    #[test]
    fn bulk_build_matches_inserts() {
        let pairs: Vec<(Vec<u8>, u64)> = (0..300u64).map(|i| (key(i * 3), i)).collect();
        let t = BPlusTree::bulk_build(pool(512), 8, &pairs).unwrap();
        t.validate().unwrap();
        let st = t.stats().unwrap();
        assert_eq!(st.entries, 300);
        for (k, v) in &pairs {
            assert_eq!(t.get(k).unwrap(), Some(*v));
        }
        assert_eq!(t.floor(&key(4)).unwrap().unwrap().1, 1);
        assert_eq!(t.range(&key(30), &key(60)).unwrap().len(), 11);
    }

    #[test]
    fn bulk_build_empty_and_single() {
        let t = BPlusTree::bulk_build(pool(256), 4, &[]).unwrap();
        assert_eq!(t.stats().unwrap().entries, 0);
        let t = BPlusTree::bulk_build(pool(256), 4, &[(key(1), 11)]).unwrap();
        assert_eq!(t.get(&key(1)).unwrap(), Some(11));
        t.validate().unwrap();
    }

    #[test]
    fn bulk_build_rejects_unsorted() {
        let pairs = vec![(key(2), 0), (key(1), 1)];
        assert!(matches!(
            BPlusTree::bulk_build(pool(256), 4, &pairs).unwrap_err(),
            IndexError::UnsortedBuildInput { position: 1 }
        ));
        let dup = vec![(key(1), 0), (key(1), 1)];
        assert!(BPlusTree::bulk_build(pool(256), 4, &dup).is_err());
    }

    #[test]
    fn order3_tree_like_fig_4_4() {
        // An order-3 B⁺ tree (max 3 keys per node) over 7 block keys, as in
        // the paper's Fig. 4.4.
        let pairs: Vec<(Vec<u8>, u64)> = (0..7u64).map(|i| (key(i * 100), i)).collect();
        let t = BPlusTree::bulk_build(pool(4096), 3, &pairs).unwrap();
        t.validate().unwrap();
        let st = t.stats().unwrap();
        assert_eq!(st.height, 2);
        assert_eq!(st.entries, 7);
        // Whole-tuple key search descends to the correct data block.
        assert_eq!(t.floor(&key(350)).unwrap().unwrap().1, 3);
    }

    #[test]
    fn byte_distance_behaves_like_abs_diff() {
        let d = |a: u64, b: u64| byte_distance(&a.to_be_bytes(), &b.to_be_bytes());
        assert_eq!(d(100, 58), d(58, 100));
        assert_eq!(u64::from_be_bytes(d(100, 58).try_into().unwrap()), 42);
        assert_eq!(u64::from_be_bytes(d(7, 7).try_into().unwrap()), 0);
        // Mixed widths normalize.
        assert_eq!(byte_distance(&[1, 0], &[255]), vec![0, 1]);
    }

    #[test]
    fn closest_routing_finds_nearest_key() {
        // The paper's Fig. 4.4 walkthrough: whole-tuple keys, order-3 tree;
        // a lookup lands on the block whose key is nearest.
        let pairs: Vec<(Vec<u8>, u64)> = (0..7u64).map(|i| (key(i * 100), i)).collect();
        let t = BPlusTree::bulk_build(pool(4096), 3, &pairs).unwrap();
        // 310 is nearest to 300.
        assert_eq!(t.closest(&key(310)).unwrap().unwrap().1, 3);
        // 370 is nearest to 400.
        assert_eq!(t.closest(&key(370)).unwrap().unwrap().1, 4);
    }

    #[test]
    fn closest_routing_can_misroute() {
        // Why this crate uses floor search for block lookup instead of the
        // paper's closest-difference routing: a tuple belonging to block
        // [200, …) can sit *nearer* to the previous block's key, and
        // closest-routing then returns the wrong block.
        let pairs: Vec<(Vec<u8>, u64)> = [0u64, 190, 200].iter().map(|&v| (key(v), v)).collect();
        let t = BPlusTree::bulk_build(pool(4096), 3, &pairs).unwrap();
        // Key 195 belongs to the block starting at 190 (floor), and closest
        // agrees here...
        assert_eq!(t.floor(&key(195)).unwrap().unwrap().1, 190);
        assert_eq!(t.closest(&key(195)).unwrap().unwrap().1, 190);
        // ...but key 203 *belongs* to block 200 while sitting closer to 200
        // too — construct the actual divergence: key 196 belongs to block
        // 190 yet is closer to 200.
        assert_eq!(t.floor(&key(196)).unwrap().unwrap().1, 190);
        assert_eq!(
            t.closest(&key(196)).unwrap().unwrap().1,
            200,
            "closest-difference routing picks the wrong block"
        );
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut t = BPlusTree::create(pool(64)).unwrap();
        let huge = vec![0u8; 100];
        assert!(matches!(
            t.insert(&huge, 1).unwrap_err(),
            IndexError::EntryTooLarge { .. }
        ));
    }

    #[test]
    fn index_io_is_charged() {
        let device = BlockDevice::new(4096, DiskProfile::paper_fixed());
        let pool = BufferPool::new(device.clone(), 128);
        let pairs: Vec<(Vec<u8>, u64)> = (0..500u64).map(|i| (key(i), i)).collect();
        let t = BPlusTree::bulk_build(pool.clone(), 8, &pairs).unwrap();
        pool.clear();
        device.reset_stats();
        device.clock().reset();
        t.get(&key(250)).unwrap();
        let reads = device.io_stats().reads;
        assert_eq!(reads as usize, t.stats().unwrap().height.min(4));
        assert!(device.clock().now_ms() >= 30.0 * reads as f64 - 1e-9);
    }
}
