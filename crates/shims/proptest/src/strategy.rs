//! The [`Strategy`] trait and the combinators / primitive strategies the
//! workspace's property tests rely on.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `options`. Panics if empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below_usize(self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u128 - self.start as u128;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi as u128 - lo as u128 + 1;
                lo + rng.below(span) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                // Vary the magnitude so both small and huge values appear.
                let shift = rng.below(64) as u32;
                let raw = (rng.next_u64() >> shift) as u128;
                let span = <$t>::MAX as u128 - self.start as u128 + 1;
                self.start + (raw % span) as $t
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize);

/// A `Vec` of strategies generates element-wise (position `i` of the output
/// comes from strategy `i`).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
