//! The `MANIFEST` file: the durable root of a database directory.
//!
//! The manifest names the current checkpoint generation — which snapshot
//! file holds each relation, which secondary indexes to rebuild, and the
//! LSN the snapshots capture. It is replaced atomically (write to a temp
//! file, `fsync`, `rename`), so a reader always sees either the old or the
//! new generation, never a mix.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "AVQM"               4 bytes
//! version u16                  (currently 1)
//! checkpoint_lsn u64
//! relation_count u32
//!   per relation:
//!     name_len u16, name bytes (UTF-8)
//!     snapshot_len u16, snapshot file name bytes (UTF-8)
//!     secondary_count u16, attribute u32 each
//! crc32 u32                    over everything above
//! ```

use crate::error::WalError;
use crate::writer::Lsn;
use avq_file::{crc32, Crc32};
use std::path::Path;

/// File name of the manifest inside a database directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

const MAGIC: &[u8; 4] = b"AVQM";
const VERSION: u16 = 1;

/// One relation's entry in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Relation name.
    pub name: String,
    /// Snapshot file name (relative to the database directory).
    pub snapshot: String,
    /// Attribute positions with secondary indexes (rebuilt on open).
    pub secondary_attrs: Vec<usize>,
}

/// The durable root: checkpoint LSN plus the snapshot files of that
/// generation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Highest LSN captured by the snapshots; WAL records at or below it
    /// are skipped on replay.
    pub checkpoint_lsn: Lsn,
    /// Per-relation snapshot entries, in name order.
    pub relations: Vec<ManifestEntry>,
}

impl Manifest {
    /// Serializes the manifest.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&self.checkpoint_lsn.to_le_bytes());
        buf.extend_from_slice(&(self.relations.len() as u32).to_le_bytes());
        for r in &self.relations {
            for s in [&r.name, &r.snapshot] {
                buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
                buf.extend_from_slice(s.as_bytes());
            }
            buf.extend_from_slice(&(r.secondary_attrs.len() as u16).to_le_bytes());
            for &a in &r.secondary_attrs {
                buf.extend_from_slice(&(a as u32).to_le_bytes());
            }
        }
        let mut h = Crc32::new();
        h.update(&buf);
        buf.extend_from_slice(&h.finish().to_le_bytes());
        buf
    }

    /// Deserializes a manifest, verifying its checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WalError> {
        if bytes.len() < 4 + 2 + 8 + 4 + 4 {
            return Err(corrupt(0, "shorter than header"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().unwrap());
        if crc32(body) != stored {
            return Err(corrupt(0, "checksum mismatch"));
        }
        if &body[..4] != MAGIC {
            return Err(corrupt(0, "bad magic"));
        }
        let version = u16::from_le_bytes(body[4..6].try_into().unwrap());
        if version != VERSION {
            return Err(corrupt(4, &format!("unsupported version {version}")));
        }
        let mut c = Cursor { body, pos: 6 };
        let checkpoint_lsn = u64::from_le_bytes(c.take(8, "checkpoint lsn")?.try_into().unwrap());
        let count = u32::from_le_bytes(c.take(4, "relation count")?.try_into().unwrap()) as usize;
        let mut relations = Vec::with_capacity(count);
        for _ in 0..count {
            let name = c.string("relation name")?;
            let snapshot = c.string("snapshot name")?;
            let nsec =
                u16::from_le_bytes(c.take(2, "secondary count")?.try_into().unwrap()) as usize;
            let mut secondary_attrs = Vec::with_capacity(nsec);
            for _ in 0..nsec {
                secondary_attrs
                    .push(u32::from_le_bytes(c.take(4, "attribute")?.try_into().unwrap()) as usize);
            }
            relations.push(ManifestEntry {
                name,
                snapshot,
                secondary_attrs,
            });
        }
        if c.pos != body.len() {
            return Err(corrupt(c.pos, "trailing bytes"));
        }
        Ok(Manifest {
            checkpoint_lsn,
            relations,
        })
    }

    /// Reads the manifest from a database directory. `Ok(None)` when the
    /// directory has no manifest yet (a fresh database).
    pub fn read_dir<P: AsRef<Path>>(dir: P) -> Result<Option<Self>, WalError> {
        let path = dir.as_ref().join(MANIFEST_FILE);
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(Self::from_bytes(&bytes)?)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Atomically replaces the manifest in a database directory: temp file,
    /// `fsync`, `rename`, then a best-effort directory sync.
    pub fn write_dir<P: AsRef<Path>>(&self, dir: P) -> Result<(), WalError> {
        let dir = dir.as_ref();
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        let bytes = self.to_bytes();
        {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, &bytes)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        sync_dir(dir);
        Ok(())
    }
}

fn corrupt(pos: usize, detail: &str) -> WalError {
    WalError::Corrupt {
        offset: pos as u64,
        detail: format!("MANIFEST: {detail}"),
    }
}

struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WalError> {
        let s = self
            .body
            .get(self.pos..self.pos + n)
            .ok_or_else(|| corrupt(self.pos, &format!("truncated {what}")))?;
        self.pos += n;
        Ok(s)
    }

    fn string(&mut self, what: &str) -> Result<String, WalError> {
        let len = u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()) as usize;
        let at = self.pos;
        String::from_utf8(self.take(len, what)?.to_vec())
            .map_err(|_| corrupt(at, &format!("{what} is not valid UTF-8")))
    }
}

/// Best-effort `fsync` of a directory so renames inside it are durable.
/// Ignored on platforms where directories cannot be opened for sync.
pub fn sync_dir(dir: &Path) {
    if let Ok(f) = std::fs::File::open(dir) {
        let _ = f.sync_all();
    }
}
