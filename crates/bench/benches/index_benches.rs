//! Criterion benchmarks for the access-method substrate: B⁺-tree bulk
//! build, point lookup, floor search, range scan, and insertion, plus the
//! end-to-end indexed selection of §5.3 on an in-memory (zero-latency)
//! device — isolating CPU cost from the simulated disk.

use avq_codec::{CodecOptions, CodingMode};
use avq_db::{Database, DbConfig};
use avq_index::{BPlusTree, HashIndex};
use avq_storage::{BlockDevice, BufferPool, DiskProfile};
use avq_workload::SyntheticSpec;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn pool() -> Arc<BufferPool> {
    BufferPool::new(BlockDevice::new(8192, DiskProfile::instant()), 1024)
}

fn pairs(n: u64) -> Vec<(Vec<u8>, u64)> {
    (0..n)
        .map(|i| ((i * 7).to_be_bytes().to_vec(), i))
        .collect()
}

fn bench_btree(c: &mut Criterion) {
    let n = 50_000u64;
    let data = pairs(n);
    let mut g = c.benchmark_group("btree");
    g.sample_size(20);

    g.bench_function("bulk_build_50k", |b| {
        b.iter(|| {
            let t = BPlusTree::bulk_build(pool(), usize::MAX, black_box(&data)).unwrap();
            black_box(t.root())
        })
    });

    let tree = BPlusTree::bulk_build(pool(), usize::MAX, &data).unwrap();
    let mut i = 0u64;
    g.bench_function("get_hit", |b| {
        b.iter(|| {
            i = (i + 9973) % n;
            black_box(tree.get(&(i * 7).to_be_bytes()).unwrap())
        })
    });
    g.bench_function("floor_between_keys", |b| {
        b.iter(|| {
            i = (i + 9973) % n;
            black_box(tree.floor(&(i * 7 + 3).to_be_bytes()).unwrap())
        })
    });
    g.bench_function("range_100_keys", |b| {
        b.iter(|| {
            i = (i + 9973) % (n - 200);
            let lo = (i * 7).to_be_bytes();
            let hi = ((i + 100) * 7).to_be_bytes();
            black_box(tree.range(&lo, &hi).unwrap())
        })
    });

    g.bench_function("insert_1k_into_50k", |b| {
        b.iter_batched(
            || BPlusTree::bulk_build(pool(), usize::MAX, &data).unwrap(),
            |mut t| {
                for j in 0..1000u64 {
                    t.insert(&(j * 7 + 1).to_be_bytes(), j).unwrap();
                }
                black_box(t.root())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_indexed_selection(c: &mut Criterion) {
    // End-to-end σ over a secondary index, CPU-only (instant disk).
    let relation = SyntheticSpec::section_5_2(20_000).generate();
    let config = DbConfig {
        codec: CodecOptions {
            mode: CodingMode::AvqChained,
            ..Default::default()
        },
        disk: DiskProfile::instant(),
        buffer_frames: 4096,
        ..Default::default()
    };
    let mut db = Database::new(config);
    db.create_relation("r", &relation).unwrap();
    db.create_secondary_index("r", 13).unwrap();

    let mut g = c.benchmark_group("selection");
    g.sample_size(20);
    g.bench_function("secondary_range_20k_tuples", |b| {
        b.iter(|| black_box(db.select_range_ordinal("r", 13, 32, 63).unwrap()))
    });
    g.bench_function("clustered_prefix_range", |b| {
        b.iter(|| black_box(db.select_range_ordinal("r", 0, 0, 0).unwrap()))
    });
    g.finish();
}

fn bench_hash_index(c: &mut Criterion) {
    let n = 50_000u64;
    let mut g = c.benchmark_group("hash_index");
    g.sample_size(20);
    g.bench_function("insert_50k", |b| {
        b.iter_batched(
            || HashIndex::create(pool()).unwrap(),
            |mut h| {
                for i in 0..n {
                    h.insert(i % 1000, i).unwrap();
                }
                black_box(h.len())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    let mut h = HashIndex::create(pool()).unwrap();
    for i in 0..n {
        h.insert(i % 1000, i).unwrap();
    }
    let mut probe = 0u64;
    g.bench_function("get_multivalue", |b| {
        b.iter(|| {
            probe = (probe + 7) % 1000;
            black_box(h.get(probe).unwrap())
        })
    });

    // Head-to-head with the B+ tree on the same point-probe workload.
    let pairs: Vec<(Vec<u8>, u64)> = (0..1000u64)
        .map(|i| (i.to_be_bytes().to_vec(), i))
        .collect();
    let tree = BPlusTree::bulk_build(pool(), usize::MAX, &pairs).unwrap();
    g.bench_function("btree_point_probe_baseline", |b| {
        b.iter(|| {
            probe = (probe + 7) % 1000;
            black_box(tree.get(&probe.to_be_bytes()).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_btree,
    bench_indexed_selection,
    bench_hash_index
);
criterion_main!(benches);
