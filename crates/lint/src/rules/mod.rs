//! The rule engine: ten project-native rules over the scanned
//! workspace, plus waiver resolution.
//!
//! Rules first collect *candidate* findings; resolution then matches
//! each candidate against the `// lint:` directives of its file — a
//! matching waiver suppresses the finding and is recorded in the waiver
//! summary, an unmatched candidate becomes a reported finding, and any
//! directive that waived nothing (or failed to parse) is itself a
//! finding. This ordering means a stale waiver can never silently hide
//! future regressions.
//!
//! AVQ-L001–L006 are per-file token rules and live here; the four
//! cross-procedural rules added with the semantic layer live in the
//! submodules: [`taint`] (AVQ-L007), [`wrappers`] (AVQ-L008), [`locks`]
//! (AVQ-L009), and [`atomics`] (AVQ-L010).

mod atomics;
mod locks;
mod taint;
mod wrappers;

use crate::callgraph::CallGraph;
use crate::config;
use crate::lexer::{balanced, DirectiveKind, Kind, Token};
use crate::symbols::Symbols;
use crate::workspace::{
    design_section, named_table_backticks, parse_metric_consts, table_backticks, SourceFile,
    Workspace,
};
use std::collections::{BTreeMap, BTreeSet};

/// One reported problem.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`AVQ-L001` … `AVQ-L006`, or `AVQ-WAIVER` for waiver
    /// hygiene problems).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

/// One waiver that suppressed at least one finding.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Path relative to the workspace root.
    pub file: String,
    /// Line of the `// lint:` comment.
    pub line: u32,
    /// The rule it waived.
    pub rule: String,
    /// The written justification.
    pub reason: String,
}

/// The linter's complete output for one run.
pub struct Report {
    /// Findings, sorted by (file, line, rule, message).
    pub findings: Vec<Finding>,
    /// Waivers in effect, sorted by (file, line).
    pub waivers: Vec<Waiver>,
}

/// Run the rules — all of them, or just `only` — and resolve waivers.
/// Filtered runs skip waiver hygiene (a waiver for any rule that didn't
/// run would otherwise look unused).
pub fn run_filtered(ws: &mut Workspace, only: Option<&str>) -> Report {
    let syms = Symbols::build(ws);
    let cg = CallGraph::build(ws, &syms);
    let on = |rule: &str| only.is_none_or(|o| o == rule);
    let mut candidates = Vec::new();
    for f in &ws.files {
        if config::in_scope(&f.rel, config::DECODE_PATHS) {
            if on("AVQ-L001") {
                l001_panic_freedom(f, &mut candidates);
            }
            if on("AVQ-L002") {
                l002_bounded_capacity(f, &mut candidates);
            }
        }
        if on("AVQ-L005") && !config::in_scope(&f.rel, config::CLOCK_EXEMPT) {
            l005_virtual_clock(f, &mut candidates);
        }
    }
    if on("AVQ-L003") {
        l003_crate_root_hygiene(ws, &mut candidates);
    }
    if on("AVQ-L004") {
        l004_metric_names(ws, &mut candidates);
    }
    if on("AVQ-L006") {
        l006_corrupt_sections(ws, &mut candidates);
    }
    if on("AVQ-L007") {
        taint::check(ws, &syms, &cg, &mut candidates);
    }
    if on("AVQ-L008") {
        wrappers::check(ws, &syms, &cg, &mut candidates);
    }
    if on("AVQ-L009") {
        locks::check(ws, &syms, &mut candidates);
    }
    if on("AVQ-L010") {
        atomics::check(ws, &syms, &mut candidates);
    }

    resolve(ws, candidates, only.is_none())
}

/// Match candidates against directives; collect final findings and the
/// waiver summary. `hygiene` enables the unused/malformed-waiver
/// findings (full runs only).
fn resolve(ws: &mut Workspace, candidates: Vec<Finding>, hygiene: bool) -> Report {
    let mut findings = Vec::new();
    for c in candidates {
        let mut waived = false;
        if let Some(file) = ws.files.iter_mut().find(|f| f.rel == c.file) {
            let effective: Vec<u32> = file
                .scan
                .directives
                .iter()
                .map(|d| file.scan.effective_line(d.line))
                .collect();
            for (d, eff) in file.scan.directives.iter_mut().zip(effective) {
                let applies = match &d.kind {
                    DirectiveKind::Allow(rule) => *rule == c.rule,
                    // A bounded claim asserts the length was validated,
                    // so it satisfies the taint rule on its line too.
                    DirectiveKind::Bounded => c.rule == "AVQ-L002" || c.rule == "AVQ-L007",
                    DirectiveKind::Sanitized => c.rule == "AVQ-L007",
                    DirectiveKind::Malformed(_) => false,
                };
                if applies && eff == c.line {
                    d.used = true;
                    waived = true;
                    break;
                }
            }
        }
        if !waived {
            findings.push(c);
        }
    }

    let mut waivers = Vec::new();
    if hygiene {
        for f in &ws.files {
            for d in &f.scan.directives {
                match &d.kind {
                    DirectiveKind::Malformed(msg) => findings.push(Finding {
                        file: f.rel.clone(),
                        line: d.line,
                        rule: "AVQ-WAIVER".into(),
                        message: msg.clone(),
                    }),
                    _ if !d.used => findings.push(Finding {
                        file: f.rel.clone(),
                        line: d.line,
                        rule: "AVQ-WAIVER".into(),
                        message: "unused waiver: no finding on its line to suppress".into(),
                    }),
                    DirectiveKind::Allow(rule) => waivers.push(Waiver {
                        file: f.rel.clone(),
                        line: d.line,
                        rule: rule.clone(),
                        reason: d.reason.clone(),
                    }),
                    DirectiveKind::Bounded => waivers.push(Waiver {
                        file: f.rel.clone(),
                        line: d.line,
                        rule: "AVQ-L002".into(),
                        reason: d.reason.clone(),
                    }),
                    DirectiveKind::Sanitized => waivers.push(Waiver {
                        file: f.rel.clone(),
                        line: d.line,
                        rule: "AVQ-L007".into(),
                        reason: d.reason.clone(),
                    }),
                }
            }
        }
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    // Overlapping analyses can derive the same fact twice; report once.
    findings.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.rule == b.rule && a.message == b.message
    });
    waivers.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Report { findings, waivers }
}

const ASSERT_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

const BANNED_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const BANNED_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may legally precede `[` without it being an index
/// expression (slice patterns, array types, `return [..]`, …).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "yield",
];

fn push(out: &mut Vec<Finding>, file: &SourceFile, line: u32, rule: &str, message: String) {
    out.push(Finding {
        file: file.rel.clone(),
        line,
        rule: rule.to_string(),
        message,
    });
}

/// AVQ-L001: no panicking constructs in untrusted decode paths.
fn l001_panic_freedom(file: &SourceFile, out: &mut Vec<Finding>) {
    let t = &file.scan.tokens;
    let mut i = 0usize;
    while i < t.len() {
        let tok = &t[i];
        // Assert-family macros are deliberate invariant checks; their
        // argument group (often containing indexing) is not scanned.
        if tok.kind == Kind::Ident
            && ASSERT_MACROS.contains(&tok.text.as_str())
            && t.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            if let Some(open) = t.get(i + 2) {
                let pair = [('(', ')'), ('[', ']'), ('{', '}')]
                    .into_iter()
                    .find(|(o, _)| open.is_punct(*o));
                if let Some((o, c)) = pair {
                    if let Some(end) = balanced(t, i + 2, o, c) {
                        i = end + 1;
                        continue;
                    }
                }
            }
        }
        if tok.is_punct('.') {
            if let Some(m) = t.get(i + 1) {
                if m.kind == Kind::Ident && BANNED_METHODS.contains(&m.text.as_str()) {
                    push(
                        out,
                        file,
                        m.line,
                        "AVQ-L001",
                        format!(
                            "`.{}()` in an untrusted decode path (return `Corrupt` instead)",
                            m.text
                        ),
                    );
                }
            }
        }
        if tok.kind == Kind::Ident
            && BANNED_MACROS.contains(&tok.text.as_str())
            && t.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            push(
                out,
                file,
                tok.line,
                "AVQ-L001",
                format!(
                    "`{}!` in an untrusted decode path (return `Corrupt` instead)",
                    tok.text
                ),
            );
        }
        if tok.is_punct('[') && i > 0 {
            let prev = &t[i - 1];
            let indexes = prev.is_punct(')')
                || prev.is_punct(']')
                || (prev.kind == Kind::Ident && !KEYWORDS.contains(&prev.text.as_str()));
            if indexes {
                push(
                    out,
                    file,
                    tok.line,
                    "AVQ-L001",
                    "direct `[…]` indexing in an untrusted decode path (use `get`/slice patterns)"
                        .to_string(),
                );
            }
        }
        i += 1;
    }
}

/// AVQ-L002: allocations sized by untrusted input need a bounded waiver.
fn l002_bounded_capacity(file: &SourceFile, out: &mut Vec<Finding>) {
    let t = &file.scan.tokens;
    for (i, tok) in t.iter().enumerate() {
        if tok.is_ident("with_capacity") && t.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            if let Some(end) = balanced(t, i + 1, '(', ')') {
                let args = &t[i + 2..end];
                if !(args.len() == 1 && args[0].kind == Kind::Number) {
                    push(
                        out,
                        file,
                        tok.line,
                        "AVQ-L002",
                        "`with_capacity` with a non-literal length in a decode path needs a `// lint: bounded(<why>)` waiver".to_string(),
                    );
                }
            }
        }
        if tok.is_ident("vec")
            && t.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && t.get(i + 2).is_some_and(|n| n.is_punct('['))
        {
            if let Some(end) = balanced(t, i + 2, '[', ']') {
                let group = &t[i + 3..end];
                if let Some(semi) = top_level_semicolon(group) {
                    let len = &group[semi + 1..];
                    if !(len.len() == 1 && len[0].kind == Kind::Number) {
                        push(
                            out,
                            file,
                            tok.line,
                            "AVQ-L002",
                            "`vec![_; n]` with a non-literal length in a decode path needs a `// lint: bounded(<why>)` waiver".to_string(),
                        );
                    }
                }
            }
        }
    }
}

/// Position of the first `;` at bracket depth zero within a delimiter
/// group's tokens, if any.
fn top_level_semicolon(group: &[Token]) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in group.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return Some(j);
        }
    }
    None
}

/// AVQ-L003: every member crate root carries the hygiene attributes.
fn l003_crate_root_hygiene(ws: &Workspace, out: &mut Vec<Finding>) {
    for member in &ws.members {
        let member_dir = format!("{member}/");
        if config::in_scope(&member_dir, config::L003_EXEMPT) {
            continue;
        }
        let mut roots: Vec<&SourceFile> = Vec::new();
        for candidate in [
            format!("{member}/src/lib.rs"),
            format!("{member}/src/main.rs"),
        ] {
            if let Some(f) = ws.file(&candidate) {
                roots.push(f);
            }
        }
        let bin_prefix = format!("{member}/src/bin/");
        for f in &ws.files {
            if f.rel.starts_with(&bin_prefix) && !f.rel[bin_prefix.len()..].contains('/') {
                roots.push(f);
            }
        }
        for root in roots {
            let (forbids_unsafe, warns_docs) = hygiene_attrs(&root.scan.tokens);
            if !forbids_unsafe {
                out.push(Finding {
                    file: root.rel.clone(),
                    line: 1,
                    rule: "AVQ-L003".into(),
                    message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
                });
            }
            if !warns_docs {
                out.push(Finding {
                    file: root.rel.clone(),
                    line: 1,
                    rule: "AVQ-L003".into(),
                    message: "crate root is missing `#![warn(missing_docs)]`".into(),
                });
            }
        }
    }
}

/// Does the token stream declare `forbid`/`deny`(unsafe_code) and
/// `warn`/`deny`/`forbid`(missing_docs)?
fn hygiene_attrs(t: &[Token]) -> (bool, bool) {
    let mut unsafe_forbidden = false;
    let mut docs_warned = false;
    for (i, tok) in t.iter().enumerate() {
        if tok.kind != Kind::Ident {
            continue;
        }
        let level = tok.text.as_str();
        if !matches!(level, "forbid" | "deny" | "warn") {
            continue;
        }
        if !t.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if let Some(end) = balanced(t, i + 1, '(', ')') {
            for arg in &t[i + 2..end] {
                if arg.is_ident("unsafe_code") && matches!(level, "forbid" | "deny") {
                    unsafe_forbidden = true;
                }
                if arg.is_ident("missing_docs") {
                    docs_warned = true;
                }
            }
        }
    }
    (unsafe_forbidden, docs_warned)
}

/// Is `s` a well-formed dot-namespaced metric name (`avq.x.y`)?
fn valid_metric_name(s: &str) -> bool {
    s.starts_with("avq.")
        && s.len() > 4
        && !s.ends_with('.')
        && !s.contains("..")
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
}

/// A bare trace-attribute key: lowercase word characters, no dots (keys
/// are span-local, deliberately outside the metric namespace).
fn valid_attr_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// AVQ-L004: metric names and trace-attribute keys are declared once,
/// well-formed, documented, and referenced through constants.
fn l004_metric_names(ws: &Workspace, out: &mut Vec<Finding>) {
    let names_file = ws.file(config::METRIC_NAME_HOME);
    let mut const_values: BTreeMap<String, String> = BTreeMap::new();
    let mut have_attrs = false;
    if let Some(nf) = names_file {
        let inv = parse_metric_consts(&nf.scan);
        let attr_idents: BTreeSet<&str> = inv.trace_attrs.iter().map(String::as_str).collect();
        have_attrs = !attr_idents.is_empty();
        let consts: Vec<_> = inv
            .consts
            .iter()
            .filter(|c| !attr_idents.contains(c.ident.as_str()))
            .collect();
        let attrs: Vec<_> = inv
            .consts
            .iter()
            .filter(|c| attr_idents.contains(c.ident.as_str()))
            .collect();
        let mut seen_values: BTreeMap<&str, &str> = BTreeMap::new();
        for c in &consts {
            if !valid_metric_name(&c.value) {
                out.push(Finding {
                    file: nf.rel.clone(),
                    line: c.line,
                    rule: "AVQ-L004".into(),
                    message: format!(
                        "metric name `{}` is not dot-namespaced lowercase under `avq.`",
                        c.value
                    ),
                });
            }
            if let Some(other) = seen_values.insert(&c.value, &c.ident) {
                out.push(Finding {
                    file: nf.rel.clone(),
                    line: c.line,
                    rule: "AVQ-L004".into(),
                    message: format!(
                        "metric name `{}` is declared twice (`{}` and `{}`)",
                        c.value, other, c.ident
                    ),
                });
            }
            const_values.insert(c.ident.clone(), c.value.clone());
        }
        let all_set: BTreeSet<&str> = inv.all.iter().map(String::as_str).collect();
        for c in &consts {
            if !all_set.contains(c.ident.as_str()) {
                out.push(Finding {
                    file: nf.rel.clone(),
                    line: c.line,
                    rule: "AVQ-L004".into(),
                    message: format!("constant `{}` is missing from `names::ALL`", c.ident),
                });
            }
        }
        for ident in &inv.all {
            if !const_values.contains_key(ident) {
                out.push(Finding {
                    file: nf.rel.clone(),
                    line: 1,
                    rule: "AVQ-L004".into(),
                    message: format!("`names::ALL` lists unknown constant `{ident}`"),
                });
            }
        }
        // Trace-attribute keys: bare words, declared once, listed in
        // `TRACE_ATTRS`, and two-way consistent with DESIGN.md §15.
        let mut seen_attr_values: BTreeMap<&str, &str> = BTreeMap::new();
        for c in &attrs {
            if !valid_attr_name(&c.value) {
                out.push(Finding {
                    file: nf.rel.clone(),
                    line: c.line,
                    rule: "AVQ-L004".into(),
                    message: format!(
                        "trace attribute key `{}` is not a bare lowercase word ([a-z0-9_])",
                        c.value
                    ),
                });
            }
            if let Some(other) = seen_attr_values.insert(&c.value, &c.ident) {
                out.push(Finding {
                    file: nf.rel.clone(),
                    line: c.line,
                    rule: "AVQ-L004".into(),
                    message: format!(
                        "trace attribute key `{}` is declared twice (`{}` and `{}`)",
                        c.value, other, c.ident
                    ),
                });
            }
        }
        let attr_const_idents: BTreeSet<&str> = attrs.iter().map(|c| c.ident.as_str()).collect();
        for ident in &inv.trace_attrs {
            if !attr_const_idents.contains(ident.as_str()) {
                out.push(Finding {
                    file: nf.rel.clone(),
                    line: 1,
                    rule: "AVQ-L004".into(),
                    message: format!("`names::TRACE_ATTRS` lists unknown constant `{ident}`"),
                });
            }
        }
        if have_attrs {
            let documented_attrs: BTreeSet<String> = design_section(&ws.root, 15)
                .map(|s| {
                    named_table_backticks(&s, "| attribute ")
                        .into_iter()
                        .collect()
                })
                .unwrap_or_default();
            if documented_attrs.is_empty() {
                out.push(Finding {
                    file: "DESIGN.md".into(),
                    line: 1,
                    rule: "AVQ-L004".into(),
                    message:
                        "DESIGN.md §15 has no attribute inventory table to check trace keys against"
                            .into(),
                });
            } else {
                for c in &attrs {
                    if valid_attr_name(&c.value) && !documented_attrs.contains(&c.value) {
                        out.push(Finding {
                            file: nf.rel.clone(),
                            line: c.line,
                            rule: "AVQ-L004".into(),
                            message: format!(
                                "trace attribute `{}` is not documented in the DESIGN.md §15 inventory",
                                c.value
                            ),
                        });
                    }
                }
                let declared: BTreeSet<&str> = attrs.iter().map(|c| c.value.as_str()).collect();
                for key in &documented_attrs {
                    if !declared.contains(key.as_str()) {
                        out.push(Finding {
                            file: "DESIGN.md".into(),
                            line: 1,
                            rule: "AVQ-L004".into(),
                            message: format!(
                                "DESIGN.md §15 documents attribute `{key}`, which `avq_obs::names` does not declare"
                            ),
                        });
                    }
                }
            }
        }
        // Two-way check against the DESIGN.md §10 metric inventory.
        if let Some(section) = design_section(&ws.root, 10) {
            let documented: BTreeSet<String> = table_backticks(&section)
                .into_iter()
                .filter(|n| valid_metric_name(n))
                .collect();
            if documented.is_empty() {
                out.push(Finding {
                    file: "DESIGN.md".into(),
                    line: 1,
                    rule: "AVQ-L004".into(),
                    message: "DESIGN.md §10 has no metric inventory table to check names against"
                        .into(),
                });
            } else {
                for c in &consts {
                    if valid_metric_name(&c.value) && !documented.contains(&c.value) {
                        out.push(Finding {
                            file: nf.rel.clone(),
                            line: c.line,
                            rule: "AVQ-L004".into(),
                            message: format!(
                                "metric `{}` is not documented in the DESIGN.md §10 inventory",
                                c.value
                            ),
                        });
                    }
                }
                let declared: BTreeSet<&str> = const_values.values().map(String::as_str).collect();
                for name in &documented {
                    if !declared.contains(name.as_str()) {
                        out.push(Finding {
                            file: "DESIGN.md".into(),
                            line: 1,
                            rule: "AVQ-L004".into(),
                            message: format!(
                                "DESIGN.md §10 documents `{name}`, which `avq_obs::names` does not declare"
                            ),
                        });
                    }
                }
            }
        }
    }

    // Call-site discipline: metric names are spelled once, in names.rs.
    for f in &ws.files {
        if f.rel == config::METRIC_NAME_HOME {
            continue;
        }
        for tok in &f.scan.tokens {
            if tok.kind == Kind::Str && valid_metric_name(&tok.text) {
                push(
                    out,
                    f,
                    tok.line,
                    "AVQ-L004",
                    format!(
                        "metric-name literal \"{}\" outside `avq_obs::names` (use the constants)",
                        tok.text
                    ),
                );
            }
        }
    }

    // Same discipline for trace-attribute keys: `.attr("literal", …)` must
    // spell the key through a `names::ATTR_*` constant instead. (Span-name
    // arguments are `avq.`-namespaced, so the metric-literal ban above
    // already covers them.) Only active once the workspace declares a
    // `TRACE_ATTRS` inventory.
    if have_attrs {
        for f in &ws.files {
            if f.rel == config::METRIC_NAME_HOME {
                continue;
            }
            let t = &f.scan.tokens;
            for (i, tok) in t.iter().enumerate() {
                let is_attr_site = tok.kind == Kind::Ident && tok.text == "attr";
                if !is_attr_site
                    || !t.get(i + 1).is_some_and(|n| n.is_punct('('))
                    || !t.get(i + 2).is_some_and(|n| n.kind == Kind::Str)
                {
                    continue;
                }
                let key = &t[i + 2];
                push(
                    out,
                    f,
                    key.line,
                    "AVQ-L004",
                    format!(
                        "trace-attribute literal \"{}\" outside `avq_obs::names` (use the `ATTR_*` constants)",
                        key.text
                    ),
                );
            }
        }
    }

    // Kind consistency: one constant, one instrument kind.
    let mut kinds: BTreeMap<String, BTreeMap<&'static str, (String, u32)>> = BTreeMap::new();
    for f in &ws.files {
        let t = &f.scan.tokens;
        for (i, tok) in t.iter().enumerate() {
            let kind = match tok.text.as_str() {
                "counter" => "counter",
                "gauge" => "gauge",
                "histogram" => "histogram",
                "span" => "span",
                _ => continue,
            };
            if tok.kind != Kind::Ident
                || !t.get(i + 1).is_some_and(|n| n.is_punct('!'))
                || !t.get(i + 2).is_some_and(|n| n.is_punct('('))
            {
                continue;
            }
            // First identifier of the argument: `names::IDENT` or `IDENT`.
            let mut j = i + 3;
            while t
                .get(j)
                .is_some_and(|x| x.is_ident("names") || x.is_punct(':'))
            {
                j += 1;
            }
            let Some(arg) = t.get(j).filter(|x| x.kind == Kind::Ident) else {
                continue;
            };
            if !const_values.contains_key(&arg.text) {
                continue;
            }
            kinds
                .entry(arg.text.clone())
                .or_default()
                .entry(kind)
                .or_insert((f.rel.clone(), arg.line));
        }
    }
    for (ident, by_kind) in &kinds {
        if by_kind.len() > 1 {
            let all: Vec<&str> = by_kind.keys().copied().collect();
            let (file, line) = by_kind.values().next_back().cloned().unwrap_or_default();
            out.push(Finding {
                file,
                line,
                rule: "AVQ-L004".into(),
                message: format!(
                    "metric `names::{ident}` is registered as more than one instrument kind ({})",
                    all.join(", ")
                ),
            });
        }
    }
}

/// AVQ-L005: only `avq-obs` (and the bench harness) may read the real
/// clock; everything else charges the virtual clock via `Stopwatch`.
fn l005_virtual_clock(file: &SourceFile, out: &mut Vec<Finding>) {
    let t = &file.scan.tokens;
    for (i, tok) in t.iter().enumerate() {
        if tok.is_ident("Instant")
            && t.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && t.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && t.get(i + 3).is_some_and(|n| n.is_ident("now"))
        {
            push(
                out,
                file,
                tok.line,
                "AVQ-L005",
                "`Instant::now()` outside avq-obs/bench (use `avq_obs::Stopwatch`)".to_string(),
            );
        }
        if tok.is_ident("SystemTime") {
            push(
                out,
                file,
                tok.line,
                "AVQ-L005",
                "`SystemTime` outside avq-obs/bench (use `avq_obs::Stopwatch`)".to_string(),
            );
        }
    }
}

/// AVQ-L006: `Corrupt { section: … }` strings come from the documented
/// vocabulary and only from the crate that owns them.
fn l006_corrupt_sections(ws: &Workspace, out: &mut Vec<Finding>) {
    let vocab: BTreeMap<&str, &str> = config::CORRUPT_SECTIONS.iter().copied().collect();
    let documented: Option<BTreeSet<String>> =
        design_section(&ws.root, 12).map(|s| table_backticks(&s).into_iter().collect());
    for f in &ws.files {
        let t = &f.scan.tokens;
        for (i, tok) in t.iter().enumerate() {
            if !tok.is_ident("Corrupt") || !t.get(i + 1).is_some_and(|n| n.is_punct('{')) {
                continue;
            }
            let Some(end) = balanced(t, i + 1, '{', '}') else {
                continue;
            };
            let group = &t[i + 2..end];
            for (j, g) in group.iter().enumerate() {
                if g.is_ident("section")
                    && group.get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && group.get(j + 2).is_some_and(|n| n.kind == Kind::Str)
                {
                    let s = &group[j + 2];
                    match vocab.get(s.text.as_str()) {
                        None => push(
                            out,
                            f,
                            s.line,
                            "AVQ-L006",
                            format!(
                                "Corrupt section \"{}\" is not in the documented vocabulary",
                                s.text
                            ),
                        ),
                        Some(owner) if !f.rel.starts_with(owner) => push(
                            out,
                            f,
                            s.line,
                            "AVQ-L006",
                            format!(
                                "Corrupt section \"{}\" belongs to `{}` but is produced here",
                                s.text, owner
                            ),
                        ),
                        Some(_) => {}
                    }
                    if let Some(doc) = &documented {
                        if !doc.contains(&s.text) {
                            push(
                                out,
                                f,
                                s.line,
                                "AVQ-L006",
                                format!(
                                    "Corrupt section \"{}\" is missing from the DESIGN.md §12 vocabulary table",
                                    s.text
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
    // The documented table must not drift from the configured vocabulary.
    if let Some(doc) = &documented {
        for (section, _) in config::CORRUPT_SECTIONS {
            if !doc.contains(*section) {
                out.push(Finding {
                    file: "DESIGN.md".into(),
                    line: 1,
                    rule: "AVQ-L006".into(),
                    message: format!(
                        "section `{section}` is in the lint vocabulary but missing from the DESIGN.md §12 table"
                    ),
                });
            }
        }
    }
}
