//! The `proptest!`, `prop_assert*!`, and `prop_oneof!` macros.

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test that runs `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err(err) => panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        ),
                    }
                }
            }
        )*
    };
}

/// Fails the current test case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)*)
        );
    }};
}

/// Uniform choice between the given strategies (all must generate the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
