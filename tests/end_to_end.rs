//! End-to-end integration tests across all crates: load → index → query →
//! update flows on coded and uncoded stores, cost-model consistency, and
//! cross-mode equivalence.

use avq::codec::{CodecOptions, CodingMode};
use avq::prelude::*;
use avq::workload::SyntheticSpec;

fn build_db(mode: CodingMode, n: usize, capacity: usize) -> (Database, Relation) {
    let relation = SyntheticSpec::section_5_2(n).generate();
    let config = DbConfig {
        codec: CodecOptions {
            mode,
            block_capacity: capacity,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut db = Database::new(config);
    db.create_relation("r", &relation).unwrap();
    (db, relation)
}

#[test]
fn coded_and_uncoded_answer_queries_identically() {
    let n = 3000;
    let (coded_db, _) = build_db(CodingMode::AvqChained, n, 2048);
    let (uncoded_db, _) = build_db(CodingMode::FieldWise, n, 2048);
    for (attr, lo, hi) in [(0usize, 0u64, 1u64), (6, 0, 1), (13, 32, 63), (15, 5, 5)] {
        let (a, _) = coded_db.select_range_ordinal("r", attr, lo, hi).unwrap();
        let (b, _) = uncoded_db.select_range_ordinal("r", attr, lo, hi).unwrap();
        let mut a = a;
        let mut b = b;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "σ_{{{lo}≤A{attr}≤{hi}}} must agree across modes");
    }
}

#[test]
fn avq_uses_fewer_blocks_and_less_io() {
    let n = 5000;
    let (coded_db, _) = build_db(CodingMode::AvqChained, n, 2048);
    let (uncoded_db, _) = build_db(CodingMode::FieldWise, n, 2048);
    let coded_blocks = coded_db.relation("r").unwrap().block_count();
    let uncoded_blocks = uncoded_db.relation("r").unwrap().block_count();
    assert!(
        coded_blocks < uncoded_blocks,
        "AVQ must use fewer blocks: {coded_blocks} vs {uncoded_blocks}"
    );

    // An unindexed selection scans all blocks: N must shrink under AVQ.
    coded_db.drop_caches();
    coded_db.reset_measurements();
    let (_, c1) = coded_db.select_range_ordinal("r", 5, 0, 127).unwrap();
    uncoded_db.drop_caches();
    uncoded_db.reset_measurements();
    let (_, c2) = uncoded_db.select_range_ordinal("r", 5, 0, 127).unwrap();
    assert_eq!(c1.data_blocks as usize, coded_blocks);
    assert_eq!(c2.data_blocks as usize, uncoded_blocks);
    assert!(c1.data_ms < c2.data_ms, "less data I/O time under AVQ");
}

#[test]
fn cost_model_is_consistent_with_formula() {
    // C = I + N·t₁ (+ CPU): with the paper's 30 ms disk and a known CPU
    // charge, the measured total must equal the formula.
    let relation = SyntheticSpec::section_5_2(2000).generate();
    let t2 = 13.85;
    let config = DbConfig {
        codec: CodecOptions {
            block_capacity: 2048,
            ..Default::default()
        },
        cpu_ms_per_block: t2,
        ..Default::default()
    };
    let mut db = Database::new(config);
    db.create_relation("r", &relation).unwrap();
    db.create_secondary_index("r", 6).unwrap();
    db.drop_caches();
    db.reset_measurements();
    let (_, cost) = db.select_range_ordinal("r", 6, 64, 127).unwrap();
    // Cold cache: physical reads == logical accesses.
    assert_eq!(cost.data_reads, cost.data_blocks);
    let expect_data_ms = cost.data_blocks as f64 * (30.0 + t2);
    assert!(
        (cost.data_ms - expect_data_ms).abs() < 1e-6,
        "measured {} vs formula {}",
        cost.data_ms,
        expect_data_ms
    );
    let expect_index_ms = cost.index_reads as f64 * 30.0;
    assert!((cost.index_ms - expect_index_ms).abs() < 1e-6);
}

#[test]
fn warm_cache_reduces_physical_reads_but_not_n() {
    let (db, _) = build_db(CodingMode::AvqChained, 2000, 2048);
    db.drop_caches();
    db.reset_measurements();
    let (_, cold) = db.select_range_ordinal("r", 4, 0, 127).unwrap();
    let (_, warm) = db.select_range_ordinal("r", 4, 0, 127).unwrap();
    assert_eq!(cold.data_blocks, warm.data_blocks, "N is cache-independent");
    assert!(
        warm.data_reads < cold.data_reads,
        "warm run must hit the pool"
    );
}

#[test]
fn heavy_update_churn_preserves_integrity() {
    let (mut db, relation) = build_db(CodingMode::AvqChained, 1500, 1024);
    db.create_secondary_index("r", 2).unwrap();
    let schema = relation.schema().clone();

    // Delete a third, re-insert them, insert fresh tuples.
    let mut tuples = relation.tuples().to_vec();
    tuples.sort_unstable();
    tuples.dedup();
    let third: Vec<Tuple> = tuples.iter().step_by(3).cloned().collect();
    {
        let rel = db.relation_mut("r").unwrap();
        for t in &third {
            rel.delete(t).unwrap();
        }
        for t in &third {
            rel.insert(t).unwrap();
        }
        for i in 0..200u64 {
            let digits: Vec<u64> = (0..schema.arity() as u64)
                .map(|a| (i * 31 + a * 7) % 128)
                .collect();
            rel.insert(&Tuple::new(digits)).unwrap();
        }
    }
    let stored = db.relation("r").unwrap();
    assert_eq!(stored.tuple_count(), 1500 + 200);
    let all = stored.scan_all().unwrap();
    assert_eq!(all.len(), 1700);
    assert!(all.windows(2).all(|w| w[0] <= w[1]), "φ order maintained");
    stored.primary_index().validate().unwrap();

    // The secondary index still answers correctly after churn.
    let (rows, _) = stored.select_range(2, 50, 80).unwrap();
    let expect = all
        .iter()
        .filter(|t| (50..=80).contains(&t.digits()[2]))
        .count();
    assert_eq!(rows.len(), expect);
}

#[test]
fn multiple_relations_share_one_device() {
    let mut db = Database::new(DbConfig {
        codec: CodecOptions {
            block_capacity: 1024,
            ..Default::default()
        },
        ..Default::default()
    });
    let r1 = SyntheticSpec::test1(500).generate();
    let r2 = SyntheticSpec::test3(800).generate();
    db.create_relation("skewed", &r1).unwrap();
    db.create_relation("uniform", &r2).unwrap();
    assert_eq!(db.relation_names(), vec!["skewed", "uniform"]);
    assert_eq!(db.relation("skewed").unwrap().tuple_count(), 500);
    assert_eq!(db.relation("uniform").unwrap().tuple_count(), 800);
    db.drop_relation("skewed").unwrap();
    assert_eq!(db.relation_names(), vec!["uniform"]);
    // The remaining relation is intact.
    assert_eq!(
        db.relation("uniform").unwrap().scan_all().unwrap().len(),
        800
    );
}

#[test]
fn logical_roundtrip_through_values() {
    // String + signed + unsigned domains through the full stack.
    let schema = Schema::from_pairs(vec![
        (
            "grade",
            Domain::enumerated(vec!["A", "B", "C", "D", "F"]).unwrap(),
        ),
        ("delta", Domain::int_range(-50, 49).unwrap()),
        ("serial", Domain::uint(100_000).unwrap()),
    ])
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..500i64)
        .map(|i| {
            vec![
                Value::from(["A", "B", "C", "D", "F"][(i % 5) as usize]),
                Value::Int(i % 100 - 50),
                Value::Uint((i * 97) as u64 % 100_000),
            ]
        })
        .collect();
    let relation = Relation::from_rows(schema, rows.clone()).unwrap();
    let mut db = Database::new(DbConfig {
        codec: CodecOptions {
            block_capacity: 512,
            ..Default::default()
        },
        ..Default::default()
    });
    db.create_relation("grades", &relation).unwrap();
    let (got, _) = db
        .select_range("grades", "delta", &Value::Int(-10), &Value::Int(10))
        .unwrap();
    let expect = rows
        .iter()
        .filter(|r| (-10..=10).contains(&r[1].as_int().unwrap()))
        .count();
    assert_eq!(got.len(), expect);
    assert!(got
        .iter()
        .all(|r| (-10..=10).contains(&r[1].as_int().unwrap())));
}
