//! Criterion micro-benchmarks for the numeric and codec substrates: the φ
//! mapping, digit-space arithmetic vs. bignum arithmetic (the optimization
//! §2.1 claims over conventional VQ), and whole-block encode/decode under
//! each coding mode.

use avq_codec::{BlockCodec, CodingMode, RepChoice};
use avq_num::{BigUnsigned, MixedRadix};
use avq_schema::Tuple;
use avq_workload::SyntheticSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_phi(c: &mut Criterion) {
    let spec = SyntheticSpec::section_5_2(1);
    let schema = spec.schema();
    let radix = schema.radix().clone();
    let digits: Vec<u64> = spec.generate().tuples()[0].digits().to_vec();
    let value = radix.rank(&digits);

    let mut g = c.benchmark_group("phi");
    g.bench_function("rank_16attr", |b| {
        b.iter(|| black_box(radix.rank(black_box(&digits))))
    });
    g.bench_function("unrank_16attr", |b| {
        b.iter(|| black_box(radix.unrank(black_box(&value))))
    });
    g.finish();
}

fn bench_digit_vs_bignum(c: &mut Criterion) {
    let radix = MixedRadix::new(vec![8, 16, 64, 64, 64, 256, 1024, 4096]).unwrap();
    let a = vec![7u64, 12, 60, 33, 10, 200, 1000, 4000];
    let b_digits = vec![7u64, 12, 59, 60, 63, 100, 900, 100];
    let ra = radix.rank(&a);
    let rb = radix.rank(&b_digits);

    let mut g = c.benchmark_group("difference");
    g.bench_function("digit_space_sub", |bch| {
        bch.iter(|| black_box(radix.checked_sub(black_box(&a), black_box(&b_digits))))
    });
    g.bench_function("bignum_sub_with_unrank", |bch| {
        bch.iter(|| {
            let d = black_box(&ra).checked_sub(black_box(&rb)).unwrap();
            black_box(radix.unrank(&d))
        })
    });
    g.bench_function("bignum_roundtrip_rank_sub_unrank", |bch| {
        bch.iter(|| {
            let ra = radix.rank(black_box(&a));
            let rb = radix.rank(black_box(&b_digits));
            let d = ra.checked_sub(&rb).unwrap();
            black_box(radix.unrank(&d))
        })
    });
    g.finish();
}

fn bench_bignum_ops(c: &mut Criterion) {
    let big = BigUnsigned::from_bytes_be(&[0xAB; 40]);
    let small = BigUnsigned::from_bytes_be(&[0x11; 39]);
    let mut g = c.benchmark_group("bignum");
    g.bench_function("add_320bit", |b| {
        b.iter(|| black_box(black_box(&big).add(black_box(&small))))
    });
    g.bench_function("sub_320bit", |b| {
        b.iter(|| black_box(black_box(&big).checked_sub(black_box(&small))))
    });
    g.bench_function("divmod_u64_320bit", |b| {
        b.iter(|| black_box(black_box(&big).divmod_u64(black_box(12345))))
    });
    g.bench_function("to_bytes_320bit", |b| {
        b.iter(|| black_box(black_box(&big).to_bytes_be()))
    });
    g.finish();
}

fn block_tuples(n: usize) -> (std::sync::Arc<avq_schema::Schema>, Vec<Tuple>) {
    let spec = SyntheticSpec::section_5_2(n);
    let schema = spec.schema();
    let mut tuples = spec.generate().into_tuples();
    tuples.sort_unstable();
    tuples.dedup();
    (schema, tuples)
}

fn bench_block_codec(c: &mut Criterion) {
    let (schema, tuples) = block_tuples(4096);
    // One block-sized run (~200-400 tuples for 8 KiB chained blocks).
    let run = &tuples[..400.min(tuples.len())];

    let mut g = c.benchmark_group("block_codec");
    g.throughput(Throughput::Elements(run.len() as u64));
    for mode in CodingMode::ALL {
        let codec = BlockCodec::with_options(schema.clone(), mode, RepChoice::Median);
        let coded = codec.encode(run).unwrap();
        g.bench_with_input(BenchmarkId::new("encode", mode), &codec, |b, codec| {
            b.iter(|| black_box(codec.encode(black_box(run)).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("decode", mode), &codec, |b, codec| {
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                codec.decode_into(black_box(&coded), &mut out).unwrap();
                black_box(&out);
            })
        });
        g.bench_with_input(BenchmarkId::new("measure", mode), &codec, |b, codec| {
            b.iter(|| black_box(codec.measure(black_box(run))))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_phi,
    bench_digit_vs_bignum,
    bench_bignum_ops,
    bench_block_codec
);
criterion_main!(benches);
