//! Synthetic relation generators matching §5.1 and §5.2 of the paper.
//!
//! §5.1 generates relations varying three knobs: relation size, attribute
//! domain-size variance ("low" = sizes within 10 % of the average, "high" =
//! differences above 100 %), and value skew ("60 % of the values drawn from
//! 40 % of the domain"). The number of attributes is fixed at 15.
//!
//! §5.2 uses one relation — 16 attributes, 38-byte tuples after domain
//! mapping, 10⁵ tuples, 8192-byte blocks — for all timing measurements.
//!
//! Real attribute values cluster in a small *active* region of their
//! declared type range (a 2-byte employee-number column rarely uses all
//! 65536 values). [`SyntheticSpec::active_values`] models this: declared
//! domain sizes fix the byte widths, draws come from the active prefix.

use avq_schema::{Domain, Relation, Schema, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Domain-size homogeneity, per Fig. 5.7 (a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainVariance {
    /// Sizes within ±10 % of the mean.
    Low,
    /// Size differences exceeding 100 % of the mean (log-uniform spread).
    High,
}

/// Which part of each declared domain actually occurs in the data.
///
/// Declared domain sizes fix the fixed-width byte layout (the type's
/// range); real values cluster in a much smaller *active* region — think of
/// a 2-byte status column holding a handful of codes. AVQ's differences are
/// what reclaim the slack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActiveSpec {
    /// Values drawn from the whole declared domain.
    Full,
    /// Values drawn from the first `n` ordinals of every domain.
    Uniform(u64),
    /// Per-attribute active prefix sizes (padded with the last entry if
    /// shorter than the arity).
    PerAttribute(Vec<u64>),
}

impl ActiveSpec {
    fn for_attr(&self, attr: usize, size: u64) -> u64 {
        match self {
            ActiveSpec::Full => size,
            ActiveSpec::Uniform(n) => (*n).min(size).max(1),
            ActiveSpec::PerAttribute(v) => {
                let n = v.get(attr).or_else(|| v.last()).copied().unwrap_or(size);
                n.min(size).max(1)
            }
        }
    }
}

/// A synthetic-relation specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Number of attributes (the paper fixes 15 for §5.1).
    pub attributes: usize,
    /// Mean attribute-domain size.
    pub mean_domain_size: u64,
    /// Domain-size homogeneity.
    pub variance: DomainVariance,
    /// Whether 60 % of draws come from the first 40 % of the domain.
    pub skew: bool,
    /// Number of tuples to generate.
    pub tuples: usize,
    /// Which prefix of each domain the data actually uses; byte widths
    /// still follow the declared sizes.
    pub active: ActiveSpec,
    /// When set, the last attribute is a unique sequence number (a primary
    /// key, like the paper's A₁₅/employee number) instead of a random draw.
    pub unique_last: bool,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl SyntheticSpec {
    /// Test 1 of Fig. 5.7 (a): data skew, small domain variance.
    pub fn test1(tuples: usize) -> Self {
        SyntheticSpec {
            attributes: 15,
            mean_domain_size: 3,
            variance: DomainVariance::Low,
            skew: true,
            tuples,
            active: ActiveSpec::Full,
            unique_last: false,
            seed: 0x5e_ed_01,
        }
    }

    /// Test 2 of Fig. 5.7 (a): data skew, large domain variance.
    pub fn test2(tuples: usize) -> Self {
        SyntheticSpec {
            variance: DomainVariance::High,
            seed: 0x5e_ed_02,
            ..Self::test1(tuples)
        }
    }

    /// Test 3 of Fig. 5.7 (a): no skew, small domain variance.
    pub fn test3(tuples: usize) -> Self {
        SyntheticSpec {
            skew: false,
            seed: 0x5e_ed_03,
            ..Self::test1(tuples)
        }
    }

    /// Test 4 of Fig. 5.7 (a): no skew, large domain variance.
    pub fn test4(tuples: usize) -> Self {
        SyntheticSpec {
            variance: DomainVariance::High,
            skew: false,
            seed: 0x5e_ed_04,
            ..Self::test1(tuples)
        }
    }

    /// The four tests of Fig. 5.7 (a) in order.
    pub fn fig_5_7_tests(tuples: usize) -> Vec<(&'static str, Self)> {
        vec![
            ("Test 1 (skew, small var)", Self::test1(tuples)),
            ("Test 2 (skew, large var)", Self::test2(tuples)),
            ("Test 3 (no skew, small var)", Self::test3(tuples)),
            ("Test 4 (no skew, large var)", Self::test4(tuples)),
        ]
    }

    /// The §5.2 timing relation: 16 attributes of varying domain sizes whose
    /// declared widths sum to 38 bytes per tuple.
    ///
    /// Active ranges model realistic data: the leading twelve columns are
    /// low-cardinality (flag/category-like: six binary, six ternary) and the
    /// trailing four are high-cardinality (measurement-like, 64 active
    /// values). This yields the ≈3× block reduction the paper measures on
    /// this relation (189 → 64 blocks in the paper; see EXPERIMENTS.md).
    pub fn section_5_2(tuples: usize) -> Self {
        let mut active = vec![2u64; 6];
        active.extend([3u64; 6]);
        active.extend([64u64; 4]);
        SyntheticSpec {
            attributes: 16,
            mean_domain_size: 0, // ignored: section_5_2 sizes are explicit
            variance: DomainVariance::High,
            skew: false,
            tuples,
            active: ActiveSpec::PerAttribute(active),
            unique_last: true,
            seed: 0x5e_ed_52,
        }
    }

    fn is_section_5_2(&self) -> bool {
        self.mean_domain_size == 0
    }

    /// The per-attribute domain sizes this spec generates (deterministic in
    /// the seed).
    pub fn domain_sizes(&self) -> Vec<u64> {
        if self.is_section_5_2() {
            // Ten 2-byte + six 3-byte attributes: 10·2 + 6·3 = 38 bytes, as
            // §5.2 states. Sizes vary within each width class.
            let mut sizes = Vec::with_capacity(16);
            let mut rng = StdRng::seed_from_u64(self.seed);
            for i in 0..16u64 {
                if i == 15 {
                    sizes.push(1 << 24); // the key column: room for any n
                } else if i % 8 < 5 {
                    sizes.push(rng.random_range(1000..=65536)); // 2 bytes
                } else {
                    sizes.push(rng.random_range(70_000..=1 << 24)); // 3 bytes
                }
            }
            return sizes;
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD0_0D);
        let mean = self.mean_domain_size as f64;
        (0..self.attributes)
            .map(|_| match self.variance {
                DomainVariance::Low => {
                    let lo = (mean * 0.9).round().max(2.0) as u64;
                    let hi = (mean * 1.1).round() as u64;
                    rng.random_range(lo..=hi.max(lo))
                }
                DomainVariance::High => {
                    // Log-uniform across [mean/2, mean*2.5]: size differences
                    // routinely exceed 100 % of the mean (the paper's "high
                    // variance" rule) while keeping ‖𝓡‖ comparable.
                    let lo = (mean / 2.0).max(2.0);
                    let hi = mean * 2.5;
                    let x = rng.random_range(lo.ln()..hi.ln());
                    x.exp().round().max(2.0) as u64
                }
            })
            .collect()
    }

    /// Builds the schema for this spec.
    pub fn schema(&self) -> Arc<Schema> {
        let sizes = self.domain_sizes();
        Schema::from_pairs(
            sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| (format!("a{i:02}"), Domain::uint(s).expect("size >= 2"))),
        )
        .expect("generated schema is valid")
    }

    /// Generates the relation (schema + tuples), deterministically.
    pub fn generate(&self) -> Relation {
        let schema = self.schema();
        let sizes = self.domain_sizes();
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if self.unique_last {
            let last = sizes.len() - 1;
            assert!(
                sizes[last] >= self.tuples as u64,
                "key domain too small for {} tuples",
                self.tuples
            );
        }
        let mut tuples = Vec::with_capacity(self.tuples);
        for seq in 0..self.tuples {
            let digits: Vec<u64> = sizes
                .iter()
                .enumerate()
                .map(|(i, &size)| {
                    if self.unique_last && i == sizes.len() - 1 {
                        seq as u64
                    } else {
                        let active = self.active.for_attr(i, size);
                        draw(&mut rng, active, self.skew)
                    }
                })
                .collect();
            tuples.push(Tuple::new(digits));
        }
        Relation::from_tuples(schema, tuples).expect("generated tuples are valid")
    }
}

/// Draws one ordinal from `[0, n)`: uniform, or 60 % of the mass on the
/// first 40 % of the range when `skew` is set (§5.1's skew rule).
fn draw(rng: &mut StdRng, n: u64, skew: bool) -> u64 {
    if !skew || n < 3 {
        return rng.random_range(0..n);
    }
    let hot = (n as f64 * 0.4).ceil() as u64;
    let hot = hot.clamp(1, n - 1);
    if rng.random_bool(0.6) {
        rng.random_range(0..hot)
    } else {
        rng.random_range(hot..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = SyntheticSpec::test1(500).generate();
        let b = SyntheticSpec::test1(500).generate();
        assert_eq!(a.tuples(), b.tuples());
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn fifteen_attributes_for_fig_5_7() {
        for (_, spec) in SyntheticSpec::fig_5_7_tests(10) {
            assert_eq!(spec.attributes, 15);
            assert_eq!(spec.schema().arity(), 15);
        }
    }

    #[test]
    fn low_variance_sizes_within_ten_percent() {
        let spec = SyntheticSpec::test3(1);
        let sizes = spec.domain_sizes();
        let mean = spec.mean_domain_size as f64;
        for &s in &sizes {
            assert!((s as f64) >= mean * 0.9 - 1.0 && (s as f64) <= mean * 1.1 + 1.0);
        }
    }

    #[test]
    fn high_variance_sizes_spread_widely() {
        let spec = SyntheticSpec::test4(1);
        let sizes = spec.domain_sizes();
        let min = *sizes.iter().min().unwrap() as f64;
        let max = *sizes.iter().max().unwrap() as f64;
        let mean = spec.mean_domain_size as f64;
        assert!(
            max - min > mean,
            "spread {min}..{max} should exceed the mean {mean}"
        );
    }

    #[test]
    fn skew_concentrates_mass() {
        let n = 20_000usize;
        let spec = SyntheticSpec {
            attributes: 1,
            mean_domain_size: 100,
            variance: DomainVariance::Low,
            skew: true,
            tuples: n,
            active: ActiveSpec::Full,
            unique_last: false,
            seed: 7,
        };
        let rel = spec.generate();
        let size = rel.schema().attribute(0).domain().size();
        let hot = (size as f64 * 0.4).ceil() as u64;
        let in_hot = rel.tuples().iter().filter(|t| t.digits()[0] < hot).count();
        let frac = in_hot as f64 / n as f64;
        assert!(
            (frac - 0.6).abs() < 0.02,
            "60% of draws must land in the hot 40%: got {frac}"
        );
    }

    #[test]
    fn uniform_has_no_hot_region() {
        let n = 20_000usize;
        let spec = SyntheticSpec {
            skew: false,
            attributes: 1,
            mean_domain_size: 100,
            variance: DomainVariance::Low,
            tuples: n,
            active: ActiveSpec::Full,
            unique_last: false,
            seed: 7,
        };
        let rel = spec.generate();
        let size = rel.schema().attribute(0).domain().size();
        let hot = (size as f64 * 0.4).ceil() as u64;
        let in_hot = rel.tuples().iter().filter(|t| t.digits()[0] < hot).count();
        let frac = in_hot as f64 / n as f64;
        let expect = hot as f64 / size as f64;
        assert!((frac - expect).abs() < 0.02, "got {frac}, expect {expect}");
    }

    #[test]
    fn section_5_2_geometry() {
        let spec = SyntheticSpec::section_5_2(100);
        let schema = spec.schema();
        assert_eq!(schema.arity(), 16);
        assert_eq!(schema.tuple_bytes(), 38, "§5.2: each tuple is 38 bytes");
        let rel = spec.generate();
        assert_eq!(rel.len(), 100);
        // Active ranges: leading columns low-cardinality, trailing below 128.
        for (i, t) in rel.tuples().iter().enumerate() {
            assert!(t.digits()[..6].iter().all(|&d| d < 2));
            assert!(t.digits()[6..12].iter().all(|&d| d < 3));
            assert!(t.digits()[12..15].iter().all(|&d| d < 64));
            assert_eq!(t.digits()[15], i as u64, "A16 is a sequence key");
        }
    }

    #[test]
    fn active_values_clamped_to_domain() {
        let spec = SyntheticSpec {
            attributes: 2,
            mean_domain_size: 4,
            variance: DomainVariance::Low,
            skew: false,
            tuples: 50,
            active: ActiveSpec::Uniform(1_000_000),
            unique_last: false,
            seed: 1,
        };
        let rel = spec.generate();
        assert_eq!(rel.len(), 50); // no panic: active clamped to size

        let per = ActiveSpec::PerAttribute(vec![2]);
        assert_eq!(per.for_attr(0, 100), 2);
        assert_eq!(per.for_attr(5, 100), 2, "padded with last entry");
        assert_eq!(ActiveSpec::Full.for_attr(0, 100), 100);
    }
}
