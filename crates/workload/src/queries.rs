//! Deterministic query workloads over generated relations.
//!
//! §5.3 evaluates one query shape — `σ_{a ≤ A_k ≤ b}(R)` — parameterized by
//! `(k, a, b)`. [`QueryWorkload`] generates reproducible mixes of such
//! queries with controlled selectivity, for throughput experiments and
//! soak tests.

use crate::synthetic::{ActiveSpec, SyntheticSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One range-selection query `σ_{lo ≤ A_attr ≤ hi}` in ordinal space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeQuery {
    /// Attribute position `k`.
    pub attr: usize,
    /// Inclusive lower bound `a`.
    pub lo: u64,
    /// Inclusive upper bound `b`.
    pub hi: u64,
}

/// The shape of queries to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryShape {
    /// Equality lookups (`a = b`), drawn uniformly over active values.
    PointLookups,
    /// Ranges covering roughly `selectivity` of the active value range.
    Ranges {
        /// Target fraction of the active range each query spans (0, 1].
        selectivity: f64,
    },
    /// The paper's §5.3 query: `a = 0.5·|A_k|` over the active range, `b`
    /// its top (equality when the attribute is the unique key).
    PaperHalfDomain,
}

/// A reproducible stream of range queries against a [`SyntheticSpec`]'s
/// relation.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    sizes: Vec<u64>,
    actives: Vec<u64>,
    key_attr: Option<usize>,
    tuples: usize,
    shape: QueryShape,
    seed: u64,
}

impl QueryWorkload {
    /// Builds a workload matching `spec`'s relation geometry.
    pub fn new(spec: &SyntheticSpec, shape: QueryShape, seed: u64) -> Self {
        let sizes = spec.domain_sizes();
        let actives = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| match &spec.active {
                ActiveSpec::Full => s,
                ActiveSpec::Uniform(n) => (*n).min(s).max(1),
                ActiveSpec::PerAttribute(v) => v
                    .get(i)
                    .or_else(|| v.last())
                    .copied()
                    .unwrap_or(s)
                    .min(s)
                    .max(1),
            })
            .collect();
        QueryWorkload {
            key_attr: spec.unique_last.then_some(sizes.len() - 1),
            sizes,
            actives,
            tuples: spec.tuples,
            shape,
            seed,
        }
    }

    /// The active value range queries draw bounds from for `attr`.
    pub fn active_range(&self, attr: usize) -> u64 {
        if Some(attr) == self.key_attr {
            self.tuples as u64
        } else {
            self.actives[attr]
        }
    }

    /// Generates `n` queries over attribute `attr`.
    pub fn generate_for(&self, attr: usize, n: usize) -> Vec<RangeQuery> {
        assert!(attr < self.sizes.len(), "attribute out of range");
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (attr as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let active = self.active_range(attr).max(1);
        (0..n)
            .map(|_| match self.shape {
                QueryShape::PointLookups => {
                    let v = rng.random_range(0..active);
                    RangeQuery { attr, lo: v, hi: v }
                }
                QueryShape::Ranges { selectivity } => {
                    let span = ((active as f64 * selectivity).ceil() as u64).clamp(1, active);
                    let lo = rng.random_range(0..=active - span);
                    RangeQuery {
                        attr,
                        lo,
                        hi: lo + span - 1,
                    }
                }
                QueryShape::PaperHalfDomain => {
                    let a = active / 2;
                    if Some(attr) == self.key_attr {
                        RangeQuery { attr, lo: a, hi: a }
                    } else {
                        RangeQuery {
                            attr,
                            lo: a,
                            hi: active.saturating_sub(1),
                        }
                    }
                }
            })
            .collect()
    }

    /// Generates a round-robin mix: `n` queries cycling over all attributes.
    pub fn generate_mix(&self, n: usize) -> Vec<RangeQuery> {
        let arity = self.sizes.len();
        let mut per_attr: Vec<Vec<RangeQuery>> = (0..arity)
            .map(|a| self.generate_for(a, n.div_ceil(arity)))
            .collect();
        let mut out = Vec::with_capacity(n);
        'outer: loop {
            for q in per_attr.iter_mut() {
                match q.pop() {
                    Some(query) => {
                        out.push(query);
                        if out.len() == n {
                            break 'outer;
                        }
                    }
                    None => break 'outer,
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SyntheticSpec {
        SyntheticSpec::section_5_2(1000)
    }

    #[test]
    fn deterministic() {
        let w = QueryWorkload::new(&spec(), QueryShape::PointLookups, 7);
        assert_eq!(w.generate_for(3, 50), w.generate_for(3, 50));
        // Different attributes draw different streams.
        let a = w.generate_for(3, 50);
        let b = w.generate_for(4, 50);
        assert!(a.iter().zip(&b).any(|(x, y)| (x.lo, x.hi) != (y.lo, y.hi)));
    }

    #[test]
    fn point_lookups_are_equalities_in_range() {
        let w = QueryWorkload::new(&spec(), QueryShape::PointLookups, 1);
        for q in w.generate_for(13, 200) {
            assert_eq!(q.lo, q.hi);
            assert!(q.hi < w.active_range(13));
        }
    }

    #[test]
    fn range_selectivity_respected() {
        let w = QueryWorkload::new(&spec(), QueryShape::Ranges { selectivity: 0.25 }, 2);
        let active = w.active_range(13);
        for q in w.generate_for(13, 100) {
            let span = q.hi - q.lo + 1;
            assert_eq!(span, (active as f64 * 0.25).ceil() as u64);
            assert!(q.hi < active);
        }
    }

    #[test]
    fn paper_shape_matches_section_5_3() {
        let w = QueryWorkload::new(&spec(), QueryShape::PaperHalfDomain, 3);
        // Non-key attribute: a = active/2, b = active-1.
        let q = w.generate_for(13, 1)[0];
        let active = w.active_range(13);
        assert_eq!(q.lo, active / 2);
        assert_eq!(q.hi, active - 1);
        // Key attribute: equality.
        let kq = w.generate_for(15, 1)[0];
        assert_eq!(kq.lo, kq.hi);
        assert_eq!(kq.lo, 500);
    }

    #[test]
    fn mix_covers_all_attributes() {
        let w = QueryWorkload::new(&spec(), QueryShape::PointLookups, 4);
        let mix = w.generate_mix(64);
        assert_eq!(mix.len(), 64);
        let attrs: std::collections::BTreeSet<usize> = mix.iter().map(|q| q.attr).collect();
        assert_eq!(attrs.len(), 16, "round-robin touches every attribute");
    }

    #[test]
    #[should_panic(expected = "attribute out of range")]
    fn bad_attribute_panics() {
        let w = QueryWorkload::new(&spec(), QueryShape::PointLookups, 0);
        let _ = w.generate_for(99, 1);
    }
}
