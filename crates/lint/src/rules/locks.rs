//! AVQ-L009 — lock discipline.
//!
//! Proves four properties against the declared lock hierarchy
//! (`config::LOCKS`, mirrored in the DESIGN.md §17 table, two-way
//! checked): every `Mutex`/`RwLock` struct field is in the inventory;
//! nested acquisitions strictly increase in rank; no decode/IO/fsync
//! call runs while a guard is held; and `Condvar` waits happen only in
//! the sanctioned admission controller.
//!
//! Guard tracking is per-function and syntactic: a guard counts as
//! *held* only when bound by a plain `let` whose initializer ends right
//! after the `lock()/read()/write()` (plus `expect`/`unwrap`/`?`)
//! chain — `let n = self.slots.lock().expect("…").len();` is a
//! temporary, not a hold. The documented false-negative posture.

use std::collections::{BTreeMap, BTreeSet};

use super::Finding;
use crate::config::{self, LOCKS};
use crate::lexer::{balanced, Kind, Token};
use crate::symbols::{collect_regions, Symbols};
use crate::workspace::{design_section, named_table_rows, Workspace};

/// Run AVQ-L009 over the workspace.
pub fn check(ws: &Workspace, syms: &Symbols, out: &mut Vec<Finding>) {
    for (fidx, file) in ws.files.iter().enumerate() {
        let t = &file.scan.tokens;
        check_condvar_waits(&file.rel, t, out);
        check_struct_fields(&file.rel, t, out);
        let file_locks: BTreeMap<&str, u32> = LOCKS
            .iter()
            .filter(|r| r.file == file.rel)
            .map(|r| (r.field, r.rank))
            .collect();
        for f in syms.fns.iter().filter(|f| f.file == fidx) {
            if let Some(body) = f.body {
                simulate(&file.rel, t, body, &file_locks, out);
            }
        }
    }
    check_unused_rows(ws, out);
    check_design_table(ws, out);
}

/// `Condvar` waits (`.wait(` / `.wait_timeout(` / `.wait_while(`) are
/// allowed only in the admission controller.
fn check_condvar_waits(rel: &str, t: &[Token], out: &mut Vec<Finding>) {
    if rel == config::CONDVAR_HOME {
        return;
    }
    for i in 1..t.len() {
        if t[i].kind == Kind::Ident
            && matches!(t[i].text.as_str(), "wait" | "wait_timeout" | "wait_while")
            && t[i - 1].is_punct('.')
            && t.get(i + 1).is_some_and(|x| x.is_punct('('))
        {
            out.push(Finding {
                file: rel.to_string(),
                line: t[i].line,
                rule: "AVQ-L009".into(),
                message: format!(
                    "condvar `{}` outside the admission controller ({}) — blocking waits belong to the sanctioned wait loop",
                    t[i].text,
                    config::CONDVAR_HOME
                ),
            });
        }
    }
}

/// Every `Mutex`/`RwLock` struct field must be an inventory row; every
/// `Condvar` field must live in the condvar home.
fn check_struct_fields(rel: &str, t: &[Token], out: &mut Vec<Finding>) {
    for region in collect_regions(t, "struct") {
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut i = region.open + 1;
        while i < region.close {
            let tok = &t[i];
            if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
                depth += 1;
            } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('}') {
                depth -= 1;
            } else if tok.is_punct('<') {
                angle += 1;
            } else if tok.is_punct('>') {
                angle = (angle - 1).max(0);
            } else if depth == 0
                && angle == 0
                && tok.kind == Kind::Ident
                && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && !t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            {
                // Field `tok.text`: type runs to the next top-level comma.
                let mut j = i + 2;
                let (mut d2, mut a2) = (0i32, 0i32);
                let mut ty_idents: Vec<&str> = Vec::new();
                while j < region.close {
                    let x = &t[j];
                    if x.is_punct('(') || x.is_punct('[') || x.is_punct('{') {
                        d2 += 1;
                    } else if x.is_punct(')') || x.is_punct(']') || x.is_punct('}') {
                        d2 -= 1;
                    } else if x.is_punct('<') {
                        a2 += 1;
                    } else if x.is_punct('>') {
                        a2 = (a2 - 1).max(0);
                    } else if x.is_punct(',') && d2 == 0 && a2 == 0 {
                        break;
                    } else if x.kind == Kind::Ident {
                        ty_idents.push(&x.text);
                    }
                    j += 1;
                }
                let is_lock = ty_idents.iter().any(|s| *s == "Mutex" || *s == "RwLock");
                let is_cv = ty_idents.contains(&"Condvar");
                if is_lock && !LOCKS.iter().any(|r| r.file == rel && r.field == tok.text) {
                    out.push(Finding {
                        file: rel.to_string(),
                        line: tok.line,
                        rule: "AVQ-L009".into(),
                        message: format!(
                            "lock field `{}` is not in the lock-hierarchy inventory (config::LOCKS + DESIGN.md §17) — assign it a rank",
                            tok.text
                        ),
                    });
                }
                if is_cv && rel != config::CONDVAR_HOME {
                    out.push(Finding {
                        file: rel.to_string(),
                        line: tok.line,
                        rule: "AVQ-L009".into(),
                        message: format!(
                            "`Condvar` field `{}` outside the admission controller ({})",
                            tok.text,
                            config::CONDVAR_HOME
                        ),
                    });
                }
                i = j;
                continue;
            }
            i += 1;
        }
    }
}

/// One held guard during the per-function walk.
struct Held {
    rank: u32,
    field: String,
    depth: i32,
    binding: String,
}

/// Walk one fn body tracking held guards; flag rank inversions and
/// blocking calls under a guard.
fn simulate(
    rel: &str,
    t: &[Token],
    body: (usize, usize),
    file_locks: &BTreeMap<&str, u32>,
    out: &mut Vec<Finding>,
) {
    let (open, close) = body;
    let mut depth = 1i32; // the body brace itself
    let mut held: Vec<Held> = Vec::new();
    let mut i = open + 1;
    while i < close {
        let tok = &t[i];
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            held.retain(|h| h.depth <= depth);
        } else if tok.kind == Kind::Ident {
            if let Some(&rank) = file_locks.get(tok.text.as_str()) {
                if is_acquire(t, i) {
                    for h in &held {
                        if rank <= h.rank {
                            out.push(Finding {
                                file: rel.to_string(),
                                line: tok.line,
                                rule: "AVQ-L009".into(),
                                message: format!(
                                    "lock-order inversion: acquiring `{}` (rank {rank}) while `{}` (rank {}) is held — ranks must strictly increase",
                                    tok.text, h.field, h.rank
                                ),
                            });
                        }
                    }
                    if let Some(binding) = let_bound_hold(t, i) {
                        held.push(Held {
                            rank,
                            field: tok.text.clone(),
                            depth,
                            binding,
                        });
                    }
                }
            } else if tok.is_ident("drop")
                && t.get(i + 1).is_some_and(|x| x.is_punct('('))
                && t.get(i + 3).is_some_and(|x| x.is_punct(')'))
            {
                // `drop(guard)` releases an explicitly named guard early.
                if let Some(name) = t.get(i + 2).filter(|x| x.kind == Kind::Ident) {
                    held.retain(|h| h.binding != name.text);
                }
            } else if !held.is_empty()
                && config::BLOCKING_CALLS.contains(&tok.text.as_str())
                && t.get(i + 1).is_some_and(|x| x.is_punct('('))
            {
                let h = held.last().expect("held is non-empty");
                out.push(Finding {
                    file: rel.to_string(),
                    line: tok.line,
                    rule: "AVQ-L009".into(),
                    message: format!(
                        "`{}` called while guard on `{}` (rank {}) is held — decode/IO/fsync must not run under a lock",
                        tok.text, h.field, h.rank
                    ),
                });
            }
        }
        i += 1;
    }
}

/// Is token `i` (a lock field ident) followed by `.lock(` / `.read(` /
/// `.write(`?
fn is_acquire(t: &[Token], i: usize) -> bool {
    t.get(i + 1).is_some_and(|x| x.is_punct('.'))
        && t.get(i + 2).is_some_and(|x| {
            x.kind == Kind::Ident && matches!(x.text.as_str(), "lock" | "read" | "write")
        })
        && t.get(i + 3).is_some_and(|x| x.is_punct('('))
}

/// Does the acquisition at field-ident `i` bind a guard that outlives
/// the statement — i.e. the statement starts with `let` and the
/// initializer ends (`;`) right after the `lock()` +
/// `expect`/`unwrap`/`?` chain? Returns the bound name (for `drop`
/// tracking) when it does.
fn let_bound_hold(t: &[Token], i: usize) -> Option<String> {
    // Statement start: first token after the previous `;` / `{` / `}`.
    let mut b = i;
    while b > 0 {
        let x = &t[b - 1];
        if x.is_punct(';') || x.is_punct('{') || x.is_punct('}') {
            break;
        }
        b -= 1;
    }
    if !t.get(b).is_some_and(|x| x.is_ident("let")) {
        return None;
    }
    let mut n = b + 1;
    while t.get(n).is_some_and(|x| x.is_ident("mut")) {
        n += 1;
    }
    let binding = t
        .get(n)
        .filter(|x| x.kind == Kind::Ident)
        .map(|x| x.text.clone())?;
    // Chain end: close of `lock(…)`, then optional `.expect(…)` /
    // `.unwrap()` / `?` links, then `;`.
    let mut c = balanced(t, i + 3, '(', ')')?;
    loop {
        if t.get(c + 1).is_some_and(|x| x.is_punct('?')) {
            c += 1;
            continue;
        }
        if t.get(c + 1).is_some_and(|x| x.is_punct('.'))
            && t.get(c + 2)
                .is_some_and(|x| x.is_ident("expect") || x.is_ident("unwrap"))
            && t.get(c + 3).is_some_and(|x| x.is_punct('('))
        {
            match balanced(t, c + 3, '(', ')') {
                Some(e) => {
                    c = e;
                    continue;
                }
                None => return None,
            }
        }
        break;
    }
    t.get(c + 1)
        .is_some_and(|x| x.is_punct(';'))
        .then_some(binding)
}

/// Inventory rows whose file is in the workspace but whose field never
/// appears in it are stale.
fn check_unused_rows(ws: &Workspace, out: &mut Vec<Finding>) {
    for row in LOCKS {
        let Some(file) = ws.files.iter().find(|f| f.rel == row.file) else {
            continue; // fixture trees carry only a slice of the inventory
        };
        let present = file
            .scan
            .tokens
            .iter()
            .any(|x| x.kind == Kind::Ident && x.text == row.field);
        if !present {
            out.push(Finding {
                file: row.file.to_string(),
                line: 1,
                rule: "AVQ-L009".into(),
                message: format!(
                    "stale inventory row: lock field `{}` ({}) no longer appears in this file — drop it from config::LOCKS and DESIGN.md §17",
                    row.field, row.label
                ),
            });
        }
    }
}

/// Two-way check of config::LOCKS against the DESIGN.md §17 table
/// (columns `file`, `field`, `rank`). Skipped when the tree has no
/// DESIGN.md (fixtures).
fn check_design_table(ws: &Workspace, out: &mut Vec<Finding>) {
    if !ws.root.join("DESIGN.md").is_file() {
        return;
    }
    let push = |out: &mut Vec<Finding>, message: String| {
        out.push(Finding {
            file: "DESIGN.md".into(),
            line: 1,
            rule: "AVQ-L009".into(),
            message,
        });
    };
    let Some(section) = design_section(&ws.root, 17) else {
        push(
            out,
            "DESIGN.md §17 (static analysis) is missing — the lock-hierarchy table lives there"
                .into(),
        );
        return;
    };
    let doc: BTreeSet<(String, String, String)> = named_table_rows(&section, "rank")
        .into_iter()
        .filter(|r| r.len() >= 3)
        .map(|r| (r[0].clone(), r[1].clone(), r[2].clone()))
        .collect();
    let code: BTreeSet<(String, String, String)> = LOCKS
        .iter()
        .map(|r| (r.file.to_string(), r.field.to_string(), r.rank.to_string()))
        .collect();
    for (file, field, rank) in code.difference(&doc) {
        push(
            out,
            format!(
                "lock `{field}` ({file}, rank {rank}) is in config::LOCKS but not in the §17 table"
            ),
        );
    }
    for (file, field, rank) in doc.difference(&code) {
        push(
            out,
            format!(
                "§17 table row `{field}` ({file}, rank {rank}) has no matching config::LOCKS entry"
            ),
        );
    }
}
