//! `avq-lint` — project-native static analysis for the AVQ workspace.
//!
//! Run as `cargo run -p avq-lint -- check` from anywhere inside the
//! workspace. Six rules (see DESIGN.md §12) enforce the decode-path
//! panic-freedom, bounded-allocation, crate-hygiene, metric-naming,
//! virtual-clock, and `Corrupt`-section invariants that earlier PRs
//! established by convention. Any finding exits non-zero.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod lexer;
mod out;
mod rules;
mod workspace;

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: avq-lint check [--root <dir>] [--format human|json]

Scans the workspace's production sources and reports violations of the
project's AVQ-L001..L006 invariants (DESIGN.md §12). Exit status: 0 when
clean, 1 when there are findings, 2 on usage or I/O errors.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("avq-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Parse arguments, run the engine, print the report. Returns whether
/// the run was clean.
fn run(args: &[String]) -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut format = "human".to_string();
    let mut command: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--root" => {
                root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                ));
            }
            "--format" => {
                format = it.next().ok_or("--format needs `human` or `json`")?.clone();
                if format != "human" && format != "json" {
                    return Err(format!(
                        "unknown format `{format}` (expected human or json)"
                    ));
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if command != Some("check") {
        return Err(format!("missing `check` subcommand\n{USAGE}"));
    }
    let root = match root {
        Some(r) => r,
        None => find_workspace_root()?,
    };
    let mut ws = workspace::Workspace::load(&root)
        .map_err(|e| format!("failed to scan {}: {e}", root.display()))?;
    let report = rules::run(&mut ws);
    let rendered = match format.as_str() {
        "json" => out::json(&report),
        _ => out::human(&report),
    };
    print!("{rendered}");
    Ok(report.findings.is_empty())
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory (pass --root)".into());
        }
    }
}
