//! Project-specific lint policy: which paths each rule covers, which
//! crates are exempt, and the documented `Corrupt` section vocabulary.
//!
//! The policy is code, not a config file, on purpose: the linter is
//! project-native and the scopes *are* invariants the workspace claims
//! (DESIGN.md §12 documents them for humans). Fixture trees under
//! `crates/lint/tests/fixtures/` mirror the same layout, so the same
//! scopes apply unchanged there.

/// Paths (relative, `/`-separated prefixes or exact files) whose
/// non-test code must be panic-free: AVQ-L001 and AVQ-L002 apply here.
/// These are the untrusted-byte decode surfaces hardened in DESIGN.md
/// §11 — the codec, the `.avq` container parser, the WAL read path, and
/// the SQL lexer/parser (which consume arbitrary user statements).
pub const DECODE_PATHS: &[&str] = &[
    "crates/codec/src/",
    "crates/file/src/",
    "crates/wal/src/reader.rs",
    "crates/wal/src/record.rs",
    "crates/sql/src/lexer.rs",
    "crates/sql/src/parser.rs",
];

/// Crate directories exempt from AVQ-L003 (crate-root hygiene
/// attributes): the vendored registry shims are third-party
/// stand-ins, not project code.
pub const L003_EXEMPT: &[&str] = &["crates/shims/"];

/// Crate directories allowed to read the real clock (AVQ-L005).
/// `avq-obs` owns `Stopwatch` (the one sanctioned wrapper), the bench
/// harness measures wall time by design, and the shims are third-party
/// stand-ins.
pub const CLOCK_EXEMPT: &[&str] = &["crates/obs/", "crates/bench/", "crates/shims/"];

/// Files allowed to spell metric names as string literals (AVQ-L004):
/// the single source of truth itself.
pub const METRIC_NAME_HOME: &str = "crates/obs/src/names.rs";

/// The documented `Corrupt { section: … }` vocabulary (AVQ-L006): each
/// section string paired with the crate directory allowed to produce it.
/// The `file.` prefix keeps the container parser's vocabulary disjoint
/// from the codec's; `order` is the db layer's φ-order check reporting
/// through `CodecError`.
pub const CORRUPT_SECTIONS: &[(&str, &str)] = &[
    ("header", "crates/codec/"),
    ("representative", "crates/codec/"),
    ("body", "crates/codec/"),
    ("entries", "crates/codec/"),
    ("order", "crates/db/"),
    ("file.header", "crates/file/"),
    ("file.schema", "crates/file/"),
    ("file.blocks", "crates/file/"),
    ("file.trailer", "crates/file/"),
];

/// True when `rel` (a `/`-separated path relative to the workspace
/// root) falls under any of the given prefixes or exact files.
pub fn in_scope(rel: &str, scopes: &[&str]) -> bool {
    scopes.iter().any(|s| {
        if s.ends_with('/') {
            rel.starts_with(s)
        } else {
            rel == *s
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_matching() {
        assert!(in_scope("crates/codec/src/block.rs", DECODE_PATHS));
        assert!(in_scope("crates/wal/src/reader.rs", DECODE_PATHS));
        assert!(in_scope("crates/sql/src/parser.rs", DECODE_PATHS));
        assert!(!in_scope("crates/wal/src/writer.rs", DECODE_PATHS));
        assert!(!in_scope("crates/db/src/query.rs", DECODE_PATHS));
        assert!(!in_scope("crates/sql/src/exec.rs", DECODE_PATHS));
    }

    #[test]
    fn section_vocabulary_is_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for (section, _) in CORRUPT_SECTIONS {
            assert!(seen.insert(*section), "duplicate section {section}");
        }
    }
}
