//! Test-case driver types: config, RNG, and failure reporting.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Deterministic SplitMix64 generator used to produce test cases.
///
/// Seeded from the test's fully qualified name so runs are reproducible
/// without any environment plumbing.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from `name`.
    pub fn from_name(name: &str) -> Self {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut hasher);
        TestRng {
            state: hasher.finish() | 1,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u128) -> u128 {
        assert!(n > 0, "cannot sample from an empty range");
        let word = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        word % n
    }

    /// Uniform draw from `[0, n)` as `usize`.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u128) as usize
    }
}

/// Runner configuration (the `cases` knob is the only one honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The generated input was rejected (counts as skipped, not failed).
    Reject(String),
}

impl TestCaseError {
    /// A falsified-property error with the given reason.
    pub fn fail<R: fmt::Display>(reason: R) -> Self {
        TestCaseError::Fail(reason.to_string())
    }

    /// An input-rejection with the given reason.
    pub fn reject<R: fmt::Display>(reason: R) -> Self {
        TestCaseError::Reject(reason.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "{reason}"),
            TestCaseError::Reject(reason) => write!(f, "input rejected: {reason}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Outcome of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;
