//! The rule registry: one entry per rule id with a one-line summary
//! (the `explain` field of JSON findings) and the long help text behind
//! `avq-lint --explain AVQ-LNNN`.

/// Documentation for one rule.
pub struct RuleDoc {
    /// Rule id (`AVQ-L001` … `AVQ-L010`, `AVQ-WAIVER`).
    pub id: &'static str,
    /// One-line summary, embedded in JSON findings.
    pub summary: &'static str,
    /// Long help: what the rule proves, why, and how to fix or waive a
    /// finding.
    pub help: &'static str,
}

/// Every rule, in id order.
pub const RULES: &[RuleDoc] = &[
    RuleDoc {
        id: "AVQ-L001",
        summary: "untrusted decode paths must be panic-free (no unwrap/expect/panic!/direct indexing)",
        help: "AVQ-L001 · panic freedom in decode paths

Files under the configured DECODE_PATHS consume untrusted bytes (coded
blocks, .avq containers, WAL frames, SQL text). A panic there turns a
corrupt input into a crash, so `.unwrap()`, `.expect()`, `panic!`,
`unreachable!`, `todo!`, `unimplemented!` and direct `[…]` indexing are
forbidden; return `Corrupt { section, … }` instead, and use `get`/slice
patterns for access. Assert-family macros are allowed (deliberate
invariant checks). Waive a deliberate exception with
`// lint: allow(AVQ-L001, <reason>)`.",
    },
    RuleDoc {
        id: "AVQ-L002",
        summary: "allocations in decode paths sized by untrusted input need a bounded(<why>) waiver",
        help: "AVQ-L002 · bounded allocations in decode paths

`Vec::with_capacity(n)` / `vec![_; n]` with a non-literal length in a
decode path can be attacker-sized. Every such site must either use a
literal bound or carry `// lint: bounded(<why>)` stating why the length
is validated. The same waiver also satisfies AVQ-L007 on that line.",
    },
    RuleDoc {
        id: "AVQ-L003",
        summary: "crate roots must carry #![forbid(unsafe_code)] and #![warn(missing_docs)]",
        help: "AVQ-L003 · crate-root hygiene

Every workspace member's root (lib.rs / main.rs / src/bin/*.rs) must
declare `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`. Vendored
shims are exempt via config.",
    },
    RuleDoc {
        id: "AVQ-L004",
        summary: "metric names and trace-attr keys live in avq_obs::names, documented in DESIGN.md",
        help: "AVQ-L004 · metric-name inventory

Metric names (`avq.x.y`) and trace-attribute keys are declared exactly
once in `crates/obs/src/names.rs`, listed in `ALL`/`TRACE_ATTRS`,
documented two-way against the DESIGN.md §10/§15 inventory tables, and
referenced through the constants (never string literals), with one
instrument kind per name.",
    },
    RuleDoc {
        id: "AVQ-L005",
        summary: "only avq-obs/bench may read the real clock; use avq_obs::Stopwatch",
        help: "AVQ-L005 · virtual clock discipline

Deterministic replay and tests require that production code charges the
virtual clock. `Instant::now()` / `SystemTime` are allowed only in
`crates/obs` (which owns `Stopwatch`), the bench harness, and shims.",
    },
    RuleDoc {
        id: "AVQ-L006",
        summary: "Corrupt { section } strings come from the documented vocabulary, from their owner crate",
        help: "AVQ-L006 · corruption vocabulary

`Corrupt { section: \"…\" }` strings must come from the vocabulary
documented in DESIGN.md §12, and each section may only be produced by
the crate that owns it (so a corruption report names its layer).",
    },
    RuleDoc {
        id: "AVQ-L007",
        summary: "untrusted byte-source values must pass a validator before allocation-size/index sinks",
        help: "AVQ-L007 · taint tracking on untrusted bytes

Values returned by registered byte sources (block headers, bit/RLE
readers, container/WAL frame readers) are tainted. A tainted value must
flow through a registered validator (or an explicit clamp like
`.min(…)`) before it reaches an allocation-size sink (`with_capacity`,
`reserve`, `vec![_; n]`) or a slice-index sink. Flows are traced through
`let` chains and interprocedurally through resolved calls to a bounded
depth; the engine is flow-insensitive and conservative (documented
false-negative posture, DESIGN.md §17). When the validation is real but
invisible to the engine, waive the sink or call line with
`// lint: sanitized(<why>)` — an existing `// lint: bounded(<why>)` on
the same line also counts.",
    },
    RuleDoc {
        id: "AVQ-L008",
        summary: "plain/_traced/_governed wrapper families: consistent signatures, single implementation, governed paths call governed variants",
        help: "AVQ-L008 · wrapper-family drift

For every `foo` / `foo_traced` / `foo_governed` family (same file, same
impl): signatures must agree modulo trailing ctx parameters (`TraceCtx`
/ `GovCtx`); exactly one member carries the implementation and every
other member delegates to a family member (no forked logic); a
`_traced`/`_governed` fn without a plain base is an orphan; and any fn
reachable from a `_governed` root that calls a plain fn which *has* a
governed sibling must call the governed variant instead, so resource
governance propagates down the whole decode path. Waive with
`// lint: allow(AVQ-L008, <reason>)`.",
    },
    RuleDoc {
        id: "AVQ-L009",
        summary: "lock acquisitions follow the declared hierarchy; no decode/IO/fsync or condvar waits under a guard",
        help: "AVQ-L009 · lock discipline

Every Mutex/RwLock field is listed in the lock-hierarchy inventory
(config LOCKS + DESIGN.md §17 table, two-way checked) with a rank;
nested acquisitions must strictly increase in rank. While a guard bound
with `let g = ….lock().expect(…);` is held, calls into decode, physical
IO, or fsync are flagged, as are `Condvar` waits anywhere outside the
sanctioned admission controller. Guard tracking is per-function and
syntactic (documented false-negative posture). Waive a deliberate hold
with `// lint: allow(AVQ-L009, <reason>)`.",
    },
    RuleDoc {
        id: "AVQ-L010",
        summary: "every Ordering:: literal matches the per-site atomics inventory",
        help: "AVQ-L010 · atomics audit

Every `Ordering::Relaxed/Acquire/Release/AcqRel/SeqCst` literal in
production code must match a row of the atomics inventory (config
ATOMICS + DESIGN.md §17 table, two-way checked), keyed by file,
enclosing fn, and ordering. Counter traffic may be Relaxed; anything
stronger, and every CAS, is documented with a why. Unused inventory rows
are findings, so the inventory cannot rot.",
    },
    RuleDoc {
        id: "AVQ-WAIVER",
        summary: "waiver hygiene: every // lint: directive must parse and must suppress a finding",
        help: "AVQ-WAIVER · waiver hygiene

`// lint:` directives must parse (`allow(AVQ-LNNN, <reason>)`,
`bounded(<why>)`, `sanitized(<why>)`) and must actually suppress a
finding on their line (or the line below, for comment-only lines).
Malformed and unused waivers are findings, so a stale waiver can never
silently hide a future regression.",
    },
];

/// Look up a rule id.
pub fn doc(id: &str) -> Option<&'static RuleDoc> {
    RULES.iter().find(|r| r.id == id)
}

/// The one-line summary for a rule id (empty for unknown ids).
pub fn summary(id: &str) -> &'static str {
    doc(id).map(|r| r.summary).unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_complete() {
        let ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        for n in 1..=10 {
            assert!(
                doc(&format!("AVQ-L{n:03}")).is_some(),
                "missing AVQ-L{n:03}"
            );
        }
        assert!(doc("AVQ-WAIVER").is_some());
    }
}
