//! # avq-db — a relational store over AVQ-compressed blocks
//!
//! The system layer of the reproduction: relations bulk-loaded into
//! AVQ-coded blocks on a simulated 1994 disk, a primary B⁺-tree keyed on
//! whole tuples (§4.1), secondary indexes with bucket indirection
//! (Fig. 4.5), block-confined insert/delete/update (§4.2, Fig. 4.6), and
//! range selections `σ_{a ≤ A_k ≤ b}` with the cost accounting of Eq. 5.7 —
//! `C = I + N·(t₁ + t₂)` — split into measurable phases.
//!
//! The uncoded baseline of the paper's evaluation is the same machinery with
//! [`avq_codec::CodingMode::FieldWise`]: fixed-width tuples, identical
//! indexes, no differencing.
//!
//! ```
//! use avq_db::{Database, DbConfig};
//! use avq_schema::{Domain, Relation, Schema, Tuple, Value};
//!
//! let schema = Schema::from_pairs(vec![
//!     ("dept", Domain::enumerated(vec!["eng", "hr"]).unwrap()),
//!     ("empno", Domain::uint(10_000).unwrap()),
//! ]).unwrap();
//! let relation = Relation::from_rows(
//!     schema,
//!     (0..500u64).map(|i| vec![
//!         Value::from(["eng", "hr"][(i % 2) as usize]),
//!         Value::Uint(i),
//!     ]),
//! ).unwrap();
//!
//! let mut db = Database::new(DbConfig::paper_avq());
//! db.create_relation("people", &relation).unwrap();
//! db.create_secondary_index("people", 1).unwrap();
//!
//! let (rows, cost) = db
//!     .select_range("people", "empno", &Value::Uint(10), &Value::Uint(20))
//!     .unwrap();
//! assert_eq!(rows.len(), 11);
//! assert!(cost.data_blocks >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod aggregate;
mod config;
mod cost;
mod database;
mod durable;
mod error;
mod explain;
mod extsort;
mod join;
mod query;
mod relation_store;
mod scan;
mod secondary;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionPermit, QueryClass};
pub use aggregate::{Aggregate, AggregateValue};
pub use config::{DbConfig, ScanPolicy};
pub use cost::QueryCost;
pub use database::Database;
pub use durable::{CheckpointReport, DurableDatabase, RecoveryReport};
pub use error::DbError;
pub use explain::{explain_equijoin, format_elapsed, CacheMark, ExplainReport, StageReport};
// Re-exported so durable callers need not depend on `avq-wal` directly.
pub use avq_wal::SyncPolicy;
// Re-exported so degraded-mode callers need not depend on `avq-storage`.
pub use avq_storage::RetryPolicy;
pub use extsort::{ExternalSorter, SortedStream};
pub use join::{block_nested_loop, equijoin, index_nested_loop, JoinStrategy};
pub use query::{AccessPath, RangePredicate, Selection};
pub use relation_store::{tuple_mem_bytes, uncoded_block_count, StoredBlock, StoredRelation};

pub use avq_obs::{GovCtx, GovUsage, GovernanceError, QueryBudget, QuotaKind, ShedReason};
pub use scan::RangeScan;
pub use secondary::SecondaryIndex;
