//! Planner regression tests: the chosen access path and join order must
//! flip exactly when the §5.3 cost model says they should — a selective
//! indexed predicate wins an index probe, a whole-domain predicate falls
//! back to the full scan, and the filtered side of a join becomes the
//! outer relation.

use avq_db::{AccessPath, Database, DbConfig};
use avq_schema::{Domain, Relation, Schema, Tuple};
use avq_sql::plan::{plan, PhysicalPlan, PlanNode};
use avq_sql::{bind, parse, BoundQuery, Statement};

fn plan_for(db: &Database, sql: &str) -> (BoundQuery, PhysicalPlan) {
    let stmt = match parse(sql).unwrap() {
        Statement::Select(s) => s,
        Statement::Explain { stmt, .. } => stmt,
    };
    let bound = bind(db, &stmt).unwrap();
    let physical = plan(db, &bound).unwrap();
    (bound, physical)
}

/// The single `Scan` leaf of a one-table plan.
fn scan_path(node: &PlanNode) -> AccessPath {
    match node {
        PlanNode::Scan { path, .. } => *path,
        PlanNode::NlJoin { outer, .. } => scan_path(outer),
        PlanNode::HashJoin { left, .. } => scan_path(left),
        PlanNode::Aggregate { input, .. }
        | PlanNode::Sort { input, .. }
        | PlanNode::Limit { input, .. }
        | PlanNode::Project { input, .. } => scan_path(input),
    }
}

/// `events(day < 365, user < 1000)` spread over many small blocks, with a
/// secondary index on `user`.
fn events_db() -> Database {
    let mut config = DbConfig::default();
    config.codec.block_capacity = 256;
    let mut db = Database::new(config);
    let schema = Schema::from_pairs(vec![
        ("day", Domain::uint(365).unwrap()),
        ("user", Domain::uint(1000).unwrap()),
    ])
    .unwrap();
    let tuples: Vec<Tuple> = (0..2000u64)
        .map(|i| Tuple::from([i % 365, (i * 13) % 1000]))
        .collect();
    db.create_relation("events", &Relation::from_tuples(schema, tuples).unwrap())
        .unwrap();
    let rel = db.relation_mut("events").unwrap();
    rel.create_secondary_index(1).unwrap();
    // The index build decodes every block, warming the decoded cache; the
    // residency discount would then price all data reads at zero and mask
    // the path choice. Plan against a cold relation, as after startup.
    rel.clear_decoded_cache();
    db
}

#[test]
fn selective_predicate_flips_to_index_probe() {
    let db = events_db();
    // user = 5: ~2 matching tuples, far fewer than the block count — the
    // index probe must beat reading every block.
    let (_, p) = plan_for(&db, "select * from events where user = 5");
    assert_eq!(scan_path(&p.root), AccessPath::SecondaryIndex { attr: 1 });
    assert!(p.plans_considered > 1);
}

#[test]
fn whole_domain_predicate_flips_back_to_full_scan() {
    let db = events_db();
    // user >= 0 keeps everything: N ≈ every block anyway, so the extra
    // index descents make the probe strictly worse than the scan.
    let (_, p) = plan_for(&db, "select * from events where user >= 0");
    assert_eq!(scan_path(&p.root), AccessPath::FullScan);
}

#[test]
fn flip_point_tracks_block_count() {
    let db = events_db();
    let blocks = db.relation("events").unwrap().block_count() as f64;
    // Sweep widening ranges: once the estimated matching-tuple count
    // clears the block count, the full scan must take over; while it is
    // far below, the probe must win. (Near the boundary either choice is
    // legitimate, so only the asymptotes are pinned.)
    let mut saw_probe = false;
    let mut saw_scan = false;
    for hi in [0u64, 9, 99, 499, 999] {
        let (_, p) = plan_for(&db, &format!("select * from events where user <= {hi}"));
        let matching = 2000.0 * (hi + 1) as f64 / 1000.0;
        match scan_path(&p.root) {
            AccessPath::SecondaryIndex { .. } => {
                saw_probe = true;
                assert!(
                    matching < blocks,
                    "probe chosen though ~{matching} matches exceed {blocks} blocks"
                );
            }
            AccessPath::FullScan => {
                saw_scan = true;
                assert!(
                    matching >= blocks / 2.0,
                    "scan chosen though ~{matching} matches are far below {blocks} blocks"
                );
            }
            other => panic!("unexpected path {other:?}"),
        }
    }
    assert!(saw_probe && saw_scan, "sweep never crossed the flip point");
}

#[test]
fn clustering_prefix_predicate_uses_clustered_range() {
    let db = events_db();
    let (_, p) = plan_for(&db, "select * from events where day < 10");
    assert_eq!(scan_path(&p.root), AccessPath::ClusteredRange);
}

/// Two same-shaped relations joined on their clustering key, both indexed
/// on it; the side carrying the selective predicate must be planned as the
/// outer relation.
fn join_db() -> Database {
    let mut config = DbConfig::default();
    config.codec.block_capacity = 256;
    let mut db = Database::new(config);
    for name in ["a", "b"] {
        let schema = Schema::from_pairs(vec![
            ("k", Domain::uint(100).unwrap()),
            (
                if name == "a" { "x" } else { "y" },
                Domain::uint(1000).unwrap(),
            ),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = (0..1000u64)
            .map(|i| Tuple::from([i % 100, (i * 7) % 1000]))
            .collect();
        db.create_relation(name, &Relation::from_tuples(schema, tuples).unwrap())
            .unwrap();
        let rel = db.relation_mut(name).unwrap();
        rel.create_secondary_index(0).unwrap();
        rel.clear_decoded_cache();
    }
    db
}

#[test]
fn join_order_swaps_with_the_selective_side() {
    let db = join_db();
    let (_, p) = plan_for(&db, "select * from a join b on a.k = b.k where x = 5");
    assert_eq!(
        p.table_order,
        vec![0, 1],
        "filtered `a` should drive the join"
    );
    let (_, p) = plan_for(&db, "select * from a join b on a.k = b.k where y = 5");
    assert_eq!(
        p.table_order,
        vec![1, 0],
        "filtered `b` should drive the join"
    );
}

#[test]
fn chosen_plan_is_the_cheapest_enumerated() {
    let db = events_db();
    let (_, p) = plan_for(&db, "select * from events where user = 5");
    // Recompute the full-scan cost from the same statistics the planner
    // used: block count × paper-fixed block time; the chosen plan must be
    // at most that.
    let rel = db.relation("events").unwrap();
    let cfg = rel.config();
    let full = rel.block_count() as f64
        * (cfg.disk.block_time_ms(cfg.codec.block_capacity) + cfg.cpu_ms_per_block);
    assert!(
        p.est_total_ms <= full,
        "chosen {}ms exceeds the full-scan baseline {full}ms",
        p.est_total_ms
    );
}
