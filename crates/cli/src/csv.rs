//! A small, dependency-free CSV reader/writer (RFC 4180 subset).
//!
//! Supports quoted fields with doubled-quote escapes, embedded commas and
//! newlines inside quotes, and both `\n` and `\r\n` record separators —
//! enough to ingest real exports without pulling in a crate.

/// Errors raised while parsing CSV text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 1-based line where the field started.
        line: usize,
    },
    /// Characters followed a closing quote without a separator.
    GarbageAfterQuote {
        /// 1-based line of the offending field.
        line: usize,
    },
}

impl core::fmt::Display for CsvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::GarbageAfterQuote { line } => {
                write!(
                    f,
                    "unexpected characters after closing quote on line {line}"
                )
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text into records of fields. Empty trailing lines are
/// ignored; an entirely empty input yields no records.
pub fn parse(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut line = 1usize;
    let mut in_quotes = false;
    let mut quote_line = 1usize;
    let mut field_started = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                        // Only a separator (or EOF) may follow.
                        match chars.peek() {
                            None | Some(',') | Some('\n') | Some('\r') => {}
                            Some(_) => return Err(CsvError::GarbageAfterQuote { line }),
                        }
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() && !field_started => {
                in_quotes = true;
                quote_line = line;
                field_started = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                field_started = false;
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                line += 1;
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                field_started = false;
            }
            '\n' => {
                line += 1;
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                field_started = false;
            }
            _ => {
                field.push(c);
                field_started = true;
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: quote_line });
    }
    if field_started || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Renders one record as a CSV line (quoting only when needed).
pub fn write_record(fields: &[String]) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if f.contains(',') || f.contains('"') || f.contains('\n') || f.contains('\r') {
            out.push('"');
            out.push_str(&f.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(f);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fields: &[&str]) -> Vec<String> {
        fields.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn simple_records() {
        let got = parse("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(got, vec![rec(&["a", "b", "c"]), rec(&["1", "2", "3"])]);
    }

    #[test]
    fn missing_trailing_newline() {
        let got = parse("a,b\n1,2").unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1], rec(&["1", "2"]));
    }

    #[test]
    fn crlf_records() {
        let got = parse("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(got, vec![rec(&["a", "b"]), rec(&["1", "2"])]);
    }

    #[test]
    fn quoted_fields() {
        let got = parse("\"hello, world\",\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(got, vec![rec(&["hello, world", "say \"hi\""])]);
    }

    #[test]
    fn newline_inside_quotes() {
        let got = parse("\"two\nlines\",x\n").unwrap();
        assert_eq!(got, vec![rec(&["two\nlines", "x"])]);
    }

    #[test]
    fn empty_fields() {
        let got = parse(",a,,\n").unwrap();
        assert_eq!(got, vec![rec(&["", "a", "", ""])]);
    }

    #[test]
    fn empty_input() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("\n").unwrap() == vec![rec(&[""])]);
    }

    #[test]
    fn unterminated_quote() {
        assert_eq!(
            parse("\"oops\n1,2\n").unwrap_err(),
            CsvError::UnterminatedQuote { line: 1 }
        );
    }

    #[test]
    fn garbage_after_quote() {
        assert_eq!(
            parse("\"x\"y,z\n").unwrap_err(),
            CsvError::GarbageAfterQuote { line: 1 }
        );
    }

    #[test]
    fn write_and_reparse_roundtrip() {
        let cases = vec![
            rec(&["plain", "with,comma", "with\"quote", "multi\nline", ""]),
            rec(&["1", "2", "3"]),
        ];
        for fields in cases {
            let line = write_record(&fields) + "\n";
            let back = parse(&line).unwrap();
            assert_eq!(back, vec![fields]);
        }
    }
}
