//! Every worked number in the paper, asserted exactly: Fig. 2.2 (domain
//! mapping, re-ordering, block coding), Fig. 3.3 (coding stages), §3.4's
//! byte stream, Fig. 4.4/4.5 (indexes), and Fig. 4.6 (insertion).

use avq::codec::{BlockCodec, CodecOptions, CodingMode, RepChoice, BLOCK_HEADER_BYTES};
use avq::num::BigUnsigned;
use avq::prelude::*;
use avq::workload::{employee_relation, employee_schema};

/// The sorted employee relation: Fig. 2.2 (c).
fn sorted_employees() -> Relation {
    let mut r = employee_relation();
    r.sort();
    r
}

/// The paper's 4th block: sorted tuples 15..20.
fn paper_block() -> Vec<Tuple> {
    sorted_employees().tuples()[15..20].to_vec()
}

#[test]
fn fig_2_2_phi_values() {
    // Spot-check the 𝓝_𝓡 column of Fig. 2.2 (c) across the table.
    let schema = employee_schema();
    let cases = [
        ([2u64, 6, 26, 20, 36], 10_069_284),
        ([2u64, 6, 29, 21, 2], 10_081_602),
        ([2u64, 10, 27, 27, 4], 11_122_372),
        ([3u64, 4, 31, 25, 9], 13_760_073),
        ([3u64, 8, 36, 39, 35], 14_830_051),
        ([4u64, 7, 26, 32, 14], 18_720_782),
        ([5u64, 8, 26, 32, 23], 23_177_239),
        ([5u64, 10, 33, 22, 15], 23_729_551),
    ];
    for (digits, phi) in cases {
        let t = Tuple::from(digits);
        assert_eq!(schema.phi(&t).to_u64(), Some(phi), "φ({t:?})");
        assert_eq!(
            schema.phi_inv(&BigUnsigned::from_u64(phi)).unwrap(),
            t,
            "φ⁻¹({phi})"
        );
    }
}

#[test]
fn fig_2_2_sorted_order() {
    let r = sorted_employees();
    assert!(r.is_sorted());
    assert_eq!(r.tuples()[0], Tuple::from([2u64, 6, 26, 20, 36]));
    assert_eq!(r.tuples()[49], Tuple::from([5u64, 10, 33, 22, 15]));
}

#[test]
fn fig_3_3_block_contents() {
    // Fig. 3.3 (a): the block's tuples and φ values.
    let block = paper_block();
    let schema = employee_schema();
    let phis: Vec<u64> = block
        .iter()
        .map(|t| schema.phi(t).to_u64().unwrap())
        .collect();
    assert_eq!(
        phis,
        vec![14_812_755, 14_813_324, 14_830_051, 15_042_560, 15_050_469]
    );
}

#[test]
fn fig_3_3_basic_avq_stage() {
    // Fig. 3.3 (b): differences from the median representative.
    let schema = employee_schema();
    let codec = BlockCodec::with_options(schema, CodingMode::Avq, RepChoice::Median);
    let coded = codec.encode(&paper_block()).unwrap();
    assert_eq!(
        &coded[BLOCK_HEADER_BYTES..],
        &[
            3, 8, 36, 39, 35, // representative
            2, 4, 14, 16, // 17296
            2, 4, 5, 23, // 16727
            2, 51, 56, 29, // 212509
            2, 53, 52, 2, // 220418
        ]
    );
}

#[test]
fn section_3_4_byte_stream() {
    // The exact stream §3.4 prints:
    // 3 08 36 39 35 | 3 08 57 | 2 04 05 23 | 2 51 56 29 | 2 01 59 37
    let codec = BlockCodec::new(employee_schema());
    let coded = codec.encode(&paper_block()).unwrap();
    assert_eq!(
        &coded[BLOCK_HEADER_BYTES..],
        &[3, 8, 36, 39, 35, 3, 8, 57, 2, 4, 5, 23, 2, 51, 56, 29, 2, 1, 59, 37]
    );
    // Decoding reverses it exactly (Theorem 2.1).
    assert_eq!(codec.decode(&coded).unwrap(), paper_block());
}

#[test]
fn example_3_2_and_3_3_differences() {
    let schema = employee_schema();
    let radix = schema.radix();
    // Example 3.2: 14830051 − 14813324 = 16727 = (0,00,04,05,23).
    let d = radix.abs_diff(&[3, 8, 36, 39, 35], &[3, 8, 32, 34, 12]);
    assert_eq!(d, vec![0, 0, 4, 5, 23]);
    assert_eq!(radix.rank(&d).to_u64(), Some(16_727));
    // Example 3.3: 17296 − 16727 = 569 = (0,00,00,08,57).
    let d1 = radix.abs_diff(&[3, 8, 32, 25, 19], &[3, 8, 36, 39, 35]);
    assert_eq!(radix.rank(&d1).to_u64(), Some(17_296));
    let chained = radix.checked_sub(&d1, &[0, 0, 4, 5, 23]).expect("d1 > d2");
    assert_eq!(chained, vec![0, 0, 0, 8, 57]);
    assert_eq!(radix.rank(&chained).to_u64(), Some(569));
}

#[test]
fn fig_4_4_primary_index() {
    // Load the employee relation with 5-tuple blocks (as the figures draw)
    // and an order-3 primary tree; verify whole-tuple search finds the
    // paper's example target (4,07,39,37,08).
    let relation = sorted_employees();
    let config = DbConfig {
        codec: CodecOptions {
            block_capacity: 64,
            ..Default::default()
        },
        index_order: 3,
        ..Default::default()
    };
    let mut db = Database::new(config);
    db.create_relation("employees", &relation).unwrap();
    let stored = db.relation("employees").unwrap();
    stored.primary_index().validate().unwrap();
    assert!(stored.primary_index().stats().unwrap().height >= 2);

    let target = Tuple::from([4u64, 7, 39, 37, 8]);
    let (found, cost) = stored.contains(&target).unwrap();
    assert!(found, "the paper's lookup target must be found");
    assert_eq!(cost.data_blocks, 1, "exactly one data block decoded");
}

#[test]
fn fig_4_5_secondary_index() {
    // σ_{A₅=34}(R) through the A₅ secondary index returns the single
    // matching employee (3,10,32,30,34).
    let relation = sorted_employees();
    let config = DbConfig {
        codec: CodecOptions {
            block_capacity: 64,
            ..Default::default()
        },
        index_order: 3,
        ..Default::default()
    };
    let mut db = Database::new(config);
    db.create_relation("employees", &relation).unwrap();
    db.create_secondary_index("employees", 4).unwrap();
    let (rows, cost) = db.select_range_ordinal("employees", 4, 34, 34).unwrap();
    assert_eq!(rows, vec![Tuple::from([3u64, 10, 32, 30, 34])]);
    assert_eq!(cost.data_blocks, 1);
}

#[test]
fn fig_4_6_insertion_through_database() {
    // Insert the Fig. 4.6 tuple through the full database stack and verify
    // the relation afterwards.
    let relation = sorted_employees();
    let config = DbConfig {
        codec: CodecOptions {
            block_capacity: 64,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut db = Database::new(config);
    db.create_relation("employees", &relation).unwrap();
    let new_tuple = Tuple::from([3u64, 8, 32, 26, 0]); // φ = 14 812 800
    assert_eq!(employee_schema().phi(&new_tuple).to_u64(), Some(14_812_800));
    db.relation_mut("employees")
        .unwrap()
        .insert(&new_tuple)
        .unwrap();
    let stored = db.relation("employees").unwrap();
    assert_eq!(stored.tuple_count(), 51);
    let (found, _) = stored.contains(&new_tuple).unwrap();
    assert!(found);
    // The relation scans back in φ order with the new tuple in place.
    let all = stored.scan_all().unwrap();
    assert!(all.windows(2).all(|w| w[0] <= w[1]));
    let pos = all.binary_search(&new_tuple).unwrap();
    assert_eq!(
        all[pos.saturating_sub(1)],
        Tuple::from([3u64, 8, 32, 25, 19])
    );
}

/// Fig. 2.2 (d): the whole employee relation coded block-by-block (5 tuples
/// per block, as the figure draws). Each row of table (d) is either a block
/// representative (the raw tuple with its φ) or a chained difference
/// re-expressed as 𝓡-space digits with its φ. The rows below are
/// transcribed from the paper; every legible row is asserted.
#[test]
fn fig_2_2d_full_table() {
    let schema = employee_schema();
    let radix = schema.radix();
    let sorted = sorted_employees();
    let tuples = sorted.tuples();

    // (row number 1-based, digits, φ) — representatives are rows ≡ 3 (mod 5).
    #[rustfmt::skip]
    let expected: &[(usize, [u64; 5], u64)] = &[
        (1,  [0, 0, 3, 0, 30],    12_318),
        (2,  [0, 3, 62, 6, 2],    1_040_770),
        (3,  [2, 10, 27, 27, 4],  11_122_372), // rep of block 1
        (4,  [0, 10, 3, 62, 5],   2_637_701),
        (5,  [0, 0, 55, 63, 60],  229_372),
        (6,  [0, 0, 6, 5, 59],    24_955),
        (7,  [0, 0, 62, 9, 1],    254_529),
        (8,  [3, 6, 32, 37, 7],   14_289_223), // rep of block 2
        (9,  [0, 0, 1, 53, 17],   7_505),
        (10, [0, 0, 60, 6, 24],   246_168),
        (11, [0, 0, 2, 3, 6],     8_390),
        (12, [0, 0, 2, 5, 44],    8_556),
        (13, [3, 7, 39, 37, 26],  14_580_058), // rep of block 3
        (14, [0, 0, 48, 57, 3],   200_259),
        (15, [0, 0, 7, 2, 57],    28_857),
        (16, [0, 0, 0, 8, 57],    569),
        (17, [0, 0, 4, 5, 23],    16_727),
        (18, [3, 8, 36, 39, 35],  14_830_051), // rep of block 4 (§3.4)
        (19, [0, 0, 51, 56, 29],  212_509),
        (20, [0, 0, 1, 59, 37],   7_909),
        (21, [0, 0, 7, 1, 47],    28_783),
        (22, [0, 0, 62, 2, 18],   254_098),
        (23, [3, 10, 32, 30, 34], 15_337_378), // rep of block 5
        (24, [0, 0, 2, 59, 4],    11_972),
        (25, [0, 10, 19, 62, 6],  2_703_238),
        (26, [0, 1, 0, 62, 7],    266_119),
        (27, [0, 0, 50, 4, 51],   205_107),
        (28, [4, 7, 26, 32, 14],  18_720_782), // rep of block 6
        (29, [0, 0, 4, 9, 53],    17_013),
        (30, [0, 0, 2, 54, 27],   11_675),
        (31, [0, 0, 0, 5, 23],    343),
        (32, [0, 0, 55, 51, 34],  228_578),
        (33, [4, 8, 31, 24, 42],  19_002_922), // rep of block 7
        (34, [0, 0, 0, 63, 63],   4_095),
        (35, [0, 0, 0, 3, 4],     196),
        (36, [0, 0, 2, 58, 5],    11_909),
        (37, [0, 0, 8, 62, 3],    36_739),
        (38, [4, 8, 50, 26, 21],  19_080_853), // rep of block 8
        (39, [0, 0, 32, 58, 53],  134_837),
        (40, [0, 0, 6, 6, 7],     24_967),
        (41, [0, 0, 62, 1, 61],   254_077),
        (42, [0, 0, 4, 39, 15],   18_895),
        (43, [4, 10, 35, 19, 43], 19_543_275), // rep of block 9
        (44, [0, 0, 4, 13, 60],   17_276),
        (45, [0, 1, 36, 61, 26],  413_530),
        (47, [0, 0, 45, 15, 62],  185_342),
        (48, [5, 8, 26, 32, 23],  23_177_239), // rep of block 10
        (49, [0, 1, 56, 63, 9],   495_561),
        (50, [0, 0, 13, 54, 47],  56_751),
    ];

    // Compute table (d) from our coder's definition: blocks of 5, median
    // representative, chained differences (Example 3.3).
    let row_of = |r: usize| -> Vec<u64> {
        let i = r - 1; // tuple index
        let block = i / 5;
        let rep_idx = block * 5 + 2;
        if i == rep_idx {
            tuples[i].digits().to_vec()
        } else if i < rep_idx {
            radix.abs_diff(tuples[i + 1].digits(), tuples[i].digits())
        } else {
            radix.abs_diff(tuples[i].digits(), tuples[i - 1].digits())
        }
    };

    for &(row, digits, phi) in expected {
        let got = row_of(row);
        assert_eq!(got, digits.to_vec(), "table (d) row {row}");
        assert_eq!(
            radix.rank(&got).to_u64(),
            Some(phi),
            "table (d) row {row} φ value"
        );
    }

    // And the BlockCodec streams for all 10 blocks decode back to the
    // relation (table (d) as actually serialized).
    let codec = BlockCodec::new(schema);
    for b in 0..10 {
        let run = &tuples[b * 5..(b + 1) * 5];
        let coded = codec.encode(run).unwrap();
        assert_eq!(codec.decode(&coded).unwrap(), run, "block {}", b + 1);
    }
}

#[test]
fn whole_relation_coded_losslessly() {
    // Fig. 2.2 (d): the entire employee relation compresses and round-trips
    // under all three modes.
    let relation = employee_relation();
    for mode in CodingMode::ALL {
        let coded = avq::codec::compress(
            &relation,
            CodecOptions {
                mode,
                block_capacity: 64,
                ..Default::default()
            },
        )
        .unwrap();
        let back = coded.decompress().unwrap();
        let mut expect = relation.tuples().to_vec();
        expect.sort_unstable();
        assert_eq!(back.tuples(), &expect[..], "mode {mode}");
    }
}
