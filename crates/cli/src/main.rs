//! `avqtool` — see `avq_cli::commands::USAGE`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avq_cli::commands;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("avqtool: {e}");
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}

/// Removes `name <value>` from `args`, returning the value when present.
fn take_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, commands::CliError> {
    match args.iter().position(|a| a == name) {
        Some(i) if i + 1 < args.len() => {
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        Some(_) => Err(format!("{name} needs a value").into()),
        None => Ok(None),
    }
}

/// Removes the boolean switch `name` from `args`, returning whether it was
/// present.
fn take_switch(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Command-specific switches and flags, extracted before positional
/// dispatch.
struct Switches {
    deep: bool,
    repair: bool,
    /// `--kernel scalar|swar` decode-kernel override for read commands.
    kernel: Option<String>,
    /// `--trace`: print the span tree after a `sql` statement.
    trace: bool,
    /// `--sample <n>`: keep one trace in `n` (default: every trace).
    sample: Option<u64>,
    /// `--budget-ms <n>`: slow-query latency budget in milliseconds.
    budget_ms: Option<u64>,
    /// `--timeout-ms` / `--max-decoded-mb` / `--max-rows`: the governance
    /// budget for `sql` statements.
    budget: commands::BudgetFlags,
}

fn run(args: &[String]) -> Result<String, commands::CliError> {
    let mut args = args.to_vec();
    let format = take_flag(&mut args, "--format")?;
    let metrics_out = take_flag(&mut args, "--metrics-out")?;
    let switches = Switches {
        deep: take_switch(&mut args, "--deep"),
        repair: take_switch(&mut args, "--repair"),
        kernel: take_flag(&mut args, "--kernel")?,
        trace: take_switch(&mut args, "--trace"),
        sample: take_flag(&mut args, "--sample")?
            .map(|s| s.parse())
            .transpose()?,
        budget_ms: take_flag(&mut args, "--budget-ms")?
            .map(|s| s.parse())
            .transpose()?,
        budget: commands::BudgetFlags {
            timeout_ms: take_flag(&mut args, "--timeout-ms")?
                .map(|s| s.parse())
                .transpose()?,
            max_decoded_mb: take_flag(&mut args, "--max-decoded-mb")?
                .map(|s| s.parse())
                .transpose()?,
            max_rows: take_flag(&mut args, "--max-rows")?
                .map(|s| s.parse())
                .transpose()?,
        },
    };
    let result = dispatch(&args, format.as_deref(), &switches);
    match metrics_out {
        // The snapshot is written even when the command failed, so a
        // governance trip (timeout, quota, shed) still surfaces its
        // `avq.gov.*` counters for inspection.
        Some(p) => {
            let note = commands::write_metrics(Path::new(&p))?;
            result.map(|output| output + &note)
        }
        None => result,
    }
}

fn dispatch(
    args: &[String],
    format: Option<&str>,
    switches: &Switches,
) -> Result<String, commands::CliError> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match (cmd, &args[1..]) {
        ("create", rest) if rest.len() >= 3 => commands::create(
            Path::new(&rest[0]),
            Path::new(&rest[1]),
            Path::new(&rest[2]),
            rest.get(3).map(String::as_str),
            rest.get(4).map(|s| s.parse()).transpose()?,
        ),
        ("info", [path]) => commands::info(Path::new(path)),
        ("open", [dir]) => commands::open(Path::new(dir)),
        ("checkpoint", [dir]) => commands::checkpoint(Path::new(dir)),
        ("recover-info", [dir]) => commands::recover_info(Path::new(dir)),
        ("dump", [path]) => commands::dump(Path::new(path), switches.kernel.as_deref()),
        ("verify", [path]) => {
            commands::verify(Path::new(path), switches.deep, switches.kernel.as_deref())
        }
        ("scrub", [path]) => commands::scrub(Path::new(path), switches.repair),
        ("inject", [path, seed, k]) => commands::inject(Path::new(path), seed.parse()?, k.parse()?),
        ("query", [path, attr, lo, hi]) => {
            commands::query(Path::new(path), attr, lo, hi, switches.kernel.as_deref())
        }
        ("convert", rest) if rest.len() >= 3 => commands::convert(
            Path::new(&rest[0]),
            Path::new(&rest[1]),
            &rest[2],
            rest.get(3).map(|s| s.parse()).transpose()?,
        ),
        ("stats", rest) if rest.len() <= 1 => {
            commands::stats(rest.first().map(Path::new), format.unwrap_or("prom"))
        }
        ("explain", [path, attr, lo, hi]) => {
            commands::explain_file(Path::new(path), attr, lo, hi, switches.kernel.as_deref())
        }
        ("explain", [dir, relation, attr, lo, hi]) => {
            commands::explain_dir(Path::new(dir), relation, attr, lo, hi)
        }
        ("explain-join", [path, outer_attr, inner_attr]) => {
            commands::explain_join_file(Path::new(path), outer_attr, inner_attr)
        }
        ("explain-join", [dir, outer, outer_attr, inner, inner_attr]) => {
            commands::explain_join_dir(Path::new(dir), outer, outer_attr, inner, inner_attr)
        }
        ("sql", [target]) => commands::sql_repl(Path::new(target), &switches.budget),
        ("sql", [target, stmt]) if switches.trace => commands::sql_with_trace(
            Path::new(target),
            stmt,
            switches.kernel.as_deref(),
            switches.sample,
            switches.budget_ms,
            &switches.budget,
        ),
        ("sql", [target, stmt]) => commands::sql(
            Path::new(target),
            stmt,
            switches.kernel.as_deref(),
            &switches.budget,
        ),
        ("trace", [sub, target, stmt]) if sub == "export" => commands::trace_export(
            Path::new(target),
            stmt,
            format.unwrap_or("chrome"),
            switches.kernel.as_deref(),
        ),
        ("trace", [sub, target, stmt]) if sub == "slow" => commands::trace_slow(
            Path::new(target),
            stmt,
            switches.kernel.as_deref(),
            switches.budget_ms,
        ),
        ("help", _) | ("--help", _) | ("-h", _) => Ok(commands::USAGE.to_string()),
        (other, _) => Err(format!("unknown or malformed command {other:?}").into()),
    }
}
