//! # avq-workload — workload generators for the AVQ evaluation
//!
//! Deterministic (seeded) generators for every dataset the paper evaluates
//! on:
//!
//! * [`employee_relation`] — the 50-tuple running example of Fig. 2.2,
//!   string domains arranged to reproduce the figure's encodings exactly;
//! * [`SyntheticSpec`] — the §5.1 compression-efficiency sweep (15
//!   attributes; domain-size variance low/high; value skew on/off; sizes
//!   10³–10⁶) and the §5.2 timing relation (16 attributes, 38-byte tuples);
//! * [`QueryWorkload`] — reproducible `σ_{a ≤ A_k ≤ b}` query streams with
//!   controlled shape and selectivity (§5.3's query family).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod employee;
mod queries;
mod synthetic;

pub use employee::{employee_relation, employee_schema, employee_tuples};
pub use queries::{QueryShape, QueryWorkload, RangeQuery};
pub use synthetic::{ActiveSpec, DomainVariance, SyntheticSpec};
