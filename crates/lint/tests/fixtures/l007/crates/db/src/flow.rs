//! AVQ-L007 fixture: taint reaching sinks directly, through two call
//! hops, and one site waived as sanitized.

/// Direct intraprocedural flow: wire count straight into an allocation.
fn direct(bytes: &[u8]) -> Vec<u64> {
    let count = read_header(bytes);
    Vec::with_capacity(count)
}

/// Interprocedural flow: the tainted count travels two calls deep
/// before hitting the allocation sink in `sized_arena`.
fn entry(bytes: &[u8]) -> Vec<u64> {
    let count = read_header(bytes);
    build_rows(count)
}

fn build_rows(n: usize) -> Vec<u64> {
    sized_arena(n)
}

fn sized_arena(n: usize) -> Vec<u64> {
    let mut v = Vec::new();
    v.reserve(n);
    v
}

/// Validated flow: passing through a registered validator clears taint.
fn validated(bytes: &[u8]) -> Vec<u64> {
    let count = read_header(bytes);
    let count = check_count(count);
    Vec::with_capacity(count)
}

/// Waived flow: safe by construction, documented at the sink.
fn waived(bytes: &[u8]) -> Vec<u64> {
    let count = read_header(bytes);
    // lint: sanitized(count is a wire u16 in this fixture, at most 64Ki)
    Vec::with_capacity(count)
}

fn read_header(bytes: &[u8]) -> usize {
    bytes.len()
}

fn check_count(n: usize) -> usize {
    n.min(1 << 16)
}
