//! Project-specific lint policy: which paths each rule covers, which
//! crates are exempt, and the documented `Corrupt` section vocabulary.
//!
//! The policy is code, not a config file, on purpose: the linter is
//! project-native and the scopes *are* invariants the workspace claims
//! (DESIGN.md §12 documents them for humans). Fixture trees under
//! `crates/lint/tests/fixtures/` mirror the same layout, so the same
//! scopes apply unchanged there.

/// Paths (relative, `/`-separated prefixes or exact files) whose
/// non-test code must be panic-free: AVQ-L001 and AVQ-L002 apply here.
/// These are the untrusted-byte decode surfaces hardened in DESIGN.md
/// §11 — the codec, the `.avq` container parser, the WAL read path, and
/// the SQL lexer/parser (which consume arbitrary user statements).
pub const DECODE_PATHS: &[&str] = &[
    "crates/codec/src/",
    "crates/file/src/",
    "crates/wal/src/reader.rs",
    "crates/wal/src/record.rs",
    "crates/sql/src/lexer.rs",
    "crates/sql/src/parser.rs",
];

/// Crate directories exempt from AVQ-L003 (crate-root hygiene
/// attributes): the vendored registry shims are third-party
/// stand-ins, not project code.
pub const L003_EXEMPT: &[&str] = &["crates/shims/"];

/// Crate directories allowed to read the real clock (AVQ-L005).
/// `avq-obs` owns `Stopwatch` (the one sanctioned wrapper), the bench
/// harness measures wall time by design, and the shims are third-party
/// stand-ins.
pub const CLOCK_EXEMPT: &[&str] = &["crates/obs/", "crates/bench/", "crates/shims/"];

/// Files allowed to spell metric names as string literals (AVQ-L004):
/// the single source of truth itself.
pub const METRIC_NAME_HOME: &str = "crates/obs/src/names.rs";

/// The documented `Corrupt { section: … }` vocabulary (AVQ-L006): each
/// section string paired with the crate directory allowed to produce it.
/// The `file.` prefix keeps the container parser's vocabulary disjoint
/// from the codec's; `order` is the db layer's φ-order check reporting
/// through `CodecError`.
pub const CORRUPT_SECTIONS: &[(&str, &str)] = &[
    ("header", "crates/codec/"),
    ("representative", "crates/codec/"),
    ("body", "crates/codec/"),
    ("entries", "crates/codec/"),
    ("order", "crates/db/"),
    ("file.header", "crates/file/"),
    ("file.schema", "crates/file/"),
    ("file.blocks", "crates/file/"),
    ("file.trailer", "crates/file/"),
];

// ---------------------------------------------------------------------
// AVQ-L007 · taint tracking
// ---------------------------------------------------------------------

/// Functions whose *return value* is an untrusted integer parsed from
/// raw bytes: block headers, bit/gamma readers, RLE entry readers, and
/// the `.avq` container cursor's little-endian field readers. Calls to
/// these seed taint. Raw byte *buffers* (device reads, WAL frames) are
/// deliberately not sources — their parsed-integer offspring are, which
/// is where allocation sizes and indices come from (documented
/// false-negative posture, DESIGN.md §17).
pub const TAINT_SOURCES: &[&str] = &[
    // codec block headers and bit readers
    "read_header",
    "tuple_count",
    "read_bit",
    "read_bits_u64",
    "read_bits_big",
    "read_gamma",
    // codec RLE readers
    "load_be",
    "read_entry",
    "read_entry_append",
    "read_entry_append_swar",
    // .avq container cursor field readers
    "u8",
    "u16",
    "u32",
    "u64",
    "i64",
];

/// Methods that fill their *receiver* from untrusted bytes.
pub const TAINT_FILL_SOURCES: &[&str] = &["set_from_bytes_be"];

/// Validation/clamping calls: a value passing through one of these (as
/// an argument or receiver) counts as sanitized.
pub const TAINT_VALIDATORS: &[&str] = &[
    "check_count",
    "check_input",
    "check_phi_order",
    "validate",
    "validate_tuple",
    "validate_tuple_range",
    "min",
    "clamp",
];

/// Calls whose arguments are allocation-size sinks.
pub const TAINT_SINK_CALLS: &[&str] = &["with_capacity", "reserve", "reserve_exact", "resize"];

// ---------------------------------------------------------------------
// AVQ-L009 · lock discipline
// ---------------------------------------------------------------------

/// One lock in the declared hierarchy. Ranks must strictly increase
/// along any nested-acquisition chain (outermost lock = lowest rank).
/// The same rows are documented in the DESIGN.md §17 table, two-way
/// checked.
pub struct LockRow {
    /// File that owns the lock field.
    pub file: &'static str,
    /// Field name of the Mutex/RwLock.
    pub field: &'static str,
    /// Hierarchy rank (acquire in increasing order).
    pub rank: u32,
    /// What the lock protects.
    pub label: &'static str,
}

/// The lock-hierarchy inventory: every Mutex/RwLock field in production
/// code. An unlisted lock field is a finding.
pub const LOCKS: &[LockRow] = &[
    LockRow {
        file: "crates/db/src/admission.rs",
        field: "state",
        rank: 10,
        label: "admission-controller state (condvar home)",
    },
    LockRow {
        file: "crates/db/src/relation_store.rs",
        field: "scratch",
        rank: 20,
        label: "shared decode scratch arena",
    },
    LockRow {
        file: "crates/db/src/relation_store.rs",
        field: "quarantined",
        rank: 30,
        label: "quarantined-block set",
    },
    LockRow {
        file: "crates/storage/src/buffer.rs",
        field: "inner",
        rank: 40,
        label: "buffer-pool frame table",
    },
    LockRow {
        file: "crates/storage/src/decoded.rs",
        field: "inner",
        rank: 50,
        label: "decoded-block cache map",
    },
    LockRow {
        file: "crates/storage/src/device.rs",
        field: "free_list",
        rank: 60,
        label: "device free block list",
    },
    LockRow {
        file: "crates/storage/src/device.rs",
        field: "slots",
        rank: 70,
        label: "device block slots",
    },
    LockRow {
        file: "crates/storage/src/device.rs",
        field: "faults",
        rank: 80,
        label: "fault-injection plan",
    },
    LockRow {
        file: "crates/storage/src/fault.rs",
        field: "attempts",
        rank: 90,
        label: "fault-plan attempt log",
    },
    LockRow {
        file: "crates/obs/src/trace.rs",
        field: "state",
        rank: 100,
        label: "trace collector state",
    },
    LockRow {
        file: "crates/obs/src/trace.rs",
        field: "slots",
        rank: 110,
        label: "trace ring-buffer slots",
    },
    LockRow {
        file: "crates/obs/src/trace.rs",
        field: "slow",
        rank: 120,
        label: "slow-query capture queue",
    },
    LockRow {
        file: "crates/obs/src/registry.rs",
        field: "counters",
        rank: 130,
        label: "metric registry: counters",
    },
    LockRow {
        file: "crates/obs/src/registry.rs",
        field: "gauges",
        rank: 140,
        label: "metric registry: gauges",
    },
    LockRow {
        file: "crates/obs/src/registry.rs",
        field: "histograms",
        rank: 150,
        label: "metric registry: histograms",
    },
];

/// The one file allowed to own a `Condvar` and call `wait*` on it: the
/// admission controller's sanctioned wait loop.
pub const CONDVAR_HOME: &str = "crates/db/src/admission.rs";

/// Calls that must never run under a held guard: fsync/physical IO,
/// decode kernels, and retry loops around either.
pub const BLOCKING_CALLS: &[&str] = &[
    "sync_data",
    "sync_all",
    "write_all",
    "read_exact",
    "read_to_end",
    "decode_into_scratch",
    "decode_into_scratch_traced",
    "decode_into_scratch_governed",
    "decode_inner",
    "read_with_retry",
    "retry_with_backoff",
];

// ---------------------------------------------------------------------
// AVQ-L010 · atomics audit
// ---------------------------------------------------------------------

/// One atomics-inventory row: the `Ordering::` variants a function is
/// allowed to use. Documented with a why in the DESIGN.md §17 table,
/// two-way checked.
pub struct AtomicsRow {
    /// File containing the sites.
    pub file: &'static str,
    /// Enclosing function name (`<static>` for file-scope initializers).
    pub func: &'static str,
    /// Permitted `Ordering::` variant names, sorted.
    pub orderings: &'static [&'static str],
}

/// The per-site atomics inventory. Populated from the audit of every
/// `Ordering::` literal in production code; an unlisted site and an
/// unused row are both findings.
pub const ATOMICS: &[AtomicsRow] = &[
    AtomicsRow {
        file: "crates/bench/src/bin/exp_governance.rs",
        func: "main",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/bench/src/bin/exp_governance.rs",
        func: "run_phase",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/cli/src/commands.rs",
        func: "exercise_builtin",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/codec/src/parallel.rs",
        func: "decode_blocks_parallel",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/gov.rs",
        func: "cancel",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/gov.rs",
        func: "charge_decoded",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/gov.rs",
        func: "charge_mem",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/gov.rs",
        func: "finish",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/gov.rs",
        func: "is_cancelled",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/gov.rs",
        func: "poll",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/gov.rs",
        func: "release_mem",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/gov.rs",
        func: "trip_once",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/gov.rs",
        func: "usage",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/metric.rs",
        func: "add",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/metric.rs",
        func: "count",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/metric.rs",
        func: "get",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/metric.rs",
        func: "record",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/metric.rs",
        func: "reset",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/metric.rs",
        func: "set",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/metric.rs",
        func: "snapshot",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/span.rs",
        func: "set_span_observer",
        orderings: &["SeqCst"],
    },
    AtomicsRow {
        file: "crates/obs/src/trace.rs",
        func: "add_span_sink",
        orderings: &["Release"],
    },
    AtomicsRow {
        file: "crates/obs/src/trace.rs",
        func: "begin",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/trace.rs",
        func: "emit_enter",
        orderings: &["Acquire"],
    },
    AtomicsRow {
        file: "crates/obs/src/trace.rs",
        func: "emit_exit",
        orderings: &["Acquire"],
    },
    AtomicsRow {
        file: "crates/obs/src/trace.rs",
        func: "finish",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/obs/src/trace.rs",
        func: "set_slow_budget",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/buffer.rs",
        func: "install",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/buffer.rs",
        func: "read",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/buffer.rs",
        func: "reset_stats",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/buffer.rs",
        func: "stats",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/clock.rs",
        func: "advance_ms",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/clock.rs",
        func: "now_ms",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/clock.rs",
        func: "reset",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/decoded.rs",
        func: "get",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/decoded.rs",
        func: "insert",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/decoded.rs",
        func: "reset_stats",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/decoded.rs",
        func: "stats",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/device.rs",
        func: "io_stats",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/device.rs",
        func: "read",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/device.rs",
        func: "reset_stats",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/device.rs",
        func: "write",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/fault.rs",
        func: "faults_fired",
        orderings: &["Relaxed"],
    },
    AtomicsRow {
        file: "crates/storage/src/fault.rs",
        func: "fire",
        orderings: &["Relaxed"],
    },
];

/// True when `rel` (a `/`-separated path relative to the workspace
/// root) falls under any of the given prefixes or exact files.
pub fn in_scope(rel: &str, scopes: &[&str]) -> bool {
    scopes.iter().any(|s| {
        if s.ends_with('/') {
            rel.starts_with(s)
        } else {
            rel == *s
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_matching() {
        assert!(in_scope("crates/codec/src/block.rs", DECODE_PATHS));
        assert!(in_scope("crates/wal/src/reader.rs", DECODE_PATHS));
        assert!(in_scope("crates/sql/src/parser.rs", DECODE_PATHS));
        assert!(!in_scope("crates/wal/src/writer.rs", DECODE_PATHS));
        assert!(!in_scope("crates/db/src/query.rs", DECODE_PATHS));
        assert!(!in_scope("crates/sql/src/exec.rs", DECODE_PATHS));
    }

    #[test]
    fn section_vocabulary_is_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for (section, _) in CORRUPT_SECTIONS {
            assert!(seen.insert(*section), "duplicate section {section}");
        }
    }
}
