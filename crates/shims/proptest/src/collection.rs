//! Collection strategies: `vec` and `btree_set` with a size range.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Accepted sizes for a generated collection (`lo..hi`, half-open).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty collection size range");
        self.lo + rng.below_usize(self.hi - self.lo)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// A strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeSet<S::Value>` with cardinality drawn from `size`
/// (best-effort: small element domains may not reach the target).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 10 + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
