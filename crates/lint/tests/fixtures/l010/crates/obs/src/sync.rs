//! AVQ-L010 fixture: an `Ordering::` literal with no matching row in
//! the per-site atomics inventory.

use std::sync::atomic::{AtomicU64, Ordering};

static PUBLISHED: AtomicU64 = AtomicU64::new(0);

/// Stores with an ordering that `config::ATOMICS` does not list for
/// this file/function pair.
pub fn publish(v: u64) {
    PUBLISHED.store(v, Ordering::SeqCst);
}
