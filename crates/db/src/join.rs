//! Equijoins over compressed relations.
//!
//! Two strategies, both operating block-at-a-time on coded data (decoding is
//! confined to blocks, exactly as §3.3 intends):
//!
//! * **Block nested-loop** — decode each outer block once, and for each,
//!   stream the inner relation's blocks; cost `B_outer + B_outer·B_inner`
//!   block reads (mitigated by the buffer pool).
//! * **Index nested-loop** — when the inner relation has a secondary index
//!   on its join attribute, probe it per distinct outer value; cost
//!   `B_outer + Σ probe`.
//!
//! Results are pairs of tuples `(outer, inner)` with equal join-attribute
//! ordinals. Joining compressed relations never materializes either side in
//! full.

use crate::cost::{CostTracker, QueryCost};
use crate::error::DbError;
use crate::relation_store::StoredRelation;
use avq_obs::names;
use avq_schema::Tuple;
use std::collections::{BTreeMap, BTreeSet};

/// Which join strategy was used (reported for tests/experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Decode-outer × decode-inner.
    BlockNestedLoop,
    /// Probe the inner relation's secondary index per outer value.
    IndexNestedLoop,
}

/// Joined tuple pairs plus the measured cost and chosen strategy.
pub type JoinResult = (Vec<(Tuple, Tuple)>, QueryCost, JoinStrategy);

/// Joins `outer ⋈ inner` on `outer.A_outer_attr = inner.A_inner_attr`,
/// picking index nested-loop when the inner side has a secondary index on
/// the join attribute.
pub fn equijoin(
    outer: &StoredRelation,
    outer_attr: usize,
    inner: &StoredRelation,
    inner_attr: usize,
) -> Result<JoinResult, DbError> {
    let _span = avq_obs::span!(names::SPAN_DB_JOIN);
    avq_obs::counter!(names::DB_JOINS).inc();
    if inner.has_secondary_index(inner_attr) {
        index_nested_loop(outer, outer_attr, inner, inner_attr)
            .map(|(rows, cost)| (rows, cost, JoinStrategy::IndexNestedLoop))
    } else {
        block_nested_loop(outer, outer_attr, inner, inner_attr)
            .map(|(rows, cost)| (rows, cost, JoinStrategy::BlockNestedLoop))
    }
}

/// Block nested-loop equijoin.
pub fn block_nested_loop(
    outer: &StoredRelation,
    outer_attr: usize,
    inner: &StoredRelation,
    inner_attr: usize,
) -> Result<(Vec<(Tuple, Tuple)>, QueryCost), DbError> {
    let mut tracker = CostTracker::new(outer.device());
    let mut out = Vec::new();
    let mut outer_tuples = Vec::new();
    let mut inner_tuples = Vec::new();
    let inner_ids = inner.all_block_ids();
    for oid in outer.all_block_ids() {
        outer_tuples.clear();
        outer.decode_block_into(oid, &mut outer_tuples)?;
        tracker.cost.data_blocks += 1;
        tracker.cost.tuples_scanned += outer_tuples.len();
        // Hash the outer block by join value to avoid a per-pair scan.
        let mut by_value: BTreeMap<u64, Vec<&Tuple>> = BTreeMap::new();
        for t in &outer_tuples {
            by_value.entry(t.digits()[outer_attr]).or_default().push(t);
        }
        for &iid in &inner_ids {
            inner_tuples.clear();
            inner.decode_block_into(iid, &mut inner_tuples)?;
            tracker.cost.data_blocks += 1;
            for it in &inner_tuples {
                if let Some(os) = by_value.get(&it.digits()[inner_attr]) {
                    for ot in os {
                        out.push(((*ot).clone(), it.clone()));
                    }
                }
            }
        }
    }
    tracker.cost.tuples_matched = out.len();
    tracker.end_data_phase();
    Ok((out, tracker.cost))
}

/// Index nested-loop equijoin (inner must have a secondary index on
/// `inner_attr`; falls back to the candidate-block scan otherwise).
pub fn index_nested_loop(
    outer: &StoredRelation,
    outer_attr: usize,
    inner: &StoredRelation,
    inner_attr: usize,
) -> Result<(Vec<(Tuple, Tuple)>, QueryCost), DbError> {
    let mut tracker = CostTracker::new(outer.device());
    let mut out = Vec::new();
    let mut outer_tuples = Vec::new();
    let mut inner_tuples = Vec::new();
    for oid in outer.all_block_ids() {
        outer_tuples.clear();
        outer.decode_block_into(oid, &mut outer_tuples)?;
        tracker.cost.data_blocks += 1;
        tracker.cost.tuples_scanned += outer_tuples.len();
        let mut by_value: BTreeMap<u64, Vec<&Tuple>> = BTreeMap::new();
        for t in &outer_tuples {
            by_value.entry(t.digits()[outer_attr]).or_default().push(t);
        }
        // One index probe per distinct value; union candidate inner blocks.
        let mut candidate_blocks = BTreeSet::new();
        for &v in by_value.keys() {
            for b in inner.secondary_candidate_blocks(inner_attr, v, v)? {
                candidate_blocks.insert(b);
            }
        }
        tracker.end_index_phase();
        for iid in candidate_blocks {
            inner_tuples.clear();
            inner.decode_block_into(iid, &mut inner_tuples)?;
            tracker.cost.data_blocks += 1;
            for it in &inner_tuples {
                if let Some(os) = by_value.get(&it.digits()[inner_attr]) {
                    for ot in os {
                        out.push(((*ot).clone(), it.clone()));
                    }
                }
            }
        }
        tracker.end_data_phase();
    }
    tracker.cost.tuples_matched = out.len();
    tracker.end_data_phase();
    Ok((out, tracker.cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DbConfig;
    use avq_codec::CodecOptions;
    use avq_schema::{Domain, Relation, Schema};
    use avq_storage::{BlockDevice, BufferPool};
    use std::sync::Arc;

    fn make(
        device: &Arc<BlockDevice>,
        pool: &Arc<BufferPool>,
        tuples: Vec<Tuple>,
        sizes: (u64, u64),
    ) -> StoredRelation {
        let schema = Schema::from_pairs(vec![
            ("k", Domain::uint(sizes.0).unwrap()),
            ("v", Domain::uint(sizes.1).unwrap()),
        ])
        .unwrap();
        let relation = Relation::from_tuples(schema, tuples).unwrap();
        let config = DbConfig {
            codec: CodecOptions {
                block_capacity: 96,
                ..Default::default()
            },
            ..Default::default()
        };
        StoredRelation::bulk_load(device.clone(), pool.clone(), &relation, config).unwrap()
    }

    fn setup(index_inner: bool) -> (StoredRelation, StoredRelation) {
        let config = DbConfig::default();
        let device = BlockDevice::new(96, config.disk);
        let pool = BufferPool::new(device.clone(), 256);
        // Outer: 200 tuples with join key = v % 20 in attr 1.
        let outer = make(
            &device,
            &pool,
            (0..200u64).map(|i| Tuple::from([i % 50, i % 20])).collect(),
            (50, 20),
        );
        // Inner: 100 tuples keyed on attr 0 (values 0..25).
        let mut inner = make(
            &device,
            &pool,
            (0..100u64).map(|i| Tuple::from([i % 25, i])).collect(),
            (25, 100),
        );
        if index_inner {
            inner.create_secondary_index(0).unwrap();
        }
        (outer, inner)
    }

    fn brute_force(
        outer: &StoredRelation,
        oa: usize,
        inner: &StoredRelation,
        ia: usize,
    ) -> Vec<(Tuple, Tuple)> {
        let os = outer.scan_all().unwrap();
        let is = inner.scan_all().unwrap();
        let mut out = Vec::new();
        for o in &os {
            for i in &is {
                if o.digits()[oa] == i.digits()[ia] {
                    out.push((o.clone(), i.clone()));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn block_nested_loop_matches_brute_force() {
        let (outer, inner) = setup(false);
        let (mut rows, cost, strategy) = equijoin(&outer, 1, &inner, 0).unwrap();
        assert_eq!(strategy, JoinStrategy::BlockNestedLoop);
        rows.sort_unstable();
        assert_eq!(rows, brute_force(&outer, 1, &inner, 0));
        assert!(cost.data_blocks as usize >= outer.block_count() * inner.block_count());
    }

    #[test]
    fn index_nested_loop_matches_brute_force() {
        let (outer, inner) = setup(true);
        let (mut rows, _, strategy) = equijoin(&outer, 1, &inner, 0).unwrap();
        assert_eq!(strategy, JoinStrategy::IndexNestedLoop);
        rows.sort_unstable();
        assert_eq!(rows, brute_force(&outer, 1, &inner, 0));
    }

    #[test]
    fn strategies_agree() {
        let (outer, inner) = setup(true);
        let (mut a, _, _) = equijoin(&outer, 1, &inner, 0).unwrap();
        let (mut b, _) = block_nested_loop(&outer, 1, &inner, 0).unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn join_with_no_matches() {
        let (outer, inner) = setup(true);
        // Join outer attr 0 (values up to 49) against inner attr 1 where
        // only values 0..100 exist, but restrict: join on attr that can't
        // match is hard to construct here, so join a constant-free pair:
        // outer.k in 0..50, inner.v in 0..100 — matches exist. Instead build
        // a disjoint inner.
        let config = DbConfig::default();
        let device = BlockDevice::new(96, config.disk);
        let pool = BufferPool::new(device.clone(), 256);
        let disjoint = make(
            &device,
            &pool,
            (0..50u64).map(|i| Tuple::from([i % 7, i + 50])).collect(),
            (7, 100),
        );
        // outer join key attr 1 has values 0..20; disjoint attr 1 has 50..99.
        let (rows, _, _) = equijoin(&outer, 1, &disjoint, 1).unwrap();
        assert!(rows.is_empty());
        let _ = inner;
    }

    #[test]
    fn self_join_on_key_returns_multiplicities() {
        let (_, inner) = setup(true);
        // Self-join on attr 0: each group of equal keys contributes n².
        let (rows, _, _) = equijoin(&inner, 0, &inner, 0).unwrap();
        let all = inner.scan_all().unwrap();
        let mut counts = std::collections::HashMap::new();
        for t in &all {
            *counts.entry(t.digits()[0]).or_insert(0u64) += 1;
        }
        let expect: u64 = counts.values().map(|&c| c * c).sum();
        assert_eq!(rows.len() as u64, expect);
    }
}
