//! Streaming φ-range scans: iterate a tuple range block-at-a-time through
//! the primary index, without materializing the whole result.
//!
//! This is the access pattern behind the paper's clustered selections: the
//! primary index locates the first block whose range intersects
//! `[lo, hi]`, and the scan walks forward until a block's minimum passes
//! `hi`.

use crate::error::DbError;
use crate::relation_store::StoredRelation;
use avq_schema::Tuple;

/// A streaming iterator over the tuples in `[lo, hi]` (inclusive, φ order).
pub struct RangeScan<'a> {
    rel: &'a StoredRelation,
    hi: Tuple,
    /// Index into the relation's block list of the next block to decode.
    next_block: usize,
    buf: Vec<Tuple>,
    pos: usize,
    /// Blocks decoded so far (the scan's `N`).
    blocks_read: u64,
    error: Option<DbError>,
    done: bool,
    lo: Tuple,
    /// Governance handle polled at each block boundary (refill).
    gov: avq_obs::GovCtx,
}

impl StoredRelation {
    /// Starts a streaming scan of the φ range `[lo, hi]`.
    pub fn range_scan(&self, lo: Tuple, hi: Tuple) -> Result<RangeScan<'_>, DbError> {
        self.range_scan_governed(lo, hi, avq_obs::GovCtx::unlimited())
    }

    /// [`Self::range_scan`] under a governance budget: each refill (block
    /// boundary) polls `gov`, so a cancelled or tripped scan stops yielding
    /// within one block and surfaces [`DbError::Governance`] through
    /// [`RangeScan::take_error`] — never a silently truncated stream.
    pub fn range_scan_governed(
        &self,
        lo: Tuple,
        hi: Tuple,
        gov: avq_obs::GovCtx,
    ) -> Result<RangeScan<'_>, DbError> {
        self.schema().validate_tuple(&lo)?;
        self.schema().validate_tuple(&hi)?;
        // First block whose max >= lo.
        let start = self.blocks().partition_point(|b| b.max < lo);
        Ok(RangeScan {
            rel: self,
            hi,
            next_block: start,
            buf: Vec::new(),
            pos: 0,
            blocks_read: 0,
            error: None,
            done: false,
            lo,
            gov,
        })
    }
}

impl RangeScan<'_> {
    /// Blocks decoded so far.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    /// The first error hit, if iteration stopped on one.
    pub fn take_error(&mut self) -> Option<DbError> {
        self.error.take()
    }

    fn refill(&mut self) -> bool {
        loop {
            let blocks = self.rel.blocks();
            if self.next_block >= blocks.len() {
                self.done = true;
                return false;
            }
            let meta = &blocks[self.next_block];
            if meta.min > self.hi {
                self.done = true;
                return false;
            }
            let id = meta.id;
            self.next_block += 1;
            self.buf.clear();
            // Policy-aware: under `SkipCorrupt` a damaged block is
            // quarantined and the scan moves on to the next one.
            match self
                .rel
                .decode_block_policy_governed(id, &mut self.buf, &self.gov)
            {
                Ok(true) => {}
                Ok(false) => continue,
                Err(e) => {
                    self.error = Some(e);
                    self.done = true;
                    return false;
                }
            }
            self.blocks_read += 1;
            // Skip the prefix below `lo`.
            self.pos = self.buf.partition_point(|t| *t < self.lo);
            if self.pos < self.buf.len() {
                return true;
            }
        }
    }
}

impl Iterator for RangeScan<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.done {
            return None;
        }
        loop {
            if self.pos < self.buf.len() {
                let t = self.buf[self.pos].clone();
                if t > self.hi {
                    self.done = true;
                    return None;
                }
                self.pos += 1;
                return Some(t);
            }
            if !self.refill() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DbConfig;
    use avq_codec::CodecOptions;
    use avq_schema::{Domain, Relation, Schema};
    use avq_storage::{BlockDevice, BufferPool};

    fn stored(n: u64) -> StoredRelation {
        let schema = Schema::from_pairs(vec![
            ("a", Domain::uint(64).unwrap()),
            ("b", Domain::uint(1024).unwrap()),
        ])
        .unwrap();
        let tuples: Vec<Tuple> = (0..n)
            .map(|i| Tuple::from([(i * 7) % 64, (i * 13) % 1024]))
            .collect();
        let relation = Relation::from_tuples(schema, tuples).unwrap();
        let config = DbConfig {
            codec: CodecOptions {
                block_capacity: 128,
                ..Default::default()
            },
            ..Default::default()
        };
        let device = BlockDevice::new(128, config.disk);
        let pool = BufferPool::new(device.clone(), config.buffer_frames);
        StoredRelation::bulk_load(device, pool, &relation, config).unwrap()
    }

    #[test]
    fn scan_matches_filtered_full_scan() {
        let rel = stored(2000);
        let all = rel.scan_all().unwrap();
        let lo = Tuple::from([10u64, 0]);
        let hi = Tuple::from([20u64, 1023]);
        let got: Vec<Tuple> = rel.range_scan(lo.clone(), hi.clone()).unwrap().collect();
        let expect: Vec<Tuple> = all
            .iter()
            .filter(|t| **t >= lo && **t <= hi)
            .cloned()
            .collect();
        assert_eq!(got, expect);
        assert!(!got.is_empty());
    }

    #[test]
    fn scan_reads_only_intersecting_blocks() {
        let rel = stored(2000);
        let lo = Tuple::from([30u64, 0]);
        let hi = Tuple::from([32u64, 1023]);
        let mut scan = rel.range_scan(lo, hi).unwrap();
        let count = scan.by_ref().count();
        assert!(count > 0);
        assert!(
            (scan.blocks_read() as usize) < rel.block_count() / 2,
            "narrow scan must not decode most blocks: {} of {}",
            scan.blocks_read(),
            rel.block_count()
        );
        assert!(scan.take_error().is_none());
    }

    #[test]
    fn empty_range() {
        let rel = stored(500);
        let lo = Tuple::from([63u64, 1023]);
        let hi = Tuple::from([63u64, 1023]);
        let got: Vec<Tuple> = rel.range_scan(lo, hi).unwrap().collect();
        // Present only if that exact tuple exists.
        let present = rel
            .scan_all()
            .unwrap()
            .binary_search(&Tuple::from([63u64, 1023]))
            .is_ok();
        assert_eq!(!got.is_empty(), present);
    }

    #[test]
    fn inverted_range_yields_nothing() {
        let rel = stored(500);
        let lo = Tuple::from([40u64, 0]);
        let hi = Tuple::from([10u64, 0]);
        assert_eq!(rel.range_scan(lo, hi).unwrap().count(), 0);
    }

    #[test]
    fn whole_range_equals_scan_all() {
        let rel = stored(1000);
        let lo = Tuple::from([0u64, 0]);
        let hi = Tuple::from([63u64, 1023]);
        let got: Vec<Tuple> = rel.range_scan(lo, hi).unwrap().collect();
        assert_eq!(got, rel.scan_all().unwrap());
    }

    #[test]
    fn invalid_bounds_rejected() {
        let rel = stored(100);
        assert!(rel
            .range_scan(Tuple::from([99u64, 0]), Tuple::from([0u64, 0]))
            .is_err());
    }
}
