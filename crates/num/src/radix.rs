//! Mixed-radix arithmetic over attribute-domain digit vectors.
//!
//! A relation scheme `𝓡 = A₁ × … × Aₙ` defines a mixed-radix number system:
//! a tuple `(a₁, …, aₙ)` with `aᵢ ∈ {0 … |Aᵢ|−1}` is a digit vector whose
//! value is the φ mapping of the paper (Eq. 2.2):
//!
//! ```text
//! φ(a₁ … aₙ) = Σᵢ aᵢ · Π_{j>i} |Aⱼ|
//! ```
//!
//! [`MixedRadix`] implements φ ([`MixedRadix::rank`]) and φ⁻¹
//! ([`MixedRadix::unrank`]) and — crucially for performance — addition,
//! subtraction, and comparison *directly in digit space* with per-digit
//! carry/borrow, so the per-tuple coding path never materializes a bignum.
//! Digit-space results are bit-identical to converting through
//! [`BigUnsigned`]; a property test in this module enforces that.

use crate::biguint::BigUnsigned;
use core::cmp::Ordering;
use core::fmt;

/// Errors arising from mixed-radix construction or digit validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RadixError {
    /// A radix (domain size) of zero was supplied; every domain must have at
    /// least one value.
    ZeroRadix {
        /// Index of the offending radix.
        position: usize,
    },
    /// No radices were supplied.
    Empty,
    /// A digit vector had the wrong number of digits.
    ArityMismatch {
        /// Arity of the number system.
        expected: usize,
        /// Arity of the supplied digit vector.
        got: usize,
    },
    /// A digit was out of range for its radix.
    DigitOutOfRange {
        /// Index of the offending digit.
        position: usize,
        /// The digit value found.
        digit: u64,
        /// The radix it must be strictly less than.
        radix: u64,
    },
}

impl fmt::Display for RadixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadixError::ZeroRadix { position } => {
                write!(f, "radix at position {position} is zero")
            }
            RadixError::Empty => write!(f, "no radices supplied"),
            RadixError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} digits, got {got}")
            }
            RadixError::DigitOutOfRange {
                position,
                digit,
                radix,
            } => write!(
                f,
                "digit {digit} at position {position} out of range for radix {radix}"
            ),
        }
    }
}

impl std::error::Error for RadixError {}

/// A mixed-radix number system defined by the per-attribute domain sizes.
///
/// Position 0 is the most significant digit (attribute `A₁`), matching the
/// paper's lexicographic ordering: comparing digit vectors lexicographically
/// is the same as comparing their φ values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedRadix {
    radices: Vec<u64>,
    /// `weights[i] = Π_{j>i} radices[j]` — the place value of digit `i`.
    weights: Vec<BigUnsigned>,
    /// `‖𝓡‖ = Π radices` — one past the largest representable value.
    space_size: BigUnsigned,
    /// `‖𝓡‖` as a machine word when it fits (`None` for huge spaces).
    space_size_u64: Option<u64>,
    /// Index of the first digit of the longest suffix of `radices` whose
    /// product fits a u64 (the batched-unrank split point).
    low_split: usize,
    /// `Π radices[low_split..]` — always ≥ 1 and always a valid u64.
    low_prod: u64,
}

impl MixedRadix {
    /// Builds a number system from domain sizes. Every radix must be ≥ 1 and
    /// at least one radix must be supplied.
    pub fn new(radices: Vec<u64>) -> Result<Self, RadixError> {
        if radices.is_empty() {
            return Err(RadixError::Empty);
        }
        for (position, &r) in radices.iter().enumerate() {
            if r == 0 {
                return Err(RadixError::ZeroRadix { position });
            }
        }
        let n = radices.len();
        let mut weights = vec![BigUnsigned::one(); n];
        for i in (0..n - 1).rev() {
            weights[i] = weights[i + 1].mul_u64(radices[i + 1]);
        }
        let space_size = weights[0].mul_u64(radices[0]);
        let space_size_u64 = space_size.to_u64();
        // Longest suffix whose radix product fits a machine word: the
        // division chain for those digits can run entirely in u64.
        let mut low_split = n;
        let mut low_prod = 1u64;
        while low_split > 0 {
            let Some(p) = low_prod.checked_mul(radices[low_split - 1]) else {
                break;
            };
            low_prod = p;
            low_split -= 1;
        }
        Ok(MixedRadix {
            radices,
            weights,
            space_size,
            space_size_u64,
            low_split,
            low_prod,
        })
    }

    /// The number of digits (attributes).
    #[inline]
    pub fn arity(&self) -> usize {
        self.radices.len()
    }

    /// The per-position radices (domain sizes).
    #[inline]
    pub fn radices(&self) -> &[u64] {
        &self.radices
    }

    /// The place value `Π_{j>i} |Aⱼ|` of digit `i`.
    #[inline]
    pub fn weight(&self, i: usize) -> &BigUnsigned {
        &self.weights[i]
    }

    /// `‖𝓡‖ = Π |Aᵢ|`, the size of the tuple space.
    #[inline]
    pub fn space_size(&self) -> &BigUnsigned {
        &self.space_size
    }

    /// Validates arity and digit ranges.
    pub fn validate(&self, digits: &[u64]) -> Result<(), RadixError> {
        if digits.len() != self.radices.len() {
            return Err(RadixError::ArityMismatch {
                expected: self.radices.len(),
                got: digits.len(),
            });
        }
        for (position, (&digit, &radix)) in digits.iter().zip(&self.radices).enumerate() {
            if digit >= radix {
                return Err(RadixError::DigitOutOfRange {
                    position,
                    digit,
                    radix,
                });
            }
        }
        Ok(())
    }

    /// φ (Eq. 2.2): the ordinal position of a digit vector in the tuple
    /// space. Digits must be valid (checked in debug builds only; call
    /// [`Self::validate`] first for untrusted input).
    pub fn rank(&self, digits: &[u64]) -> BigUnsigned {
        debug_assert!(self.validate(digits).is_ok(), "invalid digits");
        // Horner evaluation: ((a₁·r₂ + a₂)·r₃ + a₃)·…
        let mut acc = BigUnsigned::zero();
        for (&digit, &radix) in digits.iter().zip(&self.radices) {
            acc = acc.mul_u64(radix).add_u64(digit);
        }
        acc
    }

    /// φ⁻¹ (Eq. 2.3–2.5): recovers the digit vector from an ordinal, or
    /// `None` if `value ≥ ‖𝓡‖`.
    pub fn unrank(&self, value: &BigUnsigned) -> Option<Vec<u64>> {
        if *value >= self.space_size {
            return None;
        }
        let mut digits = vec![0u64; self.radices.len()];
        let mut cur = value.clone();
        for i in (0..self.radices.len()).rev() {
            let (q, r) = cur.divmod_u64(self.radices[i]);
            digits[i] = r;
            cur = q;
        }
        debug_assert!(cur.is_zero());
        Some(digits)
    }

    /// φ⁻¹ into a caller-provided buffer: writes the digit vector of `value`
    /// into `out` and returns `true`, or returns `false` (leaving `out`
    /// unspecified) when `value ≥ ‖𝓡‖` or `out` has the wrong arity.
    ///
    /// Consumes `value` so the division chain can run in place — the
    /// allocation-free counterpart of [`Self::unrank`] used by streaming
    /// block decoding.
    pub fn unrank_into(&self, mut value: BigUnsigned, out: &mut [u64]) -> bool {
        self.unrank_assign_into(&mut value, out)
    }

    /// φ⁻¹ through a borrowed work value: divides `value` down to zero in
    /// place, writing the digit vector into `out`. Semantics match
    /// [`Self::unrank_into`], but the caller keeps `value` (left at zero,
    /// limb capacity intact) so one bignum can serve every oversized entry
    /// of a decode stream without reallocating.
    pub fn unrank_assign_into(&self, value: &mut BigUnsigned, out: &mut [u64]) -> bool {
        if out.len() != self.radices.len() || *value >= self.space_size {
            return false;
        }
        for i in (0..self.radices.len()).rev() {
            out[i] = value.div_assign_u64(self.radices[i]);
        }
        debug_assert!(value.is_zero());
        true
    }

    /// φ⁻¹ for values that fit a machine word, written into `out` without
    /// touching the heap. Returns `false` (leaving `out` unspecified) when
    /// `value ≥ ‖𝓡‖` or `out` has the wrong arity.
    pub fn unrank_u64_into(&self, mut value: u64, out: &mut [u64]) -> bool {
        if out.len() != self.radices.len() {
            return false;
        }
        for i in (0..self.radices.len()).rev() {
            let r = self.radices[i];
            out[i] = value % r;
            value /= r;
        }
        value == 0
    }

    /// True iff a machine-word ordinal lies inside the tuple space — the
    /// O(1) validity pre-check behind [`Self::unrank_u64_batch_into`].
    #[inline]
    pub fn value_in_space(&self, value: u64) -> bool {
        match self.space_size_u64 {
            Some(size) => value < size,
            // ‖𝓡‖ > u64::MAX: every machine word is representable.
            None => true,
        }
    }

    /// Batched φ⁻¹ for machine-word ordinals: unranks `values[k]` into
    /// `out[k·n .. (k+1)·n]` for every `k`, exploiting that consecutive
    /// ordinals usually share their high-order digits.
    ///
    /// The radix vector is split at construction time into the longest
    /// suffix whose product `P` fits a u64 and the prefix above it. Each
    /// value needs one `/ P` and one `% P`; the low digits always run their
    /// (u64-only) division chain, but the high-prefix chain is skipped
    /// whenever `values[k] / P` equals the previous value's quotient — for
    /// φ-sorted difference streams that is almost always (small gaps rarely
    /// disturb high-order digits), so the per-value cost collapses to the
    /// suffix chain. When the whole space fits a u64 the prefix is empty
    /// and the suffix chain is the entire (cheap) division ladder.
    ///
    /// Returns `false` — leaving `out` unspecified — when `out.len()` is not
    /// `values.len() · arity` or any value is outside the tuple space
    /// (use [`Self::value_in_space`] to pre-screen values one at a time).
    pub fn unrank_u64_batch_into(&self, values: &[u64], out: &mut [u64]) -> bool {
        let n = self.radices.len();
        if out.len() != values.len().saturating_mul(n) {
            return false;
        }
        let split = self.low_split;
        let mut prev_hi = 0u64;
        let mut have_prev = false;
        for (k, &v) in values.iter().enumerate() {
            let base = k * n;
            let (hi, mut lo) = (v / self.low_prod, v % self.low_prod);
            if have_prev && hi == prev_hi {
                // Same high-order prefix as the previous value: reuse its
                // digits instead of re-running the prefix division chain.
                out.copy_within(base - n..base - n + split, base);
            } else {
                let mut cur = hi;
                for i in (0..split).rev() {
                    let r = self.radices[i];
                    out[base + i] = cur % r;
                    cur /= r;
                }
                if cur != 0 {
                    // v ≥ ‖𝓡‖ (covers the split == 0 case too, where
                    // low_prod is the whole space and hi must be zero).
                    return false;
                }
                prev_hi = hi;
                have_prev = true;
            }
            for i in (split..n).rev() {
                let r = self.radices[i];
                out[base + i] = lo % r;
                lo /= r;
            }
            // lo < low_prod by construction, so the suffix chain consumed it.
            debug_assert_eq!(lo, 0);
        }
        true
    }

    /// Lexicographic comparison of digit vectors; by construction this equals
    /// comparing φ values (the `≺` total order of §2.2).
    pub fn cmp_digits(&self, a: &[u64], b: &[u64]) -> Ordering {
        debug_assert_eq!(a.len(), self.radices.len());
        debug_assert_eq!(b.len(), self.radices.len());
        a.cmp(b)
    }

    /// In-place digit-space addition with carry: `a += b`.
    ///
    /// Returns `false` when the sum overflows the tuple space; `a` then holds
    /// the wrapped (mod-‖𝓡‖) digits, each still valid for its radix. This is
    /// the allocation-free core of [`Self::checked_add`] and the hot path of
    /// chained block decoding.
    pub fn add_assign(&self, a: &mut [u64], b: &[u64]) -> bool {
        self.add_assign_from(a, b, 0)
    }

    /// [`Self::add_assign`] for a `b` whose first `nz` digits are zero
    /// (caller-guaranteed, checked in debug builds): the digit loop runs
    /// only over `nz..n`, then the carry — if any — ripples upward and
    /// stops at the first digit that absorbs it.
    ///
    /// AVQ difference entries are mostly leading zeros (that is why they
    /// compress), so the SWAR reconstruction path skips most of each add.
    /// Results and the overflow return are bit-identical to the full loop:
    /// a skipped step with `b[i] == 0` and no incoming carry is the
    /// identity.
    pub fn add_assign_prefix(&self, a: &mut [u64], b: &[u64], nz: usize) -> bool {
        debug_assert!(b.get(..nz).is_some_and(|p| p.iter().all(|&d| d == 0)));
        self.add_assign_from(a, b, nz)
    }

    #[inline]
    fn add_assign_from(&self, a: &mut [u64], b: &[u64], start: usize) -> bool {
        debug_assert!(self.validate(a).is_ok() && self.validate(b).is_ok());
        let mut carry: u64 = 0;
        for i in (start..self.radices.len()).rev() {
            let r = self.radices[i];
            // a[i], b[i] < r and carry ≤ 1, so the true sum is < 2r: one
            // conditional subtract replaces the u128 divide the old loop
            // paid per digit. `overflowing_add` covers radices near
            // u64::MAX, where the true sum can exceed the word.
            let (s, o1) = a[i].overflowing_add(b[i]);
            let (s, o2) = s.overflowing_add(carry);
            if o1 | o2 || s >= r {
                // True sum ∈ [r, 2r): digit is sum − r (the wrapping sub
                // folds the 2⁶⁴ the overflow dropped back in).
                a[i] = s.wrapping_sub(r);
                carry = 1;
            } else {
                a[i] = s;
                carry = 0;
            }
        }
        let mut i = start;
        while carry == 1 && i > 0 {
            i -= 1;
            let r = self.radices[i];
            // a[i] < r, so a[i] + 1 ≤ r never wraps the word.
            let s = a[i] + 1;
            if s >= r {
                a[i] = s - r;
            } else {
                a[i] = s;
                carry = 0;
            }
        }
        carry == 0
    }

    /// In-place digit-space subtraction with borrow: `a -= b`.
    ///
    /// Returns `false` when `a < b` (the true difference is negative); `a`
    /// then holds the wrapped digits, each still valid for its radix.
    pub fn sub_assign(&self, a: &mut [u64], b: &[u64]) -> bool {
        self.sub_assign_from(a, b, 0)
    }

    /// [`Self::sub_assign`] for a `b` whose first `nz` digits are zero
    /// (caller-guaranteed, checked in debug builds): the digit loop runs
    /// only over `nz..n`, then the borrow — if any — ripples upward and
    /// stops at the first nonzero digit. The SWAR counterpart of
    /// [`Self::add_assign_prefix`]; results and the underflow return are
    /// bit-identical to the full loop.
    pub fn sub_assign_prefix(&self, a: &mut [u64], b: &[u64], nz: usize) -> bool {
        debug_assert!(b.get(..nz).is_some_and(|p| p.iter().all(|&d| d == 0)));
        self.sub_assign_from(a, b, nz)
    }

    #[inline]
    fn sub_assign_from(&self, a: &mut [u64], b: &[u64], start: usize) -> bool {
        debug_assert!(self.validate(a).is_ok() && self.validate(b).is_ok());
        let mut borrow: u64 = 0;
        for i in (start..self.radices.len()).rev() {
            let need = b[i] as u128 + borrow as u128;
            let have = a[i] as u128;
            if have >= need {
                a[i] = (have - need) as u64;
                borrow = 0;
            } else {
                a[i] = (have + self.radices[i] as u128 - need) as u64;
                borrow = 1;
            }
        }
        let mut i = start;
        while borrow == 1 && i > 0 {
            i -= 1;
            if a[i] > 0 {
                a[i] -= 1;
                borrow = 0;
            } else {
                a[i] = self.radices[i] - 1;
            }
        }
        borrow == 0
    }

    /// Digit-space addition with carry: `a + b`, or `None` on overflow of the
    /// tuple space. Equivalent to `unrank(rank(a) + rank(b))`.
    pub fn checked_add(&self, a: &[u64], b: &[u64]) -> Option<Vec<u64>> {
        let mut out = a.to_vec();
        if self.add_assign(&mut out, b) {
            Some(out)
        } else {
            None
        }
    }

    /// Digit-space subtraction with borrow: `a − b`, or `None` if `a < b`.
    /// Equivalent to `unrank(rank(a) − rank(b))`.
    pub fn checked_sub(&self, a: &[u64], b: &[u64]) -> Option<Vec<u64>> {
        let mut out = a.to_vec();
        if self.sub_assign(&mut out, b) {
            Some(out)
        } else {
            None
        }
    }

    /// `|a − b|` in digit space — the difference measure `d(tᵢ, tⱼ)` of
    /// Eq. 2.6, expressed back in 𝓡-space digits as §3.4 does.
    pub fn abs_diff(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        match self.cmp_digits(a, b) {
            Ordering::Less => self.checked_sub(b, a).expect("b >= a"),
            _ => self.checked_sub(a, b).expect("a >= b"),
        }
    }

    /// Adds a machine-word delta to a digit vector, or `None` on overflow.
    pub fn checked_add_value(&self, a: &[u64], delta: u64) -> Option<Vec<u64>> {
        debug_assert!(self.validate(a).is_ok());
        let n = self.radices.len();
        let mut out = vec![0u64; n];
        let mut carry = delta as u128;
        for i in (0..n).rev() {
            let r = self.radices[i] as u128;
            let sum = a[i] as u128 + carry;
            out[i] = (sum % r) as u64;
            carry = sum / r;
        }
        if carry != 0 {
            None
        } else {
            Some(out)
        }
    }

    /// The all-zeros digit vector (φ = 0).
    pub fn min_digits(&self) -> Vec<u64> {
        vec![0; self.radices.len()]
    }

    /// The largest digit vector (φ = ‖𝓡‖ − 1).
    pub fn max_digits(&self) -> Vec<u64> {
        self.radices.iter().map(|&r| r - 1).collect()
    }

    /// The successor in the ≺ order, or `None` at the top of the space.
    pub fn successor(&self, a: &[u64]) -> Option<Vec<u64>> {
        self.checked_add_value(a, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn employee_radix() -> MixedRadix {
        // The paper's Example 3.1 schema: |A| = 8, 16, 64, 64, 64.
        MixedRadix::new(vec![8, 16, 64, 64, 64]).unwrap()
    }

    #[test]
    fn construction_errors() {
        assert_eq!(MixedRadix::new(vec![]), Err(RadixError::Empty));
        assert_eq!(
            MixedRadix::new(vec![4, 0, 3]),
            Err(RadixError::ZeroRadix { position: 1 })
        );
    }

    #[test]
    fn space_size_is_product() {
        let mr = employee_radix();
        assert_eq!(
            mr.space_size().to_u64(),
            Some(8 * 16 * 64 * 64 * 64) // 33_554_432
        );
    }

    #[test]
    fn weights_are_suffix_products() {
        let mr = employee_radix();
        assert_eq!(mr.weight(0).to_u64(), Some(16 * 64 * 64 * 64));
        assert_eq!(mr.weight(3).to_u64(), Some(64));
        assert_eq!(mr.weight(4).to_u64(), Some(1));
    }

    /// The paper computes φ(3,08,36,39,35) = 14 830 051 in Example 3.2 (shown
    /// as the representative's 𝓝_𝓡 value in Fig. 3.3).
    #[test]
    fn paper_example_3_2_rank() {
        let mr = employee_radix();
        assert_eq!(mr.rank(&[3, 8, 36, 39, 35]).to_u64(), Some(14_830_051));
        assert_eq!(mr.rank(&[3, 8, 32, 34, 12]).to_u64(), Some(14_813_324));
        // And the difference re-expressed as digits: φ(0,00,04,05,23) = 16727.
        assert_eq!(mr.rank(&[0, 0, 4, 5, 23]).to_u64(), Some(16_727));
    }

    /// Example 3.3: φ(0,00,00,08,57) = 569 = 17296 − 16727.
    #[test]
    fn paper_example_3_3_chained_difference() {
        let mr = employee_radix();
        let d1 = mr.rank(&[0, 0, 4, 14, 16]); // 17296
        let d2 = mr.rank(&[0, 0, 4, 5, 23]); // 16727
        assert_eq!(d1.to_u64(), Some(17_296));
        let chained = d1.checked_sub(&d2).unwrap();
        assert_eq!(chained.to_u64(), Some(569));
        assert_eq!(mr.unrank(&chained).unwrap(), vec![0, 0, 0, 8, 57]);
    }

    #[test]
    fn rank_unrank_roundtrip_extremes() {
        let mr = employee_radix();
        let zero = mr.min_digits();
        assert!(mr.rank(&zero).is_zero());
        assert_eq!(mr.unrank(&BigUnsigned::zero()).unwrap(), zero);

        let max = mr.max_digits();
        let top = mr.rank(&max);
        assert_eq!(
            top.add_u64(1),
            *mr.space_size(),
            "max digit vector ranks to ‖𝓡‖−1"
        );
        assert_eq!(mr.unrank(&top).unwrap(), max);
        assert!(mr.unrank(mr.space_size()).is_none());
    }

    #[test]
    fn validate_catches_bad_digits() {
        let mr = employee_radix();
        assert!(mr.validate(&[0, 0, 0, 0, 0]).is_ok());
        assert!(mr.validate(&[7, 15, 63, 63, 63]).is_ok());
        assert_eq!(
            mr.validate(&[8, 0, 0, 0, 0]),
            Err(RadixError::DigitOutOfRange {
                position: 0,
                digit: 8,
                radix: 8
            })
        );
        assert_eq!(
            mr.validate(&[0, 0, 0]),
            Err(RadixError::ArityMismatch {
                expected: 5,
                got: 3
            })
        );
    }

    #[test]
    fn digit_add_carry_propagation() {
        let mr = MixedRadix::new(vec![10, 10, 10]).unwrap();
        // 099 + 001 = 100
        assert_eq!(
            mr.checked_add(&[0, 9, 9], &[0, 0, 1]).unwrap(),
            vec![1, 0, 0]
        );
        // 999 + 001 overflows
        assert!(mr.checked_add(&[9, 9, 9], &[0, 0, 1]).is_none());
    }

    #[test]
    fn digit_sub_borrow_propagation() {
        let mr = MixedRadix::new(vec![10, 10, 10]).unwrap();
        // 100 - 001 = 099
        assert_eq!(
            mr.checked_sub(&[1, 0, 0], &[0, 0, 1]).unwrap(),
            vec![0, 9, 9]
        );
        // 000 - 001 underflows
        assert!(mr.checked_sub(&[0, 0, 0], &[0, 0, 1]).is_none());
    }

    #[test]
    fn add_assign_wraps_on_overflow() {
        let mr = MixedRadix::new(vec![10, 10, 10]).unwrap();
        let mut a = [9u64, 9, 9];
        assert!(!mr.add_assign(&mut a, &[0, 0, 2]));
        // Wrapped mod ‖𝓡‖: 999 + 002 = 1001 ≡ 001.
        assert_eq!(a, [0, 0, 1]);
        assert!(mr.validate(&a).is_ok());
        let mut b = [0u64, 9, 9];
        assert!(mr.add_assign(&mut b, &[0, 0, 1]));
        assert_eq!(b, [1, 0, 0]);
    }

    #[test]
    fn sub_assign_wraps_on_underflow() {
        let mr = MixedRadix::new(vec![10, 10, 10]).unwrap();
        let mut a = [0u64, 0, 1];
        assert!(!mr.sub_assign(&mut a, &[0, 0, 3]));
        // Wrapped mod ‖𝓡‖: 001 − 003 ≡ 998.
        assert_eq!(a, [9, 9, 8]);
        assert!(mr.validate(&a).is_ok());
        let mut b = [1u64, 0, 0];
        assert!(mr.sub_assign(&mut b, &[0, 0, 1]));
        assert_eq!(b, [0, 9, 9]);
    }

    #[test]
    fn unrank_into_matches_unrank() {
        let mr = employee_radix();
        let mut buf = vec![0u64; mr.arity()];
        let r = mr.rank(&[3, 8, 36, 39, 35]);
        assert!(mr.unrank_into(r.clone(), &mut buf));
        assert_eq!(buf, vec![3, 8, 36, 39, 35]);
        assert!(!mr.unrank_into(mr.space_size().clone(), &mut buf));
        let mut short = vec![0u64; 2];
        assert!(!mr.unrank_into(r, &mut short));
    }

    #[test]
    fn unrank_u64_into_matches_unrank() {
        let mr = employee_radix();
        let mut buf = vec![0u64; mr.arity()];
        for v in [0u64, 1, 569, 14_830_051, 33_554_431] {
            assert!(mr.unrank_u64_into(v, &mut buf), "value {v}");
            assert_eq!(buf, mr.unrank(&BigUnsigned::from_u64(v)).unwrap());
        }
        assert!(
            !mr.unrank_u64_into(33_554_432, &mut buf),
            "‖𝓡‖ is out of space"
        );
        let mut short = vec![0u64; 2];
        assert!(!mr.unrank_u64_into(0, &mut short));
    }

    #[test]
    fn batch_unrank_matches_single() {
        let mr = employee_radix();
        let values = [0u64, 1, 569, 570, 571, 14_830_051, 33_554_431, 2, 3];
        let mut out = vec![0u64; values.len() * mr.arity()];
        assert!(mr.unrank_u64_batch_into(&values, &mut out));
        let mut single = vec![0u64; mr.arity()];
        for (k, &v) in values.iter().enumerate() {
            assert!(mr.unrank_u64_into(v, &mut single));
            assert_eq!(
                &out[k * mr.arity()..(k + 1) * mr.arity()],
                single.as_slice(),
                "value {v}"
            );
        }
    }

    #[test]
    fn batch_unrank_rejects_out_of_space() {
        let mr = employee_radix();
        // ‖𝓡‖ = 33 554 432 fits u64, so the space bound is enforced even
        // when the out-of-space value follows valid ones.
        let mut out = vec![0u64; 3 * mr.arity()];
        assert!(!mr.unrank_u64_batch_into(&[1, 2, 33_554_432], &mut out));
        // And a wrong-sized output buffer is refused outright.
        let mut short = vec![0u64; 2];
        assert!(!mr.unrank_u64_batch_into(&[1], &mut short));
        assert!(mr.value_in_space(33_554_431));
        assert!(!mr.value_in_space(33_554_432));
    }

    #[test]
    fn batch_unrank_huge_space_accepts_all_words() {
        // Three radices of u64::MAX: ‖𝓡‖ ≫ u64::MAX, so every machine word
        // is in space and the split point is interior.
        let big = u64::MAX;
        let mr = MixedRadix::new(vec![big, big, big]).unwrap();
        assert!(mr.value_in_space(u64::MAX));
        let values = [0u64, 1, u64::MAX, u64::MAX - 1, 42];
        let mut out = vec![0u64; values.len() * 3];
        assert!(mr.unrank_u64_batch_into(&values, &mut out));
        let mut single = vec![0u64; 3];
        for (k, &v) in values.iter().enumerate() {
            assert!(mr.unrank_u64_into(v, &mut single));
            assert_eq!(&out[k * 3..(k + 1) * 3], single.as_slice(), "value {v}");
        }
    }

    #[test]
    fn batch_unrank_empty_values() {
        let mr = employee_radix();
        let mut out = [0u64; 0];
        assert!(mr.unrank_u64_batch_into(&[], &mut out));
    }

    #[test]
    fn prefix_add_sub_match_full_ops() {
        let mr = employee_radix();
        // b has 3 leading zero digits; prefix ops may skip them.
        let b = [0u64, 0, 0, 8, 57];
        for a in [[3u64, 8, 36, 39, 35], [0, 0, 0, 0, 0], [7, 15, 63, 63, 63]] {
            for nz in 0..=3usize {
                let mut full = a;
                let mut pre = a;
                let ok_full = mr.add_assign(&mut full, &b);
                let ok_pre = mr.add_assign_prefix(&mut pre, &b, nz);
                assert_eq!((ok_full, full), (ok_pre, pre), "add a={a:?} nz={nz}");
                let mut full = a;
                let mut pre = a;
                let ok_full = mr.sub_assign(&mut full, &b);
                let ok_pre = mr.sub_assign_prefix(&mut pre, &b, nz);
                assert_eq!((ok_full, full), (ok_pre, pre), "sub a={a:?} nz={nz}");
            }
        }
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let mr = employee_radix();
        let a = [3u64, 8, 36, 39, 35];
        let b = [3u64, 8, 32, 34, 12];
        let d1 = mr.abs_diff(&a, &b);
        let d2 = mr.abs_diff(&b, &a);
        assert_eq!(d1, d2);
        assert_eq!(d1, vec![0, 0, 4, 5, 23]); // Example 3.2
    }

    #[test]
    fn add_value_successor_chain() {
        let mr = MixedRadix::new(vec![2, 3]).unwrap();
        // Enumerate the whole 6-point space via successor.
        let mut cur = mr.min_digits();
        let mut seen = vec![cur.clone()];
        while let Some(next) = mr.successor(&cur) {
            seen.push(next.clone());
            cur = next;
        }
        assert_eq!(seen.len(), 6);
        for (i, digits) in seen.iter().enumerate() {
            assert_eq!(mr.rank(digits).to_u64(), Some(i as u64));
        }
    }

    #[test]
    fn huge_radices_do_not_overflow() {
        // Radices near u64::MAX exercise the u128 intermediates.
        let big = u64::MAX;
        let mr = MixedRadix::new(vec![big, big, big]).unwrap();
        let a = vec![big - 1, big - 1, big - 1];
        assert!(mr.validate(&a).is_ok());
        let r = mr.rank(&a);
        assert_eq!(mr.unrank(&r).unwrap(), a);
        assert!(mr.successor(&a).is_none());
        let almost = mr.checked_sub(&a, &[0, 0, 1]).unwrap();
        assert_eq!(mr.successor(&almost).unwrap(), a);
    }

    #[test]
    fn unit_radix_digits_are_always_zero() {
        // A domain of size 1 contributes nothing to the ordering.
        let mr = MixedRadix::new(vec![1, 5, 1]).unwrap();
        assert_eq!(mr.space_size().to_u64(), Some(5));
        assert_eq!(mr.rank(&[0, 3, 0]).to_u64(), Some(3));
        assert_eq!(mr.unrank(&BigUnsigned::from_u64(3)).unwrap(), vec![0, 3, 0]);
    }

    fn arb_system_and_pair() -> impl Strategy<Value = (Vec<u64>, Vec<u64>, Vec<u64>)> {
        prop::collection::vec(1u64..1000, 1..8).prop_flat_map(|radices| {
            let digit_strats: Vec<_> = radices.iter().map(|&r| 0..r).collect();
            (Just(radices), digit_strats.clone(), digit_strats)
        })
    }

    proptest! {
        #[test]
        fn prop_rank_unrank_bijection((radices, a, _b) in arb_system_and_pair()) {
            let mr = MixedRadix::new(radices).unwrap();
            let r = mr.rank(&a);
            prop_assert_eq!(mr.unrank(&r).unwrap(), a);
        }

        #[test]
        fn prop_digit_ops_match_bignum((radices, a, b) in arb_system_and_pair()) {
            let mr = MixedRadix::new(radices).unwrap();
            let ra = mr.rank(&a);
            let rb = mr.rank(&b);
            // Comparison agrees.
            prop_assert_eq!(mr.cmp_digits(&a, &b), ra.cmp(&rb));
            // Subtraction agrees (when defined).
            match mr.checked_sub(&a, &b) {
                Some(diff) => {
                    let expect = ra.checked_sub(&rb).expect("a >= b");
                    prop_assert_eq!(mr.rank(&diff), expect);
                }
                None => prop_assert!(ra < rb),
            }
            // Addition agrees (when defined).
            match mr.checked_add(&a, &b) {
                Some(sum) => {
                    prop_assert_eq!(mr.rank(&sum), ra.add(&rb));
                }
                None => prop_assert!(ra.add(&rb) >= *mr.space_size()),
            }
        }

        #[test]
        fn prop_sub_then_add_roundtrip((radices, a, b) in arb_system_and_pair()) {
            let mr = MixedRadix::new(radices).unwrap();
            let (hi, lo) = if mr.cmp_digits(&a, &b) == core::cmp::Ordering::Less {
                (b, a)
            } else {
                (a, b)
            };
            let diff = mr.checked_sub(&hi, &lo).unwrap();
            prop_assert_eq!(mr.checked_add(&lo, &diff).unwrap(), hi);
        }

        #[test]
        fn prop_prefix_ops_match_full((radices, a, mut b) in arb_system_and_pair(), zeros in 0usize..8) {
            let mr = MixedRadix::new(radices).unwrap();
            // Zero a leading run of b, then exercise every admissible nz.
            let run = zeros.min(b.len());
            for d in b.iter_mut().take(run) {
                *d = 0;
            }
            for nz in 0..=run {
                let mut full = a.clone();
                let mut pre = a.clone();
                prop_assert_eq!(
                    mr.add_assign(&mut full, &b),
                    mr.add_assign_prefix(&mut pre, &b, nz)
                );
                prop_assert_eq!(&full, &pre);
                let mut full = a.clone();
                let mut pre = a.clone();
                prop_assert_eq!(
                    mr.sub_assign(&mut full, &b),
                    mr.sub_assign_prefix(&mut pre, &b, nz)
                );
                prop_assert_eq!(&full, &pre);
            }
        }

        #[test]
        fn prop_batch_unrank_matches_single(
            (radices, _a, _b) in arb_system_and_pair(),
            raw in prop::collection::vec(0u64..1_000_000_000, 0..40)
        ) {
            let mr = MixedRadix::new(radices).unwrap();
            let values: Vec<u64> = raw.into_iter().filter(|&v| mr.value_in_space(v)).collect();
            let n = mr.arity();
            let mut out = vec![0u64; values.len() * n];
            prop_assert!(mr.unrank_u64_batch_into(&values, &mut out));
            let mut single = vec![0u64; n];
            for (k, &v) in values.iter().enumerate() {
                prop_assert!(mr.unrank_u64_into(v, &mut single));
                prop_assert_eq!(&out[k * n..(k + 1) * n], single.as_slice());
            }
        }

        #[test]
        fn prop_add_value_matches_bignum(
            (radices, a, _b) in arb_system_and_pair(),
            delta in 0u64..1_000_000
        ) {
            let mr = MixedRadix::new(radices).unwrap();
            match mr.checked_add_value(&a, delta) {
                Some(sum) => {
                    prop_assert_eq!(mr.rank(&sum), mr.rank(&a).add_u64(delta));
                }
                None => {
                    prop_assert!(mr.rank(&a).add_u64(delta) >= *mr.space_size());
                }
            }
        }
    }
}
