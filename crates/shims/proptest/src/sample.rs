//! Index sampling (`any::<prop::sample::Index>()`).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A length-agnostic index: generated once, projected onto any collection
/// length with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Projects this sample onto a collection of `len` elements.
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.0 % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64() as usize)
    }
}
