//! Criterion micro-benchmarks for the decode path: per-block decode with a
//! fresh scratch vs. the reusable [`DecodeScratch`], whole-relation
//! sequential vs. parallel decompression, and the decoded-block cache's
//! warm-hit path.

use avq_codec::{
    compress, decompress_parallel, BlockCodec, CodecOptions, CodingMode, DecodeScratch, RepChoice,
};
use avq_schema::{Schema, Tuple};
use avq_workload::SyntheticSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn sorted_tuples(n: usize) -> (Arc<Schema>, Vec<Tuple>) {
    let spec = SyntheticSpec::section_5_2(n);
    let schema = spec.schema();
    let mut tuples = spec.generate().into_tuples();
    tuples.sort_unstable();
    tuples.dedup();
    (schema, tuples)
}

/// Per-block streaming decode: allocating a scratch per call vs. reusing
/// one across calls. The delta is the zero-allocation path's win.
fn bench_decode_scratch(c: &mut Criterion) {
    let (schema, tuples) = sorted_tuples(4096);
    let run = &tuples[..400.min(tuples.len())];

    let mut g = c.benchmark_group("decode_scratch");
    g.throughput(Throughput::Elements(run.len() as u64));
    for mode in CodingMode::ALL {
        let codec = BlockCodec::with_options(schema.clone(), mode, RepChoice::Median);
        let coded = codec.encode(run).unwrap();
        g.bench_with_input(BenchmarkId::new("fresh", mode), &codec, |b, codec| {
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                codec.decode_into(black_box(&coded), &mut out).unwrap();
                black_box(&out);
            })
        });
        g.bench_with_input(BenchmarkId::new("reused", mode), &codec, |b, codec| {
            let mut out = Vec::new();
            let mut scratch = DecodeScratch::new();
            b.iter(|| {
                out.clear();
                codec
                    .decode_into_scratch(black_box(&coded), &mut out, &mut scratch)
                    .unwrap();
                black_box(&out);
            })
        });
    }
    g.finish();
}

/// Whole-relation decompression: sequential vs. striped across threads.
fn bench_decompress_parallel(c: &mut Criterion) {
    let spec = SyntheticSpec::section_5_2(20_000);
    let relation = spec.generate();
    let coded = compress(&relation, CodecOptions::default()).unwrap();

    let mut g = c.benchmark_group("decompress");
    g.throughput(Throughput::Elements(coded.tuple_count() as u64));
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(black_box(&coded).decompress().unwrap()))
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(decompress_parallel(black_box(&coded), threads).unwrap()))
            },
        );
    }
    g.finish();
}

/// The decoded-block cache hit path: cloning tuples out of a cached run vs.
/// decoding the block from coded bytes.
fn bench_decoded_cache_hit(c: &mut Criterion) {
    use avq_storage::DecodedCache;

    let (schema, tuples) = sorted_tuples(4096);
    let run = &tuples[..400.min(tuples.len())];
    let codec = BlockCodec::new(schema);
    let coded = codec.encode(run).unwrap();
    let cache: DecodedCache<Vec<Tuple>> = DecodedCache::new(4);
    cache.insert(0, Arc::new(run.to_vec()));

    let mut g = c.benchmark_group("decoded_cache");
    g.throughput(Throughput::Elements(run.len() as u64));
    g.bench_function("hit_clone_run", |b| {
        let mut out: Vec<Tuple> = Vec::new();
        b.iter(|| {
            out.clear();
            let cached = cache.get(black_box(0)).unwrap();
            out.extend_from_slice(&cached);
            black_box(&out);
        })
    });
    g.bench_function("miss_decode_block", |b| {
        let mut out: Vec<Tuple> = Vec::new();
        let mut scratch = DecodeScratch::new();
        b.iter(|| {
            out.clear();
            codec
                .decode_into_scratch(black_box(&coded), &mut out, &mut scratch)
                .unwrap();
            black_box(&out);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_decode_scratch,
    bench_decompress_parallel,
    bench_decoded_cache_hit
);
criterion_main!(benches);
