//! Attribute domains and the §3.1 attribute-encoding step.
//!
//! AVQ's first preprocessing step replaces every attribute value by its
//! ordinal position in the attribute's domain. A [`Domain`] knows its size
//! `|Aᵢ|`, how to encode a [`Value`] to an ordinal in `{0 … |Aᵢ|−1}`, and how
//! to decode an ordinal back — exactly, so the overall pipeline stays
//! lossless.

use crate::error::SchemaError;
use crate::value::Value;
use std::collections::HashMap;

/// An attribute domain: a finite, totally ordered set of values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Domain {
    /// Unsigned integers `0 … size−1`; the identity encoding.
    Uint {
        /// Domain size `|A|`.
        size: u64,
    },
    /// Signed integers `min … max` inclusive; ordinal = `v − min`.
    IntRange {
        /// Smallest domain value.
        min: i64,
        /// Largest domain value.
        max: i64,
    },
    /// A finite set of strings; ordinal = position in `values`. This is the
    /// string-table scheme of §3.1 (cf. Graefe & Shapiro \[6\]): a long ASCII
    /// value compresses to a short index even before differential coding.
    Enumerated {
        /// Domain values in ordinal order.
        values: Vec<String>,
        /// Reverse lookup from value to ordinal.
        index: HashMap<String, u64>,
    },
}

impl Domain {
    /// An unsigned-integer domain `{0 … size−1}`.
    pub fn uint(size: u64) -> Result<Self, SchemaError> {
        if size == 0 {
            return Err(SchemaError::EmptyDomain {
                attribute: String::new(),
            });
        }
        Ok(Domain::Uint { size })
    }

    /// A signed-integer domain `{min … max}`.
    ///
    /// The full `i64` range is rejected because its 2⁶⁴ values overflow the
    /// `u64` domain-size arithmetic; shrink either bound by one if you need
    /// (almost) the whole range.
    pub fn int_range(min: i64, max: i64) -> Result<Self, SchemaError> {
        if min > max || max.abs_diff(min) == u64::MAX {
            return Err(SchemaError::InvalidRange { min, max });
        }
        Ok(Domain::IntRange { min, max })
    }

    /// An enumerated string domain in the given ordinal order.
    /// Duplicates are rejected.
    pub fn enumerated<S: Into<String>, I: IntoIterator<Item = S>>(
        values: I,
    ) -> Result<Self, SchemaError> {
        let values: Vec<String> = values.into_iter().map(Into::into).collect();
        if values.is_empty() {
            return Err(SchemaError::EmptyDomain {
                attribute: String::new(),
            });
        }
        let mut index = HashMap::with_capacity(values.len());
        for (i, v) in values.iter().enumerate() {
            if index.insert(v.clone(), i as u64).is_some() {
                return Err(SchemaError::DuplicateDomainValue { value: v.clone() });
            }
        }
        Ok(Domain::Enumerated { values, index })
    }

    /// An enumerated string domain with values sorted lexicographically
    /// (and deduplicated) — convenient when ingesting observed data.
    pub fn enumerated_sorted<S: Into<String>, I: IntoIterator<Item = S>>(
        values: I,
    ) -> Result<Self, SchemaError> {
        let mut values: Vec<String> = values.into_iter().map(Into::into).collect();
        values.sort_unstable();
        values.dedup();
        Self::enumerated(values)
    }

    /// Domain size `|A|`.
    pub fn size(&self) -> u64 {
        match self {
            Domain::Uint { size } => *size,
            Domain::IntRange { min, max } => max.abs_diff(*min) + 1,
            Domain::Enumerated { values, .. } => values.len() as u64,
        }
    }

    /// Bytes needed to store any ordinal of this domain at fixed width:
    /// the width of `size − 1` in base 256 (0 for a single-value domain,
    /// whose digit is always 0 and need not be stored).
    pub fn byte_width(&self) -> usize {
        let max_ordinal = self.size() - 1;
        if max_ordinal == 0 {
            0
        } else {
            (64 - max_ordinal.leading_zeros() as usize).div_ceil(8)
        }
    }

    /// Encodes a value to its ordinal (§3.1 domain mapping).
    pub fn encode(&self, value: &Value) -> Result<u64, SchemaError> {
        match (self, value) {
            (Domain::Uint { size }, Value::Uint(v)) => {
                if v < size {
                    Ok(*v)
                } else {
                    Err(SchemaError::ValueNotInDomain {
                        attribute: String::new(),
                        value: v.to_string(),
                    })
                }
            }
            (Domain::IntRange { min, max }, Value::Int(v)) => {
                if v >= min && v <= max {
                    Ok(v.abs_diff(*min))
                } else {
                    Err(SchemaError::ValueNotInDomain {
                        attribute: String::new(),
                        value: v.to_string(),
                    })
                }
            }
            (Domain::Enumerated { index, .. }, Value::Str(s)) => {
                index
                    .get(s)
                    .copied()
                    .ok_or_else(|| SchemaError::ValueNotInDomain {
                        attribute: String::new(),
                        value: format!("{s:?}"),
                    })
            }
            (d, v) => Err(SchemaError::TypeMismatch {
                attribute: String::new(),
                expected: d.type_name(),
                got: v.type_name(),
            }),
        }
    }

    /// Decodes an ordinal back to the original value.
    pub fn decode(&self, ordinal: u64) -> Result<Value, SchemaError> {
        if ordinal >= self.size() {
            return Err(SchemaError::OrdinalOutOfRange {
                attribute: String::new(),
                ordinal,
                size: self.size(),
            });
        }
        Ok(match self {
            Domain::Uint { .. } => Value::Uint(ordinal),
            Domain::IntRange { min, .. } => {
                Value::Int(min.checked_add_unsigned(ordinal).expect("range checked"))
            }
            Domain::Enumerated { values, .. } => Value::Str(values[ordinal as usize].clone()),
        })
    }

    /// Short name of the value type this domain holds.
    pub fn type_name(&self) -> &'static str {
        match self {
            Domain::Uint { .. } => "uint",
            Domain::IntRange { .. } => "int",
            Domain::Enumerated { .. } => "string",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_domain_roundtrip() {
        let d = Domain::uint(64).unwrap();
        assert_eq!(d.size(), 64);
        assert_eq!(d.encode(&Value::Uint(63)).unwrap(), 63);
        assert_eq!(d.decode(63).unwrap(), Value::Uint(63));
        assert!(d.encode(&Value::Uint(64)).is_err());
        assert!(d.decode(64).is_err());
    }

    #[test]
    fn uint_domain_zero_rejected() {
        assert!(Domain::uint(0).is_err());
    }

    #[test]
    fn int_range_roundtrip() {
        let d = Domain::int_range(-10, 10).unwrap();
        assert_eq!(d.size(), 21);
        assert_eq!(d.encode(&Value::Int(-10)).unwrap(), 0);
        assert_eq!(d.encode(&Value::Int(10)).unwrap(), 20);
        assert_eq!(d.decode(0).unwrap(), Value::Int(-10));
        assert_eq!(d.decode(20).unwrap(), Value::Int(10));
        assert!(d.encode(&Value::Int(11)).is_err());
        assert!(d.encode(&Value::Int(-11)).is_err());
    }

    #[test]
    fn int_range_extremes() {
        // The full i64 range (2^64 values) is rejected; one short of it works.
        assert!(Domain::int_range(i64::MIN, i64::MAX).is_err());
        let d = Domain::int_range(i64::MIN + 1, i64::MAX).unwrap();
        assert_eq!(d.size(), u64::MAX);
        assert_eq!(d.encode(&Value::Int(i64::MIN + 1)).unwrap(), 0);
        assert_eq!(d.decode(0).unwrap(), Value::Int(i64::MIN + 1));
        let top = d.encode(&Value::Int(i64::MAX)).unwrap();
        assert_eq!(top, u64::MAX - 1);
        assert_eq!(d.decode(top).unwrap(), Value::Int(i64::MAX));
    }

    #[test]
    fn int_range_invalid() {
        assert_eq!(
            Domain::int_range(5, 4),
            Err(SchemaError::InvalidRange { min: 5, max: 4 })
        );
    }

    #[test]
    fn enumerated_roundtrip() {
        // The paper's department domain (Example 3.1): production = 3,
        // marketing = 4, management = 2, personnel = 5 in a size-8 domain.
        let d = Domain::enumerated(vec![
            "accounting",
            "engineering",
            "management",
            "production",
            "marketing",
            "personnel",
            "research",
            "sales",
        ])
        .unwrap();
        assert_eq!(d.size(), 8);
        assert_eq!(d.encode(&Value::from("production")).unwrap(), 3);
        assert_eq!(d.decode(3).unwrap(), Value::from("production"));
        assert!(d.encode(&Value::from("legal")).is_err());
    }

    #[test]
    fn enumerated_duplicate_rejected() {
        assert!(matches!(
            Domain::enumerated(vec!["a", "b", "a"]),
            Err(SchemaError::DuplicateDomainValue { .. })
        ));
    }

    #[test]
    fn enumerated_sorted_dedups() {
        let d = Domain::enumerated_sorted(vec!["b", "a", "b", "c"]).unwrap();
        assert_eq!(d.size(), 3);
        assert_eq!(d.encode(&Value::from("a")).unwrap(), 0);
        assert_eq!(d.encode(&Value::from("c")).unwrap(), 2);
    }

    #[test]
    fn type_mismatch() {
        let d = Domain::uint(4).unwrap();
        assert!(matches!(
            d.encode(&Value::from("x")),
            Err(SchemaError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn byte_widths() {
        assert_eq!(Domain::uint(1).unwrap().byte_width(), 0);
        assert_eq!(Domain::uint(2).unwrap().byte_width(), 1);
        assert_eq!(Domain::uint(256).unwrap().byte_width(), 1);
        assert_eq!(Domain::uint(257).unwrap().byte_width(), 2);
        assert_eq!(Domain::uint(1 << 16).unwrap().byte_width(), 2);
        assert_eq!(Domain::uint((1 << 16) + 1).unwrap().byte_width(), 3);
        assert_eq!(Domain::int_range(-128, 127).unwrap().byte_width(), 1);
    }
}
