//! The paper's running example, end to end: the 50-tuple employee relation
//! of Fig. 2.2, coded block-by-block (§3), stored in a database with a
//! whole-tuple primary index and an A₅ secondary index (§4), then queried
//! and updated exactly as the paper's walkthrough does.
//!
//! Run with: `cargo run --release -p avq --example employee_db`

use avq::codec::{BlockCodec, BLOCK_HEADER_BYTES};
use avq::prelude::*;
use avq::workload::{employee_relation, employee_schema};

fn main() {
    let schema = employee_schema();
    let mut relation = employee_relation();
    println!(
        "Fig 2.2(a): {} employees over {:?}",
        relation.len(),
        schema
            .attributes()
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
    );

    // §3.1–3.2: attribute encoding is already done by the schema; re-order
    // tuples by φ.
    relation.sort();
    let first = &relation.tuples()[0];
    println!(
        "Fig 2.2(c): after re-ordering, first tuple {first:?} at φ = {}",
        schema.phi(first)
    );

    // §3.4: code the 4th block (tuples 15..20 of the sorted relation, the
    // block the paper walks through) and print its byte stream.
    let block4: Vec<Tuple> = relation.tuples()[15..20].to_vec();
    let codec = BlockCodec::new(schema.clone());
    let coded = codec.encode(&block4).unwrap();
    let stream: Vec<String> = coded[BLOCK_HEADER_BYTES..]
        .iter()
        .map(|b| b.to_string())
        .collect();
    println!("§3.4 stream for block 4: {}", stream.join(" "));
    println!("  (the paper prints 3 08 36 39 35 3 08 57 2 04 05 23 2 51 56 29 2 01 59 37)");

    // §4: load the relation into a database with small blocks so the
    // 50 tuples spread over several blocks, as in the figures.
    let config = DbConfig {
        codec: avq::codec::CodecOptions {
            block_capacity: 64,
            ..Default::default()
        },
        index_order: 3, // the order-3 B⁺-trees of Figs. 4.4/4.5
        ..Default::default()
    };
    let mut db = Database::new(config);
    db.create_relation("employees", &relation).unwrap();
    let stored = db.relation("employees").unwrap();
    println!(
        "\ndatabase: {} tuples in {} coded blocks (order-3 primary index, height {})",
        stored.tuple_count(),
        stored.block_count(),
        stored.primary_index().stats().unwrap().height
    );

    // Fig. 4.5: a secondary index on A₅ (empno), then σ_{A₅=34}(R).
    db.create_secondary_index("employees", 4).unwrap();
    db.drop_caches();
    db.reset_measurements();
    let (rows, cost) = db
        .select_range("employees", "empno", &Value::Uint(34), &Value::Uint(34))
        .unwrap();
    println!(
        "σ_empno=34: {} row(s) [{} {} {} {} {}], I = {} index blocks, N = {} data block(s)",
        rows.len(),
        rows[0][0],
        rows[0][1],
        rows[0][2],
        rows[0][3],
        rows[0][4],
        cost.index_reads,
        cost.data_blocks
    );

    // Fig. 4.6: insert the new employee. The paper's digit vector
    // (3,08,32,25,64) has φ = 14 812 800, whose normalized form is
    // (3,08,32,26,00) — employee number 64 overflows the size-64 domain, so
    // the figure's A₄/A₅ digits carry into each other.
    let new_tuple = Tuple::from([3u64, 8, 32, 26, 0]);
    println!(
        "\nFig 4.6: inserting {new_tuple:?} (φ = {}, the paper's 14 812 800)",
        schema.phi(&new_tuple)
    );
    db.relation_mut("employees")
        .unwrap()
        .insert(&new_tuple)
        .unwrap();
    let stored = db.relation("employees").unwrap();
    println!(
        "after insertion: {} tuples in {} blocks (changes confined to one block)",
        stored.tuple_count(),
        stored.block_count()
    );
    let (found, _) = stored.contains(&new_tuple).unwrap();
    assert!(found);

    // §4.2: deletion and modification.
    db.relation_mut("employees")
        .unwrap()
        .delete(&new_tuple)
        .unwrap();
    let old = Tuple::from([3u64, 9, 24, 32, 0]);
    let new = Tuple::from([3u64, 9, 25, 32, 0]); // one more year in company
    db.relation_mut("employees")
        .unwrap()
        .update(&old, &new)
        .unwrap();
    let stored = db.relation("employees").unwrap();
    let (found_new, _) = stored.contains(&new).unwrap();
    let (found_old, _) = stored.contains(&old).unwrap();
    println!("update: {old:?} -> {new:?} (old present: {found_old}, new present: {found_new})");
    assert!(found_new && !found_old);
    println!("\nall paper walkthrough steps reproduced ✓");
}
