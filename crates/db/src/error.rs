//! Error type for the database layer.

use avq_codec::CodecError;
use avq_index::IndexError;
use avq_schema::SchemaError;
use avq_storage::StorageError;
use core::fmt;

/// Errors raised by database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A schema-level failure (encoding, arity, domains).
    Schema(SchemaError),
    /// A block-coding failure.
    Codec(CodecError),
    /// An index failure.
    Index(IndexError),
    /// A storage failure.
    Storage(StorageError),
    /// No relation with the given name.
    NoSuchRelation {
        /// The name that failed to resolve.
        name: String,
    },
    /// A relation with the given name already exists.
    RelationExists {
        /// The duplicate name.
        name: String,
    },
    /// The tuple was not found (delete/update).
    TupleNotFound,
    /// A secondary index already exists on the attribute.
    IndexExists {
        /// Attribute position.
        attribute: usize,
    },
    /// A durability-layer failure: WAL, snapshot, or manifest I/O.
    /// Carries the rendered cause (the underlying errors are not
    /// `Clone`/`Eq`, which this type promises).
    Durability {
        /// Human-readable cause.
        detail: String,
    },
    /// A resource-governance trip: the query timed out, was cancelled,
    /// blew a quota, or was shed by the admission controller.
    Governance(avq_obs::GovernanceError),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Schema(e) => write!(f, "schema error: {e}"),
            DbError::Codec(e) => write!(f, "codec error: {e}"),
            DbError::Index(e) => write!(f, "index error: {e}"),
            DbError::Storage(e) => write!(f, "storage error: {e}"),
            DbError::NoSuchRelation { name } => write!(f, "no such relation: {name:?}"),
            DbError::RelationExists { name } => write!(f, "relation already exists: {name:?}"),
            DbError::TupleNotFound => write!(f, "tuple not found"),
            DbError::IndexExists { attribute } => {
                write!(f, "secondary index already exists on attribute {attribute}")
            }
            DbError::Durability { detail } => write!(f, "durability error: {detail}"),
            DbError::Governance(e) => write!(f, "governance error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<SchemaError> for DbError {
    fn from(e: SchemaError) -> Self {
        DbError::Schema(e)
    }
}

impl From<CodecError> for DbError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::TupleNotFound => DbError::TupleNotFound,
            other => DbError::Codec(other),
        }
    }
}

impl From<IndexError> for DbError {
    fn from(e: IndexError) -> Self {
        DbError::Index(e)
    }
}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

impl From<avq_obs::GovernanceError> for DbError {
    fn from(e: avq_obs::GovernanceError) -> Self {
        DbError::Governance(e)
    }
}

impl From<avq_codec::GovernedDecodeError> for DbError {
    fn from(e: avq_codec::GovernedDecodeError) -> Self {
        match e {
            avq_codec::GovernedDecodeError::Codec(c) => DbError::from(c),
            avq_codec::GovernedDecodeError::Governance(g) => DbError::Governance(g),
        }
    }
}

impl From<avq_wal::WalError> for DbError {
    fn from(e: avq_wal::WalError) -> Self {
        DbError::Durability {
            detail: e.to_string(),
        }
    }
}

impl From<avq_file::FileError> for DbError {
    fn from(e: avq_file::FileError) -> Self {
        DbError::Durability {
            detail: e.to_string(),
        }
    }
}
