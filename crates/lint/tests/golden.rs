//! Golden tests for `avq-lint`: each rule fixture must produce exactly
//! its pinned JSON findings and a non-zero exit status, and the real
//! workspace must lint clean.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::Command;

fn lint(root: &Path, json: bool) -> (String, String, i32) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_avq-lint"));
    cmd.arg("check").arg("--root").arg(root);
    if json {
        cmd.arg("--format").arg("json");
    }
    let out = cmd.output().expect("run avq-lint");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
        out.status.code().unwrap_or(-1),
    )
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn assert_golden(name: &str) {
    let dir = fixture(name);
    let (stdout, stderr, code) = lint(&dir, true);
    let expected = std::fs::read_to_string(dir.join("expected.json")).expect("expected.json");
    assert_eq!(
        stdout, expected,
        "fixture {name} drifted from its golden output"
    );
    assert_eq!(
        code, 1,
        "fixture {name} must exit 1 on findings (stderr: {stderr})"
    );
}

#[test]
fn l001_panic_freedom_fixture() {
    assert_golden("l001");
}

#[test]
fn l002_bounded_capacity_fixture() {
    assert_golden("l002");
}

#[test]
fn l003_crate_root_hygiene_fixture() {
    assert_golden("l003");
}

#[test]
fn l004_metric_names_fixture() {
    assert_golden("l004");
}

#[test]
fn l005_virtual_clock_fixture() {
    assert_golden("l005");
}

#[test]
fn l006_corrupt_sections_fixture() {
    assert_golden("l006");
}

#[test]
fn waiver_hygiene_fixture() {
    assert_golden("waiver");
}

#[test]
fn l007_taint_tracking_fixture() {
    assert_golden("l007");
}

#[test]
fn l008_wrapper_drift_fixture() {
    assert_golden("l008");
}

#[test]
fn l009_lock_discipline_fixture() {
    assert_golden("l009");
}

#[test]
fn l010_atomics_audit_fixture() {
    assert_golden("l010");
}

/// The real workspace lints clean: zero findings, exit 0, and every
/// waiver in effect carries a written reason.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let (stdout, stderr, code) = lint(&root, false);
    assert_eq!(
        code, 0,
        "workspace must lint clean; output:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(stdout.contains("avq-lint: clean — 0 findings"), "{stdout}");
}

/// The real workspace lints clean under every rule individually: the
/// `--rule` filter isolates each pass and all ten must report zero
/// findings on their own.
#[test]
fn workspace_is_clean_per_rule() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    for n in 1..=10 {
        let rule = format!("AVQ-L{n:03}");
        let out = Command::new(env!("CARGO_BIN_EXE_avq-lint"))
            .arg("check")
            .arg("--root")
            .arg(&root)
            .arg("--rule")
            .arg(&rule)
            .output()
            .expect("run avq-lint");
        let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
        assert_eq!(
            out.status.code(),
            Some(0),
            "workspace must be clean under {rule} alone; output:\n{stdout}"
        );
    }
}

/// `--rule` narrows a fixture run to the named rule only.
#[test]
fn rule_filter_isolates_one_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_avq-lint"))
        .arg("check")
        .arg("--root")
        .arg(fixture("l009"))
        .arg("--rule")
        .arg("AVQ-L010")
        .output()
        .expect("run avq-lint");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(!stdout.contains("AVQ-L009"), "{stdout}");
}

/// `--explain` prints the rule's long-form help and exits 0; an unknown
/// rule id is a usage error.
#[test]
fn explain_prints_rule_help() {
    let out = Command::new(env!("CARGO_BIN_EXE_avq-lint"))
        .arg("--explain")
        .arg("AVQ-L007")
        .output()
        .expect("run avq-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert!(stdout.contains("AVQ-L007"), "{stdout}");
    assert!(stdout.contains("sanitized"), "{stdout}");

    let bad = Command::new(env!("CARGO_BIN_EXE_avq-lint"))
        .arg("--explain")
        .arg("AVQ-L999")
        .output()
        .expect("run avq-lint");
    assert_eq!(bad.status.code(), Some(2));
}

/// `--emit` writes the call graph as deterministic JSON: two runs over
/// the same tree produce byte-identical output.
#[test]
fn emitted_callgraph_is_deterministic() {
    let dir = std::env::temp_dir();
    let a = dir.join("avq_lint_cg_a.json");
    let b = dir.join("avq_lint_cg_b.json");
    for path in [&a, &b] {
        let out = Command::new(env!("CARGO_BIN_EXE_avq-lint"))
            .arg("check")
            .arg("--root")
            .arg(fixture("l008"))
            .arg("--emit")
            .arg(path)
            .output()
            .expect("run avq-lint");
        assert!(out.status.code().is_some(), "emit run must finish");
    }
    let ja = std::fs::read_to_string(&a).expect("emit a");
    let jb = std::fs::read_to_string(&b).expect("emit b");
    assert_eq!(ja, jb, "call-graph emission must be deterministic");
    assert!(ja.contains("::run_governed\""), "{ja}");
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

/// The pinned call-graph snapshot in `results/` matches what the linter
/// emits for the current workspace.
#[test]
fn callgraph_snapshot_is_current() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let out_path = std::env::temp_dir().join("avq_lint_cg_ws.json");
    let out = Command::new(env!("CARGO_BIN_EXE_avq-lint"))
        .arg("check")
        .arg("--root")
        .arg(&root)
        .arg("--emit")
        .arg(&out_path)
        .output()
        .expect("run avq-lint");
    assert_eq!(out.status.code(), Some(0));
    let emitted = std::fs::read_to_string(&out_path).expect("emitted callgraph");
    let pinned = std::fs::read_to_string(root.join("results/callgraph.json"))
        .expect("results/callgraph.json");
    assert_eq!(
        emitted, pinned,
        "results/callgraph.json drifted — re-run `avq-lint check --emit results/callgraph.json`"
    );
    let _ = std::fs::remove_file(&out_path);
}

/// Human output for a failing fixture names the rule and the file:line.
#[test]
fn human_format_carries_locations() {
    let (stdout, _, code) = lint(&fixture("l001"), false);
    assert_eq!(code, 1);
    assert!(
        stdout.contains("crates/codec/src/bad.rs:4: AVQ-L001"),
        "{stdout}"
    );
    assert!(stdout.contains("avq-lint: FAIL"), "{stdout}");
}

/// Usage errors are distinct from findings: exit 2.
#[test]
fn usage_errors_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_avq-lint"))
        .arg("frobnicate")
        .output()
        .expect("run avq-lint");
    assert_eq!(out.status.code(), Some(2));
}
