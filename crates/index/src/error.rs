//! Error types for the index layer.

use avq_storage::StorageError;
use core::fmt;

/// Errors raised by B⁺-tree and bucket operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The underlying device/pool failed.
    Storage(StorageError),
    /// A persisted node failed to parse.
    CorruptNode {
        /// Block holding the node.
        block: u32,
        /// Human-readable cause.
        detail: String,
    },
    /// A key/entry was too large to ever fit a node in one block.
    EntryTooLarge {
        /// Serialized entry size.
        entry_bytes: usize,
        /// Device block size.
        block_size: usize,
    },
    /// Bulk build requires strictly ascending keys.
    UnsortedBuildInput {
        /// Index of the first offending pair.
        position: usize,
    },
    /// The key was not present (delete / exact lookup).
    KeyNotFound,
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Storage(e) => write!(f, "storage error: {e}"),
            IndexError::CorruptNode { block, detail } => {
                write!(f, "corrupt index node in block {block}: {detail}")
            }
            IndexError::EntryTooLarge {
                entry_bytes,
                block_size,
            } => write!(
                f,
                "index entry of {entry_bytes} bytes cannot fit block size {block_size}"
            ),
            IndexError::UnsortedBuildInput { position } => {
                write!(f, "bulk-build input not strictly ascending at {position}")
            }
            IndexError::KeyNotFound => write!(f, "key not found"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<StorageError> for IndexError {
    fn from(e: StorageError) -> Self {
        IndexError::Storage(e)
    }
}
